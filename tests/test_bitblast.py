"""Property-based tests for the bit-blasting word operations.

Every word-level operator is checked against Python integer semantics on
randomized operands by building a tiny netlist and simulating it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.netlist import CONST0, CONST1, NetlistBuilder
from repro.sim import NetlistSimulator
from repro.synth.bitblast import BitLowering, const_bits, fit

WIDTH = 6
MAX = (1 << WIDTH) - 1


def evaluate(build, a=None, b=None, width=WIDTH):
    """Build a netlist computing build(logic, a_bits, b_bits) and run it."""
    builder = NetlistBuilder("prop")
    logic = BitLowering(builder)
    a_bits = builder.input_bus("a", width) if a is not None else None
    b_bits = builder.input_bus("b", width) if b is not None else None
    out_bits = build(logic, a_bits, b_bits)
    for i, bit in enumerate(out_bits):
        builder.buf_(bit, out=builder.netlist.add_output(f"y_{i}"))
    sim = NetlistSimulator(builder.build())
    stim = {}
    if a is not None:
        stim.update(sim.drive_bus("a", width, a))
    if b is not None:
        stim.update(sim.drive_bus("b", width, b))
    sim.set_inputs(stim)
    return sim.read_bus("y", len(out_bits))


values = st.integers(0, MAX)


class TestConstHelpers:
    def test_const_bits_roundtrip(self):
        for value in (0, 1, 5, MAX):
            bits = const_bits(value, WIDTH)
            total = sum((1 << i) for i, b in enumerate(bits) if b == CONST1)
            assert total == value

    def test_fit_extends_and_truncates(self):
        bits = [CONST1, CONST0]
        assert len(fit(bits, 5)) == 5
        assert fit(bits, 5)[2:] == [CONST0] * 3
        assert fit(bits, 1) == [CONST1]


class TestPropertyOps:
    @settings(max_examples=20, deadline=None)
    @given(values, values)
    def test_add(self, a, b):
        got = evaluate(lambda l, x, y: l.add(x, y), a, b)
        assert got == a + b  # result is WIDTH+1 bits: exact

    @settings(max_examples=20, deadline=None)
    @given(values, values)
    def test_sub_wraps(self, a, b):
        got = evaluate(lambda l, x, y: l.sub(x, y), a, b)
        assert got == (a - b) & MAX

    @settings(max_examples=15, deadline=None)
    @given(values, values)
    def test_mul(self, a, b):
        got = evaluate(lambda l, x, y: l.mul(x, y), a, b)
        assert got == a * b

    @settings(max_examples=20, deadline=None)
    @given(values, values)
    def test_bitwise(self, a, b):
        assert evaluate(lambda l, x, y: l.word_and(x, y), a, b) == (a & b)
        assert evaluate(lambda l, x, y: l.word_or(x, y), a, b) == (a | b)
        assert evaluate(lambda l, x, y: l.word_xor(x, y), a, b) == (a ^ b)

    @settings(max_examples=20, deadline=None)
    @given(values)
    def test_not(self, a):
        got = evaluate(lambda l, x, y: l.word_not(x), a)
        assert got == (~a) & MAX

    @settings(max_examples=20, deadline=None)
    @given(values, values)
    def test_comparisons(self, a, b):
        assert evaluate(lambda l, x, y: [l.eq(x, y)], a, b) == int(a == b)
        assert evaluate(lambda l, x, y: [l.neq(x, y)], a, b) == int(a != b)
        assert evaluate(lambda l, x, y: [l.lt(x, y)], a, b) == int(a < b)
        assert evaluate(lambda l, x, y: [l.le(x, y)], a, b) == int(a <= b)

    @settings(max_examples=20, deadline=None)
    @given(values)
    def test_reductions(self, a):
        assert evaluate(lambda l, x, y: [l.reduce_and(x)], a) == \
            int(a == MAX)
        assert evaluate(lambda l, x, y: [l.reduce_or(x)], a) == int(a != 0)
        assert evaluate(lambda l, x, y: [l.reduce_xor(x)], a) == \
            bin(a).count("1") % 2

    @settings(max_examples=15, deadline=None)
    @given(values, st.integers(0, WIDTH))
    def test_const_shifts(self, a, amount):
        left = evaluate(lambda l, x, y: l.shift_const(x, amount, True,
                                                      WIDTH), a)
        right = evaluate(lambda l, x, y: l.shift_const(x, amount, False,
                                                       WIDTH), a)
        assert left == (a << amount) & MAX
        assert right == a >> amount

    @settings(max_examples=15, deadline=None)
    @given(values, st.integers(0, 7))
    def test_variable_shift(self, a, amount):
        def build(l, x, y):
            amount_bits = const_bits(amount, 3)
            return l.shift_var(x, amount_bits, True, WIDTH)

        assert evaluate(build, a) == (a << amount) & MAX

    @settings(max_examples=15, deadline=None)
    @given(values, st.integers(0, WIDTH - 1))
    def test_variable_bit_select(self, a, index):
        def build(l, x, y):
            return [l.select_var_bit(x, const_bits(index, 3))]

        assert evaluate(build, a) == (a >> index) & 1

    @settings(max_examples=15, deadline=None)
    @given(values, values, st.booleans())
    def test_mux_word(self, a, b, sel):
        def build(l, x, y):
            return l.mux_word(x, y, CONST1 if sel else CONST0)

        assert evaluate(build, a, b) == (b if sel else a)

    @settings(max_examples=15, deadline=None)
    @given(values)
    def test_neg(self, a):
        assert evaluate(lambda l, x, y: l.neg(x), a) == (-a) & MAX


class TestConstantFolding:
    """The lowering folds constants instead of emitting gates."""

    def count_gates(self, build):
        builder = NetlistBuilder("fold")
        logic = BitLowering(builder)
        a = builder.input_bus("a", 4)
        build(logic, a)
        return builder.netlist.num_gates

    def test_and_with_zero_is_free(self):
        gates = self.count_gates(
            lambda l, a: l.word_and(a, const_bits(0, 4)))
        assert gates == 0

    def test_xor_with_zero_is_free(self):
        gates = self.count_gates(
            lambda l, a: l.word_xor(a, const_bits(0, 4)))
        assert gates == 0

    def test_mux_same_inputs_free(self):
        builder = NetlistBuilder("fold")
        logic = BitLowering(builder)
        builder.inputs("a", "s")
        assert logic.bit_mux("a", "a", "s") == "a"
        assert builder.netlist.num_gates == 0

    def test_add_zero_cheap(self):
        gates = self.count_gates(lambda l, a: l.add(a, const_bits(0, 4),
                                                    width=4))
        assert gates == 0
