"""Functional tests for the ISCAS'85-equivalent benchmark generators."""

import numpy as np
import pytest

from repro.designs.iscas import (
    ISCAS_BENCHMARKS,
    c432,
    c499,
    c880,
    c1355,
    c1908,
    c6288,
    iscas_names,
    iscas_netlist,
)
from repro.errors import DatasetError
from repro.obfuscate import obfuscate
from repro.sim import NetlistSimulator, check_netlists_equivalent


class TestRegistry:
    def test_six_benchmarks(self):
        assert iscas_names() == ["c432", "c499", "c880", "c1355", "c1908",
                                 "c6288"]

    def test_unknown_benchmark(self):
        with pytest.raises(DatasetError):
            iscas_netlist("c17000")

    @pytest.mark.parametrize("name", iscas_names())
    def test_netlists_validate(self, name):
        netlist = iscas_netlist(name)
        netlist.validate()
        assert netlist.is_combinational()
        assert netlist.num_gates > 100

    def test_paper_instance_counts(self):
        counts = [ISCAS_BENCHMARKS[n][2] for n in iscas_names()]
        assert counts == [24, 23, 30, 19, 22, 25]


class TestC432InterruptController:
    @pytest.fixture(scope="class")
    def sim(self):
        return NetlistSimulator(c432())

    def drive(self, sim, reqs_a=0, reqs_b=0, reqs_c=0, enables=0x1FF):
        stim = {}
        stim.update(sim.drive_bus("reqa", 9, reqs_a))
        stim.update(sim.drive_bus("reqb", 9, reqs_b))
        stim.update(sim.drive_bus("reqc", 9, reqs_c))
        stim.update(sim.drive_bus("en", 9, enables))
        sim.set_inputs(stim)

    def test_idle_no_grants(self, sim):
        self.drive(sim)
        assert sim.value("grant_a") == 0
        assert sim.value("grant_b") == 0
        assert sim.value("grant_c") == 0

    def test_group_a_highest_priority(self, sim):
        self.drive(sim, reqs_a=1 << 2, reqs_b=1 << 5, reqs_c=1 << 8)
        assert sim.value("grant_a") == 1
        assert sim.value("grant_b") == 0
        assert sim.read_bus("chan", 4) == 2

    def test_group_b_when_a_idle(self, sim):
        self.drive(sim, reqs_b=1 << 5, reqs_c=1 << 1)
        assert sim.value("grant_b") == 1
        assert sim.read_bus("chan", 4) == 5

    def test_group_c_lowest(self, sim):
        self.drive(sim, reqs_c=1 << 7)
        assert sim.value("grant_c") == 1
        assert sim.read_bus("chan", 4) == 7

    def test_highest_channel_wins_within_group(self, sim):
        self.drive(sim, reqs_a=(1 << 3) | (1 << 6))
        assert sim.read_bus("chan", 4) == 6

    def test_enable_masks_requests(self, sim):
        self.drive(sim, reqs_a=1 << 4, enables=0)
        assert sim.value("grant_a") == 0


class TestSecBenchmarks:
    def encode(self, netlist, data_width, check_bits, data):
        """Compute matching check bits for clean data (syndrome = 0)."""
        from repro.designs.iscas import _sec_signature
        checks = 0
        for check in range(check_bits):
            parity = 0
            for i in range(data_width):
                if (_sec_signature(i, check_bits) >> check) & 1:
                    parity ^= (data >> i) & 1
            checks |= parity << check
        return checks

    @pytest.mark.parametrize("name,data_width,check_bits",
                             [("c499", 32, 6), ("c1908", 16, 5)])
    def test_clean_word_passes_through(self, name, data_width, check_bits):
        netlist = iscas_netlist(name)
        sim = NetlistSimulator(netlist)
        rng = np.random.default_rng(0)
        for _ in range(5):
            data = int(rng.integers(0, 1 << data_width))
            checks = self.encode(netlist, data_width, check_bits, data)
            stim = sim.drive_bus("d", data_width, data)
            stim.update(sim.drive_bus("chk", check_bits, checks))
            if "p_all" in netlist.inputs:
                overall = bin(data).count("1") & 1
                stim["p_all"] = overall
            sim.set_inputs(stim)
            assert sim.read_bus("q", data_width) == data
            assert sim.value("err") == 0

    @pytest.mark.parametrize("name,data_width,check_bits",
                             [("c499", 32, 6), ("c1908", 16, 5)])
    def test_single_error_corrected(self, name, data_width, check_bits):
        netlist = iscas_netlist(name)
        sim = NetlistSimulator(netlist)
        rng = np.random.default_rng(1)
        for _ in range(4):
            data = int(rng.integers(0, 1 << data_width))
            checks = self.encode(netlist, data_width, check_bits, data)
            flip = int(rng.integers(0, data_width))
            corrupted = data ^ (1 << flip)
            stim = sim.drive_bus("d", data_width, corrupted)
            stim.update(sim.drive_bus("chk", check_bits, checks))
            if "p_all" in netlist.inputs:
                stim["p_all"] = bin(data).count("1") & 1
            sim.set_inputs(stim)
            assert sim.read_bus("q", data_width) == data
            assert sim.value("err") == 1

    def test_c1355_equivalent_to_c499(self):
        report = check_netlists_equivalent(c499(), c1355(), vectors=64,
                                           seed=4)
        assert report.equivalent

    def test_c1355_has_no_xor(self):
        cells = c1355().stats()["cells"]
        assert "xor" not in cells
        assert cells["nand"] > 100


class TestC880Alu:
    @pytest.fixture(scope="class")
    def sim(self):
        return NetlistSimulator(c880())

    @pytest.mark.parametrize("ctl,fn", [
        (0, lambda a, b: (a + b) & 0xFF),   # add
        (1, lambda a, b: (a - b) & 0xFF),   # subtract
        (2, lambda a, b: a & b),            # and
        (3, lambda a, b: a | b),            # or
        (4, lambda a, b: a ^ b),            # xor
        (5, lambda a, b: a),                # pass-through A
        (6, lambda a, b: b),                # pass-through B
        (7, lambda a, b: b),                # pass-through B
    ])
    def test_operations(self, sim, ctl, fn):
        rng = np.random.default_rng(ctl)
        for _ in range(6):
            a = int(rng.integers(0, 256))
            b = int(rng.integers(0, 256))
            stim = sim.drive_bus("a", 8, a)
            stim.update(sim.drive_bus("b", 8, b))
            stim.update(sim.drive_bus("ctl", 3, ctl))
            sim.set_inputs(stim)
            assert sim.read_bus("y", 8) == fn(a, b), (ctl, a, b)

    def test_zero_flag(self, sim):
        stim = sim.drive_bus("a", 8, 0)
        stim.update(sim.drive_bus("b", 8, 0))
        stim.update(sim.drive_bus("ctl", 3, 0))
        sim.set_inputs(stim)
        assert sim.value("zero") == 1


class TestC6288Multiplier:
    def test_multiplies(self):
        sim = NetlistSimulator(c6288())
        rng = np.random.default_rng(3)
        cases = [(0, 0), (1, 1), (65535, 65535), (12345, 333)]
        cases += [(int(rng.integers(0, 1 << 16)), int(rng.integers(0, 1 << 16)))
                  for _ in range(4)]
        for a, b in cases:
            stim = sim.drive_bus("a", 16, a)
            stim.update(sim.drive_bus("b", 16, b))
            sim.set_inputs(stim)
            assert sim.read_bus("p", 32) == a * b, (a, b)


class TestObfuscatedInstances:
    """Table III setting: obfuscation must preserve each benchmark."""

    @pytest.mark.parametrize("name", ["c432", "c499", "c880", "c1908"])
    def test_obfuscated_equivalent(self, name):
        base = iscas_netlist(name)
        for seed in (0, 1):
            transformed = obfuscate(base, seed=seed, strength=2)
            report = check_netlists_equivalent(base, transformed,
                                               vectors=24, seed=seed)
            assert report.equivalent, name
