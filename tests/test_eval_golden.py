"""Golden-file regression test for the evaluation report.

``tests/data/eval_report_golden.json`` is the full report (minus the
wall-clock ``timings`` section) of a tiny, fully seeded evaluation run
with an untrained model.  The runner must reproduce it **field for
field**: any metric drift — a transform emitting different structure, a
featurizer change, a scoring change, a serialization change — shows up
as a reviewable diff against the fixture instead of silently shifting
the numbers.

When a change is *intentional*, regenerate the fixture and commit the
diff alongside the change::

    PYTHONPATH=src python tests/test_eval_golden.py regenerate
"""

import json
import sys
from pathlib import Path

from repro.eval import EvalConfig, run_evaluation

GOLDEN_PATH = Path(__file__).parent / "data" / "eval_report_golden.json"

#: The fixture's exact configuration — fully seeded, untrained (model
#: weights come from the seed alone), single-process extraction.
#: ``counter8`` is the one sequential family: it keeps the
#: registers-only attack scenarios (retime / fsm_reencode) populated.
GOLDEN_CONFIG = dict(
    families=("adder8", "cmp8", "counter8"), holdouts=("satadd8",),
    corpus_instances=2, suspects_per_design=1,
    epochs=0, allow_untrained=True,
    equivalence_checks=1, equivalence_vectors=8,
    seed=1, jobs=1)

#: The staged-attack scenarios introduced with report schema v2.
ATTACK_SCENARIOS = ("tech_remap", "retime", "fsm_reencode", "wrapper",
                    "trojan")


def current_report_dict():
    report = run_evaluation(EvalConfig(**GOLDEN_CONFIG))
    data = report.as_dict()
    data.pop("timings")  # the one legitimately non-deterministic section
    return data


def test_report_matches_golden_field_for_field():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = current_report_dict()
    assert current == golden, (
        "evaluation report drifted from tests/data/eval_report_golden.json"
        " — if the change is intentional, regenerate with:\n"
        "  PYTHONPATH=src python tests/test_eval_golden.py regenerate")


def test_golden_schema_version_is_v2():
    """v2 = staged-attack scenarios with provenance chains."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["schema_version"] == 2


def test_golden_attack_scenario_labels():
    """Label counts of the staged-attack scenarios, field for field."""
    golden = json.loads(GOLDEN_PATH.read_text())
    scenarios = golden["scenarios"]
    for name in ATTACK_SCENARIOS:
        assert name in scenarios, f"golden is missing scenario {name!r}"
    families = GOLDEN_CONFIG["families"]
    # Attacks needing registers only apply to the sequential family.
    sequential = ("counter8",)
    expected_counts = {
        "tech_remap": len(families), "wrapper": len(families),
        "trojan": len(families),
        "retime": len(sequential), "fsm_reencode": len(sequential)}
    for name, count in expected_counts.items():
        block = scenarios[name]
        assert block["suspects"] == count
        assert block["pirated"] == count, \
            f"{name}: every staged-attack suspect is a pirated copy"
    assert scenarios["trojan"]["semantics_preserving"] is False
    for name in ("tech_remap", "retime", "fsm_reencode", "wrapper"):
        assert scenarios[name]["semantics_preserving"] is True


def test_golden_attack_provenance_fields():
    """Every staged-attack suspect carries a verifiable chain."""
    golden = json.loads(GOLDEN_PATH.read_text())
    for name in ATTACK_SCENARIOS:
        for row in golden["scenarios"][name]["suspect_results"]:
            provenance = row["provenance"]
            assert provenance["attack"] == name
            assert len(provenance["chain_hash"]) == 64
            stages = provenance["stages"]
            assert len(stages) >= 2, "attacks are multi-stage flows"
            for record in stages:
                assert set(record) >= {"stage", "seed", "gates",
                                       "artifact_sha256"}
            assert row["true_design"] in GOLDEN_CONFIG["families"]
            assert row["pirated"] is True


def test_golden_serialization_is_canonical():
    """The checked-in fixture is byte-stable under its own dump rules."""
    golden_text = GOLDEN_PATH.read_text()
    reserialized = json.dumps(json.loads(golden_text), indent=1,
                              sort_keys=True) + "\n"
    assert golden_text == reserialized


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "regenerate":
        GOLDEN_PATH.write_text(json.dumps(current_report_dict(), indent=1,
                                          sort_keys=True) + "\n")
        print(f"regenerated {GOLDEN_PATH}")
    else:
        print(__doc__)
