"""Tests for netlist container, cells, builder, and Verilog I/O."""

import pytest

from repro.errors import NetlistError
from repro.netlist import (
    CONST0,
    CONST1,
    DFF,
    Netlist,
    NetlistBuilder,
    cell,
    read_netlist,
    write_netlist,
)
from repro.sim import NetlistSimulator, check_netlists_equivalent


class TestCells:
    @pytest.mark.parametrize("name,inputs,expected", [
        ("and", [1, 1], 1), ("and", [1, 0], 0),
        ("or", [0, 0], 0), ("or", [1, 0], 1),
        ("xor", [1, 1], 0), ("xor", [1, 0], 1),
        ("xnor", [1, 1], 1),
        ("nand", [1, 1], 0), ("nor", [0, 0], 1),
        ("not", [1], 0), ("buf", [0], 0),
        ("mux", [1, 0, 0], 1), ("mux", [1, 0, 1], 0),
    ])
    def test_evaluation(self, name, inputs, expected):
        assert cell(name).evaluate(inputs) == expected

    def test_multi_input_gates(self):
        assert cell("and").evaluate([1, 1, 1, 1]) == 1
        assert cell("xor").evaluate([1, 1, 1]) == 1

    def test_arity_check(self):
        with pytest.raises(NetlistError):
            cell("not").check_arity(2)
        with pytest.raises(NetlistError):
            cell("mux").check_arity(2)

    def test_unknown_cell(self):
        with pytest.raises(NetlistError):
            cell("latch")


class TestNetlistStructure:
    def half_adder(self):
        builder = NetlistBuilder("ha")
        builder.inputs("a", "b")
        builder.outputs("s", "c")
        builder.xor_("a", "b", out="s")
        builder.and_("a", "b", out="c")
        return builder.build()

    def test_validate_passes(self):
        self.half_adder()

    def test_duplicate_input_rejected(self):
        net = Netlist("m")
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.add_input("a")

    def test_multiple_drivers_rejected(self):
        net = Netlist("m", inputs=["a"], outputs=["y"])
        net.add_gate("buf", "y", ["a"])
        net.add_gate("not", "y", ["a"])
        with pytest.raises(NetlistError):
            net.validate()

    def test_undriven_net_rejected(self):
        net = Netlist("m", inputs=["a"], outputs=["y"])
        net.add_gate("and", "y", ["a", "ghost"])
        with pytest.raises(NetlistError):
            net.validate()

    def test_driven_input_rejected(self):
        net = Netlist("m", inputs=["a"], outputs=["y"])
        net.add_gate("buf", "a", ["a"])
        net.add_gate("buf", "y", ["a"])
        with pytest.raises(NetlistError):
            net.validate()

    def test_levelize_orders_dependencies(self):
        netlist = self.half_adder()
        order = netlist.levelize()
        assert [g.cell for g in order] == ["xor", "and"]

    def test_levelize_detects_cycle(self):
        net = Netlist("m", inputs=["a"], outputs=["y"])
        net.add_gate("and", "x", ["a", "y"])
        net.add_gate("buf", "y", ["x"])
        with pytest.raises(NetlistError):
            net.levelize()

    def test_dff_breaks_cycle(self):
        builder = NetlistBuilder("t")
        builder.inputs("clk")
        builder.outputs("q")
        builder.not_("q", out="nq")
        builder.dff_("nq", "clk", out="q")
        netlist = builder.build()
        netlist.levelize()  # must not raise: q comes from a register

    def test_stats(self):
        stats = self.half_adder().stats()
        assert stats["gates"] == 2
        assert stats["cells"] == {"xor": 1, "and": 1}

    def test_copy_is_deep(self):
        original = self.half_adder()
        clone = original.copy()
        clone.gates[0].inputs[0] = "zzz"
        assert original.gates[0].inputs[0] == "a"

    def test_dff_needs_two_inputs(self):
        net = Netlist("m")
        with pytest.raises(NetlistError):
            net.add_gate(DFF, "q", ["d"])

    def test_clock_recorded(self):
        builder = NetlistBuilder("t")
        builder.inputs("clk", "d")
        builder.outputs("q")
        builder.dff_("d", "clk", out="q")
        assert "clk" in builder.netlist.clocks


class TestBuilderHelpers:
    def test_fresh_nets_unique(self):
        builder = NetlistBuilder("m")
        names = {builder.net() for _ in range(100)}
        assert len(names) == 100

    def test_ripple_adder_adds(self):
        builder = NetlistBuilder("add4")
        a = builder.input_bus("a", 4)
        b = builder.input_bus("b", 4)
        sums, carry = builder.ripple_adder(a, b)
        for i, s in enumerate(sums):
            builder.buf_(s, out=builder.netlist.add_output(f"s_{i}"))
        builder.buf_(carry, out=builder.netlist.add_output("cout"))
        sim = NetlistSimulator(builder.build())
        for x, y in [(3, 5), (15, 1), (9, 9), (0, 0)]:
            stim = {}
            stim.update(sim.drive_bus("a", 4, x))
            stim.update(sim.drive_bus("b", 4, y))
            sim.set_inputs(stim)
            total = sim.read_bus("s", 4) | (sim.value("cout") << 4)
            assert total == x + y

    def test_mux_bus(self):
        builder = NetlistBuilder("m")
        a = builder.input_bus("a", 2)
        b = builder.input_bus("b", 2)
        builder.inputs("sel")
        outs = builder.mux_bus(a, b, "sel")
        for i, net in enumerate(outs):
            builder.buf_(net, out=builder.netlist.add_output(f"y_{i}"))
        sim = NetlistSimulator(builder.build())
        sim.set_inputs({"a_0": 1, "a_1": 0, "b_0": 0, "b_1": 1, "sel": 0})
        assert sim.read_bus("y", 2) == 0b01
        sim.set_inputs({"sel": 1})
        assert sim.read_bus("y", 2) == 0b10

    def test_adder_width_mismatch(self):
        builder = NetlistBuilder("m")
        with pytest.raises(NetlistError):
            builder.ripple_adder(["a"], ["b", "c"])


class TestVerilogIO:
    def full_netlist(self):
        builder = NetlistBuilder("rt")
        builder.inputs("clk", "a", "b", "sel")
        builder.outputs("q", "y")
        t = builder.xor_(a="a", b="b") if False else builder.xor_("a", "b")
        m = builder.mux_("a", t, "sel")
        builder.dff_(m, "clk", out="q")
        builder.or_("a", CONST1, out="y")
        return builder.build()

    def test_write_is_self_contained(self):
        text = write_netlist(self.full_netlist())
        # Muxes are ternary assigns and flops native always blocks (both
        # re-synthesize to the original cells); no library modules.
        assert " ? " in text
        assert "always @(posedge" in text
        assert "MUX2" not in text and "DFF_POS" not in text
        assert "1'b1" in text

    def test_roundtrip_preserves_behavior(self):
        original = self.full_netlist()
        recovered = read_netlist(write_netlist(original))
        report = check_netlists_equivalent(original, recovered, vectors=32)
        assert report.equivalent

    def test_roundtrip_preserves_structure(self):
        original = self.full_netlist()
        recovered = read_netlist(write_netlist(original))
        assert recovered.stats()["cells"] == original.stats()["cells"]
        assert set(recovered.inputs) == set(original.inputs)

    def test_written_netlist_flows_through_dfg_pipeline(self):
        from repro.dataflow import dfg_from_verilog
        graph = dfg_from_verilog(write_netlist(self.full_netlist()))
        assert len(graph) > 5
        labels = set(graph.labels())
        assert "dff" in labels

    def test_reader_rejects_bus_ports(self):
        with pytest.raises(NetlistError):
            read_netlist("module m(input [3:0] a, output y); "
                         "buf (y, a[0]); endmodule")

    def test_reader_rejects_unknown_submodule(self):
        with pytest.raises(NetlistError):
            read_netlist("module m(input a, output y); "
                         "WEIRD u (.x(a), .y(y)); endmodule")
