"""Fingerprint index: cache behavior, parallel extraction, top-k queries."""

import json

import numpy as np
import pytest

from repro.core import GNN4IP, cosine_similarity_np
from repro.dataflow import DFGPipeline, dfg_from_verilog
from repro.dataflow.serialize import dfg_from_dict, dfg_to_dict, dumps, loads
from repro.errors import DataflowError, IndexStoreError
from repro.index import (
    CorpusExtractor,
    DFGCache,
    EmbeddingService,
    FingerprintIndex,
    build_index,
    content_key,
    model_fingerprint,
)

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

SUB = """
module sub(input [3:0] a, input [3:0] b, output [4:0] d);
  assign d = a - b;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""

XOR_CHAIN = """
module xchain(input [3:0] a, input [3:0] b, output x);
  assign x = ^(a ^ b);
endmodule
"""

BROKEN = "module oops(input a endmodule"

SOURCES = {"adder.v": ADDER, "sub.v": SUB, "mux.v": MUX,
           "xchain.v": XOR_CHAIN}


@pytest.fixture
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    for name, text in SOURCES.items():
        (root / name).write_text(text)
    return root


@pytest.fixture
def corpus_paths(corpus_dir):
    return sorted(corpus_dir.glob("*.v"))


def graph_signature(graph):
    """Structure tuple for exact graph comparison."""
    return (graph.name,
            tuple((n.kind, n.label, n.name) for n in graph.nodes),
            tuple((src, dst) for src in range(len(graph))
                  for dst in graph.successors(src)))


class TestSerialize:
    def test_round_trip(self):
        graph = dfg_from_verilog(ADDER)
        again = dfg_from_dict(dfg_to_dict(graph))
        assert graph_signature(again) == graph_signature(graph)

    def test_bytes_round_trip(self):
        graph = dfg_from_verilog(MUX)
        assert graph_signature(loads(dumps(graph))) == \
            graph_signature(graph)

    def test_corrupt_bytes_raise(self):
        with pytest.raises(DataflowError):
            loads(b"not a dfg blob")

    def test_bad_version_raises(self):
        payload = dfg_to_dict(dfg_from_verilog(ADDER))
        payload["version"] = 999
        with pytest.raises(DataflowError):
            dfg_from_dict(payload)


class TestContentKey:
    def test_stable(self):
        key = content_key("module m; endmodule", "trim=1")
        assert key == content_key("module m; endmodule", "trim=1")
        assert len(key) == 64

    def test_sensitive_to_source_options_top(self):
        base = content_key("module m; endmodule", "trim=1")
        assert content_key("module n; endmodule", "trim=1") != base
        assert content_key("module m; endmodule", "trim=0") != base
        assert content_key("module m; endmodule", "trim=1", top="m") != base


class TestCache:
    def test_miss_then_hit(self, tmp_path, corpus_paths):
        cache = DFGCache(tmp_path / "cache")
        extractor = CorpusExtractor(cache=cache, jobs=1)
        first = extractor.extract_paths(corpus_paths)
        assert cache.stats.misses == len(corpus_paths)
        assert cache.stats.stores == len(corpus_paths)
        assert cache.stats.hits == 0

        cache.stats.__init__()
        second = extractor.extract_paths(corpus_paths)
        assert cache.stats.hits == len(corpus_paths)
        assert cache.stats.misses == 0
        assert all(r.cached for r in second)
        for a, b in zip(first, second):
            assert graph_signature(a.graph) == graph_signature(b.graph)

    def test_corrupt_entry_recovers(self, tmp_path, corpus_paths):
        cache = DFGCache(tmp_path / "cache")
        extractor = CorpusExtractor(cache=cache, jobs=1)
        first = extractor.extract_paths(corpus_paths)

        # Truncate one blob; the entry must heal on the next run.
        victim = cache.blob_path(first[0].key)
        victim.write_bytes(b"\x00garbage")
        cache.stats.__init__()
        second = extractor.extract_paths(corpus_paths)
        assert cache.stats.corrupt == 1
        assert cache.stats.hits == len(corpus_paths) - 1
        assert graph_signature(second[0].graph) == \
            graph_signature(first[0].graph)
        # Healed: third run hits everything.
        cache.stats.__init__()
        extractor.extract_paths(corpus_paths)
        assert cache.stats.hits == len(corpus_paths)

    def test_no_cache(self, corpus_paths):
        extractor = CorpusExtractor(cache=None, jobs=1)
        results = extractor.extract_paths(corpus_paths)
        assert all(r.ok and not r.cached for r in results)

    def test_entry_count_and_bytes(self, tmp_path, corpus_paths):
        cache = DFGCache(tmp_path / "cache")
        CorpusExtractor(cache=cache, jobs=1).extract_paths(corpus_paths)
        assert cache.entry_count() == len(corpus_paths)
        assert cache.disk_bytes() == cache.stats.store_bytes > 0


class TestCorpusExtractor:
    def test_parallel_matches_serial(self, corpus_paths):
        serial = CorpusExtractor(jobs=1).extract_paths(corpus_paths)
        parallel = CorpusExtractor(jobs=3).extract_paths(corpus_paths)
        assert [r.path for r in parallel] == [r.path for r in serial]
        for a, b in zip(serial, parallel):
            assert graph_signature(a.graph) == graph_signature(b.graph)

    def test_error_isolation(self, corpus_dir):
        (corpus_dir / "broken.v").write_text(BROKEN)
        paths = sorted(corpus_dir.glob("*.v"))
        for jobs in (1, 2):
            results = CorpusExtractor(jobs=jobs).extract_paths(paths)
            by_name = {r.name: r for r in results}
            assert not by_name["broken"].ok
            assert "Error" in by_name["broken"].error
            assert by_name["broken"].graph is None
            ok = [r for r in results if r.ok]
            assert len(ok) == len(paths) - 1

    def test_matches_single_file_pipeline(self, corpus_paths):
        results = CorpusExtractor(jobs=2).extract_paths(corpus_paths)
        pipeline = DFGPipeline()
        for result in results:
            direct = pipeline.extract_file(result.path)
            assert graph_signature(result.graph) == graph_signature(direct)

    def test_respects_do_trim(self, corpus_paths):
        trimmed = CorpusExtractor(jobs=1).extract_paths(corpus_paths[:1])
        raw = CorpusExtractor(pipeline=DFGPipeline(do_trim=False),
                              jobs=1).extract_paths(corpus_paths[:1])
        assert len(raw[0].graph) >= len(trimmed[0].graph)
        assert raw[0].key != trimmed[0].key


class TestModelFingerprint:
    def test_deterministic_and_weight_sensitive(self):
        a = model_fingerprint(GNN4IP(seed=0))
        assert a == model_fingerprint(GNN4IP(seed=0))
        assert a != model_fingerprint(GNN4IP(seed=1))
        assert a != model_fingerprint(GNN4IP(seed=0, hidden=8))

    def test_delta_does_not_affect_fingerprint(self):
        """Embeddings ignore delta, so fingerprints must too — retuning
        the boundary keeps stored embeddings reusable."""
        a = GNN4IP(seed=0)
        b = GNN4IP(seed=0, delta=0.9)
        assert model_fingerprint(a) == model_fingerprint(b)


class TestFingerprintIndex:
    @pytest.fixture
    def built(self, tmp_path, corpus_paths):
        model = GNN4IP(seed=0)
        index, report = build_index(tmp_path / "idx", corpus_paths, model,
                                    jobs=1)
        return index, report, model

    def test_build_report(self, built):
        index, report, _ = built
        assert report["embedded"] == len(SOURCES)
        assert report["failures"] == 0
        assert len(index) == len(SOURCES)

    def test_load_round_trip(self, built, tmp_path):
        index, _, _ = built
        loaded = FingerprintIndex.load(tmp_path / "idx")
        np.testing.assert_array_equal(loaded.matrix, index.matrix)
        assert loaded.model_hash == index.model_hash
        assert [e["name"] for e in loaded.entries] == \
            [e["name"] for e in index.entries]

    def test_top_k_matches_brute_force(self, built, corpus_paths):
        """Index scores must equal pairwise model.similarity exactly."""
        index, _, model = built
        for path in corpus_paths:
            suspect = DFGPipeline().extract_file(path)
            hits = index.query_graph(suspect, model, k=len(index))
            brute = []
            for other in corpus_paths:
                graph = DFGPipeline().extract_file(other)
                brute.append((other.stem, model.similarity(suspect, graph)))
            brute.sort(key=lambda item: -item[1])
            assert [h.name for h in hits] == [name for name, _ in brute]
            # The store keeps unit float32 rows and scores in float32
            # (~1e-7 relative), and cosine_similarity_np adds eps inside
            # the norm product, so scores agree to ~1e-6, not bit-exactly.
            for hit, (_, score) in zip(hits, brute):
                assert hit.score == pytest.approx(score, abs=5e-6)
                assert hit.is_piracy == (hit.score > model.delta)

    def test_query_rejects_foreign_model(self, built):
        index, _, _ = built
        with pytest.raises(IndexStoreError):
            index.query_graph(dfg_from_verilog(ADDER), GNN4IP(seed=7))

    def test_lookup_key(self, built, corpus_paths):
        index, _, model = built
        frontend = index.frontend()
        cleaned = frontend.preprocess_text(corpus_paths[0].read_text())
        key = frontend.content_key(cleaned)
        stored = index.lookup_key(key)
        assert stored is not None
        direct = model.encoder.embed(frontend.extract_file(corpus_paths[0]))
        # v3 stores unit-normalized float32 rows; direction must match.
        unit = direct / np.linalg.norm(direct)
        np.testing.assert_allclose(stored, unit, rtol=1e-6, atol=1e-7)
        assert index.lookup_key("0" * 64) is None

    def test_failures_are_recorded(self, tmp_path, corpus_dir):
        (corpus_dir / "broken.v").write_text(BROKEN)
        paths = sorted(corpus_dir.glob("*.v"))
        index, report = build_index(tmp_path / "idx2", paths,
                                    GNN4IP(seed=0), jobs=1)
        assert report["failures"] == 1
        failed = [e for e in index.entries if e["status"] == "error"]
        assert len(failed) == 1
        assert failed[0]["name"] == "broken"
        assert len(index) == len(paths) - 1

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(IndexStoreError):
            FingerprintIndex.load(tmp_path / "nothing")

    def test_load_detects_truncated_shard(self, built, tmp_path):
        root = tmp_path / "idx"
        shard = next((root / "shards").glob("shard-*.f32"))
        shard.write_bytes(shard.read_bytes()[:-8])
        with pytest.raises(IndexStoreError, match="truncated"):
            FingerprintIndex.load(root)

    def test_load_detects_row_count_mismatch(self, built, tmp_path):
        root = tmp_path / "idx"
        meta = json.loads((root / "meta.json").read_text())
        meta["store"]["shards"][0]["rows"] += 1
        (root / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(IndexStoreError):
            FingerprintIndex.load(root)

    def test_warm_rebuild_hits_cache(self, built, tmp_path, corpus_paths):
        _, report, model = built
        assert report["cache"]["hits"] == 0
        _, warm = build_index(tmp_path / "idx", corpus_paths, model, jobs=1)
        assert warm["cache"]["hits"] == len(SOURCES)
        assert warm["cache"]["misses"] == 0

    def test_stats(self, built):
        index, _, _ = built
        stats = index.stats()
        assert stats["entries"] == len(SOURCES)
        assert stats["embedded"] == len(SOURCES)
        assert stats["designs"] == len(SOURCES)
        assert stats["cache_entries"] == len(SOURCES)
        assert stats["hidden"] == 16


class TestEmbeddingService:
    def test_matches_per_graph_embed(self):
        model = GNN4IP(seed=3)
        graphs = [dfg_from_verilog(text) for text in SOURCES.values()]
        service = EmbeddingService(model, batch_size=2)
        batched = service.embed_graphs(graphs)
        single = np.stack([model.encoder.embed(g) for g in graphs])
        np.testing.assert_allclose(batched, single, rtol=1e-9, atol=1e-15)

    def test_embed_one(self):
        model = GNN4IP(seed=3)
        graph = dfg_from_verilog(ADDER)
        np.testing.assert_allclose(
            EmbeddingService(model).embed_one(graph),
            model.encoder.embed(graph), rtol=1e-9, atol=1e-15)

    def test_fingerprint_cached(self):
        service = EmbeddingService(GNN4IP(seed=0))
        assert service.fingerprint == service.fingerprint
        assert service.fingerprint == model_fingerprint(service.model)
