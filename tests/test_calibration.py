"""The calibrated decision subsystem (:mod:`repro.calib`).

Covers the fitters' numerics (Platt standardization edge cases,
isotonic monotonicity under PAV), the loud refusals (too little data,
single-class data, stale artifacts), artifact round-trips, evidence
assembly, hard-negative mining, and the end-to-end wiring: a persisted
``calibration.json`` must annotate ``Session.query`` /
``Session.compare`` results and serve bit-identical probabilities
in-process and through an N-worker scatter-gather server.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.api import Corpus, Session
from repro.calib import (
    ARTIFACT_NAME,
    EVIDENCE_FEATURES,
    MIN_PAIRS,
    Calibration,
    EvidenceCalibrator,
    IsotonicCalibrator,
    PlattCalibrator,
    ScoreCalibrator,
    balanced_threshold,
    expected_calibration_error,
    match_evidence,
    mine_hard_negatives,
    reliability_bins,
    threshold_sweep,
)
from repro.client import AsyncClient
from repro.core.dataset import GraphRecord
from repro.core.gnn4ip import GNN4IP
from repro.core.matcher import IPMatcher
from repro.designs import rtl_records
from repro.errors import CalibrationError
from repro.index.shards import unit_rows_f32, write_shard
from repro.index.store import FORMAT_VERSION
from repro.server import ReproServer

SEED = 23
HIDDEN = 12
N = 90
SHARDS = 3


def _separable_scores(rng, n=40):
    neg = rng.normal(0.25, 0.08, n)
    pos = rng.normal(0.85, 0.05, n)
    scores = np.concatenate([neg, pos])
    labels = np.concatenate([np.zeros(n), np.ones(n)])
    return scores, labels


def _synthetic_evidence(rng, suspects=32, k=5):
    """Separable per-suspect evidence blocks: pirated suspects carry one
    high-score, high-margin row."""
    evidence, match_labels, pirated = [], [], []
    for i in range(suspects):
        is_pirated = i % 2 == 0
        block = rng.normal(0.3, 0.1, (k, len(EVIDENCE_FEATURES)))
        labels = np.zeros(k)
        if is_pirated:
            block[0, 0] = rng.normal(0.92, 0.02)   # score
            block[0, 3] = rng.normal(0.45, 0.05)   # margin
            labels[0] = 1.0
        evidence.append(block)
        match_labels.append(labels)
        pirated.append(float(is_pirated))
    return evidence, match_labels, np.array(pirated)


class _FakeMatch:
    def __init__(self, design, score, coverage=None, struct=None):
        self.design = design
        self.score = score
        self.coverage = coverage
        self.struct = struct


# -- report helpers ----------------------------------------------------------

class TestReportHelpers:
    def test_reliability_bins_partition_mass(self):
        probs = np.array([0.05, 0.15, 0.95, 0.85, 0.5])
        labels = np.array([0, 0, 1, 1, 1])
        bins = reliability_bins(probs, labels)
        assert sum(b["count"] for b in bins) == len(probs)
        for b in bins:
            assert b["low"] <= b["confidence"] <= b["high"] + 1e-9
            assert 0.0 <= b["accuracy"] <= 1.0

    def test_ece_perfect_and_inverted(self):
        labels = np.array([0.0] * 50 + [1.0] * 50)
        assert expected_calibration_error(labels, labels) == 0.0
        assert expected_calibration_error(1.0 - labels, labels) \
            == pytest.approx(1.0)
        assert expected_calibration_error(np.array([]), np.array([])) \
            is None

    def test_threshold_sweep_grid(self):
        rng = np.random.default_rng(SEED)
        scores, labels = _separable_scores(rng)
        sweep = threshold_sweep(scores.clip(0, 1), labels)
        assert [p["threshold"] for p in sweep] == \
            pytest.approx(list(np.linspace(0.0, 1.0, 21)))
        # At t=0 everything is flagged; at t=1 nothing above 1.0 is.
        assert sweep[0]["recall"] == 1.0 and sweep[0]["fpr"] == 1.0
        assert sweep[-1]["recall"] == 0.0

    def test_balanced_threshold_separable(self):
        rng = np.random.default_rng(SEED)
        scores, labels = _separable_scores(rng)
        t = balanced_threshold(scores, labels)
        flagged = scores >= t
        fpr = flagged[labels == 0].mean()
        fnr = 1.0 - flagged[labels == 1].mean()
        assert max(fpr, fnr) <= 0.05

    def test_balanced_threshold_single_class_falls_back(self):
        assert balanced_threshold(np.array([0.2, 0.8]),
                                  np.array([1.0, 1.0])) == 0.5


# -- core fitters ------------------------------------------------------------

class TestPlatt:
    def test_separates_and_round_trips(self):
        rng = np.random.default_rng(SEED)
        scores, labels = _separable_scores(rng)
        cal = PlattCalibrator.fit(scores[:, None], labels)
        probs = cal.predict(scores[:, None])
        assert probs[labels == 1].min() > probs[labels == 0].max()
        again = PlattCalibrator.from_dict(
            json.loads(json.dumps(cal.to_dict())))
        assert np.array_equal(again.predict(scores[:, None]), probs)

    def test_constant_feature_degrades_to_base_rate(self):
        # A zero-variance column must not divide by zero: the fit
        # degrades to an intercept-only model of the base rate.
        X = np.full((20, 1), 0.7)
        y = np.array([1.0] * 5 + [0.0] * 15)
        cal = PlattCalibrator.fit(X, y)
        probs = cal.predict(X)
        assert np.all(np.isfinite(probs))
        assert probs[0] == pytest.approx(0.25, abs=0.05)
        assert np.ptp(probs) == 0.0


class TestIsotonic:
    def test_monotone_by_construction(self):
        rng = np.random.default_rng(SEED)
        scores = rng.uniform(0, 1, 200)
        labels = (rng.uniform(0, 1, 200) < scores).astype(float)
        cal = IsotonicCalibrator.fit(scores, labels)
        grid = np.linspace(-0.5, 1.5, 400)
        out = cal.predict(grid)
        assert np.all(np.diff(out) >= -1e-12)
        assert np.all((out >= 0.0) & (out <= 1.0))

    def test_tied_scores_pool(self):
        scores = np.array([0.5, 0.5, 0.5, 0.9])
        labels = np.array([0.0, 1.0, 0.0, 1.0])
        cal = IsotonicCalibrator.fit(scores, labels)
        assert cal.predict([0.5])[0] == pytest.approx(1 / 3)

    def test_single_distinct_score_is_constant(self):
        cal = IsotonicCalibrator.fit(np.full(10, 0.4),
                                     np.array([1.0] * 3 + [0.0] * 7))
        assert np.array_equal(cal.predict([0.0, 0.4, 1.0]),
                              np.full(3, 0.3))


class TestScoreCalibrator:
    def test_refuses_too_few_pairs(self):
        with pytest.raises(CalibrationError, match="refusing"):
            ScoreCalibrator.fit(np.linspace(0, 1, MIN_PAIRS - 1),
                                np.array([0.0, 1.0] * 3 + [0.0]))

    def test_refuses_single_class(self):
        with pytest.raises(CalibrationError, match="same label"):
            ScoreCalibrator.fit(np.linspace(0, 1, 20), np.ones(20))

    def test_refuses_unknown_method(self):
        with pytest.raises(CalibrationError, match="unknown"):
            ScoreCalibrator.fit(np.linspace(0, 1, 20),
                                np.array([0.0, 1.0] * 10),
                                method="beta")

    def test_constant_scores_survive_both_methods(self):
        scores = np.full(20, 0.6)
        labels = np.array([0.0, 1.0] * 10)
        for method in ("platt", "isotonic"):
            cal = ScoreCalibrator.fit(scores, labels, method=method,
                                      bootstrap=4)
            probs = cal.probability(scores)
            assert np.all(np.isfinite(probs))

    @pytest.mark.parametrize("method", ["platt", "isotonic"])
    def test_band_contains_point_and_round_trips(self, method):
        rng = np.random.default_rng(SEED)
        scores, labels = _separable_scores(rng)
        cal = ScoreCalibrator.fit(scores, labels, method=method,
                                  bootstrap=8, seed=1)
        probe = np.linspace(0, 1, 11)
        low, high = cal.interval(probe)
        assert np.all(low <= high + 1e-12)
        again = ScoreCalibrator.from_dict(
            json.loads(json.dumps(cal.to_dict())))
        assert np.array_equal(again.probability(probe),
                              cal.probability(probe))
        assert again.threshold == cal.threshold


class TestEvidenceCalibrator:
    def test_separates_and_round_trips(self):
        rng = np.random.default_rng(SEED)
        evidence, match_labels, pirated = _synthetic_evidence(rng)
        cal = EvidenceCalibrator.fit(evidence, match_labels, pirated,
                                     delta=0.5, bootstrap=4, seed=0)
        probs = np.array([cal.probability(ev) for ev in evidence])
        assert ((probs >= cal.threshold) == pirated.astype(bool)).all()
        again = EvidenceCalibrator.from_dict(
            json.loads(json.dumps(cal.to_dict())))
        assert np.array_equal(
            np.array([again.probability(ev) for ev in evidence]), probs)

    def test_suspect_probability_is_top_match_probability(self):
        rng = np.random.default_rng(SEED)
        evidence, match_labels, pirated = _synthetic_evidence(rng)
        cal = EvidenceCalibrator.fit(evidence, match_labels, pirated,
                                     delta=0.5, bootstrap=0)
        per_match = cal.match_probabilities(evidence[0])
        assert cal.probability(evidence[0]) \
            == pytest.approx(per_match.max())
        low, high = cal.match_intervals(evidence[0])
        assert np.array_equal(low, per_match)  # no replicas: collapsed

    def test_refuses_single_class(self):
        rng = np.random.default_rng(SEED)
        evidence, match_labels, _ = _synthetic_evidence(rng)
        with pytest.raises(CalibrationError, match="same label"):
            EvidenceCalibrator.fit(evidence, match_labels,
                                   np.ones(len(evidence)), delta=0.5)


# -- evidence assembly -------------------------------------------------------

class TestMatchEvidence:
    def test_features(self):
        matches = [_FakeMatch("a", 0.95, coverage=0.8, struct=0.6),
                   _FakeMatch("b", 0.70, struct=0.2),
                   _FakeMatch("a", 0.40)]
        ev = match_evidence(matches, delta=0.5)
        assert ev.shape == (3, len(EVIDENCE_FEATURES))
        row = dict(zip(EVIDENCE_FEATURES, ev[0]))
        assert row["score"] == pytest.approx(0.95)
        assert row["coverage"] == pytest.approx(0.8)
        assert row["struct"] == pytest.approx(0.6)
        # Margin is against the best score of any *other* design.
        assert row["margin"] == pytest.approx(0.95 - 0.70)
        assert row["best"] == pytest.approx(0.95)
        assert row["struct_max"] == pytest.approx(0.6)
        assert row["struct_top2"] == pytest.approx(0.2)
        assert row["frac_above_delta"] == pytest.approx(2 / 3)
        assert row["frac_above_hi"] == pytest.approx(1 / 3)
        # None coverage/struct contribute 0.0, not NaN.
        assert ev[2][1] == 0.0 and ev[2][2] == 0.0

    def test_single_design_margin_floor(self):
        ev = match_evidence([_FakeMatch("a", 0.9)], delta=0.5)
        # No other design in the list: margin bottoms out at score+2.
        assert ev[0][3] == pytest.approx(0.9 + 2.0)

    def test_empty(self):
        assert match_evidence([], delta=0.5).shape \
            == (0, len(EVIDENCE_FEATURES))


# -- the persisted artifact --------------------------------------------------

@pytest.fixture(scope="module")
def fitted_artifact():
    rng = np.random.default_rng(SEED)
    scores, labels = _separable_scores(rng)
    evidence, match_labels, pirated = _synthetic_evidence(rng)
    return Calibration(
        model_hash="deadbeef", index_format=FORMAT_VERSION, level="rtl",
        delta=0.5,
        pair=ScoreCalibrator.fit(scores, labels, bootstrap=4),
        match=EvidenceCalibrator.fit(evidence, match_labels, pirated,
                                     delta=0.5, bootstrap=4),
        info={"suspects": len(pirated)})


class TestCalibrationArtifact:
    def test_requires_a_tier(self):
        with pytest.raises(CalibrationError, match="at least one"):
            Calibration(model_hash="x", index_format=4, level="rtl",
                        delta=0.0)

    def test_save_load_identical_predictions(self, fitted_artifact,
                                             tmp_path):
        path = fitted_artifact.save(tmp_path)
        assert path.name == ARTIFACT_NAME
        loaded = Calibration.load(tmp_path, model_hash="deadbeef",
                                  index_format=FORMAT_VERSION,
                                  level="rtl")
        probe = np.linspace(0, 1, 9)
        assert np.array_equal(loaded.pair.probability(probe),
                              fitted_artifact.pair.probability(probe))
        rng = np.random.default_rng(SEED + 1)
        ev = rng.normal(0.4, 0.2, (4, len(EVIDENCE_FEATURES)))
        assert loaded.match.probability(ev) \
            == fitted_artifact.match.probability(ev)
        assert loaded.match.threshold == fitted_artifact.match.threshold

    @pytest.mark.parametrize("mismatch", [
        {"model_hash": "other"},
        {"index_format": FORMAT_VERSION + 1},
        {"level": "netlist"},
    ])
    def test_refuses_stale_artifact(self, fitted_artifact, tmp_path,
                                    mismatch):
        fitted_artifact.save(tmp_path)
        expect = {"model_hash": "deadbeef",
                  "index_format": FORMAT_VERSION, "level": "rtl"}
        expect.update(mismatch)
        with pytest.raises(CalibrationError, match="stale"):
            Calibration.load(tmp_path, **expect)

    def test_refuses_wrong_schema(self, fitted_artifact, tmp_path):
        blob = fitted_artifact.to_dict()
        blob["schema"] = 999
        (tmp_path / ARTIFACT_NAME).write_text(json.dumps(blob))
        with pytest.raises(CalibrationError, match="schema"):
            Calibration.load(tmp_path)

    def test_refuses_corrupt_json(self, tmp_path):
        (tmp_path / ARTIFACT_NAME).write_text("{not json")
        with pytest.raises(CalibrationError, match="corrupt"):
            Calibration.load(tmp_path)
        with pytest.raises(CalibrationError, match="cannot read"):
            Calibration.load(tmp_path / "missing" / ARTIFACT_NAME)

    def test_annotate_matches_sets_calibrated_verdict(self,
                                                      fitted_artifact):
        from repro.api.types import Match

        matches = [Match(rank=1, name="n", path="p", design="a",
                         score=0.95, is_piracy=True),
                   Match(rank=2, name="m", path="p", design="b",
                         score=0.30, is_piracy=False)]
        fitted_artifact.annotate_matches(matches)
        for m in matches:
            assert 0.0 <= m.probability <= 1.0
            assert m.confidence_low <= m.probability <= m.confidence_high
            assert m.calibrated_piracy is not None
            assert m.verdict == ("PIRACY" if m.calibrated_piracy
                                 else "no piracy")
            assert m.flagged == m.calibrated_piracy

    def test_annotate_comparison(self, fitted_artifact):
        from repro.api.types import Comparison

        comparison = Comparison(score=0.9, delta=0.5, is_piracy=True)
        fitted_artifact.annotate_comparison(comparison)
        assert comparison.probability is not None
        assert comparison.confidence_low <= comparison.probability \
            <= comparison.confidence_high
        payload = comparison.as_dict()
        assert payload["probability"] == comparison.probability
        assert payload["verdict"] == comparison.verdict


# -- hard-negative mining ----------------------------------------------------

def _tiny_records():
    return rtl_records(families=("adder8", "cmp8"),
                       instances_per_design=2, seed=SEED)


class TestHardNegatives:
    def test_mines_cross_design_pairs(self):
        records = _tiny_records()
        model = GNN4IP(seed=SEED)
        mined = mine_hard_negatives(records, model, per_record=1)
        assert mined
        designs = [r.design for r in records]
        for i, j, label in mined:
            assert label == -1
            assert designs[i] != designs[j]
            assert i < j
        # Deterministic.
        assert mined == mine_hard_negatives(records, model, per_record=1)

    def test_disabled_and_degenerate(self):
        records = _tiny_records()
        model = GNN4IP(seed=SEED)
        assert mine_hard_negatives(records, model, per_record=0) == []
        with pytest.raises(CalibrationError, match="at least two"):
            mine_hard_negatives(records[:1], model)


# -- satellite: IPMatcher lazy row stacking ----------------------------------

class TestMatcherLazyStack:
    def test_interleaved_add_match(self):
        records = _tiny_records()
        model = GNN4IP(seed=SEED)
        matcher = IPMatcher(model)
        matcher.add_records(records[:2])
        first = matcher.match(records[0].graph)
        assert len(first) == 2
        assert first[0].score == pytest.approx(1.0)
        # Adds after a match must land in the next match's matrix.
        matcher.add_records(records[2:])
        second = matcher.match(records[0].graph)
        assert len(second) == len(records)
        baseline = IPMatcher(model)
        baseline.add_records(records)
        expected = baseline.match(records[0].graph)
        assert [(m.instance, m.score) for m in second] \
            == [(m.instance, m.score) for m in expected]

    def test_empty_still_raises(self):
        with pytest.raises(Exception, match="empty"):
            IPMatcher(GNN4IP(seed=SEED)).match(_tiny_records()[0].graph)


# -- trainer hook: extra_pairs off must stay bit-identical -------------------

class TestTrainerExtraPairs:
    def test_none_is_bit_identical(self):
        from repro.core import Trainer, build_pair_dataset

        dataset = build_pair_dataset(_tiny_records(), seed=SEED)

        def run(extra_pairs):
            model = GNN4IP(seed=SEED)
            Trainer(model, seed=SEED).fit(dataset, epochs=2,
                                          tune_delta=False,
                                          extra_pairs=extra_pairs)
            return [p.data.copy() for p in model.encoder.parameters()]

        for a, b in zip(run(None), run([])):
            assert np.array_equal(a, b)


# -- end-to-end: annotated queries, serving bit-identity ---------------------

def _write_synthetic_index(root, rows):
    per = len(rows) // SHARDS
    specs = []
    for i in range(SHARDS):
        stop = len(rows) if i == SHARDS - 1 else (i + 1) * per
        specs.append(write_shard(root, i, rows[i * per:stop]))
    entries = [{"name": f"d{i:05d}", "path": f"d{i:05d}.v",
                "key": f"{i:064d}", "design": f"fam{i % 30}",
                "status": "ok"} for i in range(len(rows))]
    table = [{"kind": "design", "name": f"d{i:05d}"}
             for i in range(len(rows))]
    meta = {"version": FORMAT_VERSION, "model_hash": "test",
            "options": {"top": None, "level": "rtl", "use_cache": False},
            "store": {"dtype": "float32", "hidden": HIDDEN,
                      "shards": specs},
            "entries": entries, "rows": table}
    (root / "meta.json").write_text(json.dumps(meta))


@pytest.fixture(scope="module")
def calibrated_index(tmp_path_factory):
    """A synthetic on-disk index with a fitted calibration.json, plus
    labeled probe vectors (positives are near-duplicates of stored
    rows, negatives are random directions)."""
    root = tmp_path_factory.mktemp("calib_idx")
    rng = np.random.default_rng(SEED)
    rows = unit_rows_f32(rng.standard_normal((N, HIDDEN)))
    _write_synthetic_index(root, rows)

    picks = rng.choice(N, size=12, replace=False)
    positives = unit_rows_f32(
        rows[picks] + 0.02 * rng.standard_normal((12, HIDDEN)))
    negatives = unit_rows_f32(rng.standard_normal((12, HIDDEN)))
    probes = np.vstack([positives, negatives]).astype(np.float64)
    labels = np.array([1.0] * 12 + [0.0] * 12)

    session = Session(corpus=Corpus.open(root))
    results = session.query(list(probes), k=5)
    evidence = [match_evidence(list(result), 0.0) for result in results]
    true_names = [f"d{i:05d}" for i in picks] + [None] * 12
    match_labels = [
        np.array([1.0 if (labels[s] and m.name == true_names[s]) else 0.0
                  for m in results[s]])
        for s in range(len(probes))]
    artifact = Calibration(
        model_hash="test", index_format=FORMAT_VERSION, level="rtl",
        delta=0.0,
        pair=ScoreCalibrator.fit(
            [r[0].score for r in results], labels, bootstrap=4),
        match=EvidenceCalibrator.fit(evidence, match_labels, labels,
                                     delta=0.0, bootstrap=4))
    artifact.save(root)
    return root, probes, labels


class TestEndToEnd:
    def test_session_query_is_annotated(self, calibrated_index):
        root, probes, labels = calibrated_index
        session = Session(corpus=Corpus.open(root))
        results = session.query(list(probes), k=5)
        for result, label in zip(results, labels):
            top = result[0]
            assert top.probability is not None
            assert top.confidence_low <= top.probability \
                <= top.confidence_high
            assert top.calibrated_piracy == bool(label)
        # Raw scores and the delta verdicts are untouched by annotation.
        plain = [m.score for m in results[0]]
        assert plain == sorted(plain, reverse=True)

    def test_stale_artifact_refused_on_query(self, calibrated_index,
                                             tmp_path):
        root, probes, _ = calibrated_index
        corpus = Corpus.open(root)
        import shutil

        data = json.loads((root / ARTIFACT_NAME).read_text())
        data["model_hash"] = "someone-elses-model"
        stale = tmp_path / "stale"
        shutil.copytree(root, stale)
        (stale / ARTIFACT_NAME).write_text(json.dumps(data))
        session = Session(corpus=Corpus.open(stale))
        with pytest.raises(CalibrationError, match="stale"):
            session.query(list(probes[:1]), k=3)
        # The healthy index keeps answering.
        assert corpus.calibration() is not None

    def test_calibrate_refits_over_stale_artifact(self, calibrated_index,
                                                  tmp_path, monkeypatch):
        # 'gnn4ip calibrate' is the prescribed fix for a stale
        # artifact, so its fit queries must bypass the stale artifact
        # instead of refusing like a normal query would.
        root, probes, _ = calibrated_index
        import shutil

        healthy = json.loads((root / ARTIFACT_NAME).read_text())
        data = dict(healthy, model_hash="someone-elses-model")
        stale = tmp_path / "stale"
        shutil.copytree(root, stale)
        (stale / ARTIFACT_NAME).write_text(json.dumps(data))
        session = Session(corpus=Corpus.open(stale))

        fresh = Calibration.from_dict(healthy)

        def fake_fit(fit_session, config, bootstrap=0):
            # A stale-refusing query here is exactly the bug.
            fit_session.query(list(probes[:1]), k=3)
            return fresh

        import repro.eval.runner as runner
        monkeypatch.setattr(runner, "fit_session_calibration", fake_fit)
        artifact = session.calibrate(save=False)
        assert artifact is fresh
        # Later queries in the same session use the refit artifact.
        result = session.query(list(probes[:1]), k=3)[0]
        assert all(m.probability is not None for m in result)

    def test_served_probabilities_bit_identical(self, calibrated_index):
        root, probes, _ = calibrated_index
        suspects = [[float(v) for v in p] for p in probes[:6]]

        async def scenario():
            inproc = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0)
            pooled = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0, workers=2)
            await inproc.start()
            await pooled.start()
            try:
                a = AsyncClient(port=inproc.port)
                b = AsyncClient(port=pooled.port)
                ra = await a.query(vectors=suspects, k=5)
                rb = await b.query(vectors=suspects, k=5)
            finally:
                await inproc.stop()
                await pooled.stop()
            return ra, rb

        ra, rb = asyncio.run(scenario())
        assert ra["results"] == rb["results"]
        session = Session(corpus=Corpus.open(root))
        direct = session.query(list(probes[:6]), k=5)
        for served, local in zip(ra["results"], direct):
            for wire, match in zip(served["matches"], local):
                assert wire["probability"] == match.probability
                assert wire["confidence_low"] == match.confidence_low
                assert wire["confidence_high"] == match.confidence_high
                assert wire["verdict"] == match.verdict
