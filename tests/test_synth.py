"""Synthesizer tests: every construct checked against the RTL interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import elaborate
from repro.errors import SynthesisError
from repro.sim import (
    NetlistSimulator,
    RTLSimulator,
    check_rtl_netlist_equivalent,
)
from repro.synth import synthesize, synthesize_verilog
from repro.verilog import parse_source


def check_equivalent(text, widths, vectors=100, seed=0):
    flat = elaborate(parse_source(text))
    netlist = synthesize(flat)
    rtl = RTLSimulator(flat)
    report = check_rtl_netlist_equivalent(rtl, netlist, widths,
                                          vectors=vectors, seed=seed)
    assert report.equivalent, report.counterexample
    return netlist


class TestCombinationalOperators:
    def test_bitwise_ops(self):
        check_equivalent("""
module m(input [7:0] a, input [7:0] b, output [7:0] w,
         output [7:0] x, output [7:0] y, output [7:0] z);
  assign w = a & b;
  assign x = a | b;
  assign y = a ^ b;
  assign z = ~a;
endmodule
""", {"a": 8, "b": 8, "w": 8, "x": 8, "y": 8, "z": 8})

    def test_add_sub(self):
        check_equivalent("""
module m(input [7:0] a, input [7:0] b, output [8:0] s, output [7:0] d);
  assign s = a + b;
  assign d = a - b;
endmodule
""", {"a": 8, "b": 8, "s": 9, "d": 8})

    def test_multiply(self):
        check_equivalent("""
module m(input [3:0] a, input [3:0] b, output [7:0] p);
  assign p = a * b;
endmodule
""", {"a": 4, "b": 4, "p": 8})

    def test_comparisons(self):
        check_equivalent("""
module m(input [5:0] a, input [5:0] b, output lt, output le,
         output eq, output ne, output gt, output ge);
  assign lt = a < b;
  assign le = a <= b;
  assign eq = a == b;
  assign ne = a != b;
  assign gt = a > b;
  assign ge = a >= b;
endmodule
""", {"a": 6, "b": 6, "lt": 1, "le": 1, "eq": 1, "ne": 1, "gt": 1, "ge": 1})

    def test_reductions(self):
        check_equivalent("""
module m(input [7:0] a, output r_and, output r_or, output r_xor,
         output r_nand, output r_nor, output r_xnor);
  assign r_and = &a;
  assign r_or = |a;
  assign r_xor = ^a;
  assign r_nand = ~&a;
  assign r_nor = ~|a;
  assign r_xnor = ~^a;
endmodule
""", {"a": 8, "r_and": 1, "r_or": 1, "r_xor": 1, "r_nand": 1,
      "r_nor": 1, "r_xnor": 1})

    def test_logical_ops(self):
        check_equivalent("""
module m(input [3:0] a, input [3:0] b, output x, output y, output z);
  assign x = a && b;
  assign y = a || b;
  assign z = !a;
endmodule
""", {"a": 4, "b": 4, "x": 1, "y": 1, "z": 1})

    def test_const_shifts(self):
        check_equivalent("""
module m(input [7:0] a, output [7:0] l, output [7:0] r);
  assign l = a << 3;
  assign r = a >> 2;
endmodule
""", {"a": 8, "l": 8, "r": 8})

    def test_variable_shifts(self):
        check_equivalent("""
module m(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r);
  assign l = a << n;
  assign r = a >> n;
endmodule
""", {"a": 8, "n": 3, "l": 8, "r": 8})

    def test_ternary(self):
        check_equivalent("""
module m(input s, input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = s ? a : b;
endmodule
""", {"s": 1, "a": 4, "b": 4, "y": 4})

    def test_concat_repeat_select(self):
        check_equivalent("""
module m(input [7:0] a, output [7:0] y, output [3:0] z, output b);
  assign y = {a[3:0], a[7:4]};
  assign z = {4{a[0]}};
  assign b = a[5];
endmodule
""", {"a": 8, "y": 8, "z": 4, "b": 1})

    def test_variable_bit_select(self):
        check_equivalent("""
module m(input [7:0] d, input [2:0] i, output y);
  assign y = d[i];
endmodule
""", {"d": 8, "i": 3, "y": 1})

    def test_unary_minus(self):
        check_equivalent("""
module m(input [4:0] a, output [4:0] y);
  assign y = -a;
endmodule
""", {"a": 5, "y": 5})


class TestProceduralLogic:
    def test_if_chain(self):
        check_equivalent("""
module m(input [1:0] s, input [3:0] a, input [3:0] b, output reg [3:0] y);
  always @(*) begin
    if (s == 2'd0) y = a;
    else if (s == 2'd1) y = b;
    else if (s == 2'd2) y = a & b;
    else y = a | b;
  end
endmodule
""", {"s": 2, "a": 4, "b": 4, "y": 4})

    def test_case(self):
        check_equivalent("""
module m(input [1:0] s, input [3:0] a, output reg [3:0] y);
  always @(*) begin
    case (s)
      2'd0: y = a;
      2'd1: y = ~a;
      2'd2, 2'd3: y = a + 4'd1;
    endcase
  end
endmodule
""", {"s": 2, "a": 4, "y": 4})

    def test_blocking_chain(self):
        check_equivalent("""
module m(input [3:0] a, output reg [3:0] y);
  reg [3:0] t;
  always @(*) begin
    t = a ^ 4'hF;
    t = t + 4'd1;
    y = t;
  end
endmodule
""", {"a": 4, "y": 4})

    def test_for_loop_popcount(self):
        check_equivalent("""
module m(input [7:0] d, output reg [3:0] n);
  integer i;
  always @(*) begin
    n = 4'd0;
    for (i = 0; i < 8; i = i + 1)
      n = n + d[i];
  end
endmodule
""", {"d": 8, "n": 4})

    def test_partial_default_then_override(self):
        check_equivalent("""
module m(input en, input [3:0] a, output reg [3:0] y);
  always @(*) begin
    y = 4'd0;
    if (en) y = a;
  end
endmodule
""", {"en": 1, "a": 4, "y": 4})

    def test_bit_assign_in_always(self):
        check_equivalent("""
module m(input [3:0] a, output reg [3:0] y);
  always @(*) begin
    y = 4'b0;
    y[0] = a[3];
    y[3] = a[0];
  end
endmodule
""", {"a": 4, "y": 4})


class TestSequentialLogic:
    def run_cycles(self, text, widths, cycles=30, seed=0):
        flat = elaborate(parse_source(text))
        netlist = synthesize(flat)
        rtl = RTLSimulator(flat)
        net_sim = NetlistSimulator(netlist)
        rng = np.random.default_rng(seed)
        data_inputs = [p for p in rtl.inputs if p != "clk"]
        for _ in range(cycles):
            values = {name: int(rng.integers(0, 1 << widths[name]))
                      for name in data_inputs}
            rtl.set_inputs(values)
            stim = {}
            for name, value in values.items():
                if widths[name] == 1:
                    stim[name] = value
                else:
                    stim.update(net_sim.drive_bus(name, widths[name], value))
            net_sim.set_inputs(stim)
            rtl.clock()
            net_sim.clock()
            for out in rtl.outputs:
                width = widths[out]
                got = (net_sim.value(out) if width == 1
                       else net_sim.read_bus(out, width))
                assert got == rtl.value(out)

    def test_counter_with_reset_and_enable(self):
        self.run_cycles("""
module m(input clk, input rst, input en, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule
""", {"rst": 1, "en": 1, "q": 4})

    def test_shift_register(self):
        self.run_cycles("""
module m(input clk, input sin, output reg [7:0] q);
  always @(posedge clk)
    q <= {q[6:0], sin};
endmodule
""", {"sin": 1, "q": 8})

    def test_two_registers(self):
        self.run_cycles("""
module m(input clk, input [3:0] d, output reg [3:0] q2);
  reg [3:0] q1;
  always @(posedge clk) begin
    q1 <= d;
    q2 <= q1;
  end
endmodule
""", {"d": 4, "q2": 4})

    def test_fsm(self):
        self.run_cycles("""
module m(input clk, input go, output reg [1:0] state);
  always @(posedge clk) begin
    case (state)
      2'd0: if (go) state <= 2'd1;
      2'd1: state <= 2'd2;
      2'd2: state <= go ? 2'd3 : 2'd0;
      default: state <= 2'd0;
    endcase
  end
endmodule
""", {"go": 1, "state": 2})


class TestHierarchy:
    def test_instantiated_adder(self):
        check_equivalent("""
module top(input [3:0] x, input [3:0] y, output [4:0] s);
  wire [3:0] partial;
  wire carry;
  add4 a (.p(x), .q(y), .sum(partial), .c(carry));
  assign s = {carry, partial};
endmodule
module add4(input [3:0] p, input [3:0] q, output [3:0] sum, output c);
  wire [4:0] t;
  assign t = p + q;
  assign sum = t[3:0];
  assign c = t[4];
endmodule
""", {"x": 4, "y": 4, "s": 5})


class TestErrors:
    def test_division_unsupported(self):
        with pytest.raises(SynthesisError):
            synthesize_verilog("module m(input [3:0] a, output [3:0] y); "
                               "assign y = a / 2; endmodule")

    def test_undeclared_signal(self):
        with pytest.raises(SynthesisError):
            synthesize_verilog("module m(input a, output y); "
                               "assign y = a & ghost; endmodule")


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 7))
    def test_alu_matches_integers(self, a, b, op):
        source = """
module alu(input [7:0] a, input [7:0] b, input [2:0] op,
           output reg [7:0] y);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = a - b;
      3'd2: y = a & b;
      3'd3: y = a | b;
      3'd4: y = a ^ b;
      3'd5: y = (a < b) ? 8'd1 : 8'd0;
      3'd6: y = a << b[2:0];
      default: y = a >> b[2:0];
    endcase
  end
endmodule
"""
        netlist = getattr(self, "_cached", None)
        if netlist is None:
            netlist = synthesize_verilog(source)
            self.__class__._cached = netlist
            self.__class__._sim = NetlistSimulator(netlist)
        sim = self.__class__._sim
        stim = {}
        stim.update(sim.drive_bus("a", 8, a))
        stim.update(sim.drive_bus("b", 8, b))
        stim.update(sim.drive_bus("op", 3, op))
        sim.set_inputs(stim)
        got = sim.read_bus("y", 8)
        expected = {
            0: (a + b) & 0xFF, 1: (a - b) & 0xFF, 2: a & b, 3: a | b,
            4: a ^ b, 5: int(a < b), 6: (a << (b & 7)) & 0xFF,
            7: a >> (b & 7),
        }[op]
        assert got == expected
