"""Evaluation-harness tests: scenarios, grafting, runner, facade, CLI.

Everything here runs with tiny corpora and untrained models — the
trained detection floor lives in ``benchmarks/bench_eval.py``; these
tests pin the harness's *mechanics*: determinism, ground-truth labels,
metric assembly, and the wiring through ``Session.evaluate`` and
``gnn4ip eval``.
"""

import json

import pytest

from repro.api import Corpus, Detector, IndexConfig, Session
from repro.cli import main
from repro.core import GNN4IP
from repro.core.metrics import ConfusionMatrix, roc_auc
from repro.errors import EvalError
from repro.eval import (
    EvalConfig,
    ScenarioContext,
    Suspect,
    generate_scenarios,
    graft_netlists,
    run_evaluation,
    scenario_names,
)
from repro.eval.report import SCHEMA_VERSION
from repro.netlist.cells import DFF
from repro.synth import synthesize_verilog

FAMILIES = ("adder8", "cmp8")
HOLDOUTS = ("satadd8",)


def tiny_context(**overrides):
    kwargs = dict(families=FAMILIES, holdouts=HOLDOUTS, seed=1,
                  check_equivalence=False)
    kwargs.update(overrides)
    return ScenarioContext(**kwargs)


def tiny_config(**overrides):
    kwargs = dict(families=FAMILIES, holdouts=HOLDOUTS,
                  corpus_instances=2, epochs=0, allow_untrained=True,
                  check_equivalence=False, seed=1, jobs=1)
    kwargs.update(overrides)
    return EvalConfig(**kwargs)


class TestScenarioGeneration:
    def test_all_scenarios_emit_suspects(self):
        suspects = generate_scenarios(tiny_context())
        by_scenario = {}
        for suspect in suspects:
            by_scenario.setdefault(suspect.scenario, []).append(suspect)
        # retime / fsm_reencode need registers; the tiny families are
        # combinational, so those two legitimately emit nothing here.
        sequential_only = {"retime", "fsm_reencode"}
        assert sorted(by_scenario) == \
            sorted(set(scenario_names()) - sequential_only)
        for name in ("rtl_variant", "netlist_obfuscate_s2",
                     "resynthesis", "tech_remap", "wrapper", "trojan"):
            assert len(by_scenario[name]) == len(FAMILIES)
        # partial_theft sweeps every configured theft fraction.
        fractions = tiny_context().theft_fractions
        assert len(by_scenario["partial_theft"]) == \
            len(FAMILIES) * len(fractions)

    def test_sequential_scenarios_emit_with_sequential_family(self):
        ctx = tiny_context(families=("adder8", "counter8"))
        suspects = generate_scenarios(ctx,
                                      names=["retime", "fsm_reencode"])
        by_scenario = {}
        for suspect in suspects:
            by_scenario.setdefault(suspect.scenario, []).append(suspect)
        assert sorted(by_scenario) == ["fsm_reencode", "retime"]
        for group in by_scenario.values():
            assert all(s.true_design == "counter8" for s in group)
            assert all(s.pirated for s in group)

    def test_deterministic(self):
        first = generate_scenarios(tiny_context())
        second = generate_scenarios(tiny_context())
        assert [s.name for s in first] == [s.name for s in second]
        assert [s.source for s in first] == [s.source for s in second]

    def test_ground_truth_labels(self):
        suspects = generate_scenarios(tiny_context())
        for suspect in suspects:
            if suspect.scenario == "unrelated":
                assert not suspect.pirated
                assert suspect.true_design is None
            else:
                assert suspect.pirated
                assert suspect.true_design in FAMILIES

    def test_unknown_scenario_rejected(self):
        with pytest.raises(EvalError, match="unknown scenario"):
            generate_scenarios(tiny_context(), names=["nope"])

    def test_holdout_overlap_rejected(self):
        with pytest.raises(EvalError, match="holdout"):
            ScenarioContext(families=FAMILIES, holdouts=("adder8",))

    def test_equivalence_spot_checks_recorded(self):
        suspects = generate_scenarios(
            tiny_context(check_equivalence=True, equivalence_checks=1,
                         equivalence_vectors=6),
            names=["netlist_obfuscate_s2"])
        outcomes = [s.provenance.get("equivalence") for s in suspects]
        checked = [o for o in outcomes if o]
        assert len(checked) == 1
        assert checked[0]["equivalent"] is True
        assert checked[0]["vectors"] == 6

    def test_filtered_families_keep_corpus_offsets(self):
        """Evaluating a subset of the configured families must regenerate
        exactly the same suspects (a missing family must not shift the
        other families onto different design instances)."""
        from repro.eval.runner import scenario_suite

        config = tiny_config(families=("adder8", "cmp8", "mux8"))
        full = {s.name: s.source for s in scenario_suite(config)}
        subset = {s.name: s.source
                  for s in scenario_suite(config,
                                          families=("adder8", "mux8"))}
        assert subset  # non-empty
        for name, source in subset.items():
            if name in full:
                assert source == full[name]

    def test_rtl_scheme_matches_rtl_corpus_instance0(self):
        """At level=rtl the scenario bases follow generate_corpus's
        instance-0 seeding, not the netlist scheme."""
        from repro.designs import generate_corpus

        ctx = tiny_context(corpus_scheme="rtl", seed=4)
        corpus = generate_corpus(families=list(FAMILIES),
                                 instances_per_design=1, seed=4)
        by_design = {v.design: v for v in corpus}
        for name in FAMILIES:
            assert ctx.base_rtl(name).verilog == by_design[name].verilog

    def test_check_pairs_dropped_after_generation(self):
        suspects = generate_scenarios(tiny_context(check_equivalence=True))
        assert all(s.check_pair is None for s in suspects)

    def test_as_dict_omits_source(self):
        suspect = generate_scenarios(tiny_context(),
                                     names=["rtl_variant"])[0]
        record = suspect.as_dict()
        assert "source" not in record
        assert record["scenario"] == "rtl_variant"
        assert json.dumps(record)  # JSON-serializable


class TestGrafting:
    HOST = """
    module host(input [3:0] a, input [3:0] b, output [3:0] y);
      assign y = a & b;
    endmodule
    """
    STOLEN = """
    module stolen(input clk, input d, output reg [3:0] q);
      always @(posedge clk) q <= {q[2:0], d};
    endmodule
    """

    def test_full_graft_keeps_host_ports_and_stolen_logic(self):
        host = synthesize_verilog(self.HOST)
        stolen = synthesize_verilog(self.STOLEN)
        graft = graft_netlists(host, stolen, fraction=1.0, seed=0)
        assert graft.num_gates > host.num_gates
        for net in host.inputs:
            assert net in graft.inputs
        for net in host.outputs:
            assert net in graft.outputs
        assert len(graft.outputs) > len(host.outputs)  # stolen observable
        graft.validate()

    def test_fraction_scales_kept_logic(self):
        host = synthesize_verilog(self.HOST)
        stolen = synthesize_verilog(self.STOLEN)
        small = graft_netlists(host, stolen, fraction=0.25, seed=0)
        full = graft_netlists(host, stolen, fraction=1.0, seed=0)
        assert host.num_gates < small.num_gates < full.num_gates

    def test_sequential_stolen_into_combinational_host_gains_clock(self):
        host = synthesize_verilog(self.HOST)
        stolen = synthesize_verilog(self.STOLEN)
        graft = graft_netlists(host, stolen, fraction=1.0, seed=0)
        assert any(g.cell == DFF for g in graft.gates)
        assert len(graft.clocks) == 1

    def test_bad_fraction_rejected(self):
        host = synthesize_verilog(self.HOST)
        stolen = synthesize_verilog(self.STOLEN)
        for fraction in (0.0, -0.2, 1.5):
            with pytest.raises(EvalError, match="fraction"):
                graft_netlists(host, stolen, fraction=fraction)

    def test_graft_deterministic(self):
        host = synthesize_verilog(self.HOST)
        stolen = synthesize_verilog(self.STOLEN)
        first = graft_netlists(host, stolen, fraction=0.5, seed=3)
        second = graft_netlists(host, stolen, fraction=0.5, seed=3)
        assert [(g.cell, g.output, tuple(g.inputs)) for g in first.gates] \
            == [(g.cell, g.output, tuple(g.inputs)) for g in second.gates]


class TestRunner:
    @pytest.fixture(scope="class")
    def report(self):
        return run_evaluation(tiny_config())

    def test_report_shape(self, report):
        data = report.as_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert sorted(data["scenarios"]) == sorted(scenario_names())
        assert data["corpus"]["designs"] == len(FAMILIES)
        assert data["model"]["trained"] is False
        confusion = data["overall"]["confusion"]
        total = sum(confusion[k] for k in ("tp", "fp", "fn", "tn"))
        assert total == data["overall"]["suspects"]

    def test_partial_theft_in_breakdown(self, report):
        metrics = report.as_dict()["scenarios"]["partial_theft"]
        assert metrics["pirated"] == metrics["suspects"] > 0
        assert metrics["recall_at_k"]["10"] is not None
        provenance = metrics["suspect_results"][0]["provenance"]
        assert provenance["fraction"] in EvalConfig.theft_fractions
        assert provenance["host"] in HOLDOUTS
        # Recall is broken down per swept fraction for the CI floor.
        by_fraction = metrics["recall_by_fraction"]
        assert sorted(by_fraction) == \
            sorted(f"{f:g}" for f in EvalConfig.theft_fractions)
        for recalls in by_fraction.values():
            assert "10" in recalls

    def test_recall_accessor(self, report):
        value = report.recall_at(10, "netlist_obfuscate_s2")
        assert 0.0 <= value <= 1.0
        assert report.recall_at(10) == \
            report.as_dict()["overall"]["recall_at_k"]["10"]

    def test_render_text_mentions_every_scenario(self, report):
        text = report.render_text()
        for name in scenario_names():
            assert name in text

    def test_stable_json(self, report):
        assert report.to_json() == report.to_json()
        parsed = json.loads(report.to_json())
        assert parsed["schema_version"] == SCHEMA_VERSION

    def test_untrained_requires_opt_in(self):
        with pytest.raises(EvalError, match="untrained"):
            run_evaluation(tiny_config(allow_untrained=False))

    def test_bad_level_rejected(self):
        with pytest.raises(EvalError, match="level"):
            EvalConfig(level="gds2")

    def test_baseline_wl_kernel(self):
        report = run_evaluation(tiny_config(baselines=("wl_kernel",)))
        metrics = report.as_dict()["baselines"]["wl_kernel"]
        assert "recall_at_k" in metrics
        assert 0.0 <= metrics["auc"] <= 1.0


class TestSessionEvaluate:
    @pytest.fixture(scope="class")
    def session(self, tmp_path_factory):
        from repro.eval.runner import build_eval_corpus

        detector = Detector.from_model(GNN4IP(seed=1,
                                              featurizer="netlist"))
        corpus, _ = build_eval_corpus(tmp_path_factory.mktemp("evalidx"),
                                      tiny_config(), detector)
        return Session(detector=detector, corpus=corpus)

    def test_facade_evaluate(self, session):
        report = session.evaluate(tiny_config())
        assert report.as_dict()["corpus"]["designs"] == len(FAMILIES)
        # Session.evaluate cannot know whether the bound model was
        # trained; only run_evaluation may claim True/False.
        assert report.as_dict()["model"]["trained"] is None
        assert "(UNTRAINED)" not in report.render_text()

    def test_facade_overrides(self, session):
        report = session.evaluate(tiny_config(),
                                  scenarios=("netlist_obfuscate_s2",
                                             "unrelated"))
        assert sorted(report.as_dict()["scenarios"]) == \
            ["netlist_obfuscate_s2", "unrelated"]

    def test_level_mismatch_rejected(self, session):
        with pytest.raises(EvalError, match="level"):
            session.evaluate(tiny_config(), level="rtl")

    def test_no_corpus_rejected(self):
        session = Session(detector=Detector.untrained(level="netlist"))
        with pytest.raises(EvalError, match="corpus"):
            session.evaluate(tiny_config())

    def test_foreign_corpus_rejected(self, tmp_path):
        """A corpus of unknown designs cannot host family scenarios."""
        (tmp_path / "x.v").write_text(
            "module mystery(input a, output y); assign y = ~a; endmodule")
        detector = Detector.from_model(GNN4IP(seed=0,
                                              featurizer="netlist"))
        corpus, _ = Corpus.build(tmp_path / "idx", [tmp_path / "x.v"],
                                 detector, IndexConfig(level="netlist",
                                                       jobs=1))
        session = Session(detector=detector, corpus=corpus)
        with pytest.raises(EvalError, match="families"):
            session.evaluate(tiny_config())


class TestCli:
    def test_eval_json(self, capsys):
        code = main(["eval", "--allow-untrained", "--families", "adder8",
                     "cmp8", "--holdouts", "satadd8", "--instances", "2",
                     "--suspects", "1", "--seed", "1", "--jobs", "1",
                     "--no-equivalence", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "partial_theft" in payload["scenarios"]
        assert payload["model"]["trained"] is False

    def test_eval_scenario_subset_and_out(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["eval", "--allow-untrained", "--families", "adder8",
                     "cmp8", "--holdouts", "satadd8", "--instances", "2",
                     "--suspects", "1", "--seed", "1", "--jobs", "1",
                     "--no-equivalence", "--scenarios",
                     "netlist_obfuscate_s2", "unrelated",
                     "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "netlist_obfuscate_s2" in text
        written = json.loads(out.read_text())
        assert sorted(written["scenarios"]) == \
            ["netlist_obfuscate_s2", "unrelated"]

    def test_eval_unknown_scenario_errors(self, capsys):
        code = main(["eval", "--allow-untrained", "--scenarios", "nope",
                     "--families", "adder8", "cmp8", "--holdouts",
                     "satadd8", "--jobs", "1"])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestMetrics:
    def test_roc_auc_perfect(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0]) == 1.0

    def test_roc_auc_inverted(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == 0.0

    def test_roc_auc_ties_average(self):
        assert roc_auc([0.5, 0.5, 0.5, 0.5], [1, 1, 0, 0]) == 0.5

    def test_roc_auc_single_class_undefined(self):
        assert roc_auc([0.5, 0.6], [1, 1]) is None
        assert roc_auc([], []) is None

    def test_confusion_f1_and_dict(self):
        matrix = ConfusionMatrix(tp=8, fp=2, fn=2, tn=8)
        assert matrix.f1 == pytest.approx(0.8)
        data = matrix.as_dict()
        assert data["tp"] == 8 and data["f1"] == pytest.approx(0.8)
        assert ConfusionMatrix().f1 == 0.0

    def test_suspect_dataclass_roundtrip(self):
        suspect = Suspect(name="s", scenario="x", source="module m;",
                          true_design="m", pirated=True)
        assert suspect.as_dict()["pirated"] is True
