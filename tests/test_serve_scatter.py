"""Scatter-gather serving: partitioned partials must merge bit-identically.

Three layers, matching the serving stack:

- engine: ``partial_many``/``partial_groups`` per shard partition,
  merged with ``merge_many``/``merge_groups``, must equal the
  single-process ``query_many``/``query_groups`` result *exactly* —
  dataclass equality, every float bit included.  Duplicate stored rows
  force real score ties across partition boundaries, so these tests
  also pin the deterministic tie orders.
- worker pool: real spawned processes over a real on-disk index,
  including crash-mid-query detection and respawn.
- HTTP: an N-worker ``ReproServer`` must answer byte-identically to an
  in-process one, plus the ops surface (stats histograms, 429
  backpressure with ``Retry-After``, graceful drain, keep-alive reuse).
"""

import asyncio
import json
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.api import Corpus, Detector, IndexConfig, Session
from repro.client import AsyncClient, ServerError
from repro.core import GNN4IP
from repro.errors import IndexStoreError
from repro.index.ann import IVFIndex, ivf_filename
from repro.index.engine import QueryEngine
from repro.index.shards import assign_partitions, unit_rows_f32, write_shard
from repro.index.store import FORMAT_VERSION
from repro.server import ReproServer
from repro.server.batcher import BacklogFull, MicroBatcher
from repro.server.metrics import Histogram
from repro.server.protocol import ProtocolError, recv_msg, send_msg
from repro.server.worker import WorkerPool, WorkerPoolError

SEED = 11
HIDDEN = 12
N = 240
SHARDS = 3

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""


# -- synthetic fixtures ------------------------------------------------------

def _corpus_rows():
    rng = np.random.default_rng(SEED)
    rows = unit_rows_f32(rng.standard_normal((N, HIDDEN)))
    # Bit-identical duplicates in *different* shards: real exact-score
    # ties that cross partition boundaries.
    rows[5] = rows[N // 2 + 5]
    rows[6] = rows[N - 7]
    return rows


def _write_synthetic_index(root, rows):
    per = len(rows) // SHARDS
    specs = []
    for i in range(SHARDS):
        stop = len(rows) if i == SHARDS - 1 else (i + 1) * per
        specs.append(write_shard(root, i, rows[i * per:stop]))
    entries = [{"name": f"d{i:05d}", "path": f"d{i:05d}.v",
                "key": f"{i:064d}", "design": f"fam{i}", "status": "ok"}
               for i in range(len(rows))]
    table = [{"kind": "design", "name": f"d{i:05d}"}
             for i in range(len(rows))]
    ivf = IVFIndex.fit(rows, n_clusters=12, seed=SEED)
    ivf.save(root / ivf_filename(0))
    meta = {"version": FORMAT_VERSION, "model_hash": "test",
            "options": {"top": None, "level": "rtl", "use_cache": False},
            "store": {"dtype": "float32", "hidden": HIDDEN,
                      "shards": specs},
            "entries": entries, "rows": table,
            "ivf": {"file": ivf_filename(0), "clusters": 12}}
    (root / "meta.json").write_text(json.dumps(meta))


@pytest.fixture(scope="module")
def disk_index(tmp_path_factory):
    """(index_root, rows) — a synthetic on-disk v4 index, 3 shards + IVF."""
    root = tmp_path_factory.mktemp("scatter_idx")
    rows = _corpus_rows()
    _write_synthetic_index(root, rows)
    return root, rows


@pytest.fixture(scope="module")
def queries(disk_index):
    _, rows = disk_index
    rng = np.random.default_rng(SEED + 1)
    picks = rng.choice(N, size=7, replace=False)
    out = unit_rows_f32(rows[picks]
                        + 0.05 * rng.standard_normal((7, HIDDEN)))
    out[0] = rows[5]  # exact hit onto a duplicated (tied) stored row
    return out


@pytest.fixture(scope="module")
def pool(disk_index):
    """One spawned 2-worker pool shared by the pool-level tests."""
    root, _ = disk_index
    with WorkerPool(root, 2) as pool:
        yield pool


@pytest.fixture(scope="module")
def rtl_session(tmp_path_factory):
    """A real (model-backed, signature-bearing) 2-design corpus."""
    src = tmp_path_factory.mktemp("scatter_rtl")
    (src / "adder.v").write_text(ADDER)
    (src / "mux.v").write_text(MUX)
    detector = Detector.from_model(GNN4IP(seed=0))
    corpus, _ = Corpus.build(tmp_path_factory.mktemp("scatter_rtl_idx")
                             / "idx", sorted(src.glob("*.v")), detector,
                             IndexConfig(jobs=1))
    return Session(detector=detector, corpus=corpus)


# -- partition assignment ----------------------------------------------------

class TestAssignPartitions:
    SPECS = [{"rows": r} for r in (100, 50, 60, 10, 30)]

    def test_disjoint_cover_and_balance(self):
        parts = assign_partitions(self.SPECS, 2)
        flat = sorted(o for part in parts for o in part)
        assert flat == list(range(len(self.SPECS)))
        loads = [sum(self.SPECS[o]["rows"] for o in part)
                 for part in parts]
        # LPT keeps the spread within one largest shard.
        assert max(loads) - min(loads) <= 100
        assert all(part == sorted(part) for part in parts)

    def test_deterministic(self):
        assert assign_partitions(self.SPECS, 3) == \
            assign_partitions(self.SPECS, 3)

    def test_surplus_partitions_empty(self):
        parts = assign_partitions(self.SPECS, 8)
        assert sum(1 for part in parts if not part) == 3
        flat = sorted(o for part in parts for o in part)
        assert flat == list(range(len(self.SPECS)))

    def test_bad_count_raises(self):
        with pytest.raises(IndexStoreError):
            assign_partitions(self.SPECS, 0)


# -- engine partials ---------------------------------------------------------

def _blocks(rows):
    per = len(rows) // SHARDS
    return [rows[i * per:(len(rows) if i == SHARDS - 1 else (i + 1) * per)]
            for i in range(SHARDS)]


def _plain_entries(n):
    return [{"name": f"d{i:05d}", "path": f"d{i:05d}.v",
             "design": f"fam{i}", "status": "ok"} for i in range(n)]


PARTITIONS = ([[0, 2], [1]], [[0], [1], [2]], [[0, 1, 2], []])


class TestEnginePartials:
    @pytest.fixture(scope="class")
    def engine(self):
        rows = _corpus_rows()
        return QueryEngine(_blocks(rows), _plain_entries(N),
                           ivf=IVFIndex.fit(rows, n_clusters=12,
                                            seed=SEED))

    @pytest.mark.parametrize("kwargs", [{"exact": True}, {"nprobe": 4},
                                        {}])
    @pytest.mark.parametrize("shard_sets", PARTITIONS)
    def test_plain_merge_bitident(self, engine, queries, kwargs,
                                  shard_sets):
        direct = engine.query_many(queries, k=5, **kwargs)
        partials = [engine.partial_many(queries, k=5, shards=s, **kwargs)
                    for s in shard_sets]
        assert engine.merge_many(partials, k=5) == direct

    def test_single_query_padding_path(self, engine, queries):
        direct = engine.query_many(queries[:1], k=5, exact=True)
        partials = [engine.partial_many(queries[:1], k=5, exact=True,
                                        shards=s) for s in [[0, 1], [2]]]
        assert engine.merge_many(partials, k=5) == direct

    def test_k_exceeds_rows(self, engine, queries):
        direct = engine.query_many(queries[:2], k=N + 10, exact=True)
        partials = [engine.partial_many(queries[:2], k=N + 10, exact=True,
                                        shards=s) for s in [[0], [1, 2]]]
        assert engine.merge_many(partials, k=N + 10) == direct

    @pytest.mark.parametrize("kwargs", [{"exact": True}, {"nprobe": 4}])
    def test_grouped_multipart_bitident(self, engine, queries, kwargs):
        # Two suspects of 3 + 4 parts, with chunk-style regions.
        offsets = [0, 3, 7]
        regions = [None, {"kind": "window", "start": 0}, {"kind": "cone"},
                   None, {"kind": "window", "start": 1},
                   {"kind": "region"}, {"kind": "cone"}]
        direct = engine.query_groups(queries, offsets, regions, k=4,
                                     **kwargs)
        partials = [engine.partial_groups(queries, offsets, regions, k=4,
                                          shards=s, **kwargs)
                    for s in [[1], [0, 2]]]
        assert engine.merge_groups(partials, offsets, regions, k=4) == \
            direct

    def test_fused_struct_joins_at_merge(self, engine, queries):
        """Workers never see struct scores; merge applies them — and the
        result still matches the single-process fused call exactly."""
        offsets = [0, 2, 4, 5]
        regions = [None, {"kind": "cone"}, None, {"kind": "cone"}, None]
        rng = np.random.default_rng(SEED + 3)
        struct = [rng.random(N), None, rng.random(N)]
        fused = [s is not None for s in struct]
        direct = engine.query_groups(queries[:5], offsets, regions, k=4,
                                     struct=struct)
        partials = [engine.partial_groups(queries[:5], offsets, regions,
                                          k=4, fused=fused, shards=s)
                    for s in [[0, 2], [1]]]
        assert engine.merge_groups(partials, offsets, regions, k=4,
                                   struct=struct) == direct

    def test_empty_partition_is_noop(self, engine, queries):
        direct = engine.query_many(queries, k=3, exact=True)
        partials = [engine.partial_many(queries, k=3, exact=True,
                                        shards=s)
                    for s in [[0, 1, 2], []]]
        assert engine.merge_many(partials, k=3) == direct

    def test_bad_shard_subset_raises(self, engine, queries):
        with pytest.raises(IndexStoreError):
            engine.partial_many(queries, shards=[7])


class TestChunkedEnginePartials:
    """Chunk rows aggregate to parents inside each partition; the merge
    must reduce per-partition parent partials to the global answer."""

    @pytest.fixture(scope="class")
    def engine(self):
        rng = np.random.default_rng(SEED + 4)
        parents = 30
        entries, vecs = [], []
        for p in range(parents):
            base = rng.standard_normal(HIDDEN)
            entries.append({"name": f"p{p:03d}", "path": f"p{p:03d}.v",
                            "design": f"fam{p}", "status": "ok",
                            "parent_id": p})
            vecs.append(base)
            for c in range(p % 4):  # 0-3 chunks per design
                entries.append({"kind": "chunk",
                                "name": f"p{p:03d}#chunk{c}",
                                "path": f"p{p:03d}.v",
                                "design": f"fam{p}", "parent": f"p{p:03d}",
                                "parent_id": p,
                                "region": {"kind": "cone", "n": c}})
                vecs.append(base + 0.3 * rng.standard_normal(HIDDEN))
        rows = unit_rows_f32(np.array(vecs))
        # Duplicate a chunk row across shard boundary for ties.
        rows[1] = rows[len(rows) - 2]
        return QueryEngine(_blocks(rows), entries,
                           ivf=IVFIndex.fit(rows, n_clusters=8,
                                            seed=SEED))

    @pytest.fixture(scope="class")
    def chunk_queries(self, engine):
        rng = np.random.default_rng(SEED + 5)
        flat = np.concatenate([np.asarray(b) for b in engine._blocks])
        picks = rng.choice(len(flat), size=5, replace=False)
        return unit_rows_f32(flat[picks]
                             + 0.05 * rng.standard_normal((5, HIDDEN)))

    @pytest.mark.parametrize("kwargs", [{"exact": True}, {"nprobe": 3},
                                        {}])
    @pytest.mark.parametrize("shard_sets", PARTITIONS)
    def test_chunked_query_many_bitident(self, engine, chunk_queries,
                                         kwargs, shard_sets):
        direct = engine.query_many(chunk_queries, k=4, **kwargs)
        partials = [engine.partial_many(chunk_queries, k=4, shards=s,
                                        **kwargs) for s in shard_sets]
        assert engine.merge_many(partials, k=4) == direct

    def test_chunked_fused_groups_bitident(self, engine, chunk_queries):
        offsets = [0, 3, 5]
        regions = [None, {"kind": "cone", "n": 0}, {"kind": "cone", "n": 1},
                   None, {"kind": "cone", "n": 0}]
        rng = np.random.default_rng(SEED + 6)
        struct = [rng.random(engine.n_parents), None]
        direct = engine.query_groups(chunk_queries, offsets, regions, k=4,
                                     struct=struct)
        partials = [engine.partial_groups(chunk_queries, offsets, regions,
                                          k=4,
                                          fused=[True, False], shards=s)
                    for s in [[0], [1], [2]]]
        assert engine.merge_groups(partials, offsets, regions, k=4,
                                   struct=struct) == direct


# -- facade partition plumbing ----------------------------------------------

class TestCorpusPartition:
    def test_partition_rows_sum_to_total(self, disk_index):
        root, _ = disk_index
        opened = [Corpus.open(root, partition=(i, 2)) for i in range(2)]
        assert sum(c.partition_rows for c in opened) == N
        ordinals = sorted(o for c in opened for o in c.partition)
        assert ordinals == list(range(SHARDS))

    def test_out_of_range_partition(self, disk_index):
        root, _ = disk_index
        with pytest.raises(IndexStoreError):
            Corpus.open(root, partition=(2, 2))

    def test_scoped_partials_merge_to_full_answer(self, disk_index,
                                                  queries):
        root, _ = disk_index
        whole = Corpus.open(root)
        offsets = list(range(len(queries) + 1))
        direct = whole.index.query_parts(queries, offsets, None, k=5,
                                         exact=True)
        partials = [
            Corpus.open(root, partition=(i, 2)).partial_parts(
                queries, offsets, None, k=5, exact=True)
            for i in range(2)]
        assert whole.merge_parts(partials, offsets, None, k=5) == direct


# -- the worker pool ---------------------------------------------------------

class TestWorkerPool:
    def _scatter(self, pool, queries, **kwargs):
        offsets = list(range(len(queries) + 1))
        return pool.scatter(queries, offsets, None, k=5,
                            delta=0.0, nprobe=kwargs.get("nprobe"),
                            exact=kwargs.get("exact", False), fused=None)

    @pytest.mark.parametrize("kwargs", [{"exact": True}, {"nprobe": 4},
                                        {}])
    def test_scatter_merge_bitident(self, pool, disk_index, queries,
                                    kwargs):
        root, _ = disk_index
        corpus = Corpus.open(root)
        offsets = list(range(len(queries) + 1))
        direct = corpus.index.query_parts(queries, offsets, None, k=5,
                                          nprobe=kwargs.get("nprobe"),
                                          exact=kwargs.get("exact",
                                                           False))
        partials = self._scatter(pool, queries, **kwargs)
        assert corpus.merge_parts(partials, offsets, None, k=5) == direct

    def test_hello_reports_partition(self, pool):
        stats = pool.stats()
        assert [w["worker"] for w in stats] == [0, 1]
        assert sum(w["rows"] for w in stats) == N
        assert all(w["alive"] for w in stats)

    def test_more_workers_than_shards(self, disk_index, queries):
        root, _ = disk_index
        corpus = Corpus.open(root)
        offsets = list(range(len(queries) + 1))
        direct = corpus.index.query_parts(queries, offsets, None, k=5,
                                          exact=True)
        with WorkerPool(root, SHARDS + 1) as wide:
            assert any(w["rows"] == 0 for w in wide.stats())
            partials = self._scatter(wide, queries, exact=True)
        assert corpus.merge_parts(partials, offsets, None, k=5) == direct

    def test_idle_kill_heals_transparently(self, pool, queries):
        os.kill(pool.members[0].pid, signal.SIGKILL)
        deadline = time.monotonic() + 10
        while (pool.members[0].process.is_alive()
               and time.monotonic() < deadline):
            time.sleep(0.05)
        before = pool.respawns
        partials = self._scatter(pool, queries, exact=True)
        assert len(partials) == 2
        assert pool.respawns == before + 1

    def test_crash_mid_query_raises_and_respawns(self, pool, queries):
        send_msg(pool.members[0].conn, {"op": "crash_next"})
        before = pool.respawns
        with pytest.raises(WorkerPoolError):
            self._scatter(pool, queries, exact=True)
        assert pool.respawns == before + 1
        # The pool is whole again: the very next scatter succeeds.
        assert len(self._scatter(pool, queries, exact=True)) == 2

    def test_worker_side_error_keeps_type(self, pool):
        bad = np.zeros((2, HIDDEN + 3), dtype=np.float64)
        with pytest.raises(IndexStoreError):
            self._scatter(pool, bad)


# -- protocol framing --------------------------------------------------------

class TestProtocol:
    def test_roundtrip_and_eof(self):
        a, b = socket.socketpair()
        payload = {"op": "query", "vectors": np.arange(6.0).reshape(2, 3)}
        send_msg(a, payload)
        out = recv_msg(b)
        assert out["op"] == "query"
        np.testing.assert_array_equal(out["vectors"],
                                      payload["vectors"])
        a.close()
        with pytest.raises(EOFError):
            recv_msg(b)
        b.close()

    def test_torn_frame(self):
        a, b = socket.socketpair()
        import struct as struct_mod
        a.sendall(struct_mod.pack("!Q", 100) + b"short")
        a.close()
        with pytest.raises(ProtocolError):
            recv_msg(b)
        b.close()


# -- metrics -----------------------------------------------------------------

class TestHistogram:
    def test_quantiles_bound_observations(self):
        hist = Histogram([0.01, 0.1, 1.0])
        for value in (0.005, 0.02, 0.05, 0.5, 2.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["max"] == 2.0
        assert snap["sum"] == pytest.approx(2.575)
        assert snap["p50"] == 0.1     # 3rd of 5 lands in the 0.1 bucket
        assert snap["p99"] == 2.0     # overflow bucket reports the max
        assert snap["buckets"] == {"0.01": 1, "0.1": 3, "1": 4}

    def test_empty(self):
        snap = Histogram([1.0]).snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0


# -- micro-batcher backpressure and cancellation -----------------------------

class TestBatcherEdges:
    def test_backpressure_rejects_at_cap(self):
        async def scenario():
            def process(jobs):
                return [f"ok:{job}" for job in jobs]

            batcher = MicroBatcher(process, max_delay_s=0.2,
                                   max_pending=1)
            await batcher.start()
            first = asyncio.create_task(batcher.submit("a"))
            await asyncio.sleep(0.01)  # worker gulped "a", queue empty
            second = asyncio.create_task(batcher.submit("b"))
            await asyncio.sleep(0.01)  # "b" pending in the queue
            with pytest.raises(BacklogFull):
                await batcher.submit("c")
            assert batcher.rejected == 1
            assert await first == "ok:a"
            assert await second == "ok:b"
            await batcher.stop()

        asyncio.run(scenario())

    def test_cancel_one_waiter_mid_batch(self):
        async def scenario():
            def process(jobs):
                time.sleep(0.05)  # the gulp is in the executor
                return [f"ok:{job}" for job in jobs]

            batcher = MicroBatcher(process, max_delay_s=0.01)
            await batcher.start()
            doomed = asyncio.create_task(batcher.submit("a"))
            kept = asyncio.create_task(batcher.submit("b"))
            await asyncio.sleep(0.03)  # both gulped; executor running
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            # The surviving waiter still gets its result; the batcher
            # keeps serving afterwards.
            assert await kept == "ok:b"
            assert await batcher.submit("c") == "ok:c"
            await batcher.stop()

        asyncio.run(scenario())


# -- HTTP parity and the ops surface -----------------------------------------

def _vector_suspects(queries):
    return [[float(v) for v in q] for q in queries]


class TestHttpScatterGather:
    def test_pooled_serving_matches_inprocess(self, disk_index, queries):
        root, _ = disk_index

        async def scenario():
            inproc = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0)
            pooled = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0, workers=2)
            await inproc.start()
            await pooled.start()
            a = AsyncClient(port=inproc.port)
            b = AsyncClient(port=pooled.port)
            try:
                for kwargs in ({"exact": True}, {"nprobe": 4}, {}):
                    ra = await asyncio.gather(*[
                        a.query(vectors=[q], k=5, **kwargs)
                        for q in _vector_suspects(queries)])
                    rb = await asyncio.gather(*[
                        b.query(vectors=[q], k=5, **kwargs)
                        for q in _vector_suspects(queries)])
                    assert [r["results"] for r in ra] == \
                        [r["results"] for r in rb]
                multi_a = await a.query(
                    vectors=_vector_suspects(queries), k=3)
                multi_b = await b.query(
                    vectors=_vector_suspects(queries), k=3)
                assert multi_a["results"] == multi_b["results"]

                stats = await b.stats()
                serving = stats["serving"]
                assert serving["mode"] == "scatter-gather"
                assert serving["workers"] == 2
                assert sum(w["rows"]
                           for w in serving["worker_rows"]) == N
                assert stats["request_seconds"]["count"] > 0
                assert stats["batch_jobs"]["count"] > 0
                assert stats["scatter_seconds"]["count"] > 0
            finally:
                await a.close()
                await b.close()
                await inproc.stop()
                await pooled.stop()

        asyncio.run(scenario())

    def test_source_suspects_fuse_at_front(self, rtl_session):
        """Real corpus, source suspects: the WL-signature fusion channel
        must survive scatter-gather untouched (fuse at the front)."""

        async def scenario():
            corpus_root = rtl_session.corpus.index.root
            inproc = ReproServer(rtl_session, port=0)
            pooled = ReproServer(
                Session(detector=rtl_session.detector,
                        corpus=Corpus.open(corpus_root)),
                port=0, workers=2)
            await inproc.start()
            await pooled.start()
            a = AsyncClient(port=inproc.port)
            b = AsyncClient(port=pooled.port)
            try:
                ra = await a.query(sources=[ADDER, MUX], k=2)
                rb = await b.query(sources=[ADDER, MUX], k=2)
                assert ra["results"] == rb["results"]
                assert ra["results"][0]["matches"][0]["design"] == "adder"
            finally:
                await a.close()
                await b.close()
                await inproc.stop()
                await pooled.stop()

        asyncio.run(scenario())

    def test_worker_crash_returns_500_then_recovers(self, disk_index,
                                                    queries):
        root, _ = disk_index

        async def scenario():
            server = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0, workers=2)
            await server.start()
            client = AsyncClient(port=server.port)
            try:
                send_msg(server.pool.members[0].conn,
                         {"op": "crash_next"})
                with pytest.raises(ServerError) as excinfo:
                    await client.query(
                        vectors=[_vector_suspects(queries)[0]], k=5)
                assert excinfo.value.status == 500
                assert excinfo.value.error_type == "WorkerPoolError"
                # Not a hang, and the pool healed: next request works.
                out = await client.query(
                    vectors=[_vector_suspects(queries)[0]], k=5)
                assert out["results"][0]["matches"]
                assert server.pool.respawns == 1
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())

    def test_backpressure_429_with_retry_after(self, disk_index, queries):
        root, _ = disk_index

        async def scenario():
            server = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0, max_pending=0)
            await server.start()
            client = AsyncClient(port=server.port)
            try:
                with pytest.raises(ServerError) as excinfo:
                    await client.query(
                        vectors=[_vector_suspects(queries)[0]], k=5)
                assert excinfo.value.status == 429
                # Raw exchange: the 429 carries Retry-After.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                body = json.dumps({"suspects": [
                    {"vector": _vector_suspects(queries)[0]}]}).encode()
                writer.write(
                    b"POST /v1/query HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: " + str(len(body)).encode()
                    + b"\r\nConnection: close\r\n\r\n" + body)
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert raw.split(b"\r\n", 1)[0].endswith(
                    b"429 Too Many Requests")
                assert b"Retry-After: 1" in raw
                stats = await client.stats()
                assert stats["serving"]["rejected_requests"] >= 2
                assert stats["serving"]["max_pending"] == 0
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())

    def test_drain_answers_inflight_then_stops(self, disk_index, queries):
        root, _ = disk_index

        async def scenario():
            server = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0, workers=2,
                                 batch_window_s=0.02)
            await server.start()
            client = AsyncClient(port=server.port)
            pending = asyncio.create_task(client.query(
                vectors=[_vector_suspects(queries)[0]], k=5))
            while server.inflight == 0 and not pending.done():
                await asyncio.sleep(0.001)
            await server.drain(timeout=10)
            out = await pending
            assert out["results"][0]["matches"], \
                "in-flight request lost during drain"
            assert server.pool is None  # workers stopped by the drain
            with pytest.raises((ConnectionError, OSError, ServerError)):
                fresh = AsyncClient(port=server.port)
                await fresh.healthz()
            await client.close()

        asyncio.run(scenario())

    def test_async_client_keepalive_single_connection(self, disk_index):
        root, _ = disk_index

        async def scenario():
            server = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0)
            await server.start()
            client = AsyncClient(port=server.port)
            try:
                for _ in range(6):
                    await client.healthz()
                assert server.connections == 1
                assert server.requests == 6
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())

    def test_json_access_log(self, disk_index, queries):
        root, _ = disk_index

        async def scenario():
            import io
            stream = io.StringIO()
            server = ReproServer(Session(corpus=Corpus.open(root)),
                                 port=0, log_json=True,
                                 log_stream=stream)
            await server.start()
            client = AsyncClient(port=server.port)
            try:
                await client.healthz()
                await client.query(
                    vectors=[_vector_suspects(queries)[0]], k=2)
            finally:
                await client.close()
                await server.stop()
            lines = [json.loads(line) for line
                     in stream.getvalue().splitlines()]
            assert [rec["path"] for rec in lines] == \
                ["/v1/healthz", "/v1/query"]
            assert all(rec["status"] == 200 for rec in lines)
            assert all(rec["seconds"] >= 0 for rec in lines)

        asyncio.run(scenario())
