"""Batched graph inference must reproduce per-graph embeddings.

Equality is asserted to 1e-9 relative tolerance: the math is identical, but
packing graphs into one matrix changes BLAS blocking, which perturbs the
last ~2 bits of the mantissa relative to per-graph matmuls.
"""

import numpy as np
import pytest

from repro.core import HW2VEC
from repro.dataflow import dfg_from_verilog
from repro.nn import batched_embed, batched_forward, pack_prepared

TEXTS = [
    """
    module adder(input [3:0] a, input [3:0] b, output [4:0] s);
      assign s = a + b;
    endmodule
    """,
    """
    module tiny(input a, output y);
      assign y = ~a;
    endmodule
    """,
    """
    module mix(input [7:0] d, input [2:0] sel, output q, output p);
      assign q = d[sel];
      assign p = ^d;
    endmodule
    """,
    """
    module seq(input clk, input d, output reg q);
      always @(posedge clk) q <= d;
    endmodule
    """,
]


@pytest.fixture(scope="module")
def graphs():
    return [dfg_from_verilog(text) for text in TEXTS]


def assert_embeddings_close(actual, desired):
    np.testing.assert_allclose(actual, desired, rtol=1e-9, atol=1e-15)


class TestPacking:
    def test_offsets_and_sizes(self, graphs):
        encoder = HW2VEC(seed=0)
        prepared = [encoder.prepare(g) for g in graphs]
        batch = pack_prepared(prepared)
        assert len(batch) == len(graphs)
        assert batch.sizes == [len(g) for g in graphs]
        assert batch.features.shape[0] == sum(len(g) for g in graphs)
        assert batch.a_norm.shape == (batch.features.shape[0],) * 2

    def test_block_diagonal_no_cross_edges(self, graphs):
        encoder = HW2VEC(seed=0)
        prepared = [encoder.prepare(g) for g in graphs]
        batch = pack_prepared(prepared)
        dense = batch.a_norm.toarray()
        # Everything outside the diagonal blocks must be exactly zero.
        for i in range(len(batch)):
            lo, hi = batch.offsets[i], batch.offsets[i + 1]
            dense[lo:hi, lo:hi] = 0.0
        assert not dense.any()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            pack_prepared([])


class TestBatchedForward:
    @pytest.mark.parametrize("readout", ["max", "mean", "sum"])
    def test_matches_embed_all_readouts(self, graphs, readout):
        encoder = HW2VEC(seed=1, readout=readout)
        batched = batched_embed(encoder, graphs)
        single = np.stack([encoder.embed(g) for g in graphs])
        assert_embeddings_close(batched, single)

    def test_single_graph(self, graphs):
        encoder = HW2VEC(seed=2)
        out = batched_embed(encoder, graphs[:1])
        np.testing.assert_array_equal(out[0], encoder.embed(graphs[0]))

    def test_chunking_is_invisible(self, graphs):
        encoder = HW2VEC(seed=0)
        whole = batched_embed(encoder, graphs, batch_size=64)
        chunked = batched_embed(encoder, graphs, batch_size=1)
        assert_embeddings_close(whole, chunked)

    def test_order_preserved(self, graphs):
        encoder = HW2VEC(seed=0)
        forward = batched_embed(encoder, graphs)
        backward = batched_embed(encoder, list(reversed(graphs)))
        assert_embeddings_close(forward, backward[::-1])

    def test_accepts_prepared_graphs(self, graphs):
        encoder = HW2VEC(seed=0)
        prepared = [encoder.prepare(g) for g in graphs]
        np.testing.assert_array_equal(
            batched_forward(encoder, pack_prepared(prepared)),
            batched_embed(encoder, prepared))

    def test_empty_input(self):
        encoder = HW2VEC(seed=0)
        assert batched_embed(encoder, []).shape == (0, encoder.hidden)

    def test_training_mode_ignored(self, graphs):
        """Batched inference is eval-mode even on a training-mode model."""
        encoder = HW2VEC(seed=0, dropout=0.5)
        encoder.train()
        batched = batched_embed(encoder, graphs)
        single = np.stack([encoder.embed(g) for g in graphs])
        assert_embeddings_close(batched, single)

    def test_embed_many_uses_batched_path(self, graphs):
        encoder = HW2VEC(seed=0)
        np.testing.assert_array_equal(
            encoder.embed_many(graphs),
            batched_embed(encoder, graphs))
