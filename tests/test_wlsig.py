"""Structural WL signatures and rank fusion (``repro.index.wlsig``).

The structural channel exists because chunk-granularity cosines
saturate: these tests pin the properties the partial-theft floor
depends on — fanin-only colors must be theft-invariant (new fanout in a
host must not change a stolen cone's colors), hashing must be stable
across processes, reverse containment must rank a design's own graph
first, and the engine's rank fusion must let either channel promote a
parent the other ranks poorly while reporting the delta-comparable
whole-vs-whole cosine as the score.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import GNN4IP
from repro.dataflow import dfg_from_verilog
from repro.errors import IndexStoreError
from repro.index import (
    FingerprintIndex,
    QueryEngine,
    SignatureScorer,
    build_index,
    wl_colors,
)
from repro.index.shards import unit_rows_f32
from repro.index.wlsig import (
    SIG_NAME,
    load_signatures,
    write_signatures,
)
from repro.ir.graphir import GraphIR

WIDE = """
module wide(input [3:0] a, input [3:0] b, input [3:0] c,
            output [3:0] x, output [3:0] y, output z);
  wire [3:0] u = a & b;
  wire [3:0] v = b | c;
  wire [3:0] w = u ^ v;
  assign x = w + a;
  assign y = w - c;
  assign z = ^(u | v);
endmodule
"""


def chain_graph(labels, extra_fanout=0):
    """A linear chain of op nodes; ``extra_fanout`` appends consumers
    fed by the chain's last node (downstream-only growth)."""
    graph = GraphIR(name="chain", level="rtl")
    previous = None
    for label in labels:
        node = graph.add_node(kind="op", label=label)
        if previous is not None:
            graph.add_edge(previous, node)
        previous = node
    for index in range(extra_fanout):
        sink = graph.add_node(kind="op", label=f"sink{index}")
        graph.add_edge(previous, sink)
    return graph


class TestColors:
    def test_fanin_only_colors_survive_new_fanout(self):
        """Stolen logic keeps its predecessors but grows successors
        inside the host — its colors must not change."""
        stolen = chain_graph(["and", "or", "xor"])
        grafted = chain_graph(["and", "or", "xor"], extra_fanout=3)
        stolen_colors = wl_colors(stolen)
        for color, count in stolen_colors.items():
            assert wl_colors(grafted)[color] >= count

    def test_radius_widens_the_context(self):
        graph = dfg_from_verilog(WIDE)
        assert len(wl_colors(graph, radius=2)) >= len(wl_colors(graph,
                                                               radius=1))

    def test_label_changes_change_colors(self):
        assert wl_colors(chain_graph(["and", "or"])) != \
            wl_colors(chain_graph(["and", "xor"]))

    def test_deterministic_across_processes(self, tmp_path):
        """blake2b-based colors must not depend on PYTHONHASHSEED."""
        script = tmp_path / "colorer.py"
        script.write_text(
            "import json, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.dataflow import dfg_from_verilog\n"
            "from repro.index import wl_colors\n"
            "from test_wlsig import WIDE\n"
            "colors = wl_colors(dfg_from_verilog(WIDE))\n"
            "print(json.dumps(sorted(map(list, colors.items()))))\n")
        here = Path(__file__).parent
        src = here.parent / "src"
        out = subprocess.run(
            [sys.executable, str(script), str(src)],
            env={"PYTHONHASHSEED": "314159",
                 "PYTHONPATH": f"{src}:{here}",
                 "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, check=True)
        local = sorted(map(list, wl_colors(dfg_from_verilog(WIDE)).items()))
        assert json.loads(out.stdout) == json.loads(json.dumps(local))


class TestSignatureStore:
    def test_round_trip(self, tmp_path):
        colors = {"a": wl_colors(chain_graph(["and", "or"])),
                  "b": wl_colors(chain_graph(["xor", "not"]))}
        write_signatures(tmp_path, colors)
        loaded, radius = load_signatures(tmp_path)
        assert loaded == colors
        assert radius == 1

    def test_absent_and_foreign_versions_return_none(self, tmp_path):
        assert load_signatures(tmp_path) is None
        (tmp_path / SIG_NAME).write_text(json.dumps(
            {"version": 999, "radius": 1, "colors": {}}))
        assert load_signatures(tmp_path) is None

    def test_corrupt_file_is_an_error(self, tmp_path):
        (tmp_path / SIG_NAME).write_text("{nope")
        with pytest.raises(IndexStoreError, match="corrupt"):
            load_signatures(tmp_path)


class TestScorer:
    @pytest.fixture
    def scorer(self):
        graphs = {
            "alpha.0": chain_graph(["and", "or", "xor", "add"]),
            "alpha.1": chain_graph(["and", "or", "xor", "sub"]),
            "beta.0": chain_graph(["mux", "not", "shl", "shr"]),
        }
        names = sorted(graphs)
        return SignatureScorer(
            names, [name.split(".")[0] for name in names],
            {name: wl_colors(graph) for name, graph in graphs.items()}
        ), graphs

    def test_own_graph_scores_highest(self, scorer):
        scorer, graphs = scorer
        scores = scorer.scores(wl_colors(graphs["beta.0"]))
        assert int(np.argmax(scores)) == 2

    def test_partial_containment_beats_unrelated(self, scorer):
        scorer, graphs = scorer
        # A "host" carrying half of beta's chain, nothing of alpha's.
        suspect = chain_graph(["mux", "not"], extra_fanout=2)
        scores = scorer.scores(wl_colors(suspect))
        assert scores[2] > scores[0] and scores[2] > scores[1]

    def test_background_calibration_is_deterministic(self, scorer):
        scorer, graphs = scorer
        again = SignatureScorer(
            scorer._names, scorer._designs,
            dict(zip(scorer._names, scorer._entry_colors)))
        query = wl_colors(graphs["alpha.0"])
        np.testing.assert_array_equal(scorer.scores(query),
                                      again.scores(query))


# -- engine rank fusion over synthetic vectors --------------------------------
def _entry(name, parent_id, kind=None, region=None):
    entry = {"name": name, "path": f"{name.split('#')[0]}.v",
             "design": name.split("#")[0], "status": "ok",
             "key": f"{parent_id:064d}", "parent_id": parent_id}
    if kind:
        entry["kind"] = kind
        entry["parent"] = name.split("#")[0]
        entry["region"] = region
    return entry


@pytest.fixture
def fusion_engine():
    """Three designs, one chunk row each, separable vectors."""
    rng = np.random.default_rng(3)
    matrix = unit_rows_f32(rng.standard_normal((6, 16)))
    entries = [
        _entry("alpha", 0), _entry("beta", 1), _entry("gamma", 2),
        _entry("alpha#cone0", 0, "chunk", {"kind": "cone", "label": "a"}),
        _entry("beta#cone0", 1, "chunk", {"kind": "cone", "label": "b"}),
        _entry("gamma#cone0", 2, "chunk", {"kind": "cone", "label": "g"}),
    ]
    return QueryEngine([matrix], entries), matrix


class TestRankFusion:
    def test_struct_channel_promotes_embedding_loser(self, fusion_engine):
        engine, matrix = fusion_engine
        # The suspect's vectors are beta-ish, but structure says gamma.
        parts = np.stack([matrix[1], matrix[4]])
        struct = np.array([-0.5, -0.2, 0.9])
        hits = engine.query_groups(parts, [0, 2],
                                   [None, {"kind": "cone"}], k=3,
                                   struct=[struct])[0]
        assert hits[0].design in ("beta", "gamma")
        assert {h.design for h in hits[:2]} == {"beta", "gamma"}
        # Reported score is the whole-vs-design-row cosine, never a
        # chunk cosine.
        for hit in hits:
            row = ["alpha", "beta", "gamma"].index(hit.design)
            expected = float(np.dot(matrix[row], parts[0]))
            assert hit.score == pytest.approx(expected, abs=1e-6)

    def test_embedding_channel_still_carries_its_winners(self,
                                                         fusion_engine):
        engine, matrix = fusion_engine
        # Structure is uninformative (all equal): embedding rank wins.
        parts = np.stack([matrix[0], matrix[3]])
        hits = engine.query_groups(parts, [0, 2],
                                   [None, {"kind": "cone"}], k=1,
                                   struct=[np.zeros(3)])[0]
        assert hits[0].design == "alpha"
        assert hits[0].coverage == pytest.approx(1.0)

    def test_none_struct_keeps_legacy_ranking(self, fusion_engine):
        engine, matrix = fusion_engine
        parts = np.stack([matrix[1], matrix[4]])
        fused = engine.query_groups(parts, [0, 2], None, k=3,
                                    struct=[None])
        legacy = engine.query_groups(parts, [0, 2], None, k=3)
        assert [(h.design, h.score) for h in fused[0]] == \
            [(h.design, h.score) for h in legacy[0]]

    def test_wrong_struct_shape_rejected(self, fusion_engine):
        engine, matrix = fusion_engine
        with pytest.raises(IndexStoreError, match="structural scores"):
            engine.query_groups(matrix[:1], [0, 1], None, k=1,
                                struct=[np.zeros(7)])

    def test_wrong_struct_length_rejected(self, fusion_engine):
        engine, matrix = fusion_engine
        with pytest.raises(IndexStoreError, match="score vectors"):
            engine.query_groups(matrix[:2], [0, 1, 2], None, k=1,
                                struct=[np.zeros(3)])


# -- signatures through the on-disk index -------------------------------------
class TestIndexedSignatures:
    @pytest.fixture(scope="class")
    def netlist_index(self, tmp_path_factory):
        from repro.designs import materialize_netlist_corpus

        root = tmp_path_factory.mktemp("sigidx")
        paths = materialize_netlist_corpus(root / "corpus",
                                           families=["adder8", "cmp8"],
                                           instances_per_design=1, seed=0)
        model = GNN4IP(seed=0, featurizer="netlist")
        index, report = build_index(root / "idx", paths, model,
                                    level="netlist", jobs=1)
        return index, model

    def test_build_writes_signatures_for_every_entry(self, netlist_index):
        index, _ = netlist_index
        assert index.has_chunks
        colors, _ = load_signatures(index.root)
        assert sorted(colors) == sorted(
            e["name"] for e in index.entries if e["status"] == "ok")
        assert index.signature_scorer() is not None
        assert index.stats()["signed_entries"] == len(index)

    def test_partial_suspect_ranks_its_victim_first(self, netlist_index):
        index, model = netlist_index
        frontend = index.frontend()
        ok = [e for e in index.entries if e["status"] == "ok"]
        victim = frontend.extract_file(ok[0]["path"])
        # Steal roughly half the victim: a fanin-closed node subset.
        members = victim.reachable_from([len(victim) - 1])
        if len(members) < 10:
            members = set(range(len(victim) // 2))
        suspect = victim.subgraph(members)
        hits = index.query_graphs([suspect], model, k=2)[0]
        assert hits[0].design == ok[0]["design"]

    def test_chunkless_build_writes_no_signatures(self, tmp_path):
        sources = tmp_path / "src"
        sources.mkdir()
        (sources / "tiny.v").write_text(
            "module tiny(input a, input b, output y);\n"
            "  assign y = a & b;\nendmodule\n")
        model = GNN4IP(seed=0)
        index, _ = build_index(tmp_path / "idx",
                               [sources / "tiny.v"], model, jobs=1)
        assert not index.has_chunks
        assert not (index.root / SIG_NAME).is_file()
        assert index.signature_scorer() is None
        assert index.stats()["signed_entries"] == 0

    def test_scorer_disabled_when_entries_unsigned(self, netlist_index):
        index, _ = netlist_index
        colors, radius = load_signatures(index.root)
        victim = sorted(colors)[0]
        trimmed = {name: counts for name, counts in colors.items()
                   if name != victim}
        write_signatures(index.root, trimmed, radius=radius)
        try:
            reloaded = FingerprintIndex.load(index.root)
            assert reloaded.signature_scorer() is None
            assert reloaded.stats()["signed_entries"] == 0
        finally:
            write_signatures(index.root, colors, radius=radius)
