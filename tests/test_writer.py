"""Writer round-trip tests: parse -> write -> parse must be stable."""

import pytest

from repro.verilog import parse, parse_module, write_module, write_source

EXAMPLES = [
    "module m(input a, output y); assign y = ~a; endmodule",
    """
module alu(input [7:0] a, input [7:0] b, input [2:0] op,
           output reg [7:0] y);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = a - b;
      default: y = a ^ b;
    endcase
  end
endmodule
""",
    """
module seq(input clk, input rst, output reg [3:0] q);
  always @(posedge clk or posedge rst) begin
    if (rst)
      q <= 4'd0;
    else
      q <= q + 4'd1;
  end
endmodule
""",
    """
module top(input a, input b, output s, output c);
  wire t;
  half h1 (.x(a), .y(b), .s(s), .c(t));
  assign c = t;
endmodule
module half(input x, input y, output s, output c);
  xor (s, x, y);
  and (c, x, y);
endmodule
""",
    """
module lv(input [7:0] d, output [7:0] q);
  assign q[3:0] = d[7:4];
  assign q[7:4] = {d[0], d[1], d[2], d[3]};
endmodule
""",
    """
module loops(input [7:0] d, output reg [3:0] n);
  integer i;
  always @(*) begin
    n = 4'd0;
    for (i = 0; i < 8; i = i + 1)
      if (d[i])
        n = n + 4'd1;
  end
endmodule
""",
]


def canonical(text):
    """Write the parse of ``text`` — the canonical form."""
    return write_source(parse(text))


class TestRoundTrip:
    @pytest.mark.parametrize("index", range(len(EXAMPLES)))
    def test_roundtrip_fixpoint(self, index):
        """write(parse(x)) must be a fixpoint of write . parse."""
        first = canonical(EXAMPLES[index])
        second = canonical(first)
        assert first == second

    @pytest.mark.parametrize("index", range(len(EXAMPLES)))
    def test_roundtrip_preserves_structure(self, index):
        original = parse(EXAMPLES[index])
        rewritten = parse(write_source(original))
        assert [m.name for m in original.modules] == \
            [m.name for m in rewritten.modules]
        for before, after in zip(original.modules, rewritten.modules):
            assert before.port_names() == after.port_names()
            assert len(before.items) == len(after.items)


class TestFormatting:
    def test_parameter_emitted(self):
        module = parse_module(
            "module m #(parameter W = 8) (input [W-1:0] x); endmodule")
        text = write_module(module)
        assert "#(parameter W = 8)" in text

    def test_reg_port_emitted(self):
        module = parse_module("module m(output reg q); endmodule")
        assert "output reg q" in write_module(module)

    def test_based_const_preserved(self):
        module = parse_module(
            "module m(output [7:0] y); assign y = 8'hA5; endmodule")
        assert "8'hA5" in write_module(module)

    def test_sensitivity_list_edges(self):
        module = parse_module("""
module m(input clk, input rst, output reg q);
  always @(posedge clk or negedge rst) q <= 1'b1;
endmodule
""")
        text = write_module(module)
        assert "posedge clk" in text
        assert "negedge rst" in text

    def test_gate_written_as_primitive(self):
        module = parse_module(
            "module m(input a, input b, output y); and g (y, a, b); "
            "endmodule")
        assert "and g (y, a, b);" in write_module(module)
