"""Tests for nn layers: Module, Linear, GCNConv, Dropout, normalization."""

import numpy as np
import pytest
from scipy import sparse

from repro.nn.layers import (
    Dropout,
    GCNConv,
    Linear,
    Module,
    glorot,
    normalize_adjacency,
)
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(7)


def chain_adjacency(n):
    rows = list(range(n - 1))
    cols = list(range(1, n))
    data = np.ones(n - 1)
    matrix = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    return matrix.maximum(matrix.T)


class TestModuleInfrastructure:
    def test_parameters_collected_recursively(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer_a = self.register_module("a", Linear(2, 3))
                self.layer_b = self.register_module("b", Linear(3, 1))

        net = Net()
        assert len(net.parameters()) == 4  # two weights, two biases

    def test_named_parameters_have_prefixes(self):
        conv = GCNConv(4, 2)
        names = [name for name, _ in conv.named_parameters()]
        assert "weight" in names
        assert "bias" in names

    def test_state_dict_roundtrip(self):
        layer = Linear(3, 2, rng=RNG)
        state = layer.state_dict()
        clone = Linear(3, 2, rng=np.random.default_rng(99))
        clone.load_state_dict(state)
        np.testing.assert_array_equal(layer.weight.data, clone.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        layer = Linear(3, 2)
        bad = {name: np.zeros((1, 1)) for name, _ in layer.named_parameters()}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_load_state_dict_missing_key(self):
        layer = Linear(3, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_train_eval_propagates(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.drop = self.register_module("d", Dropout(0.5))

        net = Net()
        net.eval()
        assert not net.drop.training
        net.train()
        assert net.drop.training

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=RNG)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_glorot_bounds(self):
        weights = glorot((100, 50), RNG)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(weights) <= limit)


class TestNormalizeAdjacency:
    def test_self_loops_added(self):
        adjacency = chain_adjacency(3)
        normalized = normalize_adjacency(adjacency)
        assert np.all(normalized.diagonal() > 0)

    def test_rows_of_isolated_node(self):
        matrix = sparse.csr_matrix((3, 3))
        normalized = normalize_adjacency(matrix)
        # With self loops each isolated node normalizes to exactly 1.
        np.testing.assert_allclose(normalized.diagonal(), 1.0)

    def test_symmetric_output(self):
        normalized = normalize_adjacency(chain_adjacency(5))
        dense = normalized.toarray()
        np.testing.assert_allclose(dense, dense.T)

    def test_matches_formula(self):
        adjacency = chain_adjacency(4)
        a_hat = adjacency.toarray() + np.eye(4)
        degree = a_hat.sum(axis=1)
        expected = a_hat / np.sqrt(np.outer(degree, degree))
        np.testing.assert_allclose(
            normalize_adjacency(adjacency).toarray(), expected)

    def test_no_self_loops_option(self):
        normalized = normalize_adjacency(chain_adjacency(3),
                                         add_self_loops=False)
        assert normalized.diagonal().sum() == 0


class TestGCNConv:
    def test_forward_shape(self):
        conv = GCNConv(6, 4, rng=RNG)
        a_norm = normalize_adjacency(chain_adjacency(5))
        out = conv(Tensor(np.ones((5, 6))), a_norm)
        assert out.shape == (5, 4)

    def test_propagation_mixes_neighbors(self):
        """A node's output must depend on its neighbor's features."""
        conv = GCNConv(2, 2, bias=False, rng=RNG)
        a_norm = normalize_adjacency(chain_adjacency(2))
        x0 = np.array([[1.0, 0.0], [0.0, 0.0]])
        x1 = np.array([[1.0, 0.0], [5.0, 0.0]])
        out0 = conv(Tensor(x0), a_norm).data
        out1 = conv(Tensor(x1), a_norm).data
        assert not np.allclose(out0[0], out1[0])

    def test_isolated_graph_is_dense_linear(self):
        """With no edges, GCN reduces to a plain linear layer."""
        conv = GCNConv(3, 2, bias=False, rng=RNG)
        a_norm = normalize_adjacency(sparse.csr_matrix((4, 4)))
        x = RNG.normal(size=(4, 3))
        out = conv(Tensor(x), a_norm).data
        np.testing.assert_allclose(out, x @ conv.weight.data)

    def test_gradient_reaches_weight(self):
        conv = GCNConv(3, 2, rng=RNG)
        a_norm = normalize_adjacency(chain_adjacency(4))
        conv(Tensor(RNG.normal(size=(4, 3))), a_norm).pow(2.0).sum().backward()
        assert conv.weight.grad is not None
        assert np.linalg.norm(conv.weight.grad) > 0


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100)))).data
        values = set(np.unique(np.round(out, 6)))
        assert values <= {0.0, 2.0}
        # roughly half survive
        assert 0.35 < (out > 0).mean() < 0.65

    def test_zero_rate_identity(self):
        drop = Dropout(0.0)
        x = Tensor(RNG.normal(size=(5, 5)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
