"""CLI tests: extract-dfg / train / compare / corpus round trips."""

import numpy as np
import pytest

from repro.cli import build_parser, load_model, main, save_model
from repro.core import GNN4IP
from repro.errors import ModelError

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

ADDER_VARIANT = """
module adder(input [3:0] x, input [3:0] y, output [4:0] total);
  wire [4:0] t;
  assign t = x + y;
  assign total = t;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""


@pytest.fixture
def verilog_files(tmp_path):
    paths = {}
    for name, text in (("adder.v", ADDER), ("adder2.v", ADDER_VARIANT),
                       ("mux.v", MUX)):
        path = tmp_path / name
        path.write_text(text)
        paths[name] = str(path)
    return paths


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_extract_args(self):
        args = build_parser().parse_args(
            ["extract-dfg", "f.v", "--labels"])
        assert args.file == "f.v"
        assert args.labels


class TestExtract:
    def test_extract_runs(self, verilog_files, capsys):
        assert main(["extract-dfg", verilog_files["adder.v"]]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out
        assert "design: adder" in out

    def test_extract_labels(self, verilog_files, capsys):
        main(["extract-dfg", verilog_files["adder.v"], "--labels"])
        assert "plus" in capsys.readouterr().out

    def test_extract_edges(self, verilog_files, capsys):
        main(["extract-dfg", verilog_files["adder.v"], "--edges"])
        assert "->" in capsys.readouterr().out


class TestCompareAndModelIO:
    def test_untrained_compare_needs_opt_in(self, verilog_files, capsys):
        code = main(["compare", verilog_files["adder.v"],
                     verilog_files["mux.v"]])
        captured = capsys.readouterr()
        assert code == 1
        assert "allow-untrained" in captured.err
        assert "similarity:" not in captured.out

    def test_untrained_compare_warns(self, verilog_files, capsys):
        code = main(["compare", verilog_files["adder.v"],
                     verilog_files["mux.v"], "--allow-untrained"])
        captured = capsys.readouterr()
        assert "similarity:" in captured.out
        assert "untrained" in captured.err
        assert code in (0, 2)

    def test_identical_files_are_piracy(self, verilog_files, capsys):
        code = main(["compare", verilog_files["adder.v"],
                     verilog_files["adder.v"], "--delta", "0.9",
                     "--allow-untrained"])
        assert code == 2  # piracy detected -> exit code 2
        assert "PIRACY" in capsys.readouterr().out

    def test_save_load_roundtrip(self, tmp_path):
        model = GNN4IP(seed=1, delta=0.37)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.delta == pytest.approx(0.37)
        for (name_a, tensor_a), (name_b, tensor_b) in zip(
                model.encoder.named_parameters(),
                loaded.encoder.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(tensor_a.data, tensor_b.data)

    def test_save_load_preserves_architecture(self, tmp_path):
        model = GNN4IP(seed=2, hidden=8, num_layers=3)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.encoder.hidden == 8
        assert len(loaded.encoder.convs) == 3

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ModelError, match="not found"):
            load_model(str(tmp_path / "absent.npz"))

    def test_load_foreign_npz(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, weights=np.zeros((3, 3)), other=np.ones(4))
        with pytest.raises(ModelError, match="not a gnn4ip model"):
            load_model(path)

    def test_load_incompatible_state(self, tmp_path):
        path = str(tmp_path / "partial.npz")
        np.savez(path, __delta__=np.array(0.5), junk=np.zeros(2))
        with pytest.raises(ModelError, match="compatible"):
            load_model(path)

    def test_load_non_npz_file(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_text("definitely not a numpy archive")
        with pytest.raises(ModelError):
            load_model(str(path))

    def test_cli_reports_model_errors(self, verilog_files, tmp_path,
                                      capsys):
        code = main(["compare", verilog_files["adder.v"],
                     verilog_files["mux.v"],
                     "--model", str(tmp_path / "absent.npz")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compare_with_saved_model(self, verilog_files, tmp_path,
                                      capsys):
        path = str(tmp_path / "model.npz")
        save_model(GNN4IP(seed=0, delta=0.5), path)
        main(["compare", verilog_files["adder.v"], verilog_files["adder2.v"],
              "--model", path])
        assert "similarity:" in capsys.readouterr().out


class TestVersionAndJson:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_compare_json_output(self, verilog_files, tmp_path, capsys):
        import json

        path = str(tmp_path / "model.npz")
        save_model(GNN4IP(seed=0, delta=0.5), path)
        code = main(["compare", verilog_files["adder.v"],
                     verilog_files["adder.v"], "--model", path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["is_piracy"] is True
        assert payload["verdict"] == "PIRACY"
        assert payload["score"] == pytest.approx(1.0)
        assert payload["delta"] == pytest.approx(0.5)
        assert code == 2


class TestCorpusCommand:
    def test_lists_families(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "adder8" in out
        assert "mips_pipeline" in out


class TestTrainCommand:
    def test_small_training_run(self, tmp_path, capsys):
        path = str(tmp_path / "m.npz")
        code = main(["train", "--families", "adder8", "cmp8", "counter8",
                     "--instances", "3", "--epochs", "3", "--save", path])
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        loaded = load_model(path)
        assert isinstance(loaded, GNN4IP)
