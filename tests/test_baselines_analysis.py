"""Tests for rival baselines and embedding-analysis utilities."""

import numpy as np
import pytest

from repro.analysis import (
    PCA,
    TSNE,
    centroid_separation,
    pca_project,
    purity_with_2means,
    silhouette_score,
    tsne_project,
)
from repro.baselines import (
    RAI_ISVLSI19,
    WatermarkScheme,
    compare_with_gnn,
    ged_similarity,
    greedy_edit_distance,
    probability_of_coincidence,
    spectral_similarity,
    wl_similarity,
)
from repro.dataflow import dfg_from_verilog

XOR_TEXT = """
module m(input a, input b, output y);
  assign y = a ^ b;
endmodule
"""

ADDER_TEXT = """
module m(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""


@pytest.fixture(scope="module")
def xor_graph():
    return dfg_from_verilog(XOR_TEXT)


@pytest.fixture(scope="module")
def adder_graph():
    return dfg_from_verilog(ADDER_TEXT)


class TestGraphSimilarityBaselines:
    def test_wl_self_similarity(self, xor_graph):
        assert wl_similarity(xor_graph, xor_graph) == pytest.approx(1.0)

    def test_wl_discriminates(self, xor_graph, adder_graph):
        cross = wl_similarity(xor_graph, adder_graph)
        assert cross < wl_similarity(xor_graph, xor_graph)

    def test_wl_symmetric(self, xor_graph, adder_graph):
        assert wl_similarity(xor_graph, adder_graph) == pytest.approx(
            wl_similarity(adder_graph, xor_graph))

    def test_ged_identity_zero(self, xor_graph):
        assert greedy_edit_distance(xor_graph, xor_graph) == 0
        assert ged_similarity(xor_graph, xor_graph) == pytest.approx(1.0)

    def test_ged_detects_difference(self, xor_graph, adder_graph):
        assert greedy_edit_distance(xor_graph, adder_graph) > 0
        assert ged_similarity(xor_graph, adder_graph) < 1.0

    def test_spectral_self(self, xor_graph):
        assert spectral_similarity(xor_graph, xor_graph) == pytest.approx(1.0)

    def test_spectral_range(self, xor_graph, adder_graph):
        value = spectral_similarity(xor_graph, adder_graph)
        assert 0.0 <= value <= 1.0


class TestWatermark:
    def test_probability_of_coincidence(self):
        assert probability_of_coincidence(1) == 0.5
        assert probability_of_coincidence(10) == pytest.approx(2 ** -10)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            probability_of_coincidence(0)

    def test_rai_reference_magnitude(self):
        # The paper cites P_c = 1.11e-87: a ~289-bit signature.
        assert RAI_ISVLSI19.p_coincidence == pytest.approx(1.11e-87,
                                                           rel=0.15)

    def test_scheme_summary(self):
        scheme = WatermarkScheme(signature_bits=8, area_overhead=0.1)
        summary = scheme.summary()
        assert summary["p_coincidence"] == pytest.approx(1 / 256)

    def test_compare_table(self):
        table = compare_with_gnn(6.65e-4)
        assert table["gnn_overhead"] == 0.0
        assert table["watermark_overhead"] > 0.0


class TestPCA:
    def test_projects_to_requested_dims(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(40, 8))
        out = pca_project(data, 2)
        assert out.shape == (40, 2)

    def test_first_component_captures_main_axis(self):
        rng = np.random.default_rng(1)
        direction = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        data = (rng.normal(size=(200, 1)) * 10) * direction
        data += rng.normal(scale=0.1, size=(200, 3))
        pca = PCA(1).fit(data)
        alignment = abs(pca.components_[0] @ direction)
        assert alignment > 0.99

    def test_explained_variance_sorted(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(50, 5)) * np.array([5, 3, 1, 0.5, 0.1])
        pca = PCA(5).fit(data)
        ratios = pca.explained_variance_ratio_
        assert all(ratios[i] >= ratios[i + 1] for i in range(len(ratios) - 1))
        assert ratios.sum() <= 1.0 + 1e-9

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.ones((3, 3)))

    def test_separated_clusters_stay_separated(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(30, 6)) + 10
        b = rng.normal(size=(30, 6)) - 10
        projected = pca_project(np.vstack([a, b]), 2)
        labels = np.array([0] * 30 + [1] * 30)
        assert centroid_separation(projected, labels) > 3.0


class TestTSNE:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(30, 5))
        out = tsne_project(data, 2, n_iter=120)
        assert out.shape == (30, 2)

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.ones((2, 3)))

    def test_separates_two_blobs(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(20, 4)) + 8
        b = rng.normal(size=(20, 4)) - 8
        out = tsne_project(np.vstack([a, b]), 2, perplexity=10, n_iter=500,
                           seed=1)
        labels = np.array([0] * 20 + [1] * 20)
        assert purity_with_2means(out, labels) > 0.9

    def test_deterministic_for_seed(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(15, 4))
        first = tsne_project(data, seed=7, n_iter=60)
        second = tsne_project(data, seed=7, n_iter=60)
        np.testing.assert_array_equal(first, second)


class TestClusterMetrics:
    def test_silhouette_separated(self):
        a = np.zeros((10, 2))
        b = np.ones((10, 2)) * 100
        labels = np.array([0] * 10 + [1] * 10)
        assert silhouette_score(np.vstack([a, b]), labels) > 0.9

    def test_silhouette_needs_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((5, 2)), np.zeros(5))

    def test_centroid_separation_two_required(self):
        with pytest.raises(ValueError):
            centroid_separation(np.ones((6, 2)), np.array([0, 1, 2] * 2))

    def test_purity_perfect(self):
        a = np.zeros((8, 2))
        b = np.ones((8, 2)) * 50
        labels = np.array([0] * 8 + [1] * 8)
        assert purity_with_2means(np.vstack([a, b]), labels) == 1.0
