"""Property tests for the obfuscation transforms (ISSUE 5 hardening).

Two properties back the whole evaluation harness:

1. **Semantics preservation** — every registered transform, and the
   composed :func:`~repro.obfuscate.transforms.obfuscate` pipeline, must
   keep the netlist functionally equivalent across multiple seeds, on
   combinational *and* sequential designs.  (All registered transforms
   are semantics-preserving; an intentionally lossy transform would be
   excluded from ``SEMANTICS_PRESERVING`` scenario pipelines and marked
   in its docstring.)
2. **Per-seed determinism** — ``obfuscate(netlist, seed=s)`` must return
   a byte-identical netlist every time for the same seed: the corpus
   builders, the scenario generator, and the golden-report test all rely
   on it.

Plus the structural properties the evaluation's round-trip treatment
needs: transforms never touch a flip-flop's clock pin, and obfuscated
netlists survive write -> parse -> synthesize unchanged.
"""

import numpy as np
import pytest

from repro.netlist.cells import DFF
from repro.netlist.verilog_io import write_netlist
from repro.obfuscate import TRANSFORMS, obfuscate
from repro.sim import check_netlists_equivalent
from repro.synth import synthesize_verilog

COMB_SOURCE = """
module comb(input [3:0] a, input [3:0] b, input sel,
            output [4:0] y, output p);
  wire [3:0] m;
  assign m = sel ? (a ^ b) : (a & b);
  assign y = {1'b0, m} + {1'b0, b};
  assign p = ^a;
endmodule
"""

SEQ_SOURCE = """
module seq(input clk, input rst, input en, input d, output reg [3:0] q,
           output any);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= {q[2:0], d ^ q[3]};
  end
  assign any = |q;
endmodule
"""

SEEDS = (11, 12, 13)


@pytest.fixture(scope="module")
def comb_netlist():
    return synthesize_verilog(COMB_SOURCE)


@pytest.fixture(scope="module")
def seq_netlist():
    return synthesize_verilog(SEQ_SOURCE)


def netlist_signature(netlist):
    """A byte-precise structural identity for determinism checks."""
    return (netlist.name, tuple(netlist.inputs), tuple(netlist.outputs),
            tuple(netlist.clocks),
            tuple((g.cell, g.name, g.output, tuple(g.inputs))
                  for g in netlist.gates))


class TestSemanticsPreserved:
    """Round-trip property: transform(netlist) === netlist, >= 3 seeds."""

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_transform_combinational(self, comb_netlist, name, seed):
        transformed = TRANSFORMS[name](comb_netlist.copy(),
                                       np.random.default_rng(seed))
        transformed.validate()
        report = check_netlists_equivalent(comb_netlist, transformed,
                                           vectors=32, seed=seed)
        assert report.equivalent, \
            f"{name} seed={seed}: {report.counterexample}"

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_transform_sequential(self, seq_netlist, name, seed):
        transformed = TRANSFORMS[name](seq_netlist.copy(),
                                       np.random.default_rng(seed))
        transformed.validate()
        report = check_netlists_equivalent(seq_netlist, transformed,
                                           vectors=10, seed=seed)
        assert report.equivalent, \
            f"{name} seed={seed}: {report.counterexample}"

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("strength", (1, 2, 3))
    def test_pipeline_sequential(self, seq_netlist, seed, strength):
        transformed = obfuscate(seq_netlist, seed=seed, strength=strength)
        report = check_netlists_equivalent(seq_netlist, transformed,
                                           vectors=10, seed=seed)
        assert report.equivalent, f"strength={strength} seed={seed}"


class TestDeterminism:
    """Same seed -> byte-identical netlist, different seed -> different."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_obfuscate_deterministic_per_seed(self, comb_netlist, seed):
        first = obfuscate(comb_netlist, seed=seed, strength=3)
        second = obfuscate(comb_netlist, seed=seed, strength=3)
        assert netlist_signature(first) == netlist_signature(second)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_obfuscate_deterministic_sequential(self, seq_netlist, seed):
        first = obfuscate(seq_netlist, seed=seed, strength=2)
        second = obfuscate(seq_netlist, seed=seed, strength=2)
        assert netlist_signature(first) == netlist_signature(second)

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_each_transform_deterministic(self, comb_netlist, name):
        first = TRANSFORMS[name](comb_netlist.copy(),
                                 np.random.default_rng(5))
        second = TRANSFORMS[name](comb_netlist.copy(),
                                  np.random.default_rng(5))
        assert netlist_signature(first) == netlist_signature(second)

    def test_different_seeds_differ(self, comb_netlist):
        signatures = {netlist_signature(obfuscate(comb_netlist, seed=s,
                                                  strength=2))
                      for s in SEEDS}
        assert len(signatures) == len(SEEDS)


class TestStructuralProperties:
    """Invariants the evaluation round-trip treatment relies on."""

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_clock_pins_untouched(self, seq_netlist, name):
        """No transform may route a flip-flop clock through logic."""
        transformed = TRANSFORMS[name](seq_netlist.copy(),
                                       np.random.default_rng(3))
        clocks = set(transformed.clocks)
        driven = {g.output for g in transformed.gates}
        for gate in transformed.gates:
            if gate.cell == DFF:
                assert gate.inputs[1] in clocks
                assert gate.inputs[1] not in driven

    @pytest.mark.parametrize("seed", SEEDS)
    def test_obfuscated_netlist_resynthesizes_equivalent(self, seq_netlist,
                                                         seed):
        """write -> parse -> synthesize keeps the obfuscated behaviour."""
        transformed = obfuscate(seq_netlist, seed=seed, strength=2)
        resynthesized = synthesize_verilog(write_netlist(transformed))
        report = check_netlists_equivalent(transformed, resynthesized,
                                           vectors=10, seed=seed)
        assert report.equivalent
