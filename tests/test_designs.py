"""Design-family tests: generation, DFG extraction, functional checks."""

import pytest

from repro.dataflow import dfg_from_verilog, elaborate
from repro.designs import (
    SYNTHESIZABLE_FAMILIES,
    all_families,
    family_names,
    generate_corpus,
    get_family,
)
from repro.errors import DatasetError
from repro.sim import RTLSimulator, check_netlists_equivalent
from repro.synth import synthesize, synthesize_verilog
from repro.verilog import parse_source


def rtl_sim_for(family_name, style=None, seed=0):
    family = get_family(family_name)
    variant = family.generate(seed=seed, style=style, rewrite=False)
    flat = elaborate(parse_source(variant.verilog), top=variant.top)
    return RTLSimulator(flat)


class TestRegistry:
    def test_enough_families(self):
        # The paper's corpus has 50 distinct designs; ours is of the same
        # order of magnitude.
        assert len(family_names()) >= 35

    def test_unknown_family_raises(self):
        with pytest.raises(DatasetError):
            get_family("nonexistent")

    def test_every_family_has_two_styles(self):
        for family in all_families():
            assert len(family.style_names()) >= 2, family.name

    def test_generate_unknown_style(self):
        with pytest.raises(DatasetError):
            get_family("adder8").generate(style="quantum")


class TestGenerationAndDFG:
    @pytest.mark.parametrize("name", family_names())
    def test_all_styles_produce_dfgs(self, name):
        family = get_family(name)
        for style in family.style_names():
            variant = family.generate(seed=0, style=style, rewrite=False)
            graph = dfg_from_verilog(variant.verilog, top=variant.top)
            assert len(graph) > 3, f"{name}/{style} produced a tiny DFG"
            assert graph.roots(), f"{name}/{style} has no outputs"

    @pytest.mark.parametrize("name", ["adder8", "alu", "mips_single"])
    def test_rewritten_variants_differ_textually(self, name):
        family = get_family(name)
        first = family.generate(seed=1, style=family.style_names()[0])
        second = family.generate(seed=2, style=family.style_names()[0])
        assert first.verilog != second.verilog

    def test_variants_cycle_styles(self):
        family = get_family("adder8")
        variants = family.variants(6, seed=0)
        styles = {v.style for v in variants}
        assert styles == set(family.style_names())

    def test_corpus_generation(self):
        corpus = generate_corpus(families=["adder8", "cmp8"],
                                 instances_per_design=3, seed=0)
        assert len(corpus) == 6
        assert {v.design for v in corpus} == {"adder8", "cmp8"}


class TestFunctionalCorrectness:
    """Each family style must implement the documented function."""

    def test_adder8_styles_agree(self):
        family = get_family("adder8")
        for style in family.style_names():
            sim = rtl_sim_for("adder8", style)
            for a, b, cin in [(0, 0, 0), (255, 1, 0), (100, 55, 1),
                              (170, 85, 1)]:
                out = sim.evaluate({"a": a, "b": b, "cin": cin})
                total = a + b + cin
                assert out["sum"] == total & 0xFF, style
                assert out["cout"] == total >> 8, style

    def test_mult4_styles_agree(self):
        for style in get_family("mult4").style_names():
            sim = rtl_sim_for("mult4", style)
            for a in (0, 3, 9, 15):
                for b in (0, 7, 15):
                    assert sim.evaluate({"a": a, "b": b})["p"] == a * b

    def test_cmp8_styles_agree(self):
        for style in get_family("cmp8").style_names():
            sim = rtl_sim_for("cmp8", style)
            for a, b in [(1, 2), (2, 1), (7, 7), (255, 0)]:
                out = sim.evaluate({"a": a, "b": b})
                assert out["lt"] == int(a < b), style
                assert out["eq"] == int(a == b), style
                assert out["gt"] == int(a > b), style

    def test_prienc8_styles_agree(self):
        for style in get_family("prienc8").style_names():
            sim = rtl_sim_for("prienc8", style)
            assert sim.evaluate({"req": 0})["valid"] == 0
            for bit in range(8):
                out = sim.evaluate({"req": 1 << bit})
                assert out["idx"] == bit, style
                assert out["valid"] == 1
            out = sim.evaluate({"req": 0b10000100})
            assert out["idx"] == 7, style

    def test_bin2gray_and_back(self):
        to_gray = rtl_sim_for("bin2gray8", "shift")
        to_bin = rtl_sim_for("gray2bin8", "prefix")
        for value in (0, 1, 77, 128, 255):
            gray = to_gray.evaluate({"bin": value})["gray"]
            assert gray == value ^ (value >> 1)
            assert to_bin.evaluate({"gray": gray})["bin"] == value

    def test_popcount8(self):
        for style in get_family("popcount8").style_names():
            sim = rtl_sim_for("popcount8", style)
            for value in (0, 0xFF, 0b1010_1010, 0b0001_0000):
                assert sim.evaluate({"d": value})["count"] == \
                    bin(value).count("1"), style

    def test_counter8_counts(self):
        for style in get_family("counter8").style_names():
            sim = rtl_sim_for("counter8", style)
            sim.set_inputs({"rst": 1, "en": 0})
            sim.clock()
            assert sim.value("q") == 0
            sim.set_inputs({"rst": 0, "en": 1})
            for expected in (1, 2, 3):
                sim.clock()
                assert sim.value("q") == expected, style
            sim.set_inputs({"en": 0})
            sim.clock()
            assert sim.value("q") == 3

    def test_lfsr8_styles_agree_and_cycle(self):
        sims = [rtl_sim_for("lfsr8", s)
                for s in get_family("lfsr8").style_names()]
        for sim in sims:
            sim.set_inputs({"rst": 1})
            sim.clock()
            sim.set_inputs({"rst": 0})
        states = []
        for _ in range(20):
            for sim in sims:
                sim.clock()
            values = {sim.value("state") for sim in sims}
            assert len(values) == 1  # all styles track each other
            states.append(values.pop())
        assert len(set(states)) > 10  # long period
        assert 0 not in states        # LFSR never reaches all-zero

    def test_crc8_styles_agree(self):
        sims = [rtl_sim_for("crc8", s)
                for s in get_family("crc8").style_names()]
        for data, crc_in in [(0x00, 0x00), (0xFF, 0x00), (0x31, 0xA5)]:
            results = {s.evaluate({"data": data, "crc_in": crc_in})["crc_out"]
                       for s in sims}
            assert len(results) == 1

    def test_crc8_known_vector(self):
        # CRC-8 (poly 0x07, init 0) of single byte 0x00 is 0x00.
        sim = rtl_sim_for("crc8", "loop")
        assert sim.evaluate({"data": 0, "crc_in": 0})["crc_out"] == 0

    def test_hamming_roundtrip_with_error(self):
        encoder = rtl_sim_for("hamenc74", "explicit")
        decoder = rtl_sim_for("hamdec74", "case_fix")
        for data in range(16):
            code = encoder.evaluate({"d": data})["code"]
            out = decoder.evaluate({"code": code})
            assert out["d"] == data
            assert out["err"] == 0
            for bit in range(7):
                corrupted = code ^ (1 << bit)
                fixed = decoder.evaluate({"code": corrupted})
                assert fixed["d"] == data, f"data={data} bit={bit}"
                assert fixed["err"] == 1

    def test_fifo_push_pop(self):
        for style in get_family("fifo4x8").style_names():
            sim = rtl_sim_for("fifo4x8", style)
            sim.set_inputs({"rst": 1, "push": 0, "pop": 0, "din": 0})
            sim.clock()
            sim.set_inputs({"rst": 0})
            assert sim.value("empty") == 1
            for value in (11, 22, 33):
                sim.set_inputs({"push": 1, "pop": 0, "din": value})
                sim.clock()
            sim.set_inputs({"push": 0})
            assert sim.value("empty") == 0
            seen = []
            for _ in range(3):
                seen.append(sim.value("dout"))
                sim.set_inputs({"pop": 1})
                sim.clock()
                sim.set_inputs({"pop": 0})
            assert seen == [11, 22, 33], style
            assert sim.value("empty") == 1

    def test_vending_machine_vends_at_twenty(self):
        for style in get_family("vending").style_names():
            sim = rtl_sim_for("vending", style)
            sim.set_inputs({"rst": 1, "nickel": 0, "dime": 0})
            sim.clock()
            sim.set_inputs({"rst": 0})
            for _ in range(2):
                sim.set_inputs({"dime": 1, "nickel": 0})
                sim.clock()
            assert sim.value("vend") == 1, style

    def test_seqdet_detects_1011(self):
        for style in get_family("seqdet").style_names():
            sim = rtl_sim_for("seqdet", style)
            sim.set_inputs({"rst": 1, "bit_in": 0})
            sim.clock()
            sim.set_inputs({"rst": 0})
            hits = []
            for bit in [1, 0, 1, 1, 0, 1, 1]:
                sim.set_inputs({"bit_in": bit})
                sim.clock()
                hits.append(sim.value("hit"))
            assert hits[3] == 1, style      # ...1011 just completed
            assert sum(hits) >= 1

    def test_aes_round_mixes_key(self):
        for style in get_family("aes").style_names():
            sim = rtl_sim_for("aes", style)
            out_zero = sim.evaluate({"state": 0x1234, "key": 0x0000})
            out_key = sim.evaluate({"state": 0x1234, "key": 0xFFFF})
            assert out_zero["state_next"] ^ out_key["state_next"] == 0xFFFF

    def test_aes_styles_agree(self):
        styles = get_family("aes").style_names()
        sims = [rtl_sim_for("aes", s) for s in styles]
        for state, key in [(0, 0), (0xFFFF, 0x1234), (0xA5A5, 0x5A5A)]:
            outs = {s.evaluate({"state": state, "key": key})["state_next"]
                    for s in sims}
            assert len(outs) == 1

    def test_fpa_adds_simple_numbers(self):
        def encode(sign, exponent, mantissa):
            return (sign << 15) | (exponent << 10) | mantissa

        for style in get_family("fpa").style_names():
            sim = rtl_sim_for("fpa", style)
            one = encode(0, 15, 0)        # 1.0
            two = encode(0, 16, 0)        # 2.0
            out = sim.evaluate({"x": one, "y": one})
            assert out["z"] == two, style  # 1.0 + 1.0 = 2.0
            out = sim.evaluate({"x": two, "y": one})
            three = encode(0, 16, 0b1000000000)  # 1.5 * 2^1
            assert out["z"] == three, style

    def test_mips_families_execute_program(self):
        """All MIPS variants must run their ROM without dying."""
        for name in ("mips_single", "mips_multi", "mips_pipeline"):
            family = get_family(name)
            variant = family.generate(seed=0, style=family.style_names()[0],
                                      rewrite=False)
            flat = elaborate(parse_source(variant.verilog), top=variant.top)
            sim = RTLSimulator(flat)
            sim.set_inputs({"rst": 1})
            sim.clock()
            sim.set_inputs({"rst": 0})
            pcs = set()
            for _ in range(40):
                sim.clock()
                pcs.add(sim.value("pc_out"))
            assert len(pcs) > 1, f"{name}: PC never advanced"

    def test_mips_contains_alu_module(self):
        """Table II case 3 requires the ALU to be a real sub-block."""
        for name in ("mips_single", "mips_multi", "mips_pipeline"):
            family = get_family(name)
            variant = family.generate(seed=0, rewrite=False)
            assert "module mips_alu" in variant.verilog
        alu = get_family("alu").generate(seed=0, rewrite=False)
        assert alu.top == "mips_alu"


class TestSynthesizableFamilies:
    @pytest.mark.parametrize("name", sorted(SYNTHESIZABLE_FAMILIES))
    def test_family_synthesizes(self, name):
        family = get_family(name)
        variant = family.generate(seed=0, rewrite=False)
        netlist = synthesize_verilog(variant.verilog, top=variant.top)
        assert netlist.num_gates > 0

    def test_styles_synthesize_to_equivalent_netlists(self):
        """Different styles of one design are truly the same hardware."""
        for name in ("adder8", "mult4", "cmp8", "barrel8"):
            family = get_family(name)
            netlists = []
            for style in family.style_names():
                variant = family.generate(seed=0, style=style, rewrite=False)
                netlists.append(synthesize_verilog(variant.verilog,
                                                   top=variant.top))
            report = check_netlists_equivalent(netlists[0], netlists[1],
                                               vectors=48, seed=1)
            assert report.equivalent, name
