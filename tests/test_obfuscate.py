"""Obfuscation tests: every transform must preserve behaviour and change
structure — the property Table III's experiment relies on."""

import numpy as np
import pytest

from repro.obfuscate import (
    TRANSFORMS,
    decompose_gates,
    demorgan_rewrite,
    insert_buffer_chains,
    insert_inverter_pairs,
    make_rtl_variant,
    obfuscate,
    rename_wires,
)
from repro.sim import check_netlists_equivalent
from repro.synth import synthesize_verilog

ALU_SOURCE = """
module alu(input [3:0] a, input [3:0] b, input [1:0] op,
           output reg [3:0] y, output any);
  always @(*) begin
    case (op)
      2'b00: y = a + b;
      2'b01: y = a & b;
      2'b10: y = a ^ b;
      default: y = a - b;
    endcase
  end
  assign any = |y;
endmodule
"""

SEQ_SOURCE = """
module seq(input clk, input rst, input d, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else q <= {q[2:0], d};
  end
endmodule
"""


@pytest.fixture(scope="module")
def alu_netlist():
    return synthesize_verilog(ALU_SOURCE)


@pytest.fixture(scope="module")
def seq_netlist():
    return synthesize_verilog(SEQ_SOURCE)


class TestIndividualTransforms:
    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_transform_preserves_function(self, alu_netlist, name):
        rng = np.random.default_rng(5)
        transformed = TRANSFORMS[name](alu_netlist.copy(), rng)
        transformed.validate()
        report = check_netlists_equivalent(alu_netlist, transformed,
                                           vectors=48, seed=2)
        assert report.equivalent, f"{name}: {report.counterexample}"

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_transform_on_sequential_netlist(self, seq_netlist, name):
        rng = np.random.default_rng(9)
        transformed = TRANSFORMS[name](seq_netlist.copy(), rng)
        transformed.validate()
        report = check_netlists_equivalent(seq_netlist, transformed,
                                           vectors=12, seed=3)
        assert report.equivalent, f"{name}: {report.counterexample}"

    def test_rename_changes_all_internal_nets(self, alu_netlist):
        renamed = rename_wires(alu_netlist, np.random.default_rng(0))
        io_nets = set(alu_netlist.inputs) | set(alu_netlist.outputs)
        before = alu_netlist.nets() - io_nets
        after = renamed.nets() - io_nets
        assert before.isdisjoint(after)

    def test_rename_keeps_io(self, alu_netlist):
        renamed = rename_wires(alu_netlist, np.random.default_rng(0))
        assert renamed.inputs == alu_netlist.inputs
        assert renamed.outputs == alu_netlist.outputs

    def test_inverter_pairs_add_gates(self, alu_netlist):
        out = insert_inverter_pairs(alu_netlist, np.random.default_rng(1))
        assert out.num_gates > alu_netlist.num_gates

    def test_buffer_chains_add_buffers(self, alu_netlist):
        out = insert_buffer_chains(alu_netlist, np.random.default_rng(1))
        buffers_before = alu_netlist.stats()["cells"].get("buf", 0)
        assert out.stats()["cells"]["buf"] > buffers_before

    def test_decompose_removes_xors(self, alu_netlist):
        rng = np.random.default_rng(2)
        out = decompose_gates(alu_netlist, rng, fraction=1.0)
        assert out.stats()["cells"].get("xor", 0) < \
            alu_netlist.stats()["cells"].get("xor", 1)

    def test_demorgan_changes_structure(self, alu_netlist):
        rng = np.random.default_rng(2)
        out = demorgan_rewrite(alu_netlist, rng, fraction=1.0)
        assert out.num_gates > alu_netlist.num_gates


class TestObfuscatePipeline:
    def test_pipeline_equivalent(self, alu_netlist):
        for seed in range(4):
            transformed = obfuscate(alu_netlist, seed=seed, strength=3)
            report = check_netlists_equivalent(alu_netlist, transformed,
                                               vectors=32, seed=seed)
            assert report.equivalent

    def test_different_seeds_different_structures(self, alu_netlist):
        first = obfuscate(alu_netlist, seed=1)
        second = obfuscate(alu_netlist, seed=2)
        assert first.stats() != second.stats() or \
            [g.output for g in first.gates] != [g.output for g in second.gates]

    def test_explicit_transform_list(self, alu_netlist):
        out = obfuscate(alu_netlist, seed=0, transforms=["decompose"])
        report = check_netlists_equivalent(alu_netlist, out, vectors=32)
        assert report.equivalent

    def test_name_override(self, alu_netlist):
        out = obfuscate(alu_netlist, seed=0, name="alu_obf")
        assert out.name == "alu_obf"

    def test_source_untouched(self, alu_netlist):
        gates_before = alu_netlist.num_gates
        obfuscate(alu_netlist, seed=0, strength=3)
        assert alu_netlist.num_gates == gates_before


class TestRtlVariants:
    def test_variant_parses_and_matches(self):
        variant = make_rtl_variant(ALU_SOURCE, seed=3)
        original = synthesize_verilog(ALU_SOURCE)
        rewritten = synthesize_verilog(variant)
        report = check_netlists_equivalent(original, rewritten, vectors=48)
        assert report.equivalent

    def test_variant_renames_locals(self):
        variant = make_rtl_variant(
            "module m(input a, output y); wire tmp1; "
            "assign tmp1 = ~a; assign y = tmp1; endmodule", seed=1)
        assert "tmp1" not in variant
        assert "module m" in variant

    def test_variant_keeps_ports(self):
        variant = make_rtl_variant(ALU_SOURCE, seed=7)
        for port in ("a", "b", "op", "y", "any"):
            assert port in variant

    def test_different_seeds_different_text(self):
        a = make_rtl_variant(ALU_SOURCE, seed=1)
        b = make_rtl_variant(ALU_SOURCE, seed=2)
        assert a != b

    def test_sequential_variant_equivalent(self):
        variant = make_rtl_variant(SEQ_SOURCE, seed=5)
        original = synthesize_verilog(SEQ_SOURCE)
        rewritten = synthesize_verilog(variant)
        report = check_netlists_equivalent(original, rewritten, vectors=12)
        assert report.equivalent
