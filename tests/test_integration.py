"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.cli import load_model, save_model
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.dataflow import dfg_from_verilog
from repro.designs import (
    get_family,
    iscas_records,
    netlist_records,
    rtl_records,
)
from repro.obfuscate import make_rtl_variant


@pytest.fixture(scope="module")
def small_trained():
    """A small but real training run shared by the integration tests."""
    records = rtl_records(
        families=("adder8", "cmp8", "mux8", "counter8", "lfsr8", "crc8",
                  "alu", "rs232"),
        instances_per_design=4, seed=0)
    dataset = build_pair_dataset(records, seed=0, max_negative_ratio=3.5)
    model = GNN4IP(seed=0)
    trainer = Trainer(model, seed=0)
    trainer.fit(dataset, epochs=30)
    return model, trainer, dataset


class TestEndToEndRtl:
    def test_accuracy_beats_chance(self, small_trained):
        model, trainer, dataset = small_trained
        result = trainer.test(dataset)
        # Chance level for the subsampled ratio is ~0.78 (always negative).
        assert result["accuracy"] > 0.80

    def test_same_design_scores_higher(self, small_trained):
        """Mean positive similarity must dominate mean negative."""
        model, trainer, dataset = small_trained
        result = trainer.test(dataset)
        sims = np.array(result["similarities"])
        labels = np.array(result["labels"])
        assert sims[labels == 1].mean() > sims[labels == 0].mean() + 0.2

    def test_detects_reworked_copy(self, small_trained):
        """A renamed/reordered copy of a trained design scores near +1."""
        model, _, _ = small_trained
        family = get_family("crc8")
        original = family.generate(seed=123, rewrite=False)
        reworked_text = make_rtl_variant(original.verilog, seed=77)
        graph_a = dfg_from_verilog(original.verilog, top=original.top)
        graph_b = dfg_from_verilog(reworked_text, top=original.top)
        assert model.similarity(graph_a, graph_b) > 0.9

    def test_unrelated_designs_score_low(self, small_trained):
        model, _, _ = small_trained
        cmp8 = get_family("cmp8").generate(seed=5, rewrite=False)
        rs232 = get_family("rs232").generate(seed=5, rewrite=False)
        graph_a = dfg_from_verilog(cmp8.verilog, top=cmp8.top)
        graph_b = dfg_from_verilog(rs232.verilog, top=rs232.top)
        # comparator vs UART: comfortably below the decision boundary
        assert model.similarity(graph_a, graph_b) < model.delta

    def test_model_save_load_preserves_scores(self, small_trained,
                                              tmp_path):
        model, _, dataset = small_trained
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        loaded = load_model(path)
        graph_a = dataset.records[0].graph
        graph_b = dataset.records[5].graph
        assert loaded.similarity(graph_a, graph_b) == pytest.approx(
            model.similarity(graph_a, graph_b), abs=1e-12)
        assert loaded.delta == model.delta


class TestEndToEndNetlist:
    def test_netlist_pipeline_trains(self):
        records = netlist_records(
            families=("adder8", "cmp8", "lfsr8", "crc8"),
            instances_per_design=3, seed=0)
        dataset = build_pair_dataset(records, seed=0,
                                     max_negative_ratio=3.5)
        model = GNN4IP(seed=0)
        trainer = Trainer(model, seed=0)
        trainer.fit(dataset, epochs=25)
        result = trainer.test(dataset)
        assert result["accuracy"] > 0.6

    def test_obfuscated_iscas_recognized_untrained_encoder(self):
        """Even the feature geometry separates obfuscations from other
        benchmarks — training only sharpens it."""
        records = iscas_records(names=["c432", "c1908"],
                                obfuscated_per_benchmark=2, seed=0)
        model = GNN4IP(seed=0)
        by_design = {}
        for record in records:
            by_design.setdefault(record.design, []).append(
                model.encoder.embed(record.graph))
        within = model.similarity_from_embeddings(by_design["c432"][0],
                                                  by_design["c432"][1])
        cross = model.similarity_from_embeddings(by_design["c432"][0],
                                                 by_design["c1908"][0])
        assert within > cross


class TestCrossLevel:
    def test_rtl_and_netlist_of_same_design_related(self):
        """RTL DFG vs synthesized-netlist DFG of one design still share
        more signal than two unrelated designs at the same level."""
        rtl = rtl_records(families=("adder8",), instances_per_design=1)
        net = netlist_records(families=("adder8",), instances_per_design=1)
        other = rtl_records(families=("rs232",), instances_per_design=1)
        model = GNN4IP(seed=1)
        h_rtl = model.encoder.embed(rtl[0].graph)
        h_net = model.encoder.embed(net[0].graph)
        h_other = model.encoder.embed(other[0].graph)
        same = model.similarity_from_embeddings(h_rtl, h_net)
        diff = model.similarity_from_embeddings(h_net, h_other)
        # weak statement (untrained): just require both are finite scores
        assert -1.0 <= same <= 1.0
        assert -1.0 <= diff <= 1.0


class TestDeterminism:
    def test_full_pipeline_deterministic(self):
        def run():
            records = rtl_records(families=("adder8", "mux8"),
                                  instances_per_design=3, seed=4)
            dataset = build_pair_dataset(records, seed=4,
                                         max_negative_ratio=3.5)
            model = GNN4IP(seed=4)
            trainer = Trainer(model, seed=4)
            trainer.fit(dataset, epochs=5)
            result = trainer.test(dataset)
            return result["similarities"]

        np.testing.assert_allclose(run(), run())
