"""Unit tests for the Verilog parser."""

import pytest

from repro.errors import ParseError
from repro.verilog import ast_nodes as ast
from repro.verilog.parser import parse, parse_module


class TestModuleHeaders:
    def test_ansi_ports(self):
        module = parse_module(
            "module m(input a, output reg [7:0] q); endmodule")
        assert module.name == "m"
        assert module.port_names() == ["a", "q"]
        assert module.ports[0].direction == "input"
        assert module.ports[1].is_reg
        assert module.ports[1].width is not None

    def test_non_ansi_ports_merged(self):
        module = parse_module("""
module m(a, b, y);
  input [3:0] a, b;
  output y;
  assign y = a[0] & b[0];
endmodule
""")
        assert module.ports[0].direction == "input"
        assert module.ports[0].width is not None
        assert module.ports[2].direction == "output"
        # port declarations must not linger as module items
        assert not any(isinstance(i, ast.Port) for i in module.items)

    def test_direction_carries_over_in_port_list(self):
        module = parse_module("module m(input a, b, output y); endmodule")
        assert module.ports[1].direction == "input"
        assert module.ports[2].direction == "output"

    def test_parameter_header(self):
        module = parse_module(
            "module m #(parameter W = 8, parameter D = 2) (input x); "
            "endmodule")
        assert [p.name for p in module.params] == ["W", "D"]
        assert module.params[0].value.value == 8

    def test_empty_port_list(self):
        module = parse_module("module m(); endmodule")
        assert module.ports == []

    def test_multiple_modules(self):
        source = parse("module a(); endmodule module b(); endmodule")
        assert [m.name for m in source.modules] == ["a", "b"]


class TestDeclarations:
    def test_wire_declaration(self):
        module = parse_module("module m(); wire [3:0] a, b; endmodule")
        decl = module.items[0]
        assert isinstance(decl, ast.NetDecl)
        assert decl.names == ["a", "b"]
        assert decl.kind == "wire"

    def test_wire_with_init_becomes_assign(self):
        module = parse_module(
            "module m(input x); wire y = ~x; endmodule")
        assert isinstance(module.items[0], ast.NetDecl)
        assert isinstance(module.items[1], ast.Assign)

    def test_reg_and_integer(self):
        module = parse_module(
            "module m(); reg [7:0] r; integer i; endmodule")
        assert module.items[0].kind == "reg"
        assert module.items[1].kind == "integer"

    def test_localparam(self):
        module = parse_module("module m(); localparam N = 4; endmodule")
        assert module.items[0].local

    def test_signed_declaration(self):
        module = parse_module("module m(); wire signed [7:0] s; endmodule")
        assert module.items[0].signed


class TestExpressions:
    def expr(self, text):
        module = parse_module(f"module m(input a, input b, input c); "
                              f"wire y; assign y = {text}; endmodule")
        assigns = [i for i in module.items if isinstance(i, ast.Assign)]
        return assigns[0].rhs

    def test_precedence_mul_over_add(self):
        expr = self.expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = self.expr("a | b & c")
        assert expr.op == "|"
        assert expr.right.op == "&"

    def test_left_associativity(self):
        expr = self.expr("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_ternary_right_associative(self):
        expr = self.expr("a ? b : c ? a : b")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.false_value, ast.Ternary)

    def test_unary_reduction(self):
        expr = self.expr("&a | ^b")
        assert expr.op == "|"
        assert expr.left.op == "&"
        assert expr.right.op == "^"

    def test_concat(self):
        expr = self.expr("{a, b, 1'b0}")
        assert isinstance(expr, ast.Concat)
        assert len(expr.parts) == 3

    def test_replication(self):
        expr = self.expr("{4{a}}")
        assert isinstance(expr, ast.Repeat)
        assert expr.count.value == 4

    def test_bit_select(self):
        expr = self.expr("a[3]")
        assert isinstance(expr, ast.BitSelect)

    def test_part_select(self):
        expr = self.expr("a[7:4]")
        assert isinstance(expr, ast.PartSelect)
        assert expr.mode == ":"

    def test_indexed_part_select(self):
        expr = self.expr("a[b +: 4]")
        assert expr.mode == "+:"

    def test_nested_selects(self):
        expr = self.expr("a[7:4][1]")
        assert isinstance(expr, ast.BitSelect)
        assert isinstance(expr.base, ast.PartSelect)

    def test_based_const_value(self):
        expr = self.expr("8'hA5")
        assert expr.value == 0xA5
        assert expr.width == 8

    def test_system_function_call(self):
        expr = self.expr("$signed(a)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "$signed"

    def test_le_in_expression_is_comparison(self):
        expr = self.expr("a <= b")
        assert expr.op == "<="


class TestStatements:
    def always(self, body, sens="*"):
        module = parse_module(f"""
module m(input clk, input a, input b, output reg q);
  reg [3:0] t;
  integer i;
  always @({sens}) {body}
endmodule
""")
        return [i for i in module.items if isinstance(i, ast.Always)][0]

    def test_sensitivity_star(self):
        always = self.always("q = a;")
        assert always.sens_list == []
        assert not always.is_clocked

    def test_posedge_sensitivity(self):
        always = self.always("q <= a;", sens="posedge clk")
        assert always.is_clocked
        assert always.sens_list[0].edge == "posedge"

    def test_or_separated_sensitivity(self):
        always = self.always("q <= a;", sens="posedge clk or negedge a")
        assert [s.edge for s in always.sens_list] == ["posedge", "negedge"]

    def test_comma_separated_sensitivity(self):
        always = self.always("q = a;", sens="a, b")
        assert len(always.sens_list) == 2

    def test_if_else(self):
        always = self.always("if (a) q = b; else q = ~b;")
        stmt = always.statement
        assert isinstance(stmt, ast.If)
        assert stmt.else_stmt is not None

    def test_dangling_else_binds_inner(self):
        always = self.always("if (a) if (b) q = 1'b1; else q = 1'b0;")
        outer = always.statement
        assert outer.else_stmt is None
        assert outer.then_stmt.else_stmt is not None

    def test_case_with_default(self):
        always = self.always("""
begin
  case (t)
    4'd0: q = a;
    4'd1, 4'd2: q = b;
    default: q = 1'b0;
  endcase
end
""")
        case = always.statement.statements[0]
        assert isinstance(case, ast.Case)
        assert len(case.items) == 3
        assert case.items[1].patterns and len(case.items[1].patterns) == 2
        assert case.items[2].patterns == []

    def test_casez(self):
        always = self.always("casez (t) 4'b1???: q = a; endcase")
        assert always.statement.kind == "casez"

    def test_for_loop(self):
        always = self.always(
            "begin for (i = 0; i < 4; i = i + 1) q = a; end")
        loop = always.statement.statements[0]
        assert isinstance(loop, ast.For)

    def test_named_block(self):
        always = self.always("begin : blk q = a; end")
        assert always.statement.name == "blk"

    def test_blocking_vs_nonblocking(self):
        blocking = self.always("q = a;").statement
        nonblocking = self.always("q <= a;").statement
        assert isinstance(blocking, ast.BlockingAssign)
        assert isinstance(nonblocking, ast.NonblockingAssign)

    def test_concat_lvalue(self):
        always = self.always("{q, t} = {a, b, 3'b0};")
        assert isinstance(always.statement.lhs, ast.Concat)


class TestInstancesAndGates:
    def test_gate_primitive(self):
        module = parse_module(
            "module m(input a, input b, output y); "
            "xor g1 (y, a, b); endmodule")
        gate = module.items[0]
        assert isinstance(gate, ast.GateInstance)
        assert gate.gate == "xor"
        assert len(gate.args) == 3

    def test_anonymous_gate(self):
        module = parse_module(
            "module m(input a, output y); not (y, a); endmodule")
        assert module.items[0].name.startswith("not_anon")

    def test_multiple_gates_one_statement(self):
        module = parse_module(
            "module m(input a, output x, output y); "
            "not n1 (x, a), n2 (y, a); endmodule")
        gates = [i for i in module.items if isinstance(i, ast.GateInstance)]
        assert len(gates) == 2

    def test_named_connections(self):
        module = parse_module("""
module m(input a, output y);
  sub u1 (.in(a), .out(y));
endmodule
""")
        inst = module.items[0]
        assert isinstance(inst, ast.ModuleInstance)
        assert inst.connections[0].port == "in"

    def test_positional_connections(self):
        module = parse_module(
            "module m(input a, output y); sub u1 (y, a); endmodule")
        assert module.items[0].connections[0].port is None

    def test_parameter_override(self):
        module = parse_module(
            "module m(input a, output y); "
            "sub #(.W(16)) u1 (.in(a), .out(y)); endmodule")
        inst = module.items[0]
        assert inst.param_overrides[0].port == "W"
        assert inst.param_overrides[0].expr.value == 16

    def test_unconnected_port(self):
        module = parse_module(
            "module m(input a); sub u1 (.in(a), .out()); endmodule")
        assert module.items[0].connections[1].expr is None


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_module("module m(input a) endmodule")

    def test_unterminated_module(self):
        with pytest.raises(ParseError):
            parse_module("module m(input a);")

    def test_unterminated_begin(self):
        with pytest.raises(ParseError):
            parse_module(
                "module m(input a); always @(*) begin endmodule")

    def test_generate_unsupported(self):
        with pytest.raises(ParseError):
            parse_module("module m(); generate endgenerate endmodule")

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_module("module m(input a);\n\nassign = 1;\nendmodule")
        assert excinfo.value.line == 3

    def test_parse_module_rejects_two_modules(self):
        with pytest.raises(ParseError):
            parse_module("module a(); endmodule module b(); endmodule")
