"""Autograd engine tests: op semantics and numeric gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.nn.tensor import (
    Tensor,
    concat,
    cosine_similarity,
    dot,
    l2_norm,
    spmm,
)

RNG = np.random.default_rng(12345)


def numeric_grad(function, x, eps=1e-6):
    """Central-difference gradient of scalar ``function`` at array ``x``."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = function(x)
        flat[i] = orig - eps
        minus = function(x)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, shape, tol=1e-5):
    """Compare autograd and numeric gradients for scalar-valued ``build``."""
    x_data = RNG.normal(size=shape)
    x = Tensor(x_data.copy(), requires_grad=True)
    out = build(x)
    out.backward()
    numeric = numeric_grad(lambda arr: build(Tensor(arr)).item(),
                           x_data.copy())
    assert x.grad is not None
    np.testing.assert_allclose(x.grad, numeric, atol=tol, rtol=tol)


class TestForwardSemantics:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        np.testing.assert_array_equal((a + b).data,
                                      np.ones((2, 3)) + np.arange(3.0))

    def test_matmul(self):
        a = Tensor(RNG.normal(size=(3, 4)))
        b = Tensor(RNG.normal(size=(4, 2)))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_relu(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(x.relu().data, [0.0, 0.0, 2.0])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        np.testing.assert_array_equal(x.max(axis=0).data, [3.0, 5.0])

    def test_mean(self):
        x = Tensor(np.array([[2.0, 4.0]]))
        assert x.mean().item() == 3.0

    def test_index_select(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        picked = x.index_select([2, 0])
        np.testing.assert_array_equal(picked.data, x.data[[2, 0]])

    def test_spmm_matches_dense(self):
        matrix = sparse.random(6, 6, density=0.4, random_state=1,
                               format="csr")
        x = Tensor(RNG.normal(size=(6, 3)))
        np.testing.assert_allclose(spmm(matrix, x).data,
                                   matrix.toarray() @ x.data)

    def test_spmm_rejects_dense_matrix(self):
        with pytest.raises(TypeError):
            spmm(np.eye(3), Tensor(np.ones((3, 2))))

    def test_concat(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((1, 2)))
        assert concat([a, b], axis=0).shape == (3, 2)

    def test_cosine_similarity_bounds(self):
        a = Tensor(np.array([1.0, 0.0]))
        b = Tensor(np.array([0.0, 1.0]))
        assert abs(cosine_similarity(a, b).item()) < 1e-9
        assert cosine_similarity(a, a).item() == pytest.approx(1.0)

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.detach()
        assert not y.requires_grad


class TestGradients:
    def test_add_mul(self):
        check_gradient(lambda x: ((x + 2.0) * x).sum(), (3, 4))

    def test_sub_div(self):
        check_gradient(lambda x: ((x - 0.5) / 2.0).sum(), (5,))

    def test_matmul_left(self):
        w = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda x: (x @ w).sum(), (3, 4))

    def test_matmul_right(self):
        a = RNG.normal(size=(3, 4))
        check_gradient(lambda x: (Tensor(a) @ x).sum(), (4, 2))

    def test_relu(self):
        check_gradient(lambda x: (x.relu() * x.relu()).sum(), (4, 3))

    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), (6,))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), (6,))

    def test_pow(self):
        check_gradient(lambda x: (x * x).pow(1.5).sum(), (4,), tol=1e-4)

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=0).pow(2.0).sum(), (3, 4))

    def test_mean_axis(self):
        check_gradient(lambda x: x.mean(axis=1).pow(2.0).sum(), (3, 4))

    def test_max_axis0(self):
        # keep values distinct so the max is differentiable
        x_data = np.arange(12.0).reshape(4, 3) + RNG.normal(
            scale=0.01, size=(4, 3))
        x = Tensor(x_data.copy(), requires_grad=True)
        out = x.max(axis=0).pow(2.0).sum()
        out.backward()
        numeric = numeric_grad(
            lambda arr: (np.max(arr, axis=0) ** 2).sum(), x_data.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_index_select_accumulates(self):
        x = Tensor(np.ones((4, 2)), requires_grad=True)
        out = x.index_select([1, 1, 2]).sum()
        out.backward()
        np.testing.assert_array_equal(x.grad[:, 0], [0.0, 2.0, 1.0, 0.0])

    def test_spmm_grad(self):
        matrix = sparse.random(5, 5, density=0.5, random_state=2,
                               format="csr")
        dense_matrix = matrix.toarray()
        x_data = RNG.normal(size=(5, 2))
        x = Tensor(x_data.copy(), requires_grad=True)
        spmm(matrix, x).pow(2.0).sum().backward()
        numeric = numeric_grad(
            lambda arr: ((dense_matrix @ arr) ** 2).sum(), x_data.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_concat_grad(self):
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        y = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        concat([x, y], axis=0).pow(2.0).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)
        np.testing.assert_allclose(y.grad, 2 * y.data)

    def test_cosine_similarity_grad(self):
        b = Tensor(RNG.normal(size=6))
        check_gradient(lambda x: cosine_similarity(x, b), (6,), tol=1e-4)

    def test_reused_tensor_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_broadcast_grad_unbroadcasts(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((4, 3)))
        (x + bias).sum().backward()
        np.testing.assert_array_equal(bias.grad, [4.0, 4.0, 4.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()   # d/dx (6x^2) = 12x = 36
        np.testing.assert_allclose(x.grad, [36.0])

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * x).sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 4))
    def test_linear_gradient_any_shape(self, n, m):
        w = Tensor(RNG.normal(size=(n, m)))
        check_gradient(lambda x: (x @ w).relu().sum(), (3, n), tol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=8))
    def test_norm_nonnegative(self, values):
        norm = l2_norm(Tensor(np.array(values))).item()
        assert norm >= 0.0
        np.testing.assert_allclose(norm, np.linalg.norm(values), atol=1e-5)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-3, 3), min_size=3, max_size=6),
           st.lists(st.floats(-3, 3), min_size=3, max_size=6))
    def test_cosine_in_range(self, a_values, b_values):
        size = min(len(a_values), len(b_values))
        a = np.array(a_values[:size])
        b = np.array(b_values[:size])
        value = cosine_similarity(Tensor(a), Tensor(b)).item()
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-4, 4), min_size=1, max_size=10))
    def test_dot_matches_numpy(self, values):
        arr = np.array(values)
        np.testing.assert_allclose(dot(Tensor(arr), Tensor(arr)).item(),
                                   float(arr @ arr), atol=1e-6)
