"""Batched training: gradient equivalence, determinism, loss parity."""

import numpy as np
import pytest

from repro.core import GNN4IP, GraphRecord, Trainer, build_pair_dataset
from repro.dataflow import dfg_from_verilog
from repro.errors import ModelError
from repro.nn.batch import (
    batched_forward_tensor,
    batched_pair_loss,
    pack_prepared,
)
from repro.nn.loss import cosine_embedding_loss

XOR = """
module x(input a, input b, output y);
  assign y = a ^ b;
endmodule
"""

AND = """
module g(input a, input b, output y);
  assign y = a & b;
endmodule
"""

COUNTER = """
module c(input clk, output reg [3:0] q);
  always @(posedge clk) q <= q + 4'd1;
endmodule
"""


@pytest.fixture(scope="module")
def dataset():
    records = [
        GraphRecord("xor", "x0", dfg_from_verilog(XOR)),
        GraphRecord("xor", "x1", dfg_from_verilog(XOR.replace("a ^ b",
                                                              "b ^ a"))),
        GraphRecord("and", "a0", dfg_from_verilog(AND)),
        GraphRecord("and", "a1", dfg_from_verilog(AND.replace("a & b",
                                                              "b & a"))),
        GraphRecord("cnt", "c0", dfg_from_verilog(COUNTER)),
    ]
    return build_pair_dataset(records, test_fraction=0.2, seed=1)


def _grads(model):
    return {name: param.grad.copy()
            for name, param in model.encoder.named_parameters()}


class TestGradientEquivalence:
    def test_batched_matches_per_pair_loop_to_1e8(self, dataset):
        """Block-diagonal forward+backward == per-graph loop (dropout off)."""
        model = GNN4IP(seed=0, dropout=0.0)
        trainer = Trainer(model, seed=0, mode="loop")
        trainer._prepare_all(dataset)
        batch = dataset.train_pairs

        loop_loss = trainer._step_loop(batch, weight=2.0)
        model.encoder.zero_grad()
        loop_loss.backward()
        loop_grads = _grads(model)

        batched = Trainer(model, seed=0, mode="batched")
        batched._prepared = trainer._prepared
        batched_loss = batched._step_batched(batch, weight=2.0)
        model.encoder.zero_grad()
        batched_loss.backward()
        batched_grads = _grads(model)

        assert batched_loss.item() == pytest.approx(loop_loss.item(),
                                                    abs=1e-10)
        assert set(loop_grads) == set(batched_grads)
        for name, grad in loop_grads.items():
            np.testing.assert_allclose(batched_grads[name], grad,
                                       rtol=1e-8, atol=1e-8,
                                       err_msg=f"gradient mismatch: {name}")

    def test_vectorized_pair_loss_matches_scalar(self, dataset):
        model = GNN4IP(seed=0, dropout=0.0)
        model.encoder.eval()
        prepared = [model.encoder.prepare(r.graph) for r in dataset.records]
        packed = pack_prepared(prepared)
        embeddings = batched_forward_tensor(model.encoder, packed)
        pairs = [(0, 1, 1), (0, 2, -1), (3, 4, -1), (2, 3, 1)]
        vec_loss, sims = batched_pair_loss(embeddings, pairs, margin=0.5,
                                           positive_weight=3.0)
        total = 0.0
        for (i, j, label), sim in zip(pairs, sims):
            row_i = embeddings.index_select([i]).reshape(model.encoder.hidden)
            row_j = embeddings.index_select([j]).reshape(model.encoder.hidden)
            loss, scalar_sim = cosine_embedding_loss(row_i, row_j, label, 0.5)
            assert sim == pytest.approx(scalar_sim.item(), abs=1e-12)
            total += loss.item() * (3.0 if label == 1 else 1.0)
        assert vec_loss.item() == pytest.approx(total / len(pairs), abs=1e-12)

    def test_batched_pair_loss_rejects_empty(self):
        model = GNN4IP(seed=0)
        prepared = model.encoder.prepare(dfg_from_verilog(XOR))
        embeddings = batched_forward_tensor(model.encoder,
                                            pack_prepared([prepared]))
        with pytest.raises(ValueError):
            batched_pair_loss(embeddings, [])


class TestDeterminism:
    def _fit_weights(self, dataset, seed, epochs=4):
        model = GNN4IP(seed=seed)
        trainer = Trainer(model, seed=seed)
        trainer.fit(dataset, epochs=epochs, tune_delta=False)
        return model.encoder.state_dict()

    def test_same_seed_identical_weights(self, dataset):
        first = self._fit_weights(dataset, seed=0)
        second = self._fit_weights(dataset, seed=0)
        assert set(first) == set(second)
        for name in first:
            np.testing.assert_array_equal(first[name], second[name])

    def test_different_seed_differs(self, dataset):
        first = self._fit_weights(dataset, seed=0)
        second = self._fit_weights(dataset, seed=7)
        assert any(not np.array_equal(first[name], second[name])
                   for name in first)


class TestBatchedTrainer:
    def test_default_mode_is_batched(self):
        assert Trainer(GNN4IP(seed=0)).mode == "batched"
        with pytest.raises(ModelError):
            Trainer(GNN4IP(seed=0), mode="turbo")

    def test_loss_decreases(self, dataset):
        trainer = Trainer(GNN4IP(seed=0, dropout=0.0), lr=0.01, seed=0)
        losses = [trainer.train_epoch(dataset, epoch)[0]
                  for epoch in range(15)]
        assert min(losses[5:]) <= losses[0] + 1e-9

    @pytest.mark.parametrize("dropout", [0.0, 0.1])
    def test_epoch_loss_matches_loop_mode(self, dataset, dropout):
        """Same seed => identical epoch losses either way.

        Holds even with dropout on: the batched path draws per-graph masks
        in the per-graph forward order, so the RNG streams coincide.
        """
        loop = Trainer(GNN4IP(seed=0, dropout=dropout), seed=0, mode="loop")
        batched = Trainer(GNN4IP(seed=0, dropout=dropout), seed=0,
                          mode="batched")
        for epoch in range(3):
            loss_loop, _ = loop.train_epoch(dataset, epoch)
            loss_batched, _ = batched.train_epoch(dataset, epoch)
            assert loss_batched == pytest.approx(loss_loop, abs=1e-8)

    def test_evaluate_pairs_empty(self, dataset):
        trainer = Trainer(GNN4IP(seed=0), seed=0)
        sims, labels, seconds = trainer.evaluate_pairs(dataset, [])
        assert sims == [] and labels == []
        assert seconds >= 0.0

    def test_evaluate_pairs_matches_direct_similarity(self, dataset):
        model = GNN4IP(seed=0)
        trainer = Trainer(model, seed=0)
        sims, labels, _ = trainer.evaluate_pairs(dataset,
                                                 dataset.test_pairs)
        for (i, j, _), sim in zip(dataset.test_pairs, sims):
            direct = model.similarity(dataset.records[i].graph,
                                      dataset.records[j].graph)
            assert sim == pytest.approx(direct, abs=1e-9)
