"""Property tests for the staged attack pipelines (ISSUE 10).

The widened threat model rests on four properties:

1. **Semantics preservation** — tech_remap / retime / fsm_reencode /
   wrapper must keep the netlist functionally equivalent across
   multiple seeds, on combinational *and* sequential designs (the
   wrapper compared through its recorded core view).
2. **Per-seed determinism** — the scenario generator and the golden
   report rely on ``run_attack(attack, netlist, seed)`` emitting a
   byte-identical artifact and an identical provenance chain every run.
3. **Seed hygiene** — distinct stages of one pipeline never consume
   identical RNG streams (each derives its own child seed from the
   parent seed and the stage name).
4. **Auditable provenance** — a corrupted artifact or a tampered stage
   record must be refused loudly by :func:`verify_provenance`.

Plus the structural invariants the evaluation round-trip treatment
needs: clock pins stay primary inputs, remapped netlists stay inside
their cell vocabulary, every final artifact survives
write -> parse -> synthesize gate-for-gate, and the Trojan is provably
non-equivalent under its trigger while staying stealthy off it.
"""

import copy

import pytest

from repro.attacks import (AttackNotApplicable, attack_names,
                           derive_stage_seed, run_attack,
                           verify_provenance)
from repro.attacks.wrapper import core_view
from repro.errors import EvalError, SynthesisError
from repro.netlist.cells import DFF
from repro.netlist.verilog_io import read_netlist, write_netlist
from repro.sim import check_netlists_equivalent
from repro.synth import LIBRARIES, map_netlist, synthesize_verilog

COMB_SOURCE = """
module comb(input [3:0] a, input [3:0] b, input sel,
            output [4:0] y, output p);
  wire [3:0] m;
  assign m = sel ? (a ^ b) : (a & b);
  assign y = {1'b0, m} + {1'b0, b};
  assign p = ^a;
endmodule
"""

SEQ_SOURCE = """
module seq(input clk, input rst, input en, input d, output reg [3:0] q,
           output any);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= {q[2:0], d ^ q[3]};
  end
  assign any = |q;
endmodule
"""

SEEDS = (11, 12, 13)

#: Attacks whose final artifact must match the base design.
PRESERVING = ("tech_remap", "retime", "fsm_reencode", "wrapper")
#: Attacks that need registers to operate on.
SEQUENTIAL_ONLY = ("retime", "fsm_reencode")
#: Preserving attacks that apply to a combinational base.
COMB_PRESERVING = tuple(a for a in PRESERVING if a not in SEQUENTIAL_ONLY)


@pytest.fixture(scope="module")
def comb_netlist():
    return synthesize_verilog(COMB_SOURCE)


@pytest.fixture(scope="module")
def seq_netlist():
    return synthesize_verilog(SEQ_SOURCE)


def netlist_signature(netlist):
    """A byte-precise structural identity for determinism checks."""
    return (netlist.name, tuple(netlist.inputs), tuple(netlist.outputs),
            tuple(netlist.clocks),
            tuple((g.cell, g.name, g.output, tuple(g.inputs))
                  for g in netlist.gates))


def structure_signature(netlist):
    """Gate-for-gate identity across a Verilog round trip.

    Instance names and emission order are not preserved by the writer
    (flops come back as ``always`` blocks with fresh names, after the
    combinational gates), but every gate's cell, output net, and input
    nets must survive exactly.
    """
    return (tuple(netlist.inputs), tuple(netlist.outputs),
            tuple(netlist.clocks),
            tuple(sorted((g.cell, g.output, tuple(g.inputs))
                         for g in netlist.gates)))


class TestSemanticsPreserved:
    """Every preserving attack keeps behaviour, with per-stage checks on."""

    @pytest.mark.parametrize("attack", COMB_PRESERVING)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_combinational(self, comb_netlist, attack, seed):
        # check=True exercises the generation-time per-stage checks too.
        result = run_attack(attack, comb_netlist, seed, check=True,
                            vectors=16)
        result.netlist.validate()
        report = check_netlists_equivalent(comb_netlist,
                                           result.check_netlist,
                                           vectors=32, seed=seed)
        assert report.equivalent, \
            f"{attack} seed={seed}: {report.counterexample}"

    @pytest.mark.parametrize("attack", PRESERVING)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sequential(self, seq_netlist, attack, seed):
        result = run_attack(attack, seq_netlist, seed, check=True,
                            vectors=8)
        result.netlist.validate()
        report = check_netlists_equivalent(seq_netlist,
                                           result.check_netlist,
                                           vectors=10, seed=seed)
        assert report.equivalent, \
            f"{attack} seed={seed}: {report.counterexample}"

    @pytest.mark.parametrize("attack", SEQUENTIAL_ONLY)
    def test_not_applicable_without_registers(self, comb_netlist, attack):
        with pytest.raises(AttackNotApplicable):
            run_attack(attack, comb_netlist, seed=0)


class TestDeterminism:
    """Same seed -> byte-identical artifact and provenance chain."""

    @pytest.mark.parametrize("attack", attack_names())
    @pytest.mark.parametrize("seed", SEEDS)
    def test_artifact_bytes_per_seed(self, seq_netlist, attack, seed):
        first = run_attack(attack, seq_netlist, seed)
        second = run_attack(attack, seq_netlist, seed)
        assert write_netlist(first.netlist) == write_netlist(second.netlist)
        assert first.provenance["chain_hash"] == \
            second.provenance["chain_hash"]

    @pytest.mark.parametrize("attack", ("tech_remap", "wrapper", "trojan"))
    def test_artifact_bytes_combinational(self, comb_netlist, attack):
        first = run_attack(attack, comb_netlist, 7)
        second = run_attack(attack, comb_netlist, 7)
        assert write_netlist(first.netlist) == write_netlist(second.netlist)

    @pytest.mark.parametrize("attack", attack_names())
    def test_different_seeds_differ(self, seq_netlist, attack):
        signatures = {
            netlist_signature(run_attack(attack, seq_netlist, s).netlist)
            for s in SEEDS}
        assert len(signatures) == len(SEEDS)


class TestSeeding:
    """Regression: two stages never consume identical RNG streams."""

    def test_stage_seeds_distinct_per_name(self):
        names = ("map:nand", "rename", "retime", "reencode", "launder",
                 "wrap", "trojan", "library")
        for parent in (0, 1, 42, 2 ** 30):
            seeds = [derive_stage_seed(parent, n) for n in names]
            assert len(set(seeds)) == len(seeds), \
                f"stage seed collision under parent {parent}"

    def test_stage_seed_stable(self):
        assert derive_stage_seed(3, "rename") == derive_stage_seed(3,
                                                                   "rename")
        assert derive_stage_seed(3, "rename") != derive_stage_seed(4,
                                                                   "rename")

    @pytest.mark.parametrize("attack", attack_names())
    def test_pipeline_stages_use_distinct_seeds(self, seq_netlist, attack):
        result = run_attack(attack, seq_netlist, 5)
        stages = result.provenance["stages"]
        assert len(stages) >= 2, "attacks must be multi-stage flows"
        seeds = [record["seed"] for record in stages]
        assert len(set(seeds)) == len(seeds)
        names = [record["stage"] for record in stages]
        assert len(set(names)) == len(names)
        # Child seeds are derived, never the parent seed itself.
        assert result.provenance["seed"] not in seeds


class TestStructuralProperties:
    """Invariants the evaluation round-trip treatment relies on."""

    @pytest.mark.parametrize("attack", attack_names())
    def test_clock_pins_untouched(self, seq_netlist, attack):
        """No attack may route a flip-flop clock through logic."""
        transformed = run_attack(attack, seq_netlist, 3).netlist
        clocks = set(transformed.clocks)
        driven = {g.output for g in transformed.gates}
        assert clocks, f"{attack} dropped the clock input"
        assert clocks <= set(transformed.inputs)
        for gate in transformed.gates:
            if gate.cell == DFF:
                assert gate.inputs[1] in clocks
                assert gate.inputs[1] not in driven

    @pytest.mark.parametrize("library", sorted(LIBRARIES))
    def test_remap_stays_in_vocabulary(self, seq_netlist, library):
        result = run_attack("tech_remap", seq_netlist, 2, library=library)
        assert result.provenance["library"] == library
        allowed = set(LIBRARIES[library]) | {DFF}
        used = {g.cell for g in result.netlist.gates}
        assert used <= allowed, f"off-vocabulary cells: {used - allowed}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_wrapper_port_map_round_trip(self, seq_netlist, seed):
        result = run_attack("wrapper", seq_netlist, seed)
        port_map = result.provenance["port_map"]
        # Every core port is reachable through the recorded map, and the
        # wrapper adds decoy ports on top of the real ones.
        assert set(port_map.values()) == \
            set(seq_netlist.inputs) | set(seq_netlist.outputs)
        assert set(port_map) <= \
            set(result.netlist.inputs) | set(result.netlist.outputs)
        assert len(result.netlist.inputs) > len(seq_netlist.inputs)
        assert len(result.netlist.outputs) > len(seq_netlist.outputs)
        view = core_view(result.netlist, port_map)
        report = check_netlists_equivalent(seq_netlist, view,
                                           vectors=10, seed=seed)
        assert report.equivalent

    def test_core_view_rejects_stale_port_map(self, seq_netlist):
        result = run_attack("wrapper", seq_netlist, 1)
        bad_map = dict(result.provenance["port_map"])
        bad_map["no_such_port"] = "q_0"
        with pytest.raises(EvalError):
            core_view(result.netlist, bad_map)


class TestTrojan:
    """The payload must fire under the trigger and hide off it."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_divergent_on_trigger(self, comb_netlist, seed):
        result = run_attack("trojan", comb_netlist, seed)
        assert not result.semantics_preserving
        assert result.trigger
        report = check_netlists_equivalent(comb_netlist, result.netlist,
                                           vectors=16, seed=seed,
                                           fixed=result.trigger)
        assert not report.equivalent, \
            "trojan payload is inert with its trigger pinned"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_equivalent_off_trigger(self, comb_netlist, seed):
        result = run_attack("trojan", comb_netlist, seed)
        # Hold one trigger literal deasserted: the payload may not fire.
        literal, value = sorted(result.trigger.items())[0]
        off = dict(result.trigger)
        off[literal] = 1 - value
        report = check_netlists_equivalent(comb_netlist, result.netlist,
                                           vectors=32, seed=seed,
                                           fixed=off)
        assert report.equivalent, \
            f"trojan fires off-trigger: {report.counterexample}"

    def test_sequential_trojan_contract(self, seq_netlist):
        result = run_attack("trojan", seq_netlist, 9, check=True,
                            vectors=8)
        check = result.provenance["trojan"]["check"]
        assert check["on_trigger_divergent"]
        assert check["off_trigger_equivalent"]


class TestRoundTrip:
    """Final artifacts survive write -> parse -> synthesize unchanged."""

    @pytest.mark.parametrize("attack", attack_names())
    def test_artifact_resynthesizes_gate_for_gate(self, seq_netlist,
                                                  attack):
        artifact = run_attack(attack, seq_netlist, 4).netlist
        source = write_netlist(artifact)
        reparsed = read_netlist(source)
        assert structure_signature(reparsed) == \
            structure_signature(artifact)
        resynthesized = synthesize_verilog(source)
        assert structure_signature(resynthesized) == \
            structure_signature(artifact)

    @pytest.mark.parametrize("library", sorted(LIBRARIES))
    def test_remap_vocabulary_resynthesizes(self, comb_netlist, library):
        """PR 5's round-trip guarantee extends to every remap library."""
        artifact = run_attack("tech_remap", comb_netlist, 6,
                              library=library).netlist
        resynthesized = synthesize_verilog(write_netlist(artifact))
        assert structure_signature(resynthesized) == \
            structure_signature(artifact)


class TestProvenance:
    """Tampering with artifacts or their history is refused loudly."""

    @pytest.mark.parametrize("attack", attack_names())
    def test_clean_provenance_verifies(self, seq_netlist, attack):
        result = run_attack(attack, seq_netlist, 8)
        source = write_netlist(result.netlist)
        assert verify_provenance(source, result.provenance)

    def test_corrupted_artifact_refused(self, seq_netlist):
        result = run_attack("tech_remap", seq_netlist, 8)
        source = write_netlist(result.netlist) + "\n// tampered\n"
        with pytest.raises(EvalError, match="corrupted attack artifact"):
            verify_provenance(source, result.provenance)

    def test_tampered_stage_record_refused(self, seq_netlist):
        result = run_attack("wrapper", seq_netlist, 8)
        source = write_netlist(result.netlist)
        tampered = copy.deepcopy(result.provenance)
        tampered["stages"][0]["seed"] += 1
        with pytest.raises(EvalError, match="chain hash mismatch"):
            verify_provenance(source, tampered)

    def test_tampered_chain_hash_refused(self, seq_netlist):
        result = run_attack("retime", seq_netlist, 8)
        source = write_netlist(result.netlist)
        tampered = copy.deepcopy(result.provenance)
        tampered["chain_hash"] = "0" * 64
        with pytest.raises(EvalError, match="chain hash mismatch"):
            verify_provenance(source, tampered)

    def test_missing_chain_refused(self, seq_netlist):
        with pytest.raises(EvalError, match="no stage chain"):
            verify_provenance("module m; endmodule", {"attack": "x"})

    def test_unknown_attack_rejected(self, comb_netlist):
        with pytest.raises(EvalError, match="unknown attack"):
            run_attack("bitflip", comb_netlist, 0)

    def test_unknown_library_rejected(self, comb_netlist):
        with pytest.raises(SynthesisError):
            map_netlist(comb_netlist, "sky130")
