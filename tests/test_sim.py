"""Tests for the netlist simulator, RTL interpreter, and equivalence checker."""

import pytest

from repro.errors import SimulationError
from repro.dataflow import elaborate
from repro.netlist import CONST0, CONST1, NetlistBuilder
from repro.sim import (
    NetlistSimulator,
    RTLSimulator,
    check_netlists_equivalent,
)
from repro.verilog import parse_source


def rtl_sim(text):
    return RTLSimulator(elaborate(parse_source(text)))


class TestNetlistSimulator:
    def xor_netlist(self):
        builder = NetlistBuilder("x")
        builder.inputs("a", "b")
        builder.outputs("y")
        builder.xor_("a", "b", out="y")
        return builder.build()

    def test_truth_table(self):
        sim = NetlistSimulator(self.xor_netlist())
        for a in (0, 1):
            for b in (0, 1):
                assert sim.evaluate({"a": a, "b": b})["y"] == a ^ b

    def test_constants_available(self):
        builder = NetlistBuilder("c")
        builder.inputs("a")
        builder.outputs("y")
        builder.and_("a", CONST1, out="t")
        builder.or_("t", CONST0, out="y")
        sim = NetlistSimulator(builder.build())
        assert sim.evaluate({"a": 1})["y"] == 1

    def test_unknown_input_rejected(self):
        sim = NetlistSimulator(self.xor_netlist())
        with pytest.raises(SimulationError):
            sim.set_inputs({"zz": 1})

    def test_unknown_net_value_rejected(self):
        sim = NetlistSimulator(self.xor_netlist())
        with pytest.raises(SimulationError):
            sim.value("nope")

    def test_dff_updates_on_clock_only(self):
        builder = NetlistBuilder("d")
        builder.inputs("clk", "d")
        builder.outputs("q")
        builder.dff_("d", "clk", out="q")
        sim = NetlistSimulator(builder.build())
        sim.set_inputs({"d": 1})
        assert sim.value("q") == 0  # not clocked yet
        sim.clock()
        assert sim.value("q") == 1

    def test_dff_chain_shifts_once_per_clock(self):
        builder = NetlistBuilder("chain")
        builder.inputs("clk", "d")
        builder.outputs("q")
        builder.dff_("d", "clk", out="m")
        builder.dff_("m", "clk", out="q")
        sim = NetlistSimulator(builder.build())
        sim.set_inputs({"d": 1})
        sim.clock()
        assert sim.value("q") == 0   # two-phase: no shoot-through
        sim.clock()
        assert sim.value("q") == 1

    def test_reset_state_value(self):
        builder = NetlistBuilder("r")
        builder.inputs("clk", "d")
        builder.outputs("q")
        builder.dff_("d", "clk", out="q")
        sim = NetlistSimulator(builder.build())
        sim.reset(state_value=1)
        assert sim.value("q") == 1

    def test_bus_helpers(self):
        builder = NetlistBuilder("b")
        builder.input_bus("a", 4)
        outs = builder.output_bus("y", 4)
        for i, net in enumerate(outs):
            builder.not_(f"a_{i}", out=net)
        sim = NetlistSimulator(builder.build())
        sim.set_inputs(sim.drive_bus("a", 4, 0b0101))
        assert sim.read_bus("y", 4) == 0b1010


class TestRTLSimulator:
    def test_combinational_eval(self):
        sim = rtl_sim("module m(input [3:0] a, input [3:0] b, "
                      "output [4:0] s); assign s = a + b; endmodule")
        assert sim.evaluate({"a": 7, "b": 9})["s"] == 16

    def test_width_masking(self):
        sim = rtl_sim("module m(input [3:0] a, output [3:0] y); "
                      "assign y = a + 4'd1; endmodule")
        assert sim.evaluate({"a": 15})["y"] == 0

    def test_always_comb(self):
        sim = rtl_sim("""
module m(input [1:0] s, output reg [3:0] y);
  always @(*) begin
    case (s)
      2'd0: y = 4'd1;
      2'd1: y = 4'd2;
      default: y = 4'd8;
    endcase
  end
endmodule
""")
        assert sim.evaluate({"s": 0})["y"] == 1
        assert sim.evaluate({"s": 3})["y"] == 8

    def test_casez_wildcards(self):
        sim = rtl_sim("""
module m(input [3:0] r, output reg [1:0] y);
  always @(*) begin
    casez (r)
      4'b1???: y = 2'd3;
      4'b01??: y = 2'd2;
      4'b001?: y = 2'd1;
      default: y = 2'd0;
    endcase
  end
endmodule
""")
        assert sim.evaluate({"r": 0b1000})["y"] == 3
        assert sim.evaluate({"r": 0b0110})["y"] == 2
        assert sim.evaluate({"r": 0b0010})["y"] == 1
        assert sim.evaluate({"r": 0b0001})["y"] == 0

    def test_sequential_counter(self):
        sim = rtl_sim("""
module m(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule
""")
        sim.set_inputs({"rst": 0})
        for expected in (1, 2, 3):
            sim.clock()
            assert sim.value("q") == expected
        sim.set_inputs({"rst": 1})
        sim.clock()
        assert sim.value("q") == 0

    def test_nonblocking_swap(self):
        sim = rtl_sim("""
module m(input clk, output reg [3:0] a, output reg [3:0] b);
  always @(posedge clk) begin
    a <= b;
    b <= a;
  end
endmodule
""")
        sim._values["a"] = 3
        sim._values["b"] = 9
        sim.clock()
        assert (sim.value("a"), sim.value("b")) == (9, 3)

    def test_concat_lvalue(self):
        sim = rtl_sim("""
module m(input [7:0] d, output [3:0] hi, output [3:0] lo);
  assign {hi, lo} = d;
endmodule
""")
        out = sim.evaluate({"d": 0xA5})
        assert out["hi"] == 0xA
        assert out["lo"] == 0x5

    def test_for_loop(self):
        sim = rtl_sim("""
module m(input [7:0] d, output reg [3:0] n);
  integer i;
  always @(*) begin
    n = 4'd0;
    for (i = 0; i < 8; i = i + 1)
      n = n + d[i];
  end
endmodule
""")
        assert sim.evaluate({"d": 0xFF})["n"] == 8
        assert sim.evaluate({"d": 0x11})["n"] == 2

    def test_comb_cycle_detected(self):
        # A ring oscillator never settles: the simulator must say so.
        with pytest.raises(SimulationError):
            sim = rtl_sim("module m(input a, output x); "
                          "assign x = ~x | (a & ~a); endmodule")
            sim.evaluate({"a": 1})

    def test_clock_without_seq_raises(self):
        sim = rtl_sim("module m(input a, output y); assign y = a; endmodule")
        with pytest.raises(SimulationError):
            sim.clock()


class TestEquivalenceChecker:
    def test_equal_netlists(self):
        builder = NetlistBuilder("m")
        builder.inputs("a", "b")
        builder.outputs("y")
        builder.and_("a", "b", out="y")
        net_a = builder.build()
        report = check_netlists_equivalent(net_a, net_a.copy(), vectors=16)
        assert report.equivalent
        assert bool(report)

    def test_detects_difference(self):
        builder_a = NetlistBuilder("m")
        builder_a.inputs("a", "b")
        builder_a.outputs("y")
        builder_a.and_("a", "b", out="y")
        builder_b = NetlistBuilder("m")
        builder_b.inputs("a", "b")
        builder_b.outputs("y")
        builder_b.or_("a", "b", out="y")
        report = check_netlists_equivalent(builder_a.build(),
                                           builder_b.build(), vectors=64)
        assert not report.equivalent
        assert report.counterexample is not None

    def test_io_mismatch_rejected(self):
        builder_a = NetlistBuilder("m")
        builder_a.inputs("a")
        builder_a.outputs("y")
        builder_a.buf_("a", out="y")
        builder_b = NetlistBuilder("m")
        builder_b.inputs("b")
        builder_b.outputs("y")
        builder_b.buf_("b", out="y")
        with pytest.raises(SimulationError):
            check_netlists_equivalent(builder_a.build(), builder_b.build())

    def test_sequential_equivalence(self):
        def make(invert_twice):
            builder = NetlistBuilder("m")
            builder.inputs("clk", "d")
            builder.outputs("q")
            if invert_twice:
                t1 = builder.not_("d")
                t2 = builder.not_(t1)
                builder.dff_(t2, "clk", out="q")
            else:
                builder.dff_("d", "clk", out="q")
            return builder.build()

        report = check_netlists_equivalent(make(True), make(False),
                                           vectors=16)
        assert report.equivalent
