"""Unit tests for the Verilog lexer."""

import pytest

from repro.errors import LexerError
from repro.verilog.lexer import tokenize
from repro.verilog.tokens import (
    BASED_NUMBER,
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    PUNCT,
    STRING,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_gives_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_identifier(self):
        tokens = tokenize("foo_bar9$x")
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "foo_bar9$x"

    def test_keyword_recognized(self):
        tokens = tokenize("module wire assign")
        assert [t.kind for t in tokens[:-1]] == [KEYWORD] * 3

    def test_identifier_prefixed_by_keyword_is_ident(self):
        tokens = tokenize("wiremesh moduleX")
        assert [t.kind for t in tokens[:-1]] == [IDENT, IDENT]

    def test_decimal_number(self):
        tokens = tokenize("42")
        assert tokens[0].kind == NUMBER
        assert tokens[0].value == "42"

    def test_number_with_underscores(self):
        tokens = tokenize("1_000_000")
        assert tokens[0].value == "1000000"

    def test_based_number_hex(self):
        tokens = tokenize("8'hFF")
        assert tokens[0].kind == BASED_NUMBER
        assert tokens[0].value == "8'hFF"

    def test_based_number_unsized(self):
        tokens = tokenize("'b0101")
        assert tokens[0].kind == BASED_NUMBER

    def test_based_number_signed_marker(self):
        tokens = tokenize("4'sb1010")
        assert tokens[0].kind == BASED_NUMBER

    def test_based_number_with_x_z(self):
        tokens = tokenize("4'b1xz0")
        assert tokens[0].kind == BASED_NUMBER

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == STRING
        assert tokens[0].value == "hello world"

    def test_escaped_identifier(self):
        tokens = tokenize("\\weird!name rest")
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "weird!name"
        assert tokens[1].value == "rest"


class TestOperators:
    @pytest.mark.parametrize("op", ["<<<", ">>>", "===", "!==", "<<", ">>",
                                    "<=", ">=", "==", "!=", "&&", "||", "~&",
                                    "~|", "~^", "**", "+:", "-:"])
    def test_multichar_operator_is_single_token(self, op):
        tokens = tokenize(op)
        assert tokens[0].kind == PUNCT
        assert tokens[0].value == op

    def test_greedy_matching_of_shift(self):
        # "<<<" must lex as one token, not "<<" then "<".
        assert values("a <<< b") == ["a", "<<<", "b"]

    def test_single_char_operators(self):
        assert values("a+b-c") == ["a", "+", "b", "-", "c"]

    def test_brackets_and_braces(self):
        assert values("{a[1], b}") == ["{", "a", "[", "1", "]", ",", "b", "}"]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("a \x01 b")

    def test_stray_directive_rejected(self):
        with pytest.raises(LexerError):
            tokenize("`define X 1")

    def test_based_literal_without_digits(self):
        with pytest.raises(LexerError):
            tokenize("4'h")

    def test_bad_base_character(self):
        with pytest.raises(LexerError):
            tokenize("4'q1010")

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize('"no closing quote')

    def test_error_carries_location(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("ab\ncd \x02")
        assert excinfo.value.line == 2


class TestRealisticSnippets:
    def test_module_header(self):
        text = "module top(input clk, output reg [7:0] q);"
        token_values = values(text)
        assert token_values[0] == "module"
        assert "input" in token_values
        assert token_values[-1] == ";"

    def test_gate_instance(self):
        assert values("xor g1 (s, a, b);") == \
            ["xor", "g1", "(", "s", ",", "a", ",", "b", ")", ";"]

    def test_nonblocking_assign_lexes_le(self):
        # '<=' is one token; the parser disambiguates assign vs compare.
        assert "<=" in values("q <= d;")
