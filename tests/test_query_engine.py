"""Query engine, shard store, IVF quantizer, and incremental adds.

Covers the format-v4 serving contract: v2/v3 refusal with a migration
message, partial/corrupt shard detection, the IVF recall floor,
``query_many`` == per-vector ``query_vector`` bit-identity in exact
mode, append-only ``index add``, and the cached embedding service.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import GNN4IP
from repro.dataflow import dfg_from_verilog
from repro.errors import IndexStoreError
from repro.index import (
    FingerprintIndex,
    IVFIndex,
    QueryEngine,
    add_to_index,
    build_index,
    migrate_v2,
)
from repro.index import service as service_mod
from repro.index.shards import unit_rows_f32

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

SUB = """
module sub(input [3:0] a, input [3:0] b, output [4:0] d);
  assign d = a - b;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""

XOR_CHAIN = """
module xchain(input [3:0] a, input [3:0] b, output x);
  assign x = ^(a ^ b);
endmodule
"""

SOURCES = {"adder.v": ADDER, "sub.v": SUB, "mux.v": MUX}


@pytest.fixture
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    for name, text in SOURCES.items():
        (root / name).write_text(text)
    return root


@pytest.fixture
def built(tmp_path, corpus_dir):
    model = GNN4IP(seed=0)
    index, report = build_index(tmp_path / "idx",
                                sorted(corpus_dir.glob("*.v")), model,
                                jobs=1)
    return index, report, model


def _downgrade_to_v2(index):
    """Rewrite a built v3 index as a faithful v2 layout (for migration
    tests): compressed float64 npz + v2 meta, no shards."""
    root = index.root
    ok = [e for e in index.entries if e["status"] == "ok"]
    np.savez(root / "embeddings.npz",
             matrix=np.asarray(index.matrix, dtype=np.float64),
             keys=np.array([e["key"] for e in ok], dtype="U64"))
    meta = json.loads((root / "meta.json").read_text())
    meta["version"] = 2
    meta.pop("store", None)
    meta.pop("ivf", None)
    meta["options"].pop("use_cache", None)
    (root / "meta.json").write_text(json.dumps(meta))
    for shard in (root / "shards").glob("shard-*"):
        shard.unlink()


def clustered_vectors(n, hidden=16, families=20, seed=0, noise=0.15):
    """Synthetic unit float32 rows clustered into design families."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((families, hidden))
    labels = rng.integers(0, families, size=n)
    rows = centers[labels] + noise * rng.standard_normal((n, hidden))
    return unit_rows_f32(rows)


def synthetic_engine(matrix, ivf=None):
    entries = [{"name": f"d{i}", "path": f"d{i}.v", "design": f"fam{i}",
                "status": "ok", "key": f"{i:064d}"}
               for i in range(len(matrix))]
    return QueryEngine([matrix], entries, ivf=ivf)


class TestV2Migration:
    def test_v2_load_refused_with_migrate_message(self, built):
        index, _, _ = built
        _downgrade_to_v2(index)
        with pytest.raises(IndexStoreError, match="index migrate"):
            FingerprintIndex.load(index.root)

    def test_migrate_v2_preserves_scores(self, built):
        index, _, model = built
        suspect = dfg_from_verilog(ADDER)
        before = index.query_graph(suspect, model, k=3)
        _downgrade_to_v2(index)
        migrated = migrate_v2(index.root)
        assert not (index.root / "embeddings.npz").exists()
        after = migrated.query_graph(suspect, model, k=3)
        assert [(h.name, h.score) for h in after] == \
            [(h.name, h.score) for h in before]

    def test_migrate_cli(self, built, capsys):
        index, _, _ = built
        _downgrade_to_v2(index)
        assert main(["index", "migrate", str(index.root)]) == 0
        assert "format v4" in capsys.readouterr().out
        assert main(["index", "stats", str(index.root)]) == 0
        capsys.readouterr()
        # Re-running on an already-v4 index must not claim a migration.
        assert main(["index", "migrate", str(index.root)]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_migrate_rejects_other_versions(self, built):
        index, _, _ = built
        meta = json.loads((index.root / "meta.json").read_text())
        meta["version"] = 1
        (index.root / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(IndexStoreError, match="only v2"):
            migrate_v2(index.root)


class TestShardIntegrity:
    def test_truncated_shard_detected(self, built):
        index, _, _ = built
        shard = next((index.root / "shards").glob("shard-*.f32"))
        shard.write_bytes(shard.read_bytes()[:-4])
        with pytest.raises(IndexStoreError, match="truncated"):
            FingerprintIndex.load(index.root)

    def test_missing_shard_detected(self, built):
        index, _, _ = built
        next((index.root / "shards").glob("shard-*.f32")).unlink()
        with pytest.raises(IndexStoreError, match="missing"):
            FingerprintIndex.load(index.root)

    def test_verify_catches_same_size_corruption(self, built):
        index, _, _ = built
        shard = next((index.root / "shards").glob("shard-*.f32"))
        blob = bytearray(shard.read_bytes())
        blob[0] ^= 0xFF
        shard.write_bytes(bytes(blob))
        reloaded = FingerprintIndex.load(index.root)  # size still matches
        assert reloaded.shards.verify() == [shard.name]

    def test_verify_clean(self, built):
        index, _, _ = built
        assert index.shards.verify() == []

    def test_rebuild_never_overwrites_a_referenced_shard(self, built,
                                                         corpus_dir,
                                                         tmp_path):
        """A rebuild writes its matrix under a fresh shard name (old
        files are cleaned only after the new meta lands), so a crash
        mid-rebuild can never pair the previous meta with new bytes."""
        index, _, model = built
        old = index.meta["store"]["shards"][0]["file"]
        rebuilt, _ = build_index(index.root,
                                 sorted(corpus_dir.glob("*.v")), model,
                                 jobs=1)
        new = rebuilt.meta["store"]["shards"][0]["file"]
        assert new != old
        assert not (index.root / "shards" / old).exists()
        assert rebuilt.shards.verify() == []


class TestExactBatched:
    def test_query_many_matches_query_vector_bitwise(self, built):
        """Every batched exact result must be bit-identical to the same
        vector served alone through query_vector."""
        index, _, model = built
        rng = np.random.default_rng(5)
        batch = np.concatenate([index.matrix,
                                rng.standard_normal((61, 16))])
        many = index.query_many(batch, k=len(index), exact=True)
        for vector, hits in zip(batch, many):
            single = index.query_vector(vector, k=len(index), exact=True)
            assert [(h.name, h.score) for h in single] == \
                [(h.name, h.score) for h in hits]

    def test_empty_batch_and_k_edge_cases(self, built):
        index, _, _ = built
        assert index.query_many(np.empty((0, 16))) == []
        assert index.query_many([]) == []
        assert index.query_vector(index.matrix[0], k=0) == []
        hits = index.query_vector(index.matrix[0], k=99)
        assert len(hits) == len(index)

    def test_wrong_width_rejected(self, built):
        index, _, _ = built
        with pytest.raises(IndexStoreError, match="shape"):
            index.query_vector(np.ones(7))

    def test_tied_survivors_ordered_by_row(self):
        """Among the selected top-k, equal scores order by lower row id.

        (Which of several boundary-tied rows gets selected is
        deterministic but unspecified — argpartition, not full argsort.)
        """
        matrix = unit_rows_f32(np.array([[1.0, 0.0], [1.0, 0.0],
                                         [0.0, 1.0], [-1.0, 0.0]]))
        engine = synthetic_engine(matrix)
        hits = engine.query_many(np.array([[1.0, 0.0]]), k=2)[0]
        assert [h.name for h in hits] == ["d0", "d1"]
        assert [h.score for h in hits] == [1.0, 1.0]


class TestIVF:
    def test_recall_floor_and_exact_rerank(self):
        matrix = clustered_vectors(2000, families=25, seed=1)
        ivf = IVFIndex.fit(matrix, n_clusters=40, seed=0)
        engine = synthetic_engine(matrix, ivf=ivf)
        rng = np.random.default_rng(2)
        picks = rng.choice(len(matrix), size=64, replace=False)
        queries = unit_rows_f32(
            matrix[picks] + 0.05 * rng.standard_normal((64, 16)))
        exact = engine.query_many(queries, k=10, exact=True)
        approx = engine.query_many(queries, k=10, nprobe=8)
        recalls = []
        for ex, ap in zip(exact, approx):
            truth = {h.name for h in ex}
            got = {h.name for h in ap}
            recalls.append(len(truth & got) / len(truth))
            # Survivors are re-ranked exactly: scores match bit-for-bit
            # against the exact pass for every row both agree on.
            ex_scores = {h.name: h.score for h in ex}
            for hit in ap:
                if hit.name in ex_scores:
                    assert hit.score == pytest.approx(ex_scores[hit.name],
                                                      abs=1e-6)
        assert float(np.mean(recalls)) >= 0.95

    def test_nprobe_all_clusters_equals_exact(self):
        matrix = clustered_vectors(500, families=10, seed=3)
        ivf = IVFIndex.fit(matrix, n_clusters=16, seed=0)
        engine = synthetic_engine(matrix, ivf=ivf)
        queries = matrix[:8]
        exact = engine.query_many(queries, k=5, exact=True)
        full_probe = engine.query_many(queries, k=5, nprobe=16)
        for ex, ap in zip(exact, full_probe):
            assert [h.name for h in ex] == [h.name for h in ap]

    def test_fit_deterministic_and_persistent(self, tmp_path):
        matrix = clustered_vectors(600, seed=4)
        a = IVFIndex.fit(matrix, n_clusters=12, seed=7)
        b = IVFIndex.fit(matrix, n_clusters=12, seed=7)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.assignments, b.assignments)
        a.save(tmp_path / "ivf.npz")
        loaded = IVFIndex.load(tmp_path / "ivf.npz")
        np.testing.assert_array_equal(loaded.centroids, a.centroids)

    def test_add_assigns_without_reclustering(self):
        matrix = clustered_vectors(400, seed=5)
        ivf = IVFIndex.fit(matrix, n_clusters=10, seed=0)
        centroids_before = ivf.centroids.copy()
        assignments_before = ivf.assignments.copy()
        extra = clustered_vectors(40, seed=6)
        ivf.add(extra)
        np.testing.assert_array_equal(ivf.centroids, centroids_before)
        np.testing.assert_array_equal(ivf.assignments[:400],
                                      assignments_before)
        assert ivf.rows == 440
        np.testing.assert_array_equal(ivf.assignments[400:],
                                      ivf.assign(extra))

    def test_corrupt_ivf_refused(self, tmp_path):
        (tmp_path / "ivf.npz").write_bytes(b"junk")
        with pytest.raises(IndexStoreError, match="corrupt IVF"):
            IVFIndex.load(tmp_path / "ivf.npz")

    def test_truncated_zip_ivf_refused(self, tmp_path):
        """Zip magic intact but archive truncated (interrupted copy):
        np.load raises BadZipFile, which must surface as the same
        IndexStoreError so index load degrades instead of crashing."""
        matrix = clustered_vectors(300, seed=8)
        ivf = IVFIndex.fit(matrix, n_clusters=8, seed=0)
        path = tmp_path / "ivf.npz"
        ivf.save(path)
        path.write_bytes(path.read_bytes()[:len(path.read_bytes()) // 2])
        with pytest.raises(IndexStoreError, match="corrupt IVF"):
            IVFIndex.load(path)

    def test_stale_or_corrupt_quantizer_degrades_to_exact(
            self, tmp_path, corpus_dir, monkeypatch):
        """The quantizer is an accelerator, not a dependency: a broken
        ivf.npz must not make an intact index unloadable, and the next
        add refits it."""
        monkeypatch.setattr("repro.index.store.IVF_MIN_ROWS", 2)
        model = GNN4IP(seed=0)
        root = tmp_path / "ivf_idx"
        index, _ = build_index(root, sorted(corpus_dir.glob("*.v")),
                               model, jobs=1)
        assert index.ivf is not None
        # Corrupt quantizer -> exact serving, index still loads.
        (root / index.meta["ivf"]["file"]).write_bytes(b"junk")
        degraded = FingerprintIndex.load(root)
        assert degraded.ivf is None
        hits = degraded.query_graph(dfg_from_verilog(ADDER), model, k=1)
        assert hits[0].name == "adder"
        assert degraded.stats()["ivf_clusters"] == 0
        # Simulated crash between ivf.save and the meta write: quantizer
        # rows outrun the metadata -> treated as stale, exact serving.
        healed, _ = add_to_index(root, [corpus_dir / "adder.v"], jobs=1)
        assert healed.ivf is not None
        healed.ivf.add(np.ones((1, 16), dtype=np.float32))
        healed.ivf.save(root / healed.meta["ivf"]["file"])
        assert FingerprintIndex.load(root).ivf is None
        # The add path refits a dropped quantizer from the full matrix,
        # under a fresh generation name, and cleans superseded files.
        extra = tmp_path / "xchain.v"
        extra.write_text(XOR_CHAIN)
        refitted, _ = add_to_index(root, [extra], jobs=1)
        assert refitted.ivf is not None
        assert refitted.ivf.rows == len(refitted)
        on_disk = sorted(p.name for p in root.glob("ivf*.npz"))
        assert on_disk == [refitted.meta["ivf"]["file"]]
        assert refitted.meta["ivf"]["file"] != index.meta["ivf"]["file"]


class TestIncrementalAdd:
    def test_appends_shard_without_touching_existing(self, built,
                                                     tmp_path):
        index, _, model = built
        first_shard = index.root / "shards" / "shard-00000.f32"
        before_bytes = first_shard.read_bytes()
        extra = tmp_path / "xchain.v"
        extra.write_text(XOR_CHAIN)
        grown, report = add_to_index(index.root, [extra], jobs=1)
        assert report["mode"] == "add"
        assert report["embedded_fresh"] == 1
        assert len(grown) == len(index) + 1
        assert first_shard.read_bytes() == before_bytes
        assert (index.root / "shards" / "shard-00001.f32").is_file()
        hits = grown.query_graph(dfg_from_verilog(XOR_CHAIN), model, k=1)
        assert hits[0].name == "xchain"
        assert hits[0].score == pytest.approx(1.0, abs=1e-6)

    def test_duplicate_content_reuses_embedding(self, built, tmp_path):
        index, _, _ = built
        copy = tmp_path / "adder_copy.v"
        copy.write_text(ADDER)
        grown, report = add_to_index(index.root, [copy], jobs=1)
        assert report["embedded_fresh"] == 0
        assert report["embeddings_reused"] == 1
        assert len(grown) == len(index) + 1

    def test_duplicate_stem_gets_unique_name(self, built, tmp_path):
        index, _, _ = built
        other = tmp_path / "adder.v"
        other.write_text(XOR_CHAIN)
        grown, _ = add_to_index(index.root, [other], jobs=1)
        names = [e["name"] for e in grown.entries]
        assert "adder" in names and "adder#2" in names

    def test_add_cli(self, built, tmp_path, capsys):
        index, _, _ = built
        extra = tmp_path / "xchain.v"
        extra.write_text(XOR_CHAIN)
        assert main(["index", "add", str(index.root), str(extra)]) == 0
        out = capsys.readouterr().out
        assert "added 1/1 files" in out
        assert "2 shard(s)" in out

    def test_add_cli_nothing_added_exits_nonzero(self, built, tmp_path,
                                                 capsys):
        index, _, _ = built
        bad = tmp_path / "bad.v"
        bad.write_text("module oops(input a endmodule")
        assert main(["index", "add", str(index.root), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "added 0/1 files" in captured.out
        assert "FAILED" in captured.err

    def test_add_cli_reports_only_this_runs_failures(self, tmp_path,
                                                     corpus_dir, capsys):
        (corpus_dir / "broken.v").write_text("module oops(input a endmodule")
        root = tmp_path / "idx_fail"
        assert main(["index", "build", str(root), str(corpus_dir),
                     "--allow-untrained"]) == 0
        capsys.readouterr()
        good = tmp_path / "xchain.v"
        good.write_text(XOR_CHAIN)
        assert main(["index", "add", str(root), str(good)]) == 0
        captured = capsys.readouterr()
        # The old build failure must not be re-reported by this add.
        assert "0 failures" in captured.out
        assert "FAILED" not in captured.err


class TestServingCaches:
    def test_service_fingerprints_model_once(self, built, monkeypatch):
        index, _, model = built
        calls = []
        real = service_mod.model_fingerprint
        monkeypatch.setattr(service_mod, "model_fingerprint",
                            lambda m: calls.append(1) or real(m))
        suspect = dfg_from_verilog(ADDER)
        index.query_graph(suspect, model, k=1)
        index.query_graph(suspect, model, k=1)
        index.query_graph(suspect, model, k=1)
        assert len(calls) == 1

    def test_frontend_cached(self, built):
        index, _, _ = built
        assert index.frontend() is index.frontend()

    def test_foreign_model_still_rejected(self, built):
        index, _, _ = built
        with pytest.raises(IndexStoreError, match="fingerprint"):
            index.service_for(GNN4IP(seed=9))

    def test_stats_does_not_create_cache_dir(self, tmp_path, corpus_dir):
        root = tmp_path / "nocache_idx"
        index, _ = build_index(root, sorted(corpus_dir.glob("*.v")),
                               GNN4IP(seed=0), jobs=1, use_cache=False)
        assert not index.use_cache
        assert not (root / "cache").exists()
        stats = FingerprintIndex.load(root).stats()
        assert stats["cache_entries"] == 0
        assert stats["cache_bytes"] == 0
        assert not (root / "cache").exists()
        assert main(["index", "stats", str(root)]) == 0
        assert not (root / "cache").exists()

    def test_compare_respects_no_cache_policy(self, tmp_path, corpus_dir,
                                              capsys):
        root = tmp_path / "nocache_idx"
        build_index(root, sorted(corpus_dir.glob("*.v")), GNN4IP(seed=0),
                    jobs=1, use_cache=False)
        fresh = tmp_path / "fresh.v"
        fresh.write_text(XOR_CHAIN)
        code = main(["compare", str(corpus_dir / "adder.v"), str(fresh),
                     "--index", str(root)])
        capsys.readouterr()
        assert code in (0, 2)
        assert not (root / "cache").exists()


class TestQueryCLI:
    def test_multi_suspect_tables(self, built, corpus_dir, capsys):
        index, _, _ = built
        code = main(["index", "query", str(index.root),
                     str(corpus_dir / "adder.v"),
                     str(corpus_dir / "mux.v"), "-k", "2"])
        assert code == 2
        out = capsys.readouterr().out
        assert out.count("== ") == 2
        assert out.count("top 2 of") == 2

    def test_exact_and_nprobe_flags(self, built, corpus_dir, capsys):
        index, _, _ = built
        assert main(["index", "query", str(index.root),
                     str(corpus_dir / "adder.v"), "--exact"]) == 2
        assert "exact" in capsys.readouterr().out
        # nprobe on an index without a quantizer still serves exactly.
        assert main(["index", "query", str(index.root),
                     str(corpus_dir / "adder.v"), "--nprobe", "4"]) == 2

    def test_bad_suspect_reported_others_served(self, built, corpus_dir,
                                                tmp_path, capsys):
        index, _, _ = built
        bad = tmp_path / "broken.v"
        bad.write_text("module oops(input a endmodule")
        code = main(["index", "query", str(index.root), str(bad),
                     str(corpus_dir / "adder.v")])
        captured = capsys.readouterr()
        assert code == 2  # the good suspect still found its match
        assert "broken.v" in captured.err
        assert "top" in captured.out
