"""Public facade contract: configs, typed results, and error paths.

Covers the satellite error paths the facade must make loud: no silent
untrained models, wrong ``level`` vs the model featurizer, v2 index
refusal through ``Corpus.open``, and querying an empty index.
"""

import json

import numpy as np
import pytest

from repro.api import (
    ORIGIN_CACHE,
    ORIGIN_EXTRACTED,
    ORIGIN_INDEX,
    Corpus,
    Detector,
    DetectorConfig,
    IndexConfig,
    Session,
)
from repro.cli import main
from repro.core import GNN4IP, save_model
from repro.errors import IndexStoreError, ModelError

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""

XOR_CHAIN = """
module xchain(input [3:0] a, input [3:0] b, output x);
  assign x = ^(a ^ b);
endmodule
"""


@pytest.fixture
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "adder.v").write_text(ADDER)
    (root / "mux.v").write_text(MUX)
    return root


@pytest.fixture
def detector():
    return Detector.from_model(GNN4IP(seed=0))


@pytest.fixture
def built(tmp_path, corpus_dir, detector):
    corpus, report = Corpus.build(tmp_path / "idx",
                                  sorted(corpus_dir.glob("*.v")),
                                  detector, IndexConfig(jobs=1))
    assert report["failures"] == 0
    return corpus


class TestDetectorConfig:
    def test_no_model_refused(self):
        with pytest.raises(ModelError, match="allow_untrained"):
            Detector.from_config(DetectorConfig())

    def test_missing_model_file_raises(self, tmp_path):
        with pytest.raises(ModelError, match="not found"):
            Detector.load(tmp_path / "absent.npz")

    def test_level_conflicts_with_model_featurizer(self, tmp_path):
        path = tmp_path / "rtl.npz"
        save_model(GNN4IP(seed=0), path)
        with pytest.raises(ModelError, match="trained at level 'rtl'"):
            Detector.load(path, level="netlist")

    def test_untrained_is_explicit(self):
        detector = Detector.untrained(level="netlist", seed=3)
        assert detector.level == "netlist"

    def test_delta_override(self, tmp_path):
        path = tmp_path / "m.npz"
        save_model(GNN4IP(seed=0, delta=0.5), path)
        assert Detector.load(path, delta=0.25).delta == pytest.approx(0.25)


class TestDetector:
    def test_fingerprint_source_forms_agree(self, corpus_dir, detector):
        from_path = detector.fingerprint(corpus_dir / "adder.v")
        from_text = detector.fingerprint(ADDER)
        from_graph = detector.fingerprint(
            detector.frontend().extract(ADDER))
        np.testing.assert_allclose(from_path.vector, from_text.vector)
        np.testing.assert_allclose(from_path.vector, from_graph.vector)
        assert from_path.key == from_text.key
        assert from_graph.key is None  # raw graphs have no content key
        assert from_path.design == "adder"
        assert from_path.label == str(corpus_dir / "adder.v")

    def test_compare_identical_is_piracy(self, detector):
        comparison = detector.compare(ADDER, ADDER)
        assert comparison.score == pytest.approx(1.0)
        assert comparison.is_piracy
        assert comparison.verdict == "PIRACY"

    def test_results_serialize_to_json(self, detector):
        fingerprint = detector.fingerprint(ADDER)
        comparison = detector.compare(ADDER, MUX)
        payload = json.dumps({"fp": fingerprint.as_dict(),
                              "cmp": comparison.as_dict()})
        decoded = json.loads(payload)
        assert decoded["fp"]["design"] == "adder"
        assert isinstance(decoded["cmp"]["score"], float)


class TestCorpus:
    def test_open_missing_index(self, tmp_path):
        with pytest.raises(IndexStoreError, match="index build"):
            Corpus.open(tmp_path / "nope")

    def test_v2_index_refused_via_open(self, built):
        meta_path = built.root / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 2
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IndexStoreError, match="index migrate"):
            Corpus.open(built.root)

    def test_empty_index_query_raises(self, tmp_path, detector):
        broken = tmp_path / "broken.v"
        broken.write_text("module oops(endmodule")
        corpus, report = Corpus.build(tmp_path / "empty_idx", [broken],
                                      detector, IndexConfig(jobs=1))
        assert report["embedded"] == 0
        assert len(corpus) == 0
        session = Session(detector=detector, corpus=corpus)
        with pytest.raises(IndexStoreError, match="empty"):
            session.query([ADDER], k=1)

    def test_query_returns_ranked_matches(self, built, detector):
        graph = built.frontend().extract(ADDER)
        (result,) = built.query([graph], k=2, detector=detector)
        assert [match.rank for match in result] == [1, 2]
        assert result[0].design == "adder"
        assert result[0].score == pytest.approx(1.0, abs=1e-6)
        assert result[0].as_dict()["rank"] == 1

    def test_serving_description_exact(self, built):
        assert built.serving_description() == "exact"
        assert built.serving_description(exact=True) == "exact"


class TestSession:
    def test_needs_detector_or_corpus(self):
        with pytest.raises(ValueError):
            Session()

    def test_level_mismatch_refused(self, built):
        netlist_detector = Detector.untrained(level="netlist")
        with pytest.raises(ModelError, match="level"):
            Session(detector=netlist_detector, corpus=built)

    def test_fingerprint_origin_ladder(self, built, detector, tmp_path):
        session = Session(detector=detector, corpus=built)
        assert session.fingerprint(ADDER).origin == ORIGIN_INDEX
        fresh = tmp_path / "fresh.v"
        fresh.write_text(XOR_CHAIN)
        assert session.fingerprint(fresh).origin == ORIGIN_EXTRACTED
        # The extraction landed in the index's graph cache.
        assert session.fingerprint(fresh).origin == ORIGIN_CACHE

    def test_foreign_model_skips_index_reuse(self, built):
        session = Session(detector=Detector.from_model(GNN4IP(seed=9)),
                          corpus=built)
        assert session.fingerprint(ADDER).origin != ORIGIN_INDEX

    def test_query_vectors(self, built, detector):
        session = Session(detector=detector, corpus=built)
        vector = session.fingerprint(ADDER).vector
        (result,) = session.query([vector], k=1)
        assert result[0].design == "adder"

    def test_query_rejects_mixed_suspects(self, built, detector):
        session = Session(detector=detector, corpus=built)
        vector = session.fingerprint(ADDER).vector
        with pytest.raises(TypeError, match="mix"):
            session.query([vector, ADDER])

    def test_allow_paths_false_treats_strings_as_source(self, built,
                                                        detector,
                                                        corpus_dir):
        from repro.errors import ReproError

        session = Session(detector=detector, corpus=built)
        path = str(corpus_dir / "adder.v")
        assert session.fingerprint(path).design == "adder"
        with pytest.raises(ReproError):  # parsed as (broken) source text
            session.fingerprint(path, allow_paths=False)
        with pytest.raises(TypeError):
            session.fingerprint(corpus_dir / "adder.v", allow_paths=False)

    def test_vector_delta_is_call_order_independent(self, tmp_path,
                                                    corpus_dir):
        detector = Detector.from_model(GNN4IP(seed=0, delta=2.0))
        corpus, _ = Corpus.build(tmp_path / "delta_idx",
                                 sorted(corpus_dir.glob("*.v")),
                                 detector, IndexConfig(jobs=1))
        session = Session.open(corpus.root)  # no detector bound yet
        vector = Detector.from_model(GNN4IP(seed=0)).fingerprint(
            ADDER).vector
        (result,) = session.query([vector], k=1)
        # Judged against the stored model's delta (2.0), not 0.0.
        assert result[0].score == pytest.approx(1.0, abs=1e-6)
        assert not result[0].is_piracy

    def test_open_uses_corpus_model(self, built):
        session = Session.open(built.root)
        (result,) = session.query([ADDER], k=1)
        assert result[0].design == "adder"
        assert result[0].score == pytest.approx(1.0, abs=1e-6)


class TestCliJson:
    def test_index_query_json(self, built, corpus_dir, capsys):
        code = main(["index", "query", str(built.root),
                     str(corpus_dir / "adder.v"), "-k", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2  # self-match still flags piracy
        assert payload["designs"] == 2
        assert payload["serving"] == "exact"
        (result,) = payload["results"]
        assert result["matches"][0]["design"] == "adder"
        assert result["matches"][0]["rank"] == 1
        assert result["matches"][0]["is_piracy"] is True
