"""Streaming ingest: equivalence, resume, error isolation, recovery.

The contract under test (see ``repro.index.ingest``):

- a streaming ingest produces an index whose query results are
  identical to a one-shot ``build_index`` over the same files;
- a run killed (here: paused) mid-stream resumes from its checkpoint
  and finishes with results identical to an uninterrupted run;
- one broken design is recorded and skipped, never fatal;
- a checkpoint whose inputs, model, or shard bytes no longer match is
  refused with a loud, actionable error — never silently misread.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import GNN4IP, save_model
from repro.dataflow import dfg_from_verilog
from repro.errors import IndexStoreError, ModelError
from repro.index import (
    FingerprintIndex,
    IngestConfig,
    build_index,
    ingest_corpus,
    walk_sources,
)
from repro.index.ingest import (
    CHECKPOINT_NAME,
    COMPACT_MIN_SHARDS,
    SIG_SIDECAR_NAME,
)

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

SUB = """
module sub(input [3:0] a, input [3:0] b, output [4:0] d);
  assign d = a - b;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""

XOR_CHAIN = """
module xchain(input [3:0] a, input [3:0] b, output x);
  assign x = ^(a ^ b);
endmodule
"""

COUNTER = """
module counter(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule
"""

PARITY = """
module parity(input [7:0] d, output p);
  assign p = ^d;
endmodule
"""

SOURCES = {"adder.v": ADDER, "sub.v": SUB, "mux.v": MUX,
           "xchain.v": XOR_CHAIN, "counter.v": COUNTER,
           "parity.v": PARITY}

BROKEN = "module oops(input a\n"  # unparseable on purpose


@pytest.fixture
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    for name, text in SOURCES.items():
        (root / name).write_text(text)
    return root


@pytest.fixture
def corpus(corpus_dir):
    return sorted(corpus_dir.glob("*.v"))


def top_hits(index, source, k=4):
    model = index.model()
    hits = index.query_graph(dfg_from_verilog(source), model, k=k)
    return [(h.name, h.score) for h in hits]


def assert_same_hits(a, b):
    assert [name for name, _ in a] == [name for name, _ in b]
    np.testing.assert_allclose([s for _, s in a], [s for _, s in b],
                               atol=2e-6)


class TestWalkSources:
    def test_expands_directories_recursively(self, tmp_path):
        (tmp_path / "lib" / "sub").mkdir(parents=True)
        (tmp_path / "lib" / "b.v").write_text(ADDER)
        (tmp_path / "lib" / "sub" / "a.v").write_text(MUX)
        (tmp_path / "one.v").write_text(SUB)
        (tmp_path / "lib" / "notes.txt").write_text("not verilog")
        found = walk_sources([tmp_path / "one.v", tmp_path / "lib"])
        assert [p.name for p in found] == ["one.v", "b.v", "a.v"]

    def test_deduplicates_and_keeps_order_stable(self, tmp_path):
        (tmp_path / "a.v").write_text(ADDER)
        twice = walk_sources([tmp_path / "a.v", tmp_path, tmp_path])
        assert [p.name for p in twice] == ["a.v"]


class TestFreshIngest:
    def test_matches_one_shot_build(self, tmp_path, corpus):
        """The acceptance equivalence: streaming ingest == build_index,
        same entries, same rows, same top-k names and scores."""
        model = GNN4IP(seed=0)
        built, _ = build_index(tmp_path / "built", corpus,
                               GNN4IP(seed=0), jobs=1)
        ingested, report = ingest_corpus(
            tmp_path / "ingested", corpus, model,
            IngestConfig(jobs=1, flush_rows=4))
        assert report["ingest"]["state"] == "complete"
        assert report["embedded"] == len(corpus)
        assert [e["name"] for e in ingested.entries] == \
            [e["name"] for e in built.entries]
        assert len(ingested.meta["rows"]) == len(built.meta["rows"])
        np.testing.assert_array_equal(np.asarray(ingested.matrix),
                                      np.asarray(built.matrix))
        for source in (ADDER, MUX, XOR_CHAIN):
            assert_same_hits(top_hits(ingested, source),
                             top_hits(built, source))

    def test_multiprocess_matches_serial(self, tmp_path, corpus):
        serial, _ = ingest_corpus(tmp_path / "serial", corpus,
                                  GNN4IP(seed=0), IngestConfig(jobs=1))
        parallel, report = ingest_corpus(tmp_path / "parallel", corpus,
                                         GNN4IP(seed=0),
                                         IngestConfig(jobs=2))
        assert report["jobs"] == 2
        np.testing.assert_array_equal(np.asarray(parallel.matrix),
                                      np.asarray(serial.matrix))
        assert [e["name"] for e in parallel.entries] == \
            [e["name"] for e in serial.entries]

    def test_checkpoint_and_sidecar_removed_on_completion(self, tmp_path,
                                                          corpus):
        index, _ = ingest_corpus(tmp_path / "idx", corpus, GNN4IP(seed=0),
                                 IngestConfig(jobs=1, flush_rows=4))
        assert not (index.root / CHECKPOINT_NAME).exists()
        assert not (index.root / SIG_SIDECAR_NAME).exists()

    def test_needs_model(self, tmp_path, corpus):
        with pytest.raises(ModelError, match="needs a model"):
            ingest_corpus(tmp_path / "idx", corpus)

    def test_empty_input_refused(self, tmp_path):
        with pytest.raises(IndexStoreError, match="no input files"):
            ingest_corpus(tmp_path / "idx", [], GNN4IP(seed=0))

    def test_progress_callback_sees_totals(self, tmp_path, corpus):
        seen = []
        ingest_corpus(tmp_path / "idx", corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, progress=seen.append,
                                   progress_every=0.0))
        assert seen, "progress callback never fired"
        last = seen[-1]
        assert last["done"] == last["total"] == len(corpus)
        assert last["failed"] == 0
        assert last["rows"] > 0
        assert last["rows_per_sec"] > 0


class TestErrorIsolation:
    def test_broken_design_recorded_and_skipped(self, tmp_path,
                                                corpus_dir):
        """One unparseable file becomes an error entry — the run keeps
        going and every other design is indexed normally."""
        (corpus_dir / "broken.v").write_text(BROKEN)
        paths = sorted(corpus_dir.glob("*.v"))
        index, report = ingest_corpus(tmp_path / "idx", paths,
                                      GNN4IP(seed=0),
                                      IngestConfig(jobs=1))
        assert report["failures"] == 1
        assert report["embedded"] == len(paths) - 1
        broken = next(e for e in index.entries if e["name"] == "broken")
        assert broken["status"] == "error"
        assert "ParseError" in broken["error"]
        # The good designs still answer queries.
        assert top_hits(index, ADDER)[0][0] == "adder"

    def test_error_entry_survives_pause_and_resume(self, tmp_path,
                                                   corpus_dir):
        (corpus_dir / "aa_broken.v").write_text(BROKEN)  # sorts first
        paths = sorted(corpus_dir.glob("*.v"))
        none_index, report = ingest_corpus(
            tmp_path / "idx", paths, GNN4IP(seed=0),
            IngestConfig(jobs=1, stop_after=2))
        assert none_index is None
        assert report["ingest"]["state"] == "paused"
        checkpoint = json.loads(
            (tmp_path / "idx" / CHECKPOINT_NAME).read_text())
        statuses = {e["name"]: e["status"] for e in checkpoint["entries"]}
        assert statuses["aa_broken"] == "error"
        index, report = ingest_corpus(tmp_path / "idx", paths)
        assert report["ingest"]["resumed"] is True
        assert report["failures"] == 1
        assert len(index.entries) == len(paths)


class TestPauseAndResume:
    def test_resumed_equals_uninterrupted(self, tmp_path, corpus):
        """Kill-and-resume equivalence at the API level: pause after a
        flush, resume, and compare against a one-go ingest."""
        one_go, _ = ingest_corpus(tmp_path / "onego", corpus,
                                  GNN4IP(seed=0),
                                  IngestConfig(jobs=1, flush_rows=4))
        root = tmp_path / "paused"
        paused, report = ingest_corpus(
            root, corpus, GNN4IP(seed=0),
            IngestConfig(jobs=1, flush_rows=4, stop_after=3))
        assert paused is None
        assert report["ingest"]["completed"] == 3
        assert (root / CHECKPOINT_NAME).is_file()
        resumed, report = ingest_corpus(root, corpus)  # model from disk
        assert report["ingest"]["resumed"] is True
        assert report["ingest"]["session_designs"] == len(corpus) - 3
        np.testing.assert_array_equal(np.asarray(resumed.matrix),
                                      np.asarray(one_go.matrix))
        for source in (ADDER, COUNTER):
            assert_same_hits(top_hits(resumed, source),
                             top_hits(one_go, source))

    def test_resume_refuses_changed_input_list(self, tmp_path, corpus):
        root = tmp_path / "idx"
        ingest_corpus(root, corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, stop_after=2))
        with pytest.raises(IndexStoreError, match="input file list"):
            ingest_corpus(root, corpus[:-1])

    def test_resume_refuses_changed_model(self, tmp_path, corpus):
        root = tmp_path / "idx"
        ingest_corpus(root, corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, stop_after=2))
        with pytest.raises(IndexStoreError, match="model changed"):
            ingest_corpus(root, corpus, GNN4IP(seed=1))

    def test_resume_refuses_corrupt_checkpoint(self, tmp_path, corpus):
        root = tmp_path / "idx"
        ingest_corpus(root, corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, stop_after=2))
        (root / CHECKPOINT_NAME).write_text("{not json")
        with pytest.raises(IndexStoreError, match="corrupt"):
            ingest_corpus(root, corpus)

    def test_resume_refuses_unknown_checkpoint_version(self, tmp_path,
                                                       corpus):
        root = tmp_path / "idx"
        ingest_corpus(root, corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, stop_after=2))
        checkpoint = json.loads((root / CHECKPOINT_NAME).read_text())
        checkpoint["version"] = 999
        (root / CHECKPOINT_NAME).write_text(json.dumps(checkpoint))
        with pytest.raises(IndexStoreError, match="version"):
            ingest_corpus(root, corpus)

    def test_fresh_flag_discards_checkpoint(self, tmp_path, corpus):
        root = tmp_path / "idx"
        ingest_corpus(root, corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, stop_after=2))
        index, report = ingest_corpus(root, corpus, GNN4IP(seed=0),
                                      IngestConfig(jobs=1), fresh=True)
        assert report["ingest"]["resumed"] is False
        assert len(index.entries) == len(corpus)


class TestCrashRecovery:
    """Torn-write detection: shard bytes that do not match what the
    checkpoint (or meta) promises are refused loudly, never served."""

    def test_truncated_checkpointed_shard_refused(self, tmp_path, corpus):
        root = tmp_path / "idx"
        ingest_corpus(root, corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, flush_rows=4, stop_after=3))
        shard = sorted((root / "shards").glob("shard-*.f32"))[0]
        shard.write_bytes(shard.read_bytes()[:-4])  # tear the tail
        with pytest.raises(IndexStoreError) as excinfo:
            ingest_corpus(root, corpus)
        message = str(excinfo.value)
        assert "truncated" in message
        assert "fresh=True" in message  # actionable: how to recover

    def test_missing_checkpointed_shard_refused(self, tmp_path, corpus):
        root = tmp_path / "idx"
        ingest_corpus(root, corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, flush_rows=4, stop_after=3))
        sorted((root / "shards").glob("shard-*.f32"))[0].unlink()
        with pytest.raises(IndexStoreError, match="missing"):
            ingest_corpus(root, corpus)

    def test_orphan_shard_does_not_break_resume(self, tmp_path, corpus):
        """A shard written just before a crash — after the rename but
        before the checkpoint — is an orphan: resume must ignore it and
        finalize must not leave it behind."""
        root = tmp_path / "idx"
        ingest_corpus(root, corpus, GNN4IP(seed=0),
                      IngestConfig(jobs=1, flush_rows=4, stop_after=3))
        checkpoint = json.loads((root / CHECKPOINT_NAME).read_text())
        named = {spec["file"] for spec in checkpoint["shards"]}
        orphan = root / "shards" / "shard-90000.f32"
        orphan.write_bytes(b"\0" * 64)  # uncheckpointed leftover
        assert orphan.name not in named
        index, _ = ingest_corpus(root, corpus)
        assert not orphan.exists()
        final = {spec["file"] for spec in index.meta["store"]["shards"]}
        assert orphan.name not in final

    def test_truncated_final_shard_refused_on_open(self, tmp_path,
                                                   corpus):
        """The serving-side half of the contract: a completed index
        whose last shard was torn afterwards refuses to load."""
        index, _ = ingest_corpus(tmp_path / "idx", corpus, GNN4IP(seed=0),
                                 IngestConfig(jobs=1, flush_rows=4))
        shard = sorted((index.root / "shards").glob("shard-*.f32"))[-1]
        shard.write_bytes(shard.read_bytes()[:-8])
        with pytest.raises(IndexStoreError, match="truncated"):
            FingerprintIndex.load(index.root)


class TestAppendMode:
    def test_append_preserves_existing_scores(self, tmp_path, corpus,
                                              corpus_dir):
        root = tmp_path / "idx"
        first, _ = ingest_corpus(root, corpus[:4], GNN4IP(seed=0),
                                 IngestConfig(jobs=1))
        before = dict(top_hits(first, ADDER, k=4))
        extra = corpus_dir / "extra"
        extra.mkdir()
        (extra / "parity2.v").write_text(PARITY.replace("parity",
                                                        "parity2"))
        (extra / "xchain2.v").write_text(XOR_CHAIN.replace("xchain",
                                                           "xchain2"))
        appended, report = ingest_corpus(root,
                                         sorted(extra.glob("*.v")),
                                         config=IngestConfig(jobs=1))
        assert report["ingest"]["ingest_mode"] == "append"
        assert len(appended.entries) == 6
        # Existing designs keep their exact scores (their rows were
        # never rewritten); new ones join the ranking around them.
        after = dict(top_hits(appended, ADDER, k=6))
        for name, score in before.items():
            assert after[name] == pytest.approx(score, abs=2e-6)
        hits = dict(top_hits(appended, PARITY.replace("parity",
                                                      "parity2"), k=6))
        assert hits["parity2"] == pytest.approx(1.0, abs=1e-5)

    def test_paused_append_keeps_old_index_servable(self, tmp_path,
                                                    corpus, corpus_dir):
        root = tmp_path / "idx"
        first, _ = ingest_corpus(root, corpus[:4], GNN4IP(seed=0),
                                 IngestConfig(jobs=1))
        before = top_hits(first, ADDER, k=3)
        extra = corpus_dir / "extra"
        extra.mkdir()
        (extra / "new1.v").write_text(PARITY.replace("parity", "new1"))
        (extra / "new2.v").write_text(SUB.replace("sub", "new2"))
        paused, _ = ingest_corpus(root, sorted(extra.glob("*.v")),
                                  config=IngestConfig(jobs=1,
                                                      stop_after=1))
        assert paused is None
        # Mid-append, the old meta is untouched and still serves.
        live = FingerprintIndex.load(root)
        assert len(live.entries) == 4
        assert_same_hits(top_hits(live, ADDER, k=3), before)

    def test_append_rejects_foreign_model(self, tmp_path, corpus):
        root = tmp_path / "idx"
        ingest_corpus(root, corpus[:4], GNN4IP(seed=0),
                      IngestConfig(jobs=1))
        with pytest.raises(IndexStoreError, match="fingerprint"):
            ingest_corpus(root, corpus[4:], GNN4IP(seed=1),
                          IngestConfig(jobs=1))


class TestCompaction:
    def test_mini_shards_merged_bit_identically(self, tmp_path,
                                                corpus_dir):
        """flush_rows=1 forces one mini-shard per design — finalize
        must fold them into one without changing a single byte."""
        for i in range(COMPACT_MIN_SHARDS):  # enough designs to compact
            (corpus_dir / f"p{i}.v").write_text(
                PARITY.replace("parity", f"p{i}"))
        paths = sorted(corpus_dir.glob("*.v"))
        loose, _ = ingest_corpus(tmp_path / "loose", paths,
                                 GNN4IP(seed=0),
                                 IngestConfig(jobs=1, flush_rows=10_000))
        tight, report = ingest_corpus(tmp_path / "tight", paths,
                                      GNN4IP(seed=0),
                                      IngestConfig(jobs=1, flush_rows=1))
        assert report["ingest"]["compacted"] is True
        assert len(tight.meta["store"]["shards"]) == 1
        np.testing.assert_array_equal(np.asarray(tight.matrix),
                                      np.asarray(loose.matrix))


class TestIngestCli:
    def test_ingest_then_resume_and_query(self, tmp_path, corpus_dir,
                                          capsys):
        root = tmp_path / "idx"
        model = tmp_path / "model.npz"
        save_model(GNN4IP(seed=7, delta=0.3), model)
        assert main(["index", "ingest", str(root), str(corpus_dir),
                     "--model", str(model), "--jobs", "1",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["embedded"] == len(SOURCES)
        assert report["ingest"]["state"] == "complete"
        assert report["throughput"]["designs_per_sec"] > 0
        # Re-pointing at the same tree appends (no checkpoint left).
        assert main(["index", "ingest", str(root), str(corpus_dir),
                     "--jobs", "1", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ingest"]["ingest_mode"] == "append"
        assert main(["index", "stats", str(root)]) == 0

    def test_progress_flag_writes_stderr(self, tmp_path, corpus_dir,
                                         capsys):
        root = tmp_path / "idx"
        model = tmp_path / "model.npz"
        save_model(GNN4IP(seed=7, delta=0.3), model)
        assert main(["index", "ingest", str(root), str(corpus_dir),
                     "--model", str(model), "--jobs", "1",
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "progress:" in captured.err
        assert "designs" in captured.err
