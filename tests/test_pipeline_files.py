"""Tests for file-based pipeline entry points and preprocessor state."""

import pytest

from repro.dataflow import DFGPipeline, dfg_from_verilog
from repro.verilog import Preprocessor

HIERARCHICAL = """
`define WIDTH 4
module top(input [`WIDTH-1:0] a, input [`WIDTH-1:0] b,
           output [`WIDTH:0] s);
  add u (.x(a), .y(b), .z(s));
endmodule
module add(input [`WIDTH-1:0] x, input [`WIDTH-1:0] y,
           output [`WIDTH:0] z);
  assign z = x + y;
endmodule
"""


class TestPipelineFiles:
    def test_extract_file(self, tmp_path):
        path = tmp_path / "design.v"
        path.write_text(HIERARCHICAL)
        graph = DFGPipeline().extract_file(path)
        assert graph.name == "top"
        assert graph.has_signal("u.z")

    def test_extract_with_explicit_top(self, tmp_path):
        path = tmp_path / "design.v"
        path.write_text(HIERARCHICAL)
        graph = DFGPipeline().extract_file(path, top="add")
        assert graph.name == "add"

    def test_defines_flow_through_pipeline(self):
        pipeline = DFGPipeline(defines={"MODE": "1"})
        graph = pipeline.extract("""
module m(input a, input b, output y);
`ifdef MODE
  assign y = a & b;
`else
  assign y = a | b;
`endif
endmodule
""")
        assert "and" in graph.labels()
        assert "or" not in graph.labels()

    def test_include_dirs(self, tmp_path):
        (tmp_path / "ops.vh").write_text("`define OP ^\n")
        pipeline = DFGPipeline(include_dirs=[tmp_path])
        graph = pipeline.extract("""
`include "ops.vh"
module m(input a, input b, output y);
  assign y = a `OP b;
endmodule
""")
        assert "xor" in graph.labels()

    def test_untrimmed_pipeline(self):
        text = """
module m(input a, output y);
  wire dead;
  assign dead = ~a;
  assign y = a;
endmodule
"""
        trimmed = DFGPipeline(do_trim=True).extract(text)
        raw = DFGPipeline(do_trim=False).extract(text)
        assert len(raw) > len(trimmed)


class TestPreprocessorState:
    def test_defines_property_reflects_table(self):
        processor = Preprocessor(defines={"A": "1"})
        processor.process("`define B 2\n")
        table = processor.defines
        assert table["A"] == "1"
        assert table["B"] == "2"

    def test_defines_property_is_a_copy(self):
        processor = Preprocessor()
        processor.defines["X"] = "oops"
        assert "X" not in processor.defines


class TestGraphNaming:
    def test_graph_named_after_top_module(self):
        graph = dfg_from_verilog(
            "module funky(input a, output y); assign y = a; endmodule")
        assert graph.name == "funky"

    def test_rename_allowed(self):
        graph = dfg_from_verilog(
            "module m(input a, output y); assign y = a; endmodule")
        graph.name = "instance_0"
        assert graph.stats()["name"] == "instance_0"
