"""Tests for hierarchy elaboration (flattening)."""

import pytest

from repro.errors import ElaborationError
from repro.dataflow.elaborate import elaborate, find_top_module
from repro.verilog import ast_nodes as ast
from repro.verilog.parser import parse

HIERARCHY = """
module top(input a, input b, output y);
  wire t;
  leaf u1 (.i(a), .o(t));
  leaf u2 (.i(t & b), .o(y));
endmodule
module leaf(input i, output o);
  assign o = ~i;
endmodule
"""


def signal_names(module):
    names = set()
    for item in module.items:
        if isinstance(item, ast.NetDecl):
            names.update(item.names)
    return names


class TestTopDetection:
    def test_never_instantiated_module_is_top(self):
        top = find_top_module(parse(HIERARCHY))
        assert top.name == "top"

    def test_explicit_top(self):
        top = find_top_module(parse(HIERARCHY), top="leaf")
        assert top.name == "leaf"

    def test_unknown_top_raises(self):
        with pytest.raises(ElaborationError):
            find_top_module(parse(HIERARCHY), top="nope")


class TestFlattening:
    def test_instances_inlined(self):
        flat = elaborate(parse(HIERARCHY))
        assert not any(isinstance(i, ast.ModuleInstance)
                       for i in flat.items)

    def test_locals_prefixed(self):
        flat = elaborate(parse(HIERARCHY))
        names = signal_names(flat)
        assert "u1.i" in names
        assert "u2.o" in names

    def test_port_connections_become_assigns(self):
        flat = elaborate(parse(HIERARCHY))
        assigns = [i for i in flat.items if isinstance(i, ast.Assign)]
        lhs_names = {a.lhs.name for a in assigns
                     if isinstance(a.lhs, ast.Identifier)}
        assert "u1.i" in lhs_names      # input: child net driven by actual
        assert "t" in lhs_names         # output: parent net driven by child

    def test_nested_hierarchy(self):
        source = parse("""
module top(input x, output y);
  mid m (.i(x), .o(y));
endmodule
module mid(input i, output o);
  leaf l (.i(i), .o(o));
endmodule
module leaf(input i, output o);
  assign o = i;
endmodule
""")
        flat = elaborate(source)
        assert "m.l.i" in signal_names(flat)

    def test_undefined_module_raises(self):
        source = parse("module top(input a); ghost g (.x(a)); endmodule")
        with pytest.raises(ElaborationError):
            elaborate(source)

    def test_recursive_instantiation_detected(self):
        source = parse("""
module a(input x); b u (.x(x)); endmodule
module b(input x); a u (.x(x)); endmodule
""")
        # Neither module is a valid top (both instantiated) -> error.
        with pytest.raises(ElaborationError):
            elaborate(source)

    def test_positional_connections(self):
        source = parse("""
module top(input a, output y);
  leaf u1 (y, a);
endmodule
module leaf(output o, input i);
  assign o = i;
endmodule
""")
        flat = elaborate(source)
        assert "u1.o" in signal_names(flat)

    def test_too_many_positional_connections(self):
        source = parse("""
module top(input a, output y);
  leaf u1 (y, a, a);
endmodule
module leaf(output o, input i);
  assign o = i;
endmodule
""")
        with pytest.raises(ElaborationError):
            elaborate(source)

    def test_unknown_named_port(self):
        source = parse("""
module top(input a);
  leaf u1 (.bogus(a));
endmodule
module leaf(input i);
endmodule
""")
        with pytest.raises(ElaborationError):
            elaborate(source)

    def test_unconnected_port_left_floating(self):
        source = parse("""
module top(input a, output y);
  leaf u1 (.i(a), .o());
  assign y = a;
endmodule
module leaf(input i, output o);
  assign o = i;
endmodule
""")
        flat = elaborate(source)
        assert "u1.o" in signal_names(flat)


class TestParameters:
    def test_parameters_substituted(self):
        source = parse("""
module top(input [7:0] d, output [7:0] q);
  pipe #(.W(8)) p (.d(d), .q(q));
endmodule
module pipe #(parameter W = 4) (input [W-1:0] d, output [W-1:0] q);
  wire [W-1:0] mid;
  assign mid = d;
  assign q = mid;
endmodule
""")
        flat = elaborate(source)
        decls = {n: i for i in flat.items if isinstance(i, ast.NetDecl)
                 for n in i.names}
        width = decls["p.mid"].width
        assert width.msb.value == 7

    def test_positional_parameter_override(self):
        source = parse("""
module top(input [15:0] d, output [15:0] q);
  pipe #(16) p (.d(d), .q(q));
endmodule
module pipe #(parameter W = 4) (input [W-1:0] d, output [W-1:0] q);
  assign q = d;
endmodule
""")
        flat = elaborate(source)
        port_decl = [i for i in flat.items if isinstance(i, ast.NetDecl)
                     and i.names == ["p.d"]][0]
        assert port_decl.width.msb.value == 15

    def test_localparam_used_in_body(self):
        source = parse("""
module top(output [3:0] q);
  localparam N = 4;
  assign q = N;
endmodule
""")
        flat = elaborate(source)
        assign = [i for i in flat.items if isinstance(i, ast.Assign)][0]
        assert assign.rhs.value == 4

    def test_parameter_width_in_ports(self):
        source = parse("""
module top #(parameter W = 8) (input [W-1:0] d, output [W-1:0] q);
  assign q = d;
endmodule
""")
        flat = elaborate(source)
        assert flat.ports[0].width.msb.value == 7
