"""Tests for corpus assembly (RTL, netlist, ISCAS, MIPS visualization)."""

import pytest

from repro.designs import (
    SYNTHESIZABLE_FAMILIES,
    corpus_statistics,
    default_rtl_families,
    family_names,
    iscas_records,
    mips_visualization_records,
    netlist_records,
    rtl_records,
)
from repro.errors import DatasetError


class TestRtlRecords:
    def test_basic_generation(self):
        records = rtl_records(families=["adder8", "mux8"],
                              instances_per_design=3, seed=0)
        assert len(records) == 6
        assert all(record.kind == "rtl" for record in records)
        assert {record.design for record in records} == {"adder8", "mux8"}

    def test_instances_unique(self):
        records = rtl_records(families=["adder8"], instances_per_design=4)
        names = [record.instance for record in records]
        assert len(set(names)) == len(names)

    def test_graphs_nonempty(self):
        records = rtl_records(families=["alu"], instances_per_design=2)
        assert all(len(record.graph) > 10 for record in records)

    def test_same_seed_reproducible(self):
        first = rtl_records(families=["lfsr8"], instances_per_design=2,
                            seed=3)
        second = rtl_records(families=["lfsr8"], instances_per_design=2,
                             seed=3)
        assert [len(r.graph) for r in first] == [len(r.graph) for r in second]


class TestNetlistRecords:
    def test_generation_and_obfuscation(self):
        records = netlist_records(families=["adder8", "cmp8"],
                                  instances_per_design=3, seed=0)
        assert len(records) == 6
        assert all(record.kind == "netlist" for record in records)
        by_design = {}
        for record in records:
            by_design.setdefault(record.design, []).append(record)
        for instances in by_design.values():
            sizes = [len(record.graph) for record in instances]
            # Obfuscated instances have more nodes than the plain synth.
            assert max(sizes[1:]) > sizes[0]

    def test_default_family_list_is_synthesizable(self):
        assert set(SYNTHESIZABLE_FAMILIES) <= set(family_names())

    def test_netlist_graphs_bigger_than_rtl(self):
        rtl = rtl_records(families=["adder8"], instances_per_design=1)
        net = netlist_records(families=["adder8"], instances_per_design=1)
        assert len(net[0].graph) > len(rtl[0].graph)


class TestIscasRecords:
    def test_counts(self):
        records = iscas_records(names=["c432"], obfuscated_per_benchmark=3)
        assert len(records) == 4  # original + 3 obfuscations
        assert records[0].instance == "c432_orig"

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            iscas_records(names=["c404"])

    def test_all_same_design_label(self):
        records = iscas_records(names=["c880"], obfuscated_per_benchmark=2)
        assert {record.design for record in records} == {"c880"}


class TestVisualizationRecords:
    def test_two_processor_families(self):
        records = mips_visualization_records(instances_per_design=3)
        designs = {record.design for record in records}
        assert designs == {"mips_pipeline", "mips_single"}
        assert len(records) == 6


class TestHelpers:
    def test_default_rtl_families_subset(self):
        names = default_rtl_families(small=True)
        assert 10 < len(names) <= len(family_names())
        assert set(names) <= set(family_names())
        # The designs needed by Table II must be present ("alu" is
        # deliberately excluded: see default_rtl_families).
        for required in ("aes", "fpa", "rs232", "mips_single",
                         "mips_pipeline"):
            assert required in names
        assert "alu" not in names

    def test_full_family_list(self):
        assert default_rtl_families(small=False) == family_names()

    def test_corpus_statistics(self):
        records = rtl_records(families=["adder8", "mux8"],
                              instances_per_design=2)
        stats = corpus_statistics(records)
        assert stats["designs"] == 2
        assert stats["graphs"] == 4
        assert stats["mean_nodes"] > 0
        assert stats["per_design"] == {"adder8": 2, "mux8": 2}
