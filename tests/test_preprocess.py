"""Unit tests for the Verilog preprocessor."""

import pytest

from repro.errors import PreprocessorError
from repro.verilog.preprocess import Preprocessor, preprocess, strip_comments


class TestStripComments:
    def test_line_comment(self):
        assert strip_comments("a // hi\nb") == "a \nb"

    def test_block_comment_preserves_lines(self):
        out = strip_comments("a /* x\ny\nz */ b")
        assert out.count("\n") == 2
        assert "x" not in out

    def test_comment_inside_string_kept(self):
        assert strip_comments('x = "//not a comment";') == \
            'x = "//not a comment";'

    def test_unterminated_block_raises(self):
        with pytest.raises(PreprocessorError):
            strip_comments("/* open")


class TestDefine:
    def test_simple_define_expansion(self):
        out = preprocess("`define W 8\nwire [`W-1:0] x;")
        assert "wire [8-1:0] x;" in out

    def test_define_without_value(self):
        out = preprocess("`define FLAG\n`ifdef FLAG\nyes\n`endif")
        assert "yes" in out

    def test_redefine_overrides(self):
        out = preprocess("`define W 4\n`define W 16\nx `W")
        assert "x 16" in out

    def test_undef_removes_macro(self):
        text = "`define F\n`undef F\n`ifdef F\nyes\n`else\nno\n`endif"
        out = preprocess(text)
        assert "no" in out and "yes" not in out

    def test_nested_macro_expansion(self):
        text = "`define A 1\n`define B `A + 1\nx = `B;"
        assert "x = 1 + 1;" in preprocess(text)

    def test_recursive_macro_detected(self):
        text = "`define A `B\n`define B `A\nx `A"
        with pytest.raises(PreprocessorError):
            preprocess(text)

    def test_undefined_macro_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("x = `NOPE;")

    def test_function_like_macro_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("`define MAX(a,b) a\n")

    def test_initial_defines_argument(self):
        out = preprocess("`ifdef SIM\nsim\n`endif", defines={"SIM": ""})
        assert "sim" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("`define X\n`ifdef X\nkeep\n`endif")
        assert "keep" in out

    def test_ifdef_not_taken(self):
        out = preprocess("`ifdef X\ndrop\n`endif")
        assert "drop" not in out

    def test_ifndef(self):
        out = preprocess("`ifndef X\nkeep\n`endif")
        assert "keep" in out

    def test_else_branch(self):
        out = preprocess("`ifdef X\na\n`else\nb\n`endif")
        assert "b" in out and "a\n" not in out

    def test_elsif(self):
        text = "`define B\n`ifdef A\na\n`elsif B\nb\n`else\nc\n`endif"
        out = preprocess(text)
        assert "b" in out
        assert "a\n" not in out and "c" not in out

    def test_nested_conditionals(self):
        text = ("`define OUTER\n`ifdef OUTER\n`ifdef INNER\nx\n`else\ny\n"
                "`endif\n`endif")
        out = preprocess(text)
        assert "y" in out and "x\n" not in out

    def test_define_inside_dead_region_ignored(self):
        text = "`ifdef NO\n`define X\n`endif\n`ifdef X\nbad\n`endif"
        assert "bad" not in preprocess(text)

    def test_unterminated_ifdef_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("`ifdef X\nabc")

    def test_unmatched_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("`endif")

    def test_unmatched_else_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("`else")


class TestInclude:
    def test_include_from_memory(self):
        processor = Preprocessor(
            include_sources={"defs.vh": "`define W 8\nwire [`W:0] bus;"})
        out = processor.process('`include "defs.vh"\nwire [`W-1:0] x;')
        assert "wire [8:0] bus;" in out
        assert "wire [8-1:0] x;" in out

    def test_include_from_disk(self, tmp_path):
        header = tmp_path / "h.vh"
        header.write_text("wire from_header;")
        out = preprocess('`include "h.vh"', include_dirs=[tmp_path])
        assert "wire from_header;" in out

    def test_missing_include_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess('`include "nothere.vh"')

    def test_recursive_include_detected(self):
        processor = Preprocessor(
            include_sources={"a.vh": '`include "a.vh"'})
        with pytest.raises(PreprocessorError):
            processor.process('`include "a.vh"')


class TestIgnoredDirectives:
    @pytest.mark.parametrize("directive", [
        "`timescale 1ns/1ps", "`default_nettype none", "`celldefine",
        "`endcelldefine", "`resetall",
    ])
    def test_directive_dropped(self, directive):
        out = preprocess(f"{directive}\nwire x;")
        assert "wire x;" in out
        assert "`" not in out
