"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_histogram,
    ascii_scatter,
    score_distribution_text,
)


class TestAsciiScatter:
    def test_dimensions(self):
        points = np.random.default_rng(0).normal(size=(30, 2))
        text = ascii_scatter(points, width=40, height=10)
        lines = text.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_markers_by_label(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = ascii_scatter(points, labels=[0, 1],
                             markers={0: "A", 1: "B"})
        assert "A" in text
        assert "B" in text

    def test_default_markers(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        text = ascii_scatter(points, labels=[0, 1, 2])
        assert sum(ch != " " and ch != "\n" for ch in text) == 3

    def test_corners_mapped(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = ascii_scatter(points, width=10, height=4)
        lines = text.split("\n")
        assert lines[-1][0] != " "    # bottom-left point
        assert lines[0][-1] != " "    # top-right point

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros(5))

    def test_identical_points_ok(self):
        text = ascii_scatter(np.zeros((4, 2)))
        assert isinstance(text, str)


class TestAsciiHistogram:
    def test_counts_sum(self):
        values = [0.1, 0.2, 0.2, 0.9]
        text = ascii_histogram(values, bins=4)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in text.split("\n"))
        assert total == 4

    def test_title(self):
        text = ascii_histogram([1.0, 2.0], bins=2, title="scores:")
        assert text.startswith("scores:")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([])


class TestScoreDistribution:
    def test_both_classes_rendered(self):
        text = score_distribution_text([0.9, 0.8, -0.1, 0.0],
                                       [1, 1, 0, 0], delta=0.5)
        assert "similar pairs:" in text
        assert "different pairs:" in text
        assert "+0.5000" in text

    def test_single_class(self):
        text = score_distribution_text([0.9], [1])
        assert "similar pairs:" in text
        assert "different" not in text
