"""CLI round trips for the index subcommands and ``compare --index``."""

import json

import pytest

from repro.cli import main
from repro.core import GNN4IP, save_model

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

ADDER_VARIANT = """
module adder(input [3:0] x, input [3:0] y, output [4:0] total);
  wire [4:0] t;
  assign t = x + y;
  assign total = t;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""


@pytest.fixture
def corpus(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    for name, text in (("adder.v", ADDER), ("adder2.v", ADDER_VARIANT),
                       ("mux.v", MUX)):
        (root / name).write_text(text)
    return root


@pytest.fixture
def index_dir(corpus, tmp_path, capsys):
    path = tmp_path / "idx"
    assert main(["index", "build", str(path), str(corpus),
                 "--allow-untrained"]) == 0
    capsys.readouterr()
    return path


class TestIndexBuild:
    def test_build_from_directory(self, corpus, tmp_path, capsys):
        code = main(["index", "build", str(tmp_path / "idx"), str(corpus),
                     "--allow-untrained"])
        assert code == 0
        out = capsys.readouterr().out
        assert "indexed 3/3 files" in out
        assert (tmp_path / "idx" / "meta.json").is_file()
        assert (tmp_path / "idx" / "shards" / "shard-00000.f32").is_file()
        assert (tmp_path / "idx" / "model.npz").is_file()

    def test_build_warm_cache(self, index_dir, corpus, capsys):
        assert main(["index", "build", str(index_dir), str(corpus),
                     "--allow-untrained"]) == 0
        assert "cache: 3 hits / 0 misses" in capsys.readouterr().out

    def test_build_no_cache(self, index_dir, corpus, capsys):
        assert main(["index", "build", str(index_dir), str(corpus),
                     "--no-cache", "--allow-untrained"]) == 0
        assert "cache:" not in capsys.readouterr().out

    def test_build_without_model_needs_opt_in(self, corpus, tmp_path,
                                              capsys):
        code = main(["index", "build", str(tmp_path / "idx"), str(corpus)])
        assert code == 1
        assert "allow-untrained" in capsys.readouterr().err
        assert not (tmp_path / "idx" / "meta.json").exists()

    def test_build_generated_families(self, tmp_path, capsys):
        path = tmp_path / "gen_idx"
        code = main(["index", "build", str(path), "--allow-untrained",
                     "--families", "adder8", "cmp8", "--instances", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "generated 4 RTL files" in out
        assert "indexed 4/4 files" in out
        assert sorted(p.name for p in (path / "corpus").glob("*.v"))

    def test_build_without_inputs_fails(self, tmp_path, capsys):
        assert main(["index", "build", str(tmp_path / "empty_idx")]) == 1
        assert "no input files" in capsys.readouterr().err

    def test_build_records_failures(self, corpus, tmp_path, capsys):
        (corpus / "broken.v").write_text("module oops(endmodule")
        code = main(["index", "build", str(tmp_path / "idx"), str(corpus),
                     "--allow-untrained"])
        assert code == 0
        captured = capsys.readouterr()
        assert "1 failures" in captured.out
        assert "FAILED" in captured.err
        meta = json.loads((tmp_path / "idx" / "meta.json").read_text())
        failed = [e for e in meta["entries"] if e["status"] == "error"]
        assert len(failed) == 1

    def test_build_with_trained_model(self, corpus, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        save_model(GNN4IP(seed=4, delta=0.3), model_path)
        code = main(["index", "build", str(tmp_path / "idx"), str(corpus),
                     "--model", str(model_path)])
        assert code == 0
        assert "untrained" not in capsys.readouterr().err


class TestIndexQuery:
    def test_self_query_ranks_first(self, index_dir, corpus, capsys):
        code = main(["index", "query", str(index_dir),
                     str(corpus / "adder.v"), "-k", "3"])
        assert code == 2  # piracy hits found
        out = capsys.readouterr().out
        first_hit = out.splitlines()[1]
        assert "adder" in first_hit
        assert "+1.0000" in first_hit

    def test_unrelated_query(self, index_dir, tmp_path, capsys):
        suspect = tmp_path / "other.v"
        suspect.write_text("""
        module other(input [1:0] a, output y);
          assign y = a[0] & a[1];
        endmodule
        """)
        code = main(["index", "query", str(index_dir), str(suspect)])
        assert code in (0, 2)
        assert "top" in capsys.readouterr().out

    def test_foreign_model_rejected(self, index_dir, corpus, tmp_path,
                                    capsys):
        model_path = tmp_path / "foreign.npz"
        save_model(GNN4IP(seed=9), model_path)
        code = main(["index", "query", str(index_dir),
                     str(corpus / "adder.v"), "--model", str(model_path)])
        assert code == 1
        assert "fingerprint" in capsys.readouterr().err

    def test_missing_index(self, tmp_path, corpus, capsys):
        code = main(["index", "query", str(tmp_path / "nope"),
                     str(corpus / "adder.v")])
        assert code == 1
        assert "index build" in capsys.readouterr().err


class TestIndexStats:
    def test_stats_output(self, index_dir, capsys):
        assert main(["index", "stats", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries        3" in out
        assert "model_hash" in out
        assert "last build" in out


class TestCompareWithIndex:
    def test_reuses_index_embeddings(self, index_dir, corpus, capsys):
        code = main(["compare", str(corpus / "adder.v"),
                     str(corpus / "adder2.v"), "--index", str(index_dir)])
        captured = capsys.readouterr()
        assert "similarity:" in captured.out
        assert captured.err.count("embedding from index") == 2
        assert code in (0, 2)

    def test_unindexed_file_falls_back(self, index_dir, tmp_path, corpus,
                                       capsys):
        fresh = tmp_path / "fresh.v"
        fresh.write_text("""
        module fresh(input [3:0] a, output [3:0] y);
          assign y = ~a;
        endmodule
        """)
        code = main(["compare", str(corpus / "adder.v"), str(fresh),
                     "--index", str(index_dir)])
        captured = capsys.readouterr()
        assert "embedding from index" in captured.err
        assert "embedding from extracted" in captured.err
        assert code in (0, 2)
        # The extraction landed in the shared cache: second compare hits it.
        code = main(["compare", str(corpus / "adder.v"), str(fresh),
                     "--index", str(index_dir)])
        assert "embedding from cache" in capsys.readouterr().err

    def test_identical_files_piracy_exit(self, index_dir, corpus, capsys):
        code = main(["compare", str(corpus / "adder.v"),
                     str(corpus / "adder.v"), "--index", str(index_dir),
                     "--delta", "0.9"])
        capsys.readouterr()
        assert code == 2
