"""Tests for the IP library matcher."""

import pytest

from repro.core import GNN4IP, GraphRecord
from repro.core.matcher import IPMatcher, Match
from repro.dataflow import dfg_from_verilog
from repro.errors import ModelError

XOR = "module a(input x, input y, output z); assign z = x ^ y; endmodule"
ADD = ("module b(input [3:0] x, input [3:0] y, output [4:0] z); "
       "assign z = x + y; endmodule")
FSM = """
module c(input clk, input rst, output reg [1:0] s);
  always @(posedge clk) begin
    if (rst) s <= 2'd0;
    else s <= s + 2'd1;
  end
endmodule
"""


@pytest.fixture(scope="module")
def library_matcher():
    model = GNN4IP(seed=0, delta=0.95)
    matcher = IPMatcher(model)
    matcher.add_records([
        GraphRecord("xor_ip", "xor_0", dfg_from_verilog(XOR)),
        GraphRecord("adder_ip", "add_0", dfg_from_verilog(ADD)),
        GraphRecord("fsm_ip", "fsm_0", dfg_from_verilog(FSM)),
    ])
    return model, matcher


class TestIPMatcher:
    def test_len(self, library_matcher):
        _, matcher = library_matcher
        assert len(matcher) == 3

    def test_exact_copy_scores_one(self, library_matcher):
        model, matcher = library_matcher
        matches = matcher.match(dfg_from_verilog(XOR))
        assert matches[0].design == "xor_ip"
        assert matches[0].score == pytest.approx(1.0)
        assert matches[0].is_piracy

    def test_sorted_descending(self, library_matcher):
        _, matcher = library_matcher
        matches = matcher.match(dfg_from_verilog(ADD))
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_top_k(self, library_matcher):
        _, matcher = library_matcher
        assert len(matcher.match(dfg_from_verilog(XOR), top_k=2)) == 2

    def test_best_design(self, library_matcher):
        _, matcher = library_matcher
        design, score = matcher.best_design(dfg_from_verilog(FSM))
        assert design == "fsm_ip"
        assert score == pytest.approx(1.0)

    def test_match_scores_agree_with_model(self, library_matcher):
        model, matcher = library_matcher
        suspect = dfg_from_verilog(ADD)
        matches = {m.instance: m.score for m in matcher.match(suspect)}
        direct = model.similarity(suspect, dfg_from_verilog(XOR))
        # cosine_similarity_np stabilizes each norm with an epsilon, the
        # matcher normalizes exactly: agreement is to ~1e-8.
        assert matches["xor_0"] == pytest.approx(direct, abs=1e-6)

    def test_piracy_report_one_row_per_design(self, library_matcher):
        model, matcher = library_matcher
        matcher.add("xor_ip", "xor_1", dfg_from_verilog(XOR))
        report = matcher.piracy_report(dfg_from_verilog(XOR))
        designs = [m.design for m in report]
        assert len(designs) == len(set(designs))

    def test_empty_index_rejected(self):
        matcher = IPMatcher(GNN4IP(seed=0))
        with pytest.raises(ModelError):
            matcher.match(dfg_from_verilog(XOR))

    def test_match_dataclass(self):
        match = Match("d", "i", 0.9, True)
        assert match.design == "d"
        assert match.is_piracy
