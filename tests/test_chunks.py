"""Chunk extraction and the multi-granularity (format-v4) index.

Covers the chunking edge cases the partial-theft pipeline depends on:
tiny designs must produce **zero** chunks (so unit-test-scale corpora
keep the single-granularity serving contract bit-for-bit), designs
smaller than the window must emit no window chunks, extraction must be
deterministic across processes (different hash seeds), chunk-level
aggregation must rank parents with locality evidence, and a populated
v3 index must survive the in-place ``index migrate`` to v4.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core import GNN4IP
from repro.dataflow import dfg_from_verilog
from repro.errors import IndexStoreError
from repro.index import (
    ChunkConfig,
    FingerprintIndex,
    QueryEngine,
    build_index,
    extract_chunks,
    migrate_index,
)
from repro.index.chunks import topological_order
from repro.index.shards import unit_rows_f32
from repro.ir.frontends import NetlistFrontend

TINY = """
module t(input a, output y);
  assign y = ~a;
endmodule
"""

#: Big enough to chunk under a small config, far smaller than the
#: default 48-node window.
WIDE = """
module wide(input [3:0] a, input [3:0] b, input [3:0] c,
            output [3:0] x, output [3:0] y, output z);
  wire [3:0] u = a & b;
  wire [3:0] v = b | c;
  wire [3:0] w = u ^ v;
  assign x = w + a;
  assign y = w - c;
  assign z = ^(u | v);
endmodule
"""

SMALL = ChunkConfig(window=8, stride=4, min_nodes=4, max_chunks=16,
                    cone_seeds=6)


def chunk_records(graph, config):
    """Fully serialized chunk set: names, regions, nodes, and edges."""
    records = []
    for sub, region in extract_chunks(graph, config):
        nodes = [[n.node_id, n.kind, n.label, n.name] for n in sub.nodes]
        edges = [[i, list(sub.successors(i))] for i in range(len(sub))]
        records.append([sub.name, region, nodes, edges])
    return records


class TestExtraction:
    def test_single_gate_design_has_zero_chunks(self):
        graph = dfg_from_verilog(TINY)
        assert extract_chunks(graph) == []

    def test_default_config_skips_unit_test_scale_designs(self):
        # The designs the index test-suite builds over (single-assign
        # modules) must stay single-granularity under the default config.
        graph = dfg_from_verilog(TestV3Migration.SOURCES["adder.v"])
        assert len(graph) < ChunkConfig().min_nodes
        assert extract_chunks(graph) == []

    def test_smaller_than_window_emits_no_window_chunks(self):
        graph = dfg_from_verilog(WIDE)
        config = ChunkConfig(window=200, stride=100, min_nodes=4,
                             max_chunks=16, cone_seeds=6)
        chunks = extract_chunks(graph, config)
        assert chunks  # cones still fire
        assert all(region["kind"] != "window" for _, region in chunks)

    def test_chunks_are_proper_subgraphs_with_region_evidence(self):
        graph = dfg_from_verilog(WIDE)
        chunks = extract_chunks(graph, SMALL)
        kinds = {region["kind"] for _, region in chunks}
        assert "window" in kinds and "cone" in kinds
        for sub, region in chunks:
            assert SMALL.min_nodes <= len(sub) < len(graph)
            assert sub.level == graph.level
            assert sub.name.startswith(f"{graph.name}#{region['kind']}")
            assert region["nodes"] == len(sub)
            assert 0.0 < region["frac"] < 1.0

    def test_cap_keeps_cones_first(self):
        graph = dfg_from_verilog(WIDE)
        config = ChunkConfig(window=8, stride=2, min_nodes=4,
                             max_chunks=3, cone_seeds=2)
        chunks = extract_chunks(graph, config)
        assert len(chunks) == 3
        assert sum(1 for _, r in chunks if r["kind"] == "cone") == 2

    def test_topological_order_is_a_permutation(self):
        graph = dfg_from_verilog(WIDE)
        order = topological_order(graph)
        assert sorted(order) == list(range(len(graph)))

    def test_deterministic_in_process(self):
        graph = dfg_from_verilog(WIDE)
        assert chunk_records(graph, SMALL) == chunk_records(graph, SMALL)

    def test_deterministic_across_processes(self, tmp_path):
        """A worker with a different PYTHONHASHSEED must produce the
        byte-identical chunk set (no set/dict iteration leaks)."""
        script = tmp_path / "chunker.py"
        script.write_text(
            "import json, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.dataflow import dfg_from_verilog\n"
            "from repro.index import ChunkConfig\n"
            "from test_chunks import SMALL, WIDE, chunk_records\n"
            "graph = dfg_from_verilog(WIDE)\n"
            "print(json.dumps(chunk_records(graph, SMALL)))\n")
        here = Path(__file__).parent
        src = here.parent / "src"
        out = subprocess.run(
            [sys.executable, str(script), str(src)],
            env={"PYTHONHASHSEED": "271828",
                 "PYTHONPATH": f"{src}:{here}",
                 "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, check=True)
        local = chunk_records(dfg_from_verilog(WIDE), SMALL)
        assert json.loads(out.stdout) == json.loads(json.dumps(local))


# -- chunk-level aggregation (synthetic engine) -------------------------------
def _entry(name, parent_id, kind=None, region=None):
    entry = {"name": name, "path": f"{name.split('#')[0]}.v",
             "design": name.split("#")[0], "status": "ok",
             "key": f"{parent_id:064d}", "parent_id": parent_id}
    if kind:
        entry["kind"] = kind
        entry["parent"] = name.split("#")[0]
        entry["region"] = region
    return entry


@pytest.fixture
def chunked_engine():
    """Two designs, three chunk rows, easily separable vectors."""
    rng = np.random.default_rng(7)
    matrix = unit_rows_f32(rng.standard_normal((5, 12)))
    entries = [
        _entry("alpha", 0),
        _entry("beta", 1),
        _entry("alpha#cone0", 0, "chunk", {"kind": "cone", "label": "s"}),
        _entry("alpha#window1", 0, "chunk",
               {"kind": "window", "label": "topo[0:8]", "span": [0, 8]}),
        _entry("beta#cone0", 1, "chunk", {"kind": "cone", "label": "q"}),
    ]
    return QueryEngine([matrix], entries), matrix


class TestChunkedAggregation:
    def test_chunk_hit_surfaces_parent_and_locality(self, chunked_engine):
        engine, matrix = chunked_engine
        hits = engine.query_many([matrix[3]], k=2, exact=True)[0]
        top = hits[0]
        assert top.design == "alpha"
        assert top.name == "alpha"          # the parent row's identity
        assert top.via == "chunk"
        assert top.region == {"kind": "window", "label": "topo[0:8]",
                              "span": [0, 8]}
        assert top.score == pytest.approx(1.0, abs=1e-6)
        assert 0.0 <= top.coverage <= 1.0
        # One hit per *parent*, never per row.
        assert len(hits) == 2
        assert {h.design for h in hits} == {"alpha", "beta"}

    def test_design_row_hit_reports_via_design(self, chunked_engine):
        engine, matrix = chunked_engine
        top = engine.query_many([matrix[1]], k=1, exact=True)[0][0]
        assert top.design == "beta"
        assert top.via == "design"
        assert top.region is None

    def test_grouped_parts_aggregate_over_the_group(self, chunked_engine):
        engine, matrix = chunked_engine
        # One suspect made of three parts: whole + two chunk probes.
        parts = np.stack([matrix[0], matrix[3], matrix[4]])
        hits = engine.query_groups(parts, [0, 3],
                                   [None, {"kind": "window"}, None],
                                   k=2, exact=True)
        assert len(hits) == 1
        best = hits[0][0]
        assert best.score == pytest.approx(1.0, abs=1e-6)
        # The best (row, part) pair also names the suspect-side region.
        assert best.query_region in (None, {"kind": "window"})

    def test_bad_offsets_rejected(self, chunked_engine):
        engine, matrix = chunked_engine
        with pytest.raises(IndexStoreError, match="partition"):
            engine.query_groups(matrix[:3], [0, 2], None, k=1)

    def test_chunkless_engine_takes_generic_group_path(self):
        rng = np.random.default_rng(1)
        matrix = unit_rows_f32(rng.standard_normal((4, 6)))
        entries = [{"name": f"d{i}", "path": f"d{i}.v", "design": f"d{i}",
                    "status": "ok", "key": f"{i:064d}"}
                   for i in range(4)]
        engine = QueryEngine([matrix], entries)
        assert not engine.chunked
        hits = engine.query_groups(matrix[:2], [0, 2], None, k=1,
                                   exact=True)
        assert len(hits) == 1
        assert hits[0][0].score == pytest.approx(1.0, abs=1e-6)


# -- the v4 store over a real netlist corpus ----------------------------------
@pytest.fixture(scope="module")
def netlist_index(tmp_path_factory):
    from repro.designs import materialize_netlist_corpus

    root = tmp_path_factory.mktemp("chunkidx")
    paths = materialize_netlist_corpus(root / "corpus",
                                       families=["adder8", "cmp8"],
                                       instances_per_design=1, seed=0)
    model = GNN4IP(seed=0, featurizer="netlist")
    index, report = build_index(root / "idx", paths, model,
                                level="netlist", jobs=1)
    return index, report, model


class TestV4Store:
    def test_build_stores_chunk_rows(self, netlist_index):
        index, report, _ = netlist_index
        assert index.has_chunks
        assert report["chunk_rows"] == index.chunk_row_count > 0
        stats = index.stats()
        assert stats["design_rows"] == len(index) == 2
        assert stats["chunk_rows"] == index.chunk_row_count
        assert index.meta["chunks"] == ChunkConfig().as_dict()

    def test_rows_table_matches_shards(self, netlist_index):
        index, _, _ = netlist_index
        assert len(index.rows) == len(index) + index.chunk_row_count
        assert index.shards.rows == len(index.rows)
        # Reload from disk: the row table round-trips.
        reloaded = FingerprintIndex.load(index.root)
        assert reloaded.rows == index.rows

    def test_query_graphs_finds_chunk_locality(self, netlist_index):
        index, _, model = netlist_index
        frontend = NetlistFrontend()
        ok = [e for e in index.entries if e["status"] == "ok"]
        graph = frontend.extract_file(ok[0]["path"])
        hits = index.query_graphs([graph], model, k=2)[0]
        assert hits[0].design == ok[0]["design"]
        assert hits[0].coverage is not None

    def test_stats_cli_reports_chunk_and_design_rows(self, netlist_index,
                                                     capsys):
        index, _, _ = netlist_index
        assert main(["index", "stats", str(index.root)]) == 0
        out = capsys.readouterr().out
        assert "design_rows" in out and "chunk_rows" in out

    def test_build_without_chunks(self, tmp_path, netlist_index):
        index, _, model = netlist_index
        ok = [e for e in index.entries if e["status"] == "ok"]
        plain, report = build_index(tmp_path / "plain",
                                    [e["path"] for e in ok], model,
                                    level="netlist", jobs=1, chunks=False)
        assert not plain.has_chunks
        assert report["chunk_rows"] == 0
        assert plain.meta["chunks"] is None
        assert plain.chunk_config() is None


class TestV3Migration:
    SOURCES = {"adder.v": """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
""", "sub.v": """
module sub(input [3:0] a, input [3:0] b, output [4:0] d);
  assign d = a - b;
endmodule
"""}

    @pytest.fixture
    def built(self, tmp_path):
        root = tmp_path / "corpus"
        root.mkdir()
        for name, text in self.SOURCES.items():
            (root / name).write_text(text)
        model = GNN4IP(seed=0)
        index, _ = build_index(tmp_path / "idx",
                               sorted(root.glob("*.v")), model, jobs=1)
        return index, model

    @staticmethod
    def _downgrade_to_v3(index):
        """Rewrite the meta as a faithful v3 layout: same shards, no row
        table, no chunk record.  (Tiny RTL designs chunk to nothing, so
        the shard bytes already match a v3 build.)"""
        assert not index.has_chunks
        meta = json.loads((index.root / "meta.json").read_text())
        meta["version"] = 3
        meta.pop("rows", None)
        meta.pop("chunks", None)
        (index.root / "meta.json").write_text(json.dumps(meta))

    def test_v3_load_refused_with_migrate_message(self, built):
        index, _ = built
        self._downgrade_to_v3(index)
        with pytest.raises(IndexStoreError, match="index migrate"):
            FingerprintIndex.load(index.root)

    def test_migrate_v3_roundtrip_preserves_scores(self, built):
        index, model = built
        suspect = dfg_from_verilog(self.SOURCES["adder.v"])
        before = index.query_graph(suspect, model, k=2)
        self._downgrade_to_v3(index)
        migrated = migrate_index(index.root)
        assert migrated.meta["version"] == 4
        assert len(migrated.rows) == len(migrated)
        assert all(r["kind"] == "design" for r in migrated.rows)
        assert migrated.meta["chunks"] is None
        after = migrated.query_graph(suspect, model, k=2)
        assert [(h.name, h.score) for h in after] == \
            [(h.name, h.score) for h in before]
        # And the migrated index reloads cleanly.
        FingerprintIndex.load(index.root)

    def test_migrate_cli_mentions_v4(self, built, capsys):
        index, _ = built
        self._downgrade_to_v3(index)
        assert main(["index", "migrate", str(index.root)]) == 0
        out = capsys.readouterr().out
        assert "format v4" in out
        assert main(["index", "migrate", str(index.root)]) == 0
        assert "nothing to do" in capsys.readouterr().out
