"""Tests for constant-expression evaluation, incl. a hypothesis oracle."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DataflowError
from repro.dataflow.consteval import (
    evaluate_const,
    try_evaluate_const,
    width_bits,
)
from repro.verilog import ast_nodes as ast
from repro.verilog.parser import parse_module


def const_expr(text, env=None):
    module = parse_module(
        f"module m(); localparam X = {text}; endmodule")
    return evaluate_const(module.items[0].value, env)


class TestBasics:
    def test_int_const(self):
        assert const_expr("42") == 42

    def test_based_const(self):
        assert const_expr("8'hFF") == 255
        assert const_expr("4'b1010") == 10
        assert const_expr("3'o7") == 7

    def test_based_const_with_x_reads_zero(self):
        assert const_expr("4'b1x0z") == 0b1000

    def test_arithmetic(self):
        assert const_expr("2 + 3 * 4") == 14
        assert const_expr("(2 + 3) * 4") == 20
        assert const_expr("7 / 2") == 3
        assert const_expr("7 % 2") == 1
        assert const_expr("2 ** 10") == 1024

    def test_division_by_zero_is_zero(self):
        assert const_expr("5 / 0") == 0
        assert const_expr("5 % 0") == 0

    def test_shifts(self):
        assert const_expr("1 << 4") == 16
        assert const_expr("256 >> 4") == 16

    def test_comparisons(self):
        assert const_expr("3 < 4") == 1
        assert const_expr("4 <= 4") == 1
        assert const_expr("5 == 5") == 1
        assert const_expr("5 != 5") == 0

    def test_logical_ops(self):
        assert const_expr("1 && 0") == 0
        assert const_expr("1 || 0") == 1
        assert const_expr("!3") == 0

    def test_ternary(self):
        assert const_expr("1 ? 10 : 20") == 10
        assert const_expr("0 ? 10 : 20") == 20

    def test_identifier_from_env(self):
        assert const_expr("W * 2", {"W": 8}) == 16

    def test_unknown_identifier_raises(self):
        with pytest.raises(DataflowError):
            const_expr("W + 1")

    def test_try_evaluate_returns_none(self):
        assert try_evaluate_const(ast.Identifier("nope")) is None

    def test_clog2(self):
        assert const_expr("$clog2(8)") == 3
        assert const_expr("$clog2(9)") == 4
        assert const_expr("$clog2(1)") == 0


class TestWidthBits:
    def test_none_width_is_one(self):
        assert width_bits(None) == 1

    def test_simple_range(self):
        width = ast.Width(ast.IntConst(7), ast.IntConst(0))
        assert width_bits(width) == 8

    def test_parameterized_range(self):
        width = ast.Width(
            ast.BinaryOp("-", ast.Identifier("W"), ast.IntConst(1)),
            ast.IntConst(0))
        assert width_bits(width, {"W": 16}) == 16

    def test_reversed_range(self):
        width = ast.Width(ast.IntConst(0), ast.IntConst(7))
        assert width_bits(width) == 8


@st.composite
def _int_exprs(draw, depth=0):
    """Random (expression AST, python value) pairs over safe operators."""
    if depth > 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=255))
        return ast.IntConst(value), value
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left_expr, left_val = draw(_int_exprs(depth=depth + 1))
    right_expr, right_val = draw(_int_exprs(depth=depth + 1))
    table = {
        "+": left_val + right_val,
        "-": left_val - right_val,
        "*": left_val * right_val,
        "&": left_val & right_val,
        "|": left_val | right_val,
        "^": left_val ^ right_val,
    }
    return ast.BinaryOp(op, left_expr, right_expr), table[op]


class TestPropertyBased:
    @given(_int_exprs())
    def test_matches_python_semantics(self, pair):
        expr, expected = pair
        assert evaluate_const(expr) == expected

    @given(st.integers(min_value=0, max_value=10**6))
    def test_clog2_definition(self, value):
        if value < 1:
            return
        result = evaluate_const(
            ast.FunctionCall("$clog2", [ast.IntConst(value)]))
        assert 2 ** result >= value
        if result > 0:
            assert 2 ** (result - 1) < value
