"""Tests for dataflow analysis: per-signal trees, branches, dff wrapping."""

import pytest

from repro.errors import DataflowError
from repro.dataflow import analyze, dfg_from_verilog, elaborate
from repro.dataflow.graph import KIND_CONST, KIND_OP, KIND_SIGNAL
from repro.verilog import parse_source


def dfg(text, top=None, do_trim=False):
    return dfg_from_verilog(text, top=top, do_trim=do_trim)


def op_labels(graph):
    return [n.label for n in graph.nodes if n.kind == KIND_OP]


class TestCombinational:
    def test_simple_assign(self):
        graph = dfg("module m(input a, input b, output y); "
                    "assign y = a & b; endmodule")
        assert "and" in op_labels(graph)
        y = graph.signal_id("y")
        (and_node,) = graph.successors(y)
        deps = graph.successors(and_node)
        assert {graph.nodes[d].name for d in deps} == {"a", "b"}

    def test_signal_nodes_shared(self):
        graph = dfg("module m(input a, output x, output y); "
                    "assign x = ~a; assign y = a & a; endmodule")
        names = [n.name for n in graph.nodes if n.kind == KIND_SIGNAL]
        assert names.count("a") == 1

    def test_operator_nodes_not_shared(self):
        graph = dfg("module m(input a, input b, output x, output y); "
                    "assign x = a ^ b; assign y = a ^ b; endmodule")
        assert op_labels(graph).count("xor") == 2

    def test_ternary_becomes_branch(self):
        graph = dfg("module m(input s, input a, input b, output y); "
                    "assign y = s ? a : b; endmodule")
        assert "branch" in op_labels(graph)

    def test_constants_are_const_nodes(self):
        graph = dfg("module m(output [3:0] y); assign y = 4'd5; endmodule")
        consts = [n for n in graph.nodes if n.kind == KIND_CONST]
        assert len(consts) == 1

    def test_gate_primitives(self):
        graph = dfg("module m(input a, input b, output y); "
                    "nand g (y, a, b); endmodule")
        assert "nand" in op_labels(graph)

    def test_concat_and_selects(self):
        graph = dfg("module m(input [7:0] d, output [7:0] y); "
                    "assign y = {d[3:0], d[7], 3'b0}; endmodule")
        labels = op_labels(graph)
        assert "concat" in labels
        assert "partselect" in labels
        assert "pointer" in labels

    def test_operator_label_mapping(self):
        graph = dfg("module m(input [3:0] a, input [3:0] b, output [3:0] y,"
                    " output z); assign y = a + b; assign z = a <= b; "
                    "endmodule")
        labels = op_labels(graph)
        assert "plus" in labels
        assert "le" in labels


class TestAlwaysBlocks:
    def test_comb_always_no_dff(self):
        graph = dfg("module m(input a, output reg y); "
                    "always @(*) y = ~a; endmodule")
        assert "dff" not in op_labels(graph)

    def test_clocked_always_adds_dff_and_edge(self):
        graph = dfg("module m(input clk, input d, output reg q); "
                    "always @(posedge clk) q <= d; endmodule")
        labels = op_labels(graph)
        assert "dff" in labels
        assert "posedge" in labels

    def test_negedge_label(self):
        graph = dfg("module m(input clk, input d, output reg q); "
                    "always @(negedge clk) q <= d; endmodule")
        assert "negedge" in op_labels(graph)

    def test_if_without_else_references_self(self):
        graph = dfg("module m(input clk, input en, input d, output reg q); "
                    "always @(posedge clk) if (en) q <= d; endmodule")
        q = graph.signal_id("q")
        reachable = graph.reachable_from([q])
        assert q in reachable  # feedback: q depends on its own branch
        assert "branch" in op_labels(graph)

    def test_blocking_chain_substitutes(self):
        # y should depend on a through the intermediate blocking value.
        graph = dfg("""
module m(input a, output reg y);
  reg t;
  always @(*) begin
    t = ~a;
    y = t & a;
  end
endmodule
""", do_trim=True)
        y = graph.signal_id("y")
        reach = graph.reachable_from([y])
        names = {graph.nodes[i].name for i in reach
                 if graph.nodes[i].kind == KIND_SIGNAL}
        assert "a" in names

    def test_case_desugars_to_branches(self):
        graph = dfg("""
module m(input [1:0] s, input a, input b, output reg y);
  always @(*) begin
    case (s)
      2'd0: y = a;
      2'd1: y = b;
      default: y = a ^ b;
    endcase
  end
endmodule
""")
        labels = op_labels(graph)
        assert labels.count("branch") == 2
        assert labels.count("eq") == 2

    def test_for_loop_unrolled(self):
        graph = dfg("""
module m(input [3:0] d, output reg p);
  integer i;
  always @(*) begin
    p = 1'b0;
    for (i = 0; i < 4; i = i + 1)
      p = p ^ d[i];
  end
endmodule
""")
        assert op_labels(graph).count("xor") == 4

    def test_partial_bit_assign(self):
        graph = dfg("""
module m(input a, input b, output reg [1:0] y);
  always @(*) begin
    y[0] = a;
    y[1] = b;
  end
endmodule
""")
        assert "partassign" in op_labels(graph)

    def test_nonconstant_loop_condition_raises(self):
        with pytest.raises(DataflowError):
            dfg("""
module m(input [3:0] n, output reg y);
  integer i;
  always @(*) begin
    y = 1'b0;
    for (i = 0; i < n; i = i + 1)
      y = ~y;
  end
endmodule
""")


class TestGraphShape:
    def test_roots_are_outputs(self):
        graph = dfg("module m(input a, output x, output y); "
                    "assign x = ~a; assign y = a; endmodule")
        roots = {graph.nodes[i].name for i in graph.roots()}
        assert roots == {"x", "y"}

    def test_leaves_are_inputs(self):
        graph = dfg("module m(input a, input b, output y); "
                    "assign y = a | b; endmodule")
        leaves = {graph.nodes[i].name for i in graph.leaves()}
        assert leaves == {"a", "b"}

    def test_unelaborated_instance_rejected(self):
        source = parse_source("""
module top(input a, output y);
  leaf u (.i(a), .o(y));
endmodule
module leaf(input i, output o);
  assign o = i;
endmodule
""")
        with pytest.raises(DataflowError):
            analyze(source.modules[0])

    def test_motivational_example_same_behavior(self):
        """The paper's Fig. 1: two full adders, different code, same DFs."""
        adder1 = dfg_from_verilog("""
module ADDER(input Num1, input Num2, input Cin,
             output reg Sum, output reg Cout);
  always @(Num1, Num2, Cin) begin
    Sum <= ((Num1 ^ Num2) ^ Cin);
    Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
  end
endmodule
""")
        adder2 = dfg_from_verilog("""
module ADDER(Num1, Num2, Cin, Sum, Cout);
  input Num1, Num2, Cin;
  output Sum, Cout;
  wire t1, t2, t3;
  xor (t1, Num1, Num2);
  and (t2, Num1, Num2);
  and (t3, t1, Cin);
  xor (Sum, t1, Cin);
  or (Cout, t3, t2);
endmodule
""")
        # Both must contain the critical XOR chain into Sum.
        for graph in (adder1, adder2):
            sum_id = graph.signal_id("Sum")
            reach = graph.reachable_from([sum_id])
            labels = [graph.nodes[i].label for i in reach]
            assert labels.count("xor") >= 2
