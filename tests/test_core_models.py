"""Tests for features, HW2VEC, GNN4IP, metrics, dataset, trainer."""

import numpy as np
import pytest

from repro.core import (
    FEATURE_DIM,
    GNN4IP,
    GraphRecord,
    HW2VEC,
    Trainer,
    VOCABULARY,
    build_pair_dataset,
    confusion_from_scores,
    cosine_similarity_np,
    make_pairs,
    one_hot_features,
    split_pairs,
)
from repro.core.dataset import batches
from repro.core.metrics import ConfusionMatrix
from repro.dataflow import dfg_from_verilog
from repro.errors import DatasetError, ModelError

XOR_MODULE = """
module m(input a, input b, output y);
  assign y = a ^ b;
endmodule
"""

AND_MODULE = """
module m2(input a, input b, output y);
  assign y = a & b;
endmodule
"""


@pytest.fixture(scope="module")
def xor_graph():
    return dfg_from_verilog(XOR_MODULE)


@pytest.fixture(scope="module")
def and_graph():
    return dfg_from_verilog(AND_MODULE)


class TestFeatures:
    def test_vocabulary_unique(self):
        assert len(VOCABULARY) == len(set(VOCABULARY))

    def test_vocabulary_covers_core_labels(self):
        for label in ("and", "xor", "plus", "branch", "dff", "input",
                      "output", "wire", "reg", "const", "concat"):
            assert label in VOCABULARY

    def test_one_hot_shape_and_rows(self, xor_graph):
        features = one_hot_features(xor_graph)
        assert features.shape == (len(xor_graph), FEATURE_DIM)
        np.testing.assert_array_equal(features.sum(axis=1),
                                      np.ones(len(xor_graph)))

    def test_one_hot_positions(self, xor_graph):
        features = one_hot_features(xor_graph)
        for node in xor_graph.nodes:
            assert features[node.node_id, VOCABULARY.index(node.label)] == 1


class TestHW2VEC:
    def test_embedding_dimension(self, xor_graph):
        encoder = HW2VEC(hidden=16, seed=0)
        assert encoder.embed(xor_graph).shape == (16,)

    def test_deterministic_in_eval_mode(self, xor_graph):
        encoder = HW2VEC(seed=0)
        first = encoder.embed(xor_graph)
        second = encoder.embed(xor_graph)
        np.testing.assert_array_equal(first, second)

    def test_same_seed_same_weights(self, xor_graph):
        a = HW2VEC(seed=3).embed(xor_graph)
        b = HW2VEC(seed=3).embed(xor_graph)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, xor_graph):
        a = HW2VEC(seed=1).embed(xor_graph)
        b = HW2VEC(seed=2).embed(xor_graph)
        assert not np.allclose(a, b)

    def test_embed_many(self, xor_graph, and_graph):
        out = HW2VEC(seed=0).embed_many([xor_graph, and_graph])
        assert out.shape == (2, 16)

    def test_embed_restores_training_mode(self, xor_graph):
        encoder = HW2VEC(seed=0)
        encoder.train()
        encoder.embed(xor_graph)
        assert encoder.training

    def test_num_layers_validated(self):
        with pytest.raises(ValueError):
            HW2VEC(num_layers=0)

    def test_paper_defaults(self):
        encoder = HW2VEC()
        assert encoder.hidden == 16
        assert len(encoder.convs) == 2
        assert encoder.pool.ratio == 0.5
        assert encoder.readout.mode == "max"
        assert encoder.dropout.rate == 0.1


class TestGNN4IP:
    def test_similarity_range(self, xor_graph, and_graph):
        model = GNN4IP(seed=0)
        score = model.similarity(xor_graph, and_graph)
        assert -1.0 <= score <= 1.0

    def test_self_similarity_is_one(self, xor_graph):
        model = GNN4IP(seed=0)
        assert model.similarity(xor_graph, xor_graph) == pytest.approx(1.0)

    def test_predict_uses_delta(self, xor_graph):
        model = GNN4IP(seed=0, delta=0.99)
        assert model.predict(xor_graph, xor_graph) == 1
        model.delta = 1.1
        assert model.predict(xor_graph, xor_graph) == 0

    def test_tune_delta_perfect_separation(self):
        model = GNN4IP(seed=0)
        delta, accuracy = model.tune_delta(
            [0.9, 0.8, -0.2, -0.5], [1, 1, 0, 0])
        assert accuracy == 1.0
        assert -0.2 <= delta < 0.8

    def test_tune_delta_empty_rejected(self):
        with pytest.raises(ModelError):
            GNN4IP(seed=0).tune_delta([], [])

    def test_tune_delta_bad_labels(self):
        with pytest.raises(ModelError):
            GNN4IP(seed=0).tune_delta([0.5], [2])

    def test_cosine_similarity_np(self):
        assert cosine_similarity_np([1, 0], [0, 1]) == pytest.approx(0.0)
        assert cosine_similarity_np([1, 1], [1, 1]) == pytest.approx(1.0)
        assert cosine_similarity_np([1, 0], [-1, 0]) == pytest.approx(-1.0)


class TestMetrics:
    def test_accuracy(self):
        matrix = ConfusionMatrix(tp=8, fp=1, fn=2, tn=9)
        assert matrix.accuracy == pytest.approx(17 / 20)

    def test_fnr(self):
        matrix = ConfusionMatrix(tp=8, fp=0, fn=2, tn=10)
        assert matrix.false_negative_rate == pytest.approx(0.2)

    def test_fnr_no_positives(self):
        assert ConfusionMatrix(tn=5).false_negative_rate == 0.0

    def test_precision_recall(self):
        matrix = ConfusionMatrix(tp=6, fp=2, fn=3, tn=9)
        assert matrix.precision == pytest.approx(6 / 8)
        assert matrix.recall == pytest.approx(6 / 9)

    def test_confusion_from_scores(self):
        matrix = confusion_from_scores(
            [0.9, 0.6, 0.4, -0.3], [1, 0, 1, 0], delta=0.5)
        assert (matrix.tp, matrix.fp, matrix.fn, matrix.tn) == (1, 1, 1, 1)

    def test_confusion_accepts_pm_one_labels(self):
        matrix = confusion_from_scores([0.9, -0.9], [1, -1], delta=0.0)
        assert matrix.tp == 1
        assert matrix.tn == 1

    def test_as_text_contains_counts(self):
        text = ConfusionMatrix(tp=5, fp=1, fn=2, tn=7).as_text()
        assert "TP:      5" in text


class TestPairDataset:
    def records(self, n_designs=3, instances=3):
        graph = dfg_from_verilog(XOR_MODULE)
        records = []
        for d in range(n_designs):
            for i in range(instances):
                records.append(GraphRecord(design=f"d{d}",
                                           instance=f"d{d}_i{i}",
                                           graph=graph))
        return records

    def test_pair_labels(self):
        records = self.records(2, 2)
        pairs = make_pairs(records)
        assert len(pairs) == 6
        positives = [p for p in pairs if p[2] == 1]
        assert len(positives) == 2  # one per design

    def test_split_is_stratified(self):
        pairs = make_pairs(self.records(3, 3))
        train, test = split_pairs(pairs, test_fraction=0.25, seed=1)
        assert len(train) + len(test) == len(pairs)
        assert any(label == 1 for _, _, label in test)
        assert any(label == -1 for _, _, label in test)

    def test_split_deterministic(self):
        pairs = make_pairs(self.records())
        assert split_pairs(pairs, seed=5) == split_pairs(pairs, seed=5)

    def test_split_fraction_validated(self):
        with pytest.raises(DatasetError):
            split_pairs([], test_fraction=0.0)

    def test_build_dataset_summary(self):
        dataset = build_pair_dataset(self.records(3, 2), seed=0)
        summary = dataset.summary()
        assert summary["graphs"] == 6
        assert summary["pairs"] == 15
        assert summary["similar_pairs"] == 3

    def test_build_needs_two_designs(self):
        with pytest.raises(DatasetError):
            build_pair_dataset(self.records(1, 3))

    def test_batches_cover_all_pairs(self):
        pairs = make_pairs(self.records(3, 3))
        batched = list(batches(pairs, 7, seed=0))
        assert sum(len(b) for b in batched) == len(pairs)
        assert all(len(b) <= 7 for b in batched)

    def test_batches_bad_size(self):
        with pytest.raises(DatasetError):
            list(batches([], 0))


class TestTrainer:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        xor_a = dfg_from_verilog(XOR_MODULE)
        xor_b = dfg_from_verilog(
            XOR_MODULE.replace("a ^ b", "b ^ a"))
        and_a = dfg_from_verilog(AND_MODULE)
        and_b = dfg_from_verilog(AND_MODULE.replace("a & b", "b & a"))
        counter = dfg_from_verilog("""
module c(input clk, output reg [3:0] q);
  always @(posedge clk) q <= q + 4'd1;
endmodule
""")
        records = [
            GraphRecord("xor", "x0", xor_a), GraphRecord("xor", "x1", xor_b),
            GraphRecord("and", "a0", and_a), GraphRecord("and", "a1", and_b),
            GraphRecord("cnt", "c0", counter),
        ]
        return build_pair_dataset(records, test_fraction=0.2, seed=1)

    def test_loss_decreases(self, tiny_dataset):
        # Dropout off so the per-epoch loss is comparable across epochs.
        trainer = Trainer(GNN4IP(seed=0, dropout=0.0), lr=0.01, seed=0)
        losses = [trainer.train_epoch(tiny_dataset, epoch)[0]
                  for epoch in range(15)]
        assert min(losses[5:]) <= losses[0] + 1e-9

    def test_fit_returns_history(self, tiny_dataset):
        trainer = Trainer(GNN4IP(seed=0), seed=0)
        history = trainer.fit(tiny_dataset, epochs=3)
        assert len(history["losses"]) == 3
        assert "delta" in history
        assert 0.0 <= history["train_accuracy"] <= 1.0

    def test_test_outputs_confusion(self, tiny_dataset):
        trainer = Trainer(GNN4IP(seed=0), seed=0)
        trainer.fit(tiny_dataset, epochs=2)
        result = trainer.test(tiny_dataset)
        assert result["confusion"].total == len(tiny_dataset.test_pairs)
        assert 0.0 <= result["accuracy"] <= 1.0

    def test_unknown_optimizer(self):
        with pytest.raises(ModelError):
            Trainer(GNN4IP(seed=0), optimizer="rmsprop")

    def test_embed_once_matches_per_pair(self, tiny_dataset):
        """Shared-embedding similarities equal per-pair forward passes."""
        model = GNN4IP(seed=0)
        trainer = Trainer(model, seed=0)
        sims, labels, _ = trainer.evaluate_pairs(
            tiny_dataset, tiny_dataset.test_pairs)
        for (i, j, _), sim in zip(tiny_dataset.test_pairs, sims):
            direct = model.similarity(tiny_dataset.records[i].graph,
                                      tiny_dataset.records[j].graph)
            assert sim == pytest.approx(direct, abs=1e-9)
