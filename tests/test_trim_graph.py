"""Tests for the DFG container and the trim pass."""

import numpy as np

from repro.dataflow.graph import DFG, KIND_CONST, KIND_OP, KIND_SIGNAL
from repro.dataflow.pipeline import dfg_from_verilog
from repro.dataflow.trim import collapse_pass_through, prune_unreachable, trim


def build_sample():
    graph = DFG("sample")
    y = graph.add_signal("y", "output")
    a = graph.add_signal("a", "input")
    op = graph.add_node(KIND_OP, "unot")
    graph.add_edge(y, op)
    graph.add_edge(op, a)
    return graph, y, a, op


class TestDFGContainer:
    def test_add_and_query(self):
        graph, y, a, op = build_sample()
        assert len(graph) == 3
        assert graph.num_edges == 2
        assert graph.successors(y) == [op]
        assert graph.predecessors(a) == [op]

    def test_signal_dedup(self):
        graph = DFG()
        first = graph.add_signal("x", "wire")
        second = graph.add_signal("x", "output")
        assert first == second
        assert graph.nodes[first].label == "output"  # role upgraded

    def test_role_never_downgraded(self):
        graph = DFG()
        node = graph.add_signal("x", "output")
        graph.add_signal("x", "wire")
        assert graph.nodes[node].label == "output"

    def test_duplicate_edge_ignored(self):
        graph, y, a, op = build_sample()
        graph.add_edge(y, op)
        assert graph.num_edges == 2

    def test_reachable_from(self):
        graph, y, a, op = build_sample()
        orphan = graph.add_node(KIND_CONST, "const", "1")
        reach = graph.reachable_from([y])
        assert reach == {y, a, op}
        assert orphan not in reach

    def test_subgraph_remaps_edges(self):
        graph, y, a, op = build_sample()
        graph.add_node(KIND_CONST, "const", "0")  # to be dropped
        sub = graph.subgraph([y, a, op])
        assert len(sub) == 3
        assert sub.num_edges == 2

    def test_to_networkx(self):
        graph, *_ = build_sample()
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 2
        assert nx_graph.nodes[0]["kind"] == KIND_SIGNAL

    def test_adjacency_symmetric(self):
        graph, *_ = build_sample()
        adjacency = graph.adjacency(symmetric=True)
        assert (adjacency != adjacency.T).nnz == 0

    def test_adjacency_directed(self):
        graph, y, a, op = build_sample()
        adjacency = graph.adjacency(symmetric=False)
        assert adjacency[y, op] == 1
        assert adjacency[op, y] == 0

    def test_label_counts(self):
        graph, *_ = build_sample()
        counts = graph.label_counts()
        assert counts == {"output": 1, "input": 1, "unot": 1}


class TestTrim:
    def test_prune_removes_disconnected(self):
        graph, y, a, op = build_sample()
        graph.add_node(KIND_OP, "and")  # disconnected
        trimmed = prune_unreachable(graph)
        assert len(trimmed) == 3

    def test_prune_keeps_everything_without_outputs(self):
        graph = DFG()
        x = graph.add_signal("x", "wire")
        c = graph.add_node(KIND_CONST, "const", "1")
        graph.add_edge(x, c)
        trimmed = prune_unreachable(graph)
        assert len(trimmed) == 2

    def test_collapse_buffer(self):
        graph = DFG()
        y = graph.add_signal("y", "output")
        a = graph.add_signal("a", "input")
        buf = graph.add_node(KIND_OP, "buf")
        graph.add_edge(y, buf)
        graph.add_edge(buf, a)
        collapsed = collapse_pass_through(graph)
        assert len(collapsed) == 2
        y2 = collapsed.signal_id("y")
        a2 = collapsed.signal_id("a")
        assert collapsed.successors(y2) == [a2]

    def test_collapse_buffer_chain(self):
        graph = DFG()
        y = graph.add_signal("y", "output")
        a = graph.add_signal("a", "input")
        b1 = graph.add_node(KIND_OP, "buf")
        b2 = graph.add_node(KIND_OP, "buf")
        graph.add_edge(y, b1)
        graph.add_edge(b1, b2)
        graph.add_edge(b2, a)
        collapsed = collapse_pass_through(graph)
        assert len(collapsed) == 2

    def test_single_operand_concat_collapsed(self):
        graph = DFG()
        y = graph.add_signal("y", "output")
        a = graph.add_signal("a", "input")
        concat = graph.add_node(KIND_OP, "concat")
        graph.add_edge(y, concat)
        graph.add_edge(concat, a)
        assert len(collapse_pass_through(graph)) == 2

    def test_multi_operand_concat_kept(self):
        graph = DFG()
        y = graph.add_signal("y", "output")
        a = graph.add_signal("a", "input")
        b = graph.add_signal("b", "input")
        concat = graph.add_node(KIND_OP, "concat")
        graph.add_edge(y, concat)
        graph.add_edge(concat, a)
        graph.add_edge(concat, b)
        assert len(collapse_pass_through(graph)) == 4

    def test_trim_on_real_design(self):
        text = """
module m(input a, input b, output y);
  wire unused;
  assign unused = a ^ b;
  assign y = a & b;
endmodule
"""
        untrimmed = dfg_from_verilog(text, do_trim=False)
        trimmed = dfg_from_verilog(text, do_trim=True)
        assert len(trimmed) < len(untrimmed)
        names = {n.name for n in trimmed.nodes if n.kind == KIND_SIGNAL}
        assert "unused" not in names

    def test_trim_idempotent(self):
        text = """
module m(input a, input b, output y);
  wire t;
  buf (t, a);
  and (y, t, b);
endmodule
"""
        once = dfg_from_verilog(text)
        twice = trim(once)
        assert len(once) == len(twice)
        assert once.num_edges == twice.num_edges
