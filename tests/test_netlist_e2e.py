"""End-to-end netlist workload: RTL -> synth -> netlist IR -> index/CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.designs import materialize_corpus, netlist_ir_records
from repro.errors import ModelError
from repro.index import FingerprintIndex, build_index

FAMILIES = ("adder8", "cmp8", "mux8")


@pytest.fixture(scope="module")
def corpus_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("netlist_corpus")
    return materialize_corpus(root, families=list(FAMILIES),
                              instances_per_design=2, seed=0)


class TestNetlistIndex:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory, corpus_paths):
        root = tmp_path_factory.mktemp("netlist_index")
        model = GNN4IP(seed=0, featurizer="netlist")
        index, report = build_index(root, corpus_paths, model,
                                    level="netlist", jobs=1)
        return index, report, model

    def test_builds_at_netlist_level(self, built, corpus_paths):
        index, report, _ = built
        assert index.level == "netlist"
        assert report["failures"] == 0
        assert len(index) == len(corpus_paths)

    def test_top1_self_match(self, built, corpus_paths):
        """RTL design -> synth -> netlist IR -> index -> top-1 self-match.

        Instances of one family can synthesize to *identical* netlists
        (RTL rewrites vanish under bit-blasting), so the top hit is pinned
        to the design family rather than the exact file, at score ~1.
        """
        index, _, model = built
        for path in corpus_paths:
            graph = index.frontend().extract_file(path)
            hits = index.query_graph(graph, model, k=1)
            assert hits[0].design == graph.name
            # Stored rows are float32-normalized; a self-match is 1.0
            # within float32 epsilon, not float64.
            assert hits[0].score == pytest.approx(1.0, abs=1e-6)
            assert hits[0].is_piracy

    def test_level_mismatch_refused(self, tmp_path, corpus_paths):
        with pytest.raises(ModelError):
            build_index(tmp_path / "idx", corpus_paths,
                        GNN4IP(seed=0), level="netlist", jobs=1)

    def test_warm_rebuild_hits_cache(self, built, corpus_paths):
        index, _, model = built
        _, warm = build_index(index.root, corpus_paths, model,
                              level="netlist", jobs=1)
        assert warm["cache"]["misses"] == 0
        assert warm["embeddings_reused"] == len(corpus_paths)

    def test_loaded_index_remembers_level(self, built):
        index, _, _ = built
        assert FingerprintIndex.load(index.root).level == "netlist"


class TestNetlistCli:
    def test_index_build_and_query(self, tmp_path, corpus_paths, capsys):
        index_dir = tmp_path / "idx"
        code = main(["index", "build", str(index_dir)]
                    + [str(p) for p in corpus_paths]
                    + ["--level", "netlist", "--allow-untrained"])
        assert code == 0
        assert "level netlist" in capsys.readouterr().out

        code = main(["index", "query", str(index_dir),
                     str(corpus_paths[0]), "-k", "1"])
        out = capsys.readouterr().out
        assert "+1.0000" in out
        assert code == 2  # self-match flags piracy

    def test_compare_level_netlist(self, corpus_paths, capsys):
        code = main(["compare", str(corpus_paths[0]), str(corpus_paths[0]),
                     "--level", "netlist", "--allow-untrained"])
        assert code == 2
        assert "+1.0000" in capsys.readouterr().out

    def test_compare_rejects_mismatched_index_level(self, tmp_path,
                                                    corpus_paths, capsys):
        index_dir = tmp_path / "rtl_idx"
        assert main(["index", "build", str(index_dir),
                     str(corpus_paths[0]), "--allow-untrained"]) == 0
        capsys.readouterr()
        code = main(["compare", str(corpus_paths[0]), str(corpus_paths[0]),
                     "--index", str(index_dir), "--level", "netlist"])
        assert code == 1
        assert "built at --level rtl" in capsys.readouterr().err


class TestNetlistTraining:
    def test_netlist_model_separates_designs(self):
        records = netlist_ir_records(families=list(FAMILIES),
                                     instances_per_design=3, seed=0)
        assert all(r.graph.level == "netlist" for r in records)
        dataset = build_pair_dataset(records, seed=0)
        model = GNN4IP(seed=0, featurizer="netlist")
        trainer = Trainer(model, seed=0)
        trainer.fit(dataset, epochs=10)
        result = trainer.test(dataset)
        sims = np.array(result["similarities"])
        labels = np.array(result["labels"])
        if labels.min() != labels.max():
            assert sims[labels == 1].mean() > sims[labels == 0].mean()

    def test_cli_train_netlist_saves_model(self, tmp_path, capsys):
        path = tmp_path / "net.npz"
        code = main(["train", "--level", "netlist",
                     "--families", "adder8", "cmp8",
                     "--instances", "2", "--epochs", "2",
                     "--save", str(path)])
        assert code == 0
        assert path.exists()
        from repro.core import load_model

        assert load_model(path).encoder.featurizer.level == "netlist"
