"""Functional tests for the design families not covered in test_designs."""

import pytest

from repro.dataflow import elaborate
from repro.designs import get_family
from repro.sim import RTLSimulator, check_netlists_equivalent
from repro.synth import synthesize_verilog
from repro.verilog import parse_source


def rtl_sim_for(family_name, style, seed=0):
    family = get_family(family_name)
    variant = family.generate(seed=seed, style=style, rewrite=False)
    flat = elaborate(parse_source(variant.verilog), top=variant.top)
    return RTLSimulator(flat)


class TestArithmeticFamilies:
    def test_adder16(self):
        for style in get_family("adder16").style_names():
            sim = rtl_sim_for("adder16", style)
            for a, b, cin in [(65535, 1, 0), (30000, 30000, 1), (0, 0, 0)]:
                out = sim.evaluate({"a": a, "b": b, "cin": cin})
                total = a + b + cin
                assert out["sum"] == total & 0xFFFF, style
                assert out["cout"] == total >> 16, style

    def test_addsub8(self):
        for style in get_family("addsub8").style_names():
            sim = rtl_sim_for("addsub8", style)
            out = sim.evaluate({"a": 100, "b": 55, "mode": 0})
            assert out["y"] == 155
            out = sim.evaluate({"a": 100, "b": 55, "mode": 1})
            assert out["y"] == 45

    def test_absdiff8(self):
        for style in get_family("absdiff8").style_names():
            sim = rtl_sim_for("absdiff8", style)
            assert sim.evaluate({"a": 10, "b": 3})["d"] == 7
            assert sim.evaluate({"a": 3, "b": 10})["d"] == 7
            assert sim.evaluate({"a": 8, "b": 8})["d"] == 0

    def test_satadd8(self):
        for style in get_family("satadd8").style_names():
            sim = rtl_sim_for("satadd8", style)
            assert sim.evaluate({"a": 100, "b": 50})["y"] == 150
            assert sim.evaluate({"a": 200, "b": 100})["y"] == 255

    def test_mac8_accumulates(self):
        for style in get_family("mac8").style_names():
            sim = rtl_sim_for("mac8", style)
            sim.set_inputs({"clear": 1, "a": 0, "b": 0})
            sim.clock()
            assert sim.value("acc") == 0
            sim.set_inputs({"clear": 0, "a": 3, "b": 4})
            sim.clock()
            assert sim.value("acc") == 12, style
            sim.set_inputs({"a": 5, "b": 5})
            sim.clock()
            assert sim.value("acc") == 37, style


class TestLogicFamilies:
    def test_dec3to8(self):
        for style in get_family("dec3to8").style_names():
            sim = rtl_sim_for("dec3to8", style)
            for sel in range(8):
                assert sim.evaluate({"sel": sel, "en": 1})["y"] == 1 << sel
            assert sim.evaluate({"sel": 3, "en": 0})["y"] == 0

    def test_mux8_all_styles_agree(self):
        sims = [rtl_sim_for("mux8", s)
                for s in get_family("mux8").style_names()]
        for d in (0b10101010, 0b11110000, 0x5A):
            for sel in range(8):
                values = {s.evaluate({"d": d, "sel": sel})["y"]
                          for s in sims}
                assert values == {(d >> sel) & 1}

    def test_parity16_styles_agree(self):
        sims = [rtl_sim_for("parity16", s)
                for s in get_family("parity16").style_names()]
        for d in (0, 0xFFFF, 0x0001, 0xA5A5):
            odd = bin(d).count("1") & 1
            for sim in sims:
                out = sim.evaluate({"d": d})
                assert out["odd"] == odd
                assert out["even"] == 1 - odd

    def test_barrel8_both_directions(self):
        for style in get_family("barrel8").style_names():
            sim = rtl_sim_for("barrel8", style)
            for amount in range(8):
                left = sim.evaluate({"d": 0x81, "amount": amount, "dir": 0})
                right = sim.evaluate({"d": 0x81, "amount": amount, "dir": 1})
                assert left["y"] == (0x81 << amount) & 0xFF, style
                assert right["y"] == 0x81 >> amount, style

    def test_sevenseg_digits_distinct(self):
        for style in get_family("sevenseg").style_names():
            sim = rtl_sim_for("sevenseg", style)
            patterns = [sim.evaluate({"digit": d})["seg"] for d in range(16)]
            assert len(set(patterns)) == 16, style

    def test_sevenseg_case_reference(self):
        sim = rtl_sim_for("sevenseg", "case")
        assert sim.evaluate({"digit": 0})["seg"] == 0b0111111
        assert sim.evaluate({"digit": 8})["seg"] == 0b1111111

    def test_hamenc74_styles_agree(self):
        sims = [rtl_sim_for("hamenc74", s)
                for s in get_family("hamenc74").style_names()]
        for d in range(16):
            codes = {s.evaluate({"d": d})["code"] for s in sims}
            assert len(codes) == 1


class TestSequentialFamilies:
    def test_updown4(self):
        for style in get_family("updown4").style_names():
            sim = rtl_sim_for("updown4", style)
            sim.set_inputs({"rst": 1, "up": 1})
            sim.clock()
            sim.set_inputs({"rst": 0, "up": 1})
            sim.clock()
            sim.clock()
            assert sim.value("q") == 2, style
            sim.set_inputs({"up": 0})
            sim.clock()
            assert sim.value("q") == 1, style

    def test_shiftreg8(self):
        for style in get_family("shiftreg8").style_names():
            sim = rtl_sim_for("shiftreg8", style)
            sim.set_inputs({"rst": 1, "sin": 0})
            sim.clock()
            sim.set_inputs({"rst": 0})
            for bit in (1, 0, 1, 1):
                sim.set_inputs({"sin": bit})
                sim.clock()
            assert sim.value("q") == 0b1011, style

    def test_pwm8_duty_cycle(self):
        for style in get_family("pwm8").style_names():
            sim = rtl_sim_for("pwm8", style)
            sim.set_inputs({"rst": 1, "duty": 0})
            sim.clock()
            sim.set_inputs({"rst": 0, "duty": 64})
            highs = 0
            for _ in range(256):
                sim.clock()
                highs += sim.value("pulse")
            assert abs(highs - 64) <= 2, style  # ~25% duty

    def test_clkdiv_toggles(self):
        for style in get_family("clkdiv").style_names():
            sim = rtl_sim_for("clkdiv", style)
            sim.set_inputs({"rst": 1, "limit": 3})
            sim.clock()
            sim.set_inputs({"rst": 0})
            seen = set()
            previous = sim.value("tick")
            toggles = 0
            for _ in range(32):
                sim.clock()
                current = sim.value("tick")
                if current != previous:
                    toggles += 1
                previous = current
                seen.add(current)
            assert seen == {0, 1}, style
            assert toggles >= 4, style

    def test_debounce_filters_glitches(self):
        for style in get_family("debounce").style_names():
            sim = rtl_sim_for("debounce", style)
            sim.set_inputs({"rst": 1, "noisy": 0})
            sim.clock()
            sim.set_inputs({"rst": 0})
            # a single glitch must not flip the output
            sim.set_inputs({"noisy": 1})
            sim.clock()
            sim.set_inputs({"noisy": 0})
            for _ in range(20):
                sim.clock()
            assert sim.value("clean") == 0, style
            # a long press must
            sim.set_inputs({"noisy": 1})
            for _ in range(20):
                sim.clock()
            assert sim.value("clean") == 1, style

    def test_traffic_cycles_through_lights(self):
        for style in get_family("traffic").style_names():
            sim = rtl_sim_for("traffic", style)
            sim.set_inputs({"rst": 1})
            sim.clock()
            sim.set_inputs({"rst": 0})
            seen = set()
            for _ in range(60):
                sim.clock()
                seen.add(sim.value("lights"))
            assert seen == {0b100, 0b010, 0b001}, style


class TestCrcFamilies:
    def test_crc16_styles_agree(self):
        sims = [rtl_sim_for("crc16", s)
                for s in get_family("crc16").style_names()]
        for data, crc in [(0x00, 0x0000), (0x31, 0xFFFF), (0xA5, 0x1D0F)]:
            outs = {s.evaluate({"data": data, "crc_in": crc})["crc_out"]
                    for s in sims}
            assert len(outs) == 1

    def test_crc16_ccitt_reference(self):
        # CRC-16-CCITT of byte 0x00 with init 0x0000 is 0x0000.
        sim = rtl_sim_for("crc16", "loop")
        assert sim.evaluate({"data": 0, "crc_in": 0})["crc_out"] == 0
        # Single byte 'A' (0x41) with init 0xFFFF: known value 0x538D... use
        # a software model instead of a literature constant:
        def crc16_sw(byte, crc):
            crc ^= byte << 8
            for _ in range(8):
                crc = ((crc << 1) ^ 0x1021 if crc & 0x8000 else crc << 1)
                crc &= 0xFFFF
            return crc
        for byte, init in [(0x41, 0xFFFF), (0xFF, 0x0000), (0x12, 0xABCD)]:
            assert sim.evaluate({"data": byte, "crc_in": init})["crc_out"] \
                == crc16_sw(byte, init)

    def test_crc8_software_model(self):
        def crc8_sw(byte, crc):
            crc ^= byte
            for _ in range(8):
                crc = ((crc << 1) ^ 0x07 if crc & 0x80 else crc << 1) & 0xFF
            return crc
        for style in get_family("crc8").style_names():
            sim = rtl_sim_for("crc8", style)
            for byte, init in [(0x41, 0x00), (0xFF, 0xFF), (0x5A, 0x12)]:
                assert sim.evaluate({"data": byte, "crc_in": init})["crc_out"] \
                    == crc8_sw(byte, init), style


class TestUartLoopback:
    def test_tx_shift_fsm_frames_correctly(self):
        sim = rtl_sim_for("rs232", "shift_fsm")
        sim.set_inputs({"rst": 1, "start": 0, "data": 0})
        sim.clock()
        sim.set_inputs({"rst": 0})
        assert sim.value("txd") == 1  # idle high
        sim.set_inputs({"start": 1, "data": 0b10100101})
        sim.clock()
        sim.set_inputs({"start": 0})
        bits = [sim.value("txd")]
        for _ in range(9):
            sim.clock()
            bits.append(sim.value("txd"))
        assert bits[0] == 0                      # start bit
        assert bits[1:9] == [1, 0, 1, 0, 0, 1, 0, 1]  # LSB first
        assert bits[9] == 1                      # stop bit
