"""Tests for SAGPool, readout, cosine-embedding loss, and optimizers."""

import numpy as np
import pytest
from scipy import sparse

from repro.nn.layers import Linear, normalize_adjacency
from repro.nn.loss import cosine_embedding_loss, pairwise_cosine_loss
from repro.nn.optim import SGD, Adam
from repro.nn.pooling import Readout, SAGPool, readout
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(11)


def ring_adjacency(n):
    rows = list(range(n))
    cols = [(i + 1) % n for i in range(n)]
    matrix = sparse.csr_matrix((np.ones(n), (rows, cols)), shape=(n, n))
    return matrix.maximum(matrix.T)


class TestSAGPool:
    def make(self, n=8, channels=4, ratio=0.5):
        pool = SAGPool(channels, ratio=ratio, rng=RNG)
        adjacency = ring_adjacency(n)
        a_norm = normalize_adjacency(adjacency)
        x = Tensor(RNG.normal(size=(n, channels)), requires_grad=True)
        return pool, x, a_norm, adjacency

    def test_keeps_ceil_ratio_nodes(self):
        pool, x, a_norm, adjacency = self.make(n=8, ratio=0.5)
        x_pool, _, _, kept = pool(x, a_norm, adjacency)
        assert len(kept) == 4
        assert x_pool.shape == (4, 4)

    def test_odd_count_rounds_up(self):
        pool, x, a_norm, adjacency = self.make(n=5, ratio=0.5)
        _, _, _, kept = pool(x, a_norm, adjacency)
        assert len(kept) == 3

    def test_at_least_one_node_kept(self):
        pool, x, a_norm, adjacency = self.make(n=1, ratio=0.5)
        _, _, _, kept = pool(x, a_norm, adjacency)
        assert len(kept) == 1

    def test_ratio_one_keeps_all(self):
        pool, x, a_norm, adjacency = self.make(n=6, ratio=1.0)
        _, _, _, kept = pool(x, a_norm, adjacency)
        assert len(kept) == 6

    def test_pooled_adjacency_is_submatrix(self):
        pool, x, a_norm, adjacency = self.make()
        _, _, adj_pool, kept = pool(x, a_norm, adjacency)
        np.testing.assert_array_equal(
            adj_pool.toarray(), adjacency.toarray()[kept][:, kept])

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            SAGPool(4, ratio=0.0)
        with pytest.raises(ValueError):
            SAGPool(4, ratio=1.5)

    def test_gradient_flows_through_gate(self):
        pool, x, a_norm, adjacency = self.make()
        x_pool, _, _, _ = pool(x, a_norm, adjacency)
        x_pool.pow(2.0).sum().backward()
        assert x.grad is not None
        assert np.linalg.norm(x.grad) > 0
        assert pool.score_layer.weight.grad is not None

    def test_selection_follows_scores(self):
        """Nodes with the largest attention scores must be the kept ones."""
        pool, x, a_norm, adjacency = self.make(n=6)
        scores = pool.score_layer(x, a_norm).reshape(6).data
        _, _, _, kept = pool(x, a_norm, adjacency)
        expected = np.sort(np.argsort(-scores)[:3])
        np.testing.assert_array_equal(kept, expected)


class TestReadout:
    def test_max(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        np.testing.assert_array_equal(Readout("max")(x).data, [3.0, 5.0])

    def test_mean(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 1.0]]))
        np.testing.assert_array_equal(Readout("mean")(x).data, [2.0, 3.0])

    def test_sum(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 1.0]]))
        np.testing.assert_array_equal(Readout("sum")(x).data, [4.0, 6.0])

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Readout("median")

    def test_functional_form(self):
        np.testing.assert_array_equal(
            readout(np.array([[1.0], [2.0]]), "sum").data, [3.0])


class TestCosineEmbeddingLoss:
    def test_similar_pair_loss_is_one_minus_sim(self):
        a = Tensor(np.array([1.0, 0.0]))
        b = Tensor(np.array([0.0, 1.0]))
        loss, sim = cosine_embedding_loss(a, b, 1)
        assert loss.item() == pytest.approx(1.0 - sim.item())

    def test_identical_similar_pair_zero_loss(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]))
        loss, _ = cosine_embedding_loss(a, a, 1)
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_dissimilar_below_margin_zero_loss(self):
        a = Tensor(np.array([1.0, 0.0]))
        b = Tensor(np.array([-1.0, 0.0]))
        loss, _ = cosine_embedding_loss(a, b, -1, margin=0.5)
        assert loss.item() == 0.0

    def test_dissimilar_above_margin_penalized(self):
        a = Tensor(np.array([1.0, 0.1]))
        b = Tensor(np.array([1.0, 0.0]))
        loss, sim = cosine_embedding_loss(a, b, -1, margin=0.5)
        assert loss.item() == pytest.approx(sim.item() - 0.5)

    def test_margin_is_paper_default(self):
        import inspect
        signature = inspect.signature(cosine_embedding_loss)
        assert signature.parameters["margin"].default == 0.5

    def test_invalid_label_rejected(self):
        a = Tensor(np.ones(2))
        with pytest.raises(ValueError):
            cosine_embedding_loss(a, a, 0)

    def test_pairwise_mean(self):
        embeddings = [Tensor(np.array([1.0, 0.0])),
                      Tensor(np.array([1.0, 0.0])),
                      Tensor(np.array([0.0, 1.0]))]
        loss, sims = pairwise_cosine_loss(
            embeddings, [(0, 1, 1), (0, 2, -1)])
        assert len(sims) == 2
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_pairwise_empty_rejected(self):
        with pytest.raises(ValueError):
            pairwise_cosine_loss([], [])

    def test_loss_pulls_similar_pairs_together(self):
        """A few SGD steps on the loss must increase pair similarity."""
        rng = np.random.default_rng(3)
        layer = Linear(4, 4, rng=rng)
        x1 = Tensor(rng.normal(size=(1, 4)))
        x2 = Tensor(rng.normal(size=(1, 4)))
        optimizer = Adam(layer.parameters(), lr=0.05)
        history = []
        for _ in range(30):
            h1 = layer(x1).reshape(4)
            h2 = layer(x2).reshape(4)
            loss, sim = cosine_embedding_loss(h1, h2, 1)
            history.append(sim.item())
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert history[-1] > history[0]


class TestOptimizers:
    def quadratic_step(self, optimizer_cls, **kwargs):
        x = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = optimizer_cls([x], **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            (x * x).backward()
            optimizer.step()
        return abs(x.data[0])

    def test_sgd_converges(self):
        assert self.quadratic_step(SGD, lr=0.1) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self.quadratic_step(SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert self.quadratic_step(Adam, lr=0.3) < 1e-3

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)

    def test_step_skips_missing_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam([x], lr=0.1)
        optimizer.step()  # no backward yet: must not crash or move x
        np.testing.assert_array_equal(x.data, [1.0])
