"""GraphIR, frontend adapters, featurizers, and schema-aware caching."""

import numpy as np
import pytest

from repro.core import (
    FEATURE_DIM,
    GNN4IP,
    NETLIST_FEATURIZER,
    RTL_FEATURIZER,
    get_featurizer,
    load_model,
    one_hot_features,
    save_model,
)
from repro.dataflow import dfg_from_verilog
from repro.dataflow.graph import DFG
from repro.dataflow.to_ir import dfg_to_ir
from repro.errors import GraphIRError, ModelError, NetlistError
from repro.index.cache import DFGCache, content_key
from repro.ir import (
    KIND_CELL,
    KIND_SIGNAL,
    LEVEL_NETLIST,
    LEVEL_RTL,
    GraphIR,
    to_graphir,
)
from repro.ir import serialize as ir_serialize
from repro.ir.frontends import NetlistFrontend, RTLFrontend, get_frontend
from repro.netlist.netlist import NetlistBuilder
from repro.netlist.to_ir import netlist_to_ir
from repro.synth.synthesize import synthesize_verilog

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

COUNTER = """
module counter(input clk, output reg [3:0] q);
  always @(posedge clk) q <= q + 4'd1;
endmodule
"""


def small_netlist():
    builder = NetlistBuilder("toy")
    a, b = builder.inputs("a", "b")
    builder.outputs("y")
    builder.xor_(a, builder.and_(a, b), out="y")
    return builder.build()


class TestGraphIR:
    def test_levels_and_stats(self):
        ir = GraphIR("g", level=LEVEL_NETLIST)
        n0 = ir.add_node(KIND_SIGNAL, "input", "a")
        n1 = ir.add_node(KIND_CELL, "and", "g0")
        ir.add_edge(n1, n0)
        assert len(ir) == 2 and ir.num_edges == 1
        assert ir.stats()["level"] == LEVEL_NETLIST
        assert ir.successors(n1) == [n0]
        assert ir.predecessors(n0) == [n1]

    def test_dfg_is_graphir(self):
        graph = dfg_from_verilog(ADDER)
        assert isinstance(graph, GraphIR)
        assert graph.level == LEVEL_RTL
        assert to_graphir(graph) is graph

    def test_subgraph_preserves_type_and_level(self):
        dfg = dfg_from_verilog(ADDER)
        sub = dfg.subgraph(range(len(dfg)))
        assert isinstance(sub, DFG) and sub.level == LEVEL_RTL
        ir = netlist_to_ir(small_netlist())
        assert ir.subgraph(range(len(ir))).level == LEVEL_NETLIST

    def test_serialize_round_trip(self):
        ir = netlist_to_ir(small_netlist())
        back = ir_serialize.loads(ir_serialize.dumps(ir))
        assert back.level == ir.level
        assert back.labels() == ir.labels()
        assert back.num_edges == ir.num_edges

    def test_serialize_round_trips_dfg_as_rtl_ir(self):
        dfg = dfg_from_verilog(ADDER)
        back = ir_serialize.loads(ir_serialize.dumps(dfg))
        assert back.level == LEVEL_RTL
        assert back.labels() == dfg.labels()

    def test_serialize_rejects_garbage(self):
        with pytest.raises(GraphIRError):
            ir_serialize.loads(b"junk")
        with pytest.raises(GraphIRError):
            ir_serialize.from_dict({"version": 99})


class TestNetlistToIR:
    def test_cell_nodes_and_ports(self):
        ir = netlist_to_ir(small_netlist())
        counts = ir.label_counts()
        assert counts["input"] == 2
        assert counts["output"] == 1
        assert counts["and"] == 1 and counts["xor"] == 1
        assert ir.level == LEVEL_NETLIST

    def test_dff_nodes_and_clock_input(self):
        net = synthesize_verilog(COUNTER)
        ir = netlist_to_ir(net)
        assert ir.label_counts()["dff"] == 4
        # clk arrives as an input signal node.
        names = {n.name for n in ir.nodes if n.label == "input"}
        assert "clk" in names

    def test_const_nets_become_const_nodes(self):
        from repro.netlist.netlist import CONST1

        builder = NetlistBuilder("k")
        builder.inputs("a")
        builder.outputs("y")
        builder.netlist.add_gate("and", "y", ["a", CONST1])
        ir = netlist_to_ir(builder.build())
        assert ir.label_counts()["const"] == 1

    def test_undriven_net_raises(self):
        builder = NetlistBuilder("bad")
        builder.inputs("a")
        builder.outputs("y")
        builder.netlist.add_gate("and", "y", ["a", "ghost"])
        with pytest.raises(NetlistError):
            netlist_to_ir(builder.netlist)

    def test_to_graphir_adapts_netlist(self):
        ir = to_graphir(small_netlist())
        assert ir.level == LEVEL_NETLIST
        with pytest.raises(TypeError):
            to_graphir(42)


class TestFeaturizers:
    def test_rtl_featurizer_matches_legacy(self):
        graph = dfg_from_verilog(ADDER)
        np.testing.assert_array_equal(one_hot_features(graph),
                                      RTL_FEATURIZER.features(graph))
        assert RTL_FEATURIZER.dim == FEATURE_DIM

    def test_netlist_features_one_hot(self):
        ir = netlist_to_ir(small_netlist())
        features = NETLIST_FEATURIZER.features(ir)
        assert features.shape == (len(ir), NETLIST_FEATURIZER.dim)
        assert np.all(features.sum(axis=1) == 1.0)

    def test_level_mismatch_raises(self):
        with pytest.raises(ModelError):
            RTL_FEATURIZER.features(netlist_to_ir(small_netlist()))
        with pytest.raises(ModelError):
            NETLIST_FEATURIZER.features(dfg_from_verilog(ADDER))

    def test_fingerprints_are_stable_and_distinct(self):
        assert RTL_FEATURIZER.fingerprint() == RTL_FEATURIZER.fingerprint()
        assert RTL_FEATURIZER.fingerprint() != NETLIST_FEATURIZER.fingerprint()

    def test_registry(self):
        assert get_featurizer("rtl") is RTL_FEATURIZER
        assert get_featurizer(NETLIST_FEATURIZER) is NETLIST_FEATURIZER
        with pytest.raises(ModelError):
            get_featurizer("layout")

    def test_dfg_to_ir_preserves_features(self):
        dfg = dfg_from_verilog(ADDER)
        ir = dfg_to_ir(dfg)
        assert type(ir) is GraphIR
        np.testing.assert_array_equal(RTL_FEATURIZER.features(ir),
                                      RTL_FEATURIZER.features(dfg))
        assert (ir.adjacency() != dfg.adjacency()).nnz == 0


class TestFrontends:
    def test_levels(self):
        assert get_frontend(None).level == "rtl"
        assert isinstance(get_frontend("rtl"), RTLFrontend)
        assert isinstance(get_frontend("netlist"), NetlistFrontend)
        with pytest.raises(ValueError):
            get_frontend("layout")

    def test_rtl_extract_matches_pipeline(self):
        frontend = get_frontend("rtl")
        ir = frontend.extract(ADDER)
        dfg = dfg_from_verilog(ADDER)
        assert ir.labels() == dfg.labels()
        assert ir.level == LEVEL_RTL

    def test_netlist_extract_synthesizes(self):
        ir = get_frontend("netlist").extract(ADDER)
        assert ir.level == LEVEL_NETLIST
        assert "xor" in ir.label_counts()

    def test_schema_fingerprints_differ_by_level(self):
        rtl, net = get_frontend("rtl"), get_frontend("netlist")
        assert rtl.schema_fingerprint() != net.schema_fingerprint()
        assert rtl.content_key(ADDER) != net.content_key(ADDER)


class TestSchemaAwareCache:
    def test_schema_changes_key(self):
        base = content_key("module m; endmodule", "trim=1")
        assert content_key("module m; endmodule", "trim=1",
                           schema="feat-a") != base
        assert content_key("module m; endmodule", "trim=1", schema="feat-a") \
            != content_key("module m; endmodule", "trim=1", schema="feat-b")

    def test_vocabulary_change_invalidates_cached_entry(self, tmp_path):
        """A feature-schema change must miss (not resurrect) old entries."""
        frontend = get_frontend("rtl")
        cache = DFGCache(tmp_path / "cache")
        cleaned = frontend.preprocess_text(ADDER)
        key = frontend.content_key(cleaned)
        cache.store(key, frontend.extract_preprocessed(cleaned))
        assert cache.load(key) is not None

        from repro.core.features import OneHotFeaturizer, VOCABULARY

        reordered = OneHotFeaturizer("rtl", LEVEL_RTL,
                                     tuple(reversed(VOCABULARY)))
        changed = RTLFrontend(featurizer=reordered)
        new_key = changed.content_key(cleaned)
        assert new_key != key
        assert cache.load(new_key) is None  # stale entry cannot be reused

    def test_corrupt_blob_heals(self, tmp_path):
        frontend = get_frontend("netlist")
        cache = DFGCache(tmp_path / "cache")
        cleaned = frontend.preprocess_text(ADDER)
        key = frontend.content_key(cleaned)
        cache.store(key, frontend.extract_preprocessed(cleaned))
        cache.blob_path(key).write_bytes(b"corrupt")
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1
        assert not cache.blob_path(key).exists()


class TestModelModality:
    def test_persist_round_trips_featurizer(self, tmp_path):
        model = GNN4IP(seed=0, featurizer="netlist")
        path = tmp_path / "net.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.encoder.featurizer.level == LEVEL_NETLIST
        assert loaded.encoder.config["featurizer"] == "netlist"

    def test_loaded_model_rejects_wrong_modality(self, tmp_path):
        model = GNN4IP(seed=0, featurizer="netlist")
        path = tmp_path / "net.npz"
        save_model(model, path)
        loaded = load_model(path)
        with pytest.raises(ModelError):
            loaded.similarity(dfg_from_verilog(ADDER),
                              dfg_from_verilog(ADDER))

    def test_legacy_archive_defaults_to_rtl(self, tmp_path):
        """Archives saved before the featurizer field load as RTL models."""
        import json

        model = GNN4IP(seed=0)
        path = tmp_path / "old.npz"
        state = model.encoder.state_dict()
        state["__delta__"] = np.array(model.delta)
        config = {k: v for k, v in model.encoder.config.items()
                  if k != "featurizer"}
        state["__config__"] = np.array(json.dumps(config, sort_keys=True))
        np.savez(path, **state)
        loaded = load_model(path)
        assert loaded.encoder.featurizer.level == LEVEL_RTL

    def test_load_rejects_drifted_feature_schema(self, tmp_path):
        """Weights saved under another vocabulary order must not load."""
        model = GNN4IP(seed=0)
        path = tmp_path / "drifted.npz"
        save_model(model, path)
        with np.load(path, allow_pickle=False) as data:
            state = {key: data[key] for key in data.files}
        state["__featurizer_schema__"] = np.array("feat-v0:other")
        np.savez(path, **state)
        with pytest.raises(ModelError, match="schema"):
            load_model(path)

    def test_index_frontend_rejects_drifted_schema(self, tmp_path):
        """An index built under another feature schema must fail loudly."""
        import json

        from repro.errors import IndexStoreError
        from repro.index import FingerprintIndex, build_index

        corpus = tmp_path / "a.v"
        corpus.write_text(ADDER)
        index, _ = build_index(tmp_path / "idx", [corpus],
                               GNN4IP(seed=0), jobs=1)
        meta_path = index.root / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["options"]["schema"] = "rtl:ir-v0:feat=stale"
        meta_path.write_text(json.dumps(meta))
        stale = FingerprintIndex.load(index.root)
        with pytest.raises(IndexStoreError, match="schema has changed"):
            stale.frontend()

    def test_encoder_dims_follow_featurizer(self):
        net = GNN4IP(seed=0, featurizer="netlist")
        assert net.encoder.config["in_features"] == NETLIST_FEATURIZER.dim
        rtl = GNN4IP(seed=0)
        assert rtl.encoder.config["in_features"] == FEATURE_DIM
