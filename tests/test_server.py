"""HTTP service round trips: endpoints, envelopes, micro-batching.

Each test drives a real ``ReproServer`` on an ephemeral port and the
stdlib clients from :mod:`repro.client` inside one ``asyncio.run`` —
no external processes, no third-party test plugins.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.api import Corpus, Detector, IndexConfig, Session
from repro.client import AsyncClient, Client, ServerError
from repro.core import GNN4IP
from repro.server import ReproServer

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    root = tmp_path_factory.mktemp("served_corpus")
    (root / "adder.v").write_text(ADDER)
    (root / "mux.v").write_text(MUX)
    detector = Detector.from_model(GNN4IP(seed=0))
    corpus, _ = Corpus.build(tmp_path_factory.mktemp("srv") / "idx",
                             sorted(root.glob("*.v")), detector,
                             IndexConfig(jobs=1))
    return Session(detector=detector, corpus=corpus)


@pytest.fixture(scope="module")
def netlist_session(tmp_path_factory):
    root = tmp_path_factory.mktemp("served_netlist_corpus")
    (root / "adder.v").write_text(ADDER)
    (root / "mux.v").write_text(MUX)
    detector = Detector.from_model(GNN4IP(seed=0, featurizer="netlist"))
    corpus, _ = Corpus.build(tmp_path_factory.mktemp("srvn") / "idx",
                             sorted(root.glob("*.v")), detector,
                             IndexConfig(level="netlist", jobs=1))
    return Session(detector=detector, corpus=corpus)


def serve(session, scenario, **server_kwargs):
    """Run ``scenario(server, async_client)`` against a live server."""
    server_kwargs.setdefault("batch_window_s", 0.005)

    async def runner():
        server = ReproServer(session, port=0, **server_kwargs)
        await server.start()
        try:
            await scenario(server, AsyncClient("127.0.0.1", server.port))
        finally:
            await server.stop()

    asyncio.run(runner())


async def expect_error(coro, status, error_type=None):
    with pytest.raises(ServerError) as excinfo:
        await coro
    assert excinfo.value.status == status
    if error_type is not None:
        assert excinfo.value.error_type == error_type
    return excinfo.value


class TestEndpoints:
    def test_healthz(self, session):
        async def scenario(server, client):
            health = await client.healthz()
            assert health["status"] == "ok"
            assert health["designs"] == 2
            assert health["level"] == "rtl"

        serve(session, scenario)

    def test_query_two_suspects_ranked(self, session):
        """The acceptance round trip: >= 2 suspects in one request,
        embedded as one batch, each answered with ranked matches."""

        async def scenario(server, client):
            out = await client.query(sources=[ADDER, MUX],
                                     labels=["adder.v", "mux.v"], k=2)
            assert out["serving"] == "exact"
            adder_result, mux_result = out["results"]
            assert adder_result["label"] == "adder.v"
            assert [m["rank"] for m in adder_result["matches"]] == [1, 2]
            assert adder_result["matches"][0]["design"] == "adder"
            assert adder_result["matches"][0]["score"] == \
                pytest.approx(1.0, abs=1e-6)
            assert adder_result["matches"][0]["is_piracy"] is True
            assert mux_result["matches"][0]["design"] == "mux"
            # The whole request was served as one micro-batch.
            assert server.batcher.batches == 1
            assert server.batcher.jobs == 1

        serve(session, scenario)

    def test_query_vector_suspects(self, session):
        vector = session.fingerprint(ADDER).vector

        async def scenario(server, client):
            out = await client.query(vectors=[vector], k=1)
            assert out["results"][0]["matches"][0]["design"] == "adder"

        serve(session, scenario)

    def test_fingerprint_and_compare(self, session):
        async def scenario(server, client):
            fingerprint = await client.fingerprint(ADDER, label="a.v")
            assert fingerprint["design"] == "adder"
            assert fingerprint["label"] == "a.v"
            assert len(fingerprint["vector"]) == 16
            comparison = await client.compare(ADDER, ADDER)
            assert comparison["verdict"] == "PIRACY"
            assert comparison["score"] == pytest.approx(1.0)

        serve(session, scenario)

    def test_sync_client(self, session):
        async def scenario(server, client):
            sync = Client("127.0.0.1", server.port)
            loop = asyncio.get_running_loop()
            health = await loop.run_in_executor(None, sync.healthz)
            assert health["status"] == "ok"
            out = await loop.run_in_executor(
                None, lambda: sync.query(sources=[ADDER], k=1))
            assert out["results"][0]["matches"][0]["design"] == "adder"
            await loop.run_in_executor(None, sync.close)

        serve(session, scenario)

    def test_sync_client_reuses_one_connection(self, session):
        """Keep-alive: many sync requests ride one TCP connection."""

        async def scenario(server, client):
            loop = asyncio.get_running_loop()

            def burst():
                with Client("127.0.0.1", server.port) as sync:
                    for _ in range(8):
                        sync.healthz()
                    sync.fingerprint(ADDER)

            before = server.connections
            await loop.run_in_executor(None, burst)
            assert server.connections == before + 1
            assert server.requests >= 9

        serve(session, scenario)

    def test_sync_client_reconnects_after_close(self, session):
        """An explicitly closed client transparently reopens, and error
        envelopes still propagate (they are answers, not transport
        failures, so they must not trigger the retry path)."""

        async def scenario(server, client):
            loop = asyncio.get_running_loop()

            def exercise():
                sync = Client("127.0.0.1", server.port)
                assert sync.healthz()["status"] == "ok"
                sync.close()
                assert sync.healthz()["status"] == "ok"  # fresh socket
                with pytest.raises(ServerError) as excinfo:
                    sync.request("GET", "/v1/nope")
                sync.close()
                return excinfo.value.status

            assert await loop.run_in_executor(None, exercise) == 404

        serve(session, scenario)

    def test_connection_close_header_honored(self, session):
        """A request carrying ``Connection: close`` ends the keep-alive
        loop; the server closes after responding."""

        async def scenario(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            try:
                writer.write(b"GET /v1/healthz HTTP/1.1\r\n"
                             b"Host: x\r\nConnection: close\r\n\r\n")
                await writer.drain()
                raw = await reader.read()  # EOF => server closed
                assert b"Connection: close" in raw
                assert b'"status": "ok"' in raw
            finally:
                writer.close()

        serve(session, scenario)

    def test_stats_counts_requests(self, session):
        async def scenario(server, client):
            await client.query(sources=[ADDER], k=1)
            stats = await client.stats()
            assert stats["requests"] >= 1
            assert stats["query_batches"] >= 1
            assert stats["index"]["embedded"] == 2

        serve(session, scenario)


class TestMicroBatching:
    def test_concurrent_queries_coalesce(self, session):
        vector = session.fingerprint(ADDER).vector

        async def scenario(server, client):
            outs = await asyncio.gather(
                *[client.query(vectors=[vector], k=1) for _ in range(16)])
            for out in outs:
                assert out["results"][0]["matches"][0]["design"] == "adder"
            stats = await client.stats()
            assert stats["batched_requests"] == 16
            # Coalescing happened: far fewer engine gulps than requests.
            assert stats["query_batches"] <= 8

        serve(session, scenario, batch_window_s=0.05)

    def test_one_bad_suspect_fails_only_its_request(self, session):
        async def scenario(server, client):
            good, bad = await asyncio.gather(
                client.query(sources=[ADDER], k=1),
                expect_error(client.query(sources=["module oops("]),
                             400))
            assert good["results"][0]["matches"][0]["design"] == "adder"
            assert bad.status == 400

        serve(session, scenario, batch_window_s=0.05)


class TestErrorEnvelopes:
    def test_unknown_route_404(self, session):
        async def scenario(server, client):
            error = await expect_error(client.request("GET", "/nope"), 404)
            assert "no route" in str(error)

        serve(session, scenario)

    def test_wrong_method_405(self, session):
        async def scenario(server, client):
            await expect_error(client.request("GET", "/v1/query"), 405)

        serve(session, scenario)

    def test_malformed_json_400(self, session):
        async def scenario(server, client):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            body = b"{not json"
            writer.write(b"POST /v1/query HTTP/1.1\r\n"
                         b"Host: x\r\n"
                         b"Content-Length: %d\r\n"
                         b"Connection: close\r\n\r\n" % len(body) + body)
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert b"400" in head.split(b"\r\n")[0]
            envelope = json.loads(payload)
            assert envelope["error"]["status"] == 400
            assert "JSON" in envelope["error"]["message"]

        serve(session, scenario)

    def test_empty_suspects_400(self, session):
        async def scenario(server, client):
            await expect_error(
                client.request("POST", "/v1/query", {"suspects": []}), 400)

        serve(session, scenario)

    def test_source_strings_are_never_paths(self, session, tmp_path):
        """A remote 'source' naming a readable local file must be parsed
        as (broken) Verilog text, not read off the server's disk."""
        secret = tmp_path / "secret.v"
        secret.write_text(ADDER)

        async def scenario(server, client):
            error = await expect_error(client.fingerprint(str(secret)),
                                       400)
            assert "secret" not in str(error)  # no existence oracle
            await expect_error(client.query(sources=[str(secret)]), 400)
            await expect_error(client.compare(str(secret), ADDER), 400)

        serve(session, scenario)

    def test_negative_content_length_400(self, session):
        async def scenario(server, client):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            writer.write(b"POST /v1/query HTTP/1.1\r\n"
                         b"Host: x\r\n"
                         b"Content-Length: -5\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"400" in raw.split(b"\r\n", 1)[0]
            envelope = json.loads(raw.partition(b"\r\n\r\n")[2])
            assert envelope["error"]["status"] == 400

        serve(session, scenario)

    def test_bad_verilog_400(self, session):
        async def scenario(server, client):
            error = await expect_error(
                client.query(sources=["module oops(endmodule"]), 400)
            assert error.error_type in ("ParseError", "LexerError")

        serve(session, scenario)

    def test_wrong_vector_width_409(self, session):
        async def scenario(server, client):
            await expect_error(
                client.query(vectors=[np.zeros(3)]), 409,
                "IndexStoreError")

        serve(session, scenario)

    def test_oversized_payload_413(self, session):
        """A Content-Length beyond the body cap is refused up front
        (no buffering of the body) with the 413 envelope."""
        from repro.server.http import MAX_BODY_BYTES

        async def scenario(server, client):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            writer.write(b"POST /v1/query HTTP/1.1\r\n"
                         b"Host: x\r\n"
                         b"Content-Length: %d\r\n"
                         b"Connection: close\r\n\r\n"
                         % (MAX_BODY_BYTES + 1))
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"413" in raw.split(b"\r\n", 1)[0]
            envelope = json.loads(raw.partition(b"\r\n\r\n")[2])
            assert envelope["error"]["status"] == 413
            assert "too large" in envelope["error"]["message"]

        serve(session, scenario)

    def test_unknown_v1_route_404(self, session):
        """An unknown path under the /v1/ prefix is a 404 envelope,
        not a 405 (it matches no known endpoint at all)."""
        async def scenario(server, client):
            error = await expect_error(
                client.request("POST", "/v1/evaluate", {}), 404)
            assert "no route" in str(error)

        serve(session, scenario)

    def test_level_mismatched_suspect_400(self, netlist_session):
        """Source a netlist-level corpus cannot synthesize (non-constant
        part-select) is that request's 400, never a 500."""
        bad = ("module odd(input [7:0] a, input [2:0] i, output [1:0] y);\n"
               "  assign y = a[i +: 2];\nendmodule\n")

        async def scenario(server, client):
            error = await expect_error(client.query(sources=[bad]), 400,
                                       "SynthesisError")
            assert "const" in str(error)
            # The server stays healthy for well-formed suspects.
            health = await client.healthz()
            assert health["level"] == "netlist"

        serve(netlist_session, scenario)

    def test_mismatched_model_query_409(self, session):
        """Serving with a detector that is not the index's model is a
        409 fingerprint conflict, not a 500."""
        mismatched = Session(
            detector=Detector.from_model(GNN4IP(seed=99)),
            corpus=session.corpus)

        async def scenario(server, client):
            await expect_error(client.query(sources=[ADDER]), 409,
                               "IndexStoreError")

        serve(mismatched, scenario)

    def test_internal_error_500_hides_details(self, session,
                                              monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("secret internal state")

        monkeypatch.setattr(session, "fingerprint", boom)

        async def scenario(server, client):
            error = await expect_error(client.fingerprint(ADDER), 500,
                                       "RuntimeError")
            assert "secret" not in str(error)

        serve(session, scenario)


class TestServingOps:
    """Keep-alive reuse and backpressure against a real corpus-backed
    session (the synthetic-index deep dive lives in
    ``test_serve_scatter.py``)."""

    def test_sequential_asyncclient_reuses_one_connection(self, session):
        async def scenario(server, client):
            for _ in range(5):
                await client.healthz()
            await client.fingerprint(ADDER)
            assert server.connections == 1
            assert server.requests == 6

        serve(session, scenario)

    def test_sync_client_keepalive_retries_after_restart(self, session):
        """The sync client replays once on a stale pooled socket."""

        async def scenario(server, client):
            loop = asyncio.get_running_loop()
            sync = Client(port=server.port)
            try:
                assert (await loop.run_in_executor(
                    None, sync.healthz))["status"] == "ok"
                # Simulate a dead pooled socket: close it client-side,
                # then issue a request on the (now stale) connection.
                sync._connection.sock.close()
                assert (await loop.run_in_executor(
                    None, sync.healthz))["status"] == "ok"
            finally:
                sync.close()

        serve(session, scenario)

    def test_backpressure_cap_rejects_with_429(self, session):
        async def scenario(server, client):
            await expect_error(client.query(sources=[ADDER], k=1), 429)
            stats = await client.stats()
            assert stats["serving"]["rejected_requests"] == 1
            assert stats["serving"]["max_pending"] == 0
            assert stats["serving"]["pending_requests"] == 0

        serve(session, scenario, max_pending=0)
