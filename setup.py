"""Setup shim for environments without the `wheel` package.

`pip install -e .` (PEP 660) needs `wheel`, which is unavailable offline;
`python setup.py develop` installs an egg-link instead and works everywhere.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
