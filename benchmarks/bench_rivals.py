"""§IV-F rival comparison: watermarking and classical graph similarity.

Paper claims to reproduce in shape:

* watermarking offers P_c = 1.11e-87 at 0.13 %-26.12 % area overhead; the
  GNN has zero overhead and a comparably tiny false-negative rate;
* classical graph-similarity algorithms ([6]) run "in the order of
  minutes" on large designs while GNN4IP scores a pair in milliseconds.
"""

import time

import numpy as np

from conftest import report
from repro.baselines import (
    RAI_ISVLSI19,
    compare_with_gnn,
    ged_similarity,
    spectral_similarity,
    wl_similarity,
)


def bench_rivals_watermark(rtl_dataset, rtl_trained, benchmark):
    model, trainer, _ = rtl_trained
    result = trainer.test(rtl_dataset)
    table = compare_with_gnn(result["false_negative_rate"])
    benchmark(compare_with_gnn, result["false_negative_rate"])
    lines = [
        f"watermarking [10]: P_c = {table['watermark_p_coincidence']:.3e}, "
        f"area overhead up to {table['watermark_overhead'] * 100:.2f}%",
        f"(signature: {RAI_ISVLSI19.signature_bits} bits)",
        f"GNN4IP: false-negative rate = "
        f"{table['gnn_false_negative_rate']:.4e}, overhead = 0",
        "paper: FNR 6.65e-4 (RTL) / 0.0 (netlist) at zero overhead",
    ]
    report("rivals_watermark", "\n".join(lines))
    assert table["gnn_overhead"] == 0.0


def bench_rivals_graph_similarity_timing(rtl_dataset, rtl_trained,
                                         benchmark):
    """GNN inference vs classical graph-similarity runtimes per pair."""
    model, _, _ = rtl_trained
    # Pick the two largest graphs in the corpus — scalability is the claim.
    records = sorted(rtl_dataset.records, key=lambda r: -len(r.graph))[:2]
    graph_a, graph_b = records[0].graph, records[1].graph

    def time_call(function, *args, repeat=3):
        start = time.perf_counter()
        for _ in range(repeat):
            function(*args)
        return (time.perf_counter() - start) / repeat

    gnn_time = time_call(model.similarity, graph_a, graph_b)
    wl_time = time_call(wl_similarity, graph_a, graph_b)
    ged_time = time_call(ged_similarity, graph_a, graph_b)
    spectral_time = time_call(spectral_similarity, graph_a, graph_b)
    benchmark(model.similarity, graph_a, graph_b)

    lines = [
        f"largest DFGs: {records[0].graph.name} ({len(graph_a)} nodes), "
        f"{records[1].graph.name} ({len(graph_b)} nodes)",
        f"GNN4IP similarity:          {gnn_time * 1000:9.2f} ms/pair",
        f"WL-kernel similarity:       {wl_time * 1000:9.2f} ms/pair",
        f"greedy graph edit distance: {ged_time * 1000:9.2f} ms/pair",
        f"spectral similarity:        {spectral_time * 1000:9.2f} ms/pair",
        "",
        "note: exact GED (what [6] uses) is NP-complete; even these",
        "polynomial approximations do not learn behaviour, and exact",
        "methods run minutes-scale on designs of this size.",
    ]
    report("rivals_timing", "\n".join(lines))


def bench_rivals_baselines_fooled_by_obfuscation(iscas_trained, config,
                                                 benchmark):
    """Structure-only similarity drops under obfuscation; GNN4IP holds.

    This is the paper's central argument against classical graph
    similarity: 'different typologies in DFGs can easily fool the standard
    graph similarity algorithms'.  The GNN model is the ISCAS-trained one
    (as in Table III); the structural baselines need no training at all.
    """
    from repro.designs import iscas_records

    model = iscas_trained
    records = iscas_records(names=["c880"], obfuscated_per_benchmark=3,
                            seed=1, strength=1)
    base = records[0].graph
    obfuscated = [r.graph for r in records[1:]]

    gnn_scores = [model.similarity(base, g) for g in obfuscated]
    wl_scores = [wl_similarity(base, g) for g in obfuscated]
    ged_scores = [ged_similarity(base, g) for g in obfuscated]
    benchmark(wl_similarity, base, obfuscated[0])

    lines = [
        "c880 vs 3 obfuscated instances (mean similarity):",
        f"  GNN4IP:      {np.mean(gnn_scores):+.4f}  (wants +1: same IP)",
        f"  WL kernel:   {np.mean(wl_scores):+.4f}",
        f"  greedy GED:  {np.mean(ged_scores):+.4f}",
        "",
        "shape: the trained GNN stays near +1; the structural baselines",
        "are inconsistent — WL tolerates mild rewrites but GED degrades,",
        "and neither offers a learned, calibrated decision boundary.",
    ]
    report("rivals_obfuscation", "\n".join(lines))
    assert np.mean(gnn_scores) > 0.8
    assert np.mean(gnn_scores) > np.mean(ged_scores)
