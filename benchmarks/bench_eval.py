"""Detection-quality floor: the adversarial evaluation harness in CI.

Every PR so far could prove it made the pipeline *faster*; this
benchmark is the regression signal for whether it still *detects*.  It
runs the small default evaluation configuration (``repro.eval``: train a
netlist-level model, index the synthesized-plus-obfuscated corpus,
generate every attack scenario, one batched query pass) and enforces the
paper-level claim:

- **recall@10 >= 0.9 for strength-2 netlist obfuscation** — a thief who
  applies two structural transforms plus a rename pass must still rank
  the stolen design in the top 10 of the corpus.

The partial-theft scenario (stolen block grafted into a holdout host)
must be present in the per-scenario breakdown; its recall is recorded
but not floored — it is the documented hardest case.  Wall-clock numbers
are likewise recorded, never enforced (this is a quality benchmark, not
a timing one).

``REPRO_BENCH_FULL=1`` scales instances and epochs up; the default is
the CI smoke configuration.  Results land in
``benchmarks/out/bench_eval.json`` and the full evaluation report in
``benchmarks/out/eval_report.json`` (uploaded as CI artifacts).
"""

import json
import time

from conftest import FULL, OUT_DIR, report
from repro.eval import EvalConfig, run_evaluation

#: The enforced claim: recall@10 on strength-2 netlist obfuscation.
FLOOR_SCENARIO = "netlist_obfuscate_s2"
FLOOR_RECALL_AT_10 = 0.9


def bench_eval_detection_floor():
    config = (EvalConfig(corpus_instances=5, suspects_per_design=3,
                         train_instances=6, epochs=120)
              if FULL else EvalConfig())
    start = time.time()
    result = run_evaluation(config)
    total_seconds = time.time() - start

    data = result.as_dict()
    recalls = {name: metrics.get("recall_at_k", {}).get("10")
               for name, metrics in data["scenarios"].items()}
    floor_recall = recalls[FLOOR_SCENARIO]

    OUT_DIR.mkdir(exist_ok=True)
    with open(OUT_DIR / "eval_report.json", "w") as handle:
        handle.write(result.to_json() + "\n")
    payload = {
        "floor_scenario": FLOOR_SCENARIO,
        "floor_recall_at_10": FLOOR_RECALL_AT_10,
        "measured_recall_at_10": floor_recall,
        "recalls_at_10": recalls,
        "overall": {k: data["overall"][k] for k in ("auc", "confusion")},
        "total_seconds": total_seconds,
        "timings": data["timings"],
        "full": FULL,
    }
    with open(OUT_DIR / "bench_eval.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    lines = [f"{name:24s} recall@10 = "
             + (f"{value:.3f}" if value is not None else "n/a")
             for name, value in sorted(recalls.items())]
    lines.append(f"floor: {FLOOR_SCENARIO} >= {FLOOR_RECALL_AT_10} "
                 f"(measured {floor_recall:.3f})")
    lines.append(f"total {total_seconds:.1f}s "
                 f"(train {data['timings'].get('train_seconds', 0):.1f}s, "
                 f"query {data['timings'].get('query_seconds', 0):.1f}s)")
    report("bench_eval", "\n".join(lines))

    # The hardest case must be measured, even though it has no floor.
    assert "partial_theft" in data["scenarios"], \
        "partial-theft scenario missing from the breakdown"
    equivalence_failures = [
        name for name, metrics in data["scenarios"].items()
        if metrics.get("equivalence")
        and metrics["equivalence"]["passed"] != metrics["equivalence"]["checked"]]
    assert not equivalence_failures, \
        f"semantics-preserving scenarios failed equivalence: " \
        f"{equivalence_failures}"
    assert floor_recall is not None and floor_recall >= FLOOR_RECALL_AT_10, \
        f"detection floor broken: {FLOOR_SCENARIO} recall@10 = " \
        f"{floor_recall} < {FLOOR_RECALL_AT_10}"
