"""Detection-quality floors: the adversarial evaluation harness in CI.

Every PR so far could prove it made the pipeline *faster*; this
benchmark is the regression signal for whether it still *detects*.  It
runs the small default evaluation configuration (``repro.eval``: train a
netlist-level model, index the synthesized-plus-obfuscated corpus with
multi-granularity chunk rows, generate every attack scenario, one
batched query pass) and enforces the paper-level claims as recall@10
floors per scenario:

- **restyle / obfuscation / resynthesis >= 0.9** — semantics-preserving
  attacks must still rank the stolen design in the top 10.
- **partial theft >= 0.9 at every theft fraction >= 0.3** — a thief who
  grafts as little as 30 % of a stolen block into their own design is
  still caught through chunk-level locality matching.

Wall-clock numbers are recorded, never enforced (this is a quality
benchmark, not a timing one).

``REPRO_BENCH_FULL=1`` scales instances and epochs up; the default is
the CI smoke configuration.  Results land in
``benchmarks/out/bench_eval.json`` and the full evaluation report in
``benchmarks/out/eval_report.json`` (uploaded as CI artifacts).
``bench_partial_theft_smoke`` is the fast partial-theft-only gate CI
runs as its own step (``benchmarks/out/partial_theft_smoke.json``).
"""

import json
import time

from conftest import FULL, OUT_DIR, report
from repro.eval import EvalConfig, run_evaluation

#: Enforced recall@10 floors per scenario.  ``partial_theft`` is floored
#: per theft fraction (see PARTIAL_THEFT_MIN_FRACTION) rather than on
#: its pooled recall, so an easy 0.6-fraction sweep cannot mask a broken
#: 0.3-fraction one.
FLOORS = {
    "rtl_variant": 0.9,
    "netlist_obfuscate_s1": 0.9,
    "netlist_obfuscate_s2": 0.9,
    "netlist_obfuscate_s3": 0.9,
    "resynthesis": 0.9,
    "partial_theft": 0.9,
    # Staged attack pipelines (ISSUE 10).  Same bar as the other
    # semantics-preserving attacks; the trojan only perturbs one output
    # cone, so the fingerprint should still match.
    "retime": 0.9,
    "fsm_reencode": 0.9,
    "wrapper": 0.9,
    "trojan": 0.9,
}

#: Target floors the detector does NOT clear yet: recorded as open
#: baselines in ``bench_eval.json`` (under ``open_baselines``), never
#: asserted.  ``tech_remap`` rewrites every gate into an alternate cell
#: vocabulary (NAND-only / NOR-only / AIG), which defeats the
#: cell-type-based netlist featurization — closing that gap is tracked
#: in ROADMAP.md.  Move an entry into FLOORS once it clears its target.
OPEN_BASELINES = {
    "tech_remap": 0.9,
}

#: Fractions below this are out of scope for the partial-theft floor
#: (a sliver of a design is not reliably identifiable at any k).
PARTIAL_THEFT_MIN_FRACTION = 0.3


def _check_floors(data):
    """Return a list of human-readable floor violations (empty = pass)."""
    failures = []
    for scenario, floor in FLOORS.items():
        metrics = data["scenarios"].get(scenario)
        if metrics is None:
            failures.append(f"{scenario}: missing from the breakdown")
            continue
        if scenario == "partial_theft":
            by_fraction = metrics.get("recall_by_fraction") or {}
            if not by_fraction:
                failures.append("partial_theft: no per-fraction recall")
            for fraction, recalls in sorted(by_fraction.items()):
                if float(fraction) < PARTIAL_THEFT_MIN_FRACTION:
                    continue
                value = recalls.get("10")
                if value is None or value < floor:
                    failures.append(
                        f"partial_theft@{fraction}: recall@10 = "
                        f"{value} < {floor}")
            continue
        value = metrics.get("recall_at_k", {}).get("10")
        if value is None or value < floor:
            failures.append(f"{scenario}: recall@10 = {value} < {floor}")
    return failures


def bench_eval_detection_floor():
    config = (EvalConfig(corpus_instances=5, suspects_per_design=3,
                         train_instances=6, epochs=120)
              if FULL else EvalConfig())
    start = time.time()
    result = run_evaluation(config)
    total_seconds = time.time() - start

    data = result.as_dict()
    recalls = {name: metrics.get("recall_at_k", {}).get("10")
               for name, metrics in data["scenarios"].items()}
    partial = data["scenarios"].get("partial_theft", {})

    OUT_DIR.mkdir(exist_ok=True)
    with open(OUT_DIR / "eval_report.json", "w") as handle:
        handle.write(result.to_json() + "\n")
    payload = {
        "floors": FLOORS,
        "partial_theft_min_fraction": PARTIAL_THEFT_MIN_FRACTION,
        "recalls_at_10": recalls,
        "partial_theft_by_fraction": partial.get("recall_by_fraction"),
        # Recorded-not-enforced: target floor vs measured recall@10 for
        # scenarios the detector does not clear yet.  Tracked so the gap
        # (and any progress) is visible per run without gating CI.
        "open_baselines": {
            name: {"target": target, "recall_at_10": recalls.get(name)}
            for name, target in OPEN_BASELINES.items()},
        "overall": {k: data["overall"][k] for k in ("auc", "confusion")},
        "total_seconds": total_seconds,
        "timings": data["timings"],
        "full": FULL,
    }
    with open(OUT_DIR / "bench_eval.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    lines = [f"{name:24s} recall@10 = "
             + (f"{value:.3f}" if value is not None else "n/a")
             + (f"  (floor {FLOORS[name]})" if name in FLOORS else "")
             + (f"  (open baseline, target {OPEN_BASELINES[name]})"
                if name in OPEN_BASELINES else "")
             for name, value in sorted(recalls.items())]
    for fraction, by_k in sorted(
            (partial.get("recall_by_fraction") or {}).items()):
        value = by_k.get("10")
        lines.append(f"  partial_theft@{fraction:4s}  recall@10 = "
                     + (f"{value:.3f}" if value is not None else "n/a"))
    lines.append(f"total {total_seconds:.1f}s "
                 f"(train {data['timings'].get('train_seconds', 0):.1f}s, "
                 f"query {data['timings'].get('query_seconds', 0):.1f}s)")
    report("bench_eval", "\n".join(lines))

    equivalence_failures = [
        name for name, metrics in data["scenarios"].items()
        if metrics.get("equivalence")
        and metrics["equivalence"]["passed"] != metrics["equivalence"]["checked"]]
    assert not equivalence_failures, \
        f"semantics-preserving scenarios failed equivalence: " \
        f"{equivalence_failures}"
    failures = _check_floors(data)
    assert not failures, "detection floors broken: " + "; ".join(failures)


def bench_attacks_smoke():
    """Reduced staged-attack gate: just the five attack scenarios.

    CI runs this as its own ``attacks-smoke`` step (``--scenarios``
    subset, smaller corpus) so a broken attack pipeline or a recall
    regression on the enforced attack scenarios fails loudly even when
    the full floor benchmark is skipped or times out.  ``tech_remap``
    stays recorded-not-enforced (see OPEN_BASELINES).  The report lands
    in ``benchmarks/out/attacks_smoke.json``.
    """
    attack_scenarios = ("tech_remap", "retime", "fsm_reencode",
                        "wrapper", "trojan")
    config = EvalConfig(scenarios=attack_scenarios,
                        suspects_per_design=1)
    start = time.time()
    result = run_evaluation(config)
    total_seconds = time.time() - start

    data = result.as_dict()
    recalls = {name: data["scenarios"][name]
               .get("recall_at_k", {}).get("10")
               for name in attack_scenarios}
    suspects = {name: data["scenarios"][name].get("suspects")
                for name in attack_scenarios}

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "floors": {name: FLOORS[name] for name in attack_scenarios
                   if name in FLOORS},
        "open_baselines": {
            name: {"target": target, "recall_at_10": recalls.get(name)}
            for name, target in OPEN_BASELINES.items()},
        "recalls_at_10": recalls,
        "suspects": suspects,
        "total_seconds": total_seconds,
        "full": FULL,
    }
    with open(OUT_DIR / "attacks_smoke.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    lines = [f"{name:16s} n={suspects[name]:<3d} recall@10 = "
             + (f"{recalls[name]:.3f}" if recalls[name] is not None
                else "n/a")
             + (f"  (floor {FLOORS[name]})" if name in FLOORS
                else f"  (open baseline, target {OPEN_BASELINES[name]})")
             for name in attack_scenarios]
    lines.append(f"total {total_seconds:.1f}s")
    report("bench_attacks_smoke", "\n".join(lines))

    for name in attack_scenarios:
        assert suspects[name], f"{name}: no suspects generated"
    failures = [
        f"{name}: recall@10 = {recalls[name]} < {FLOORS[name]}"
        for name in attack_scenarios
        if name in FLOORS
        and (recalls[name] is None or recalls[name] < FLOORS[name])]
    assert not failures, \
        "attack-scenario floors broken: " + "; ".join(failures)


def bench_partial_theft_smoke():
    """The fast partial-theft-only gate: small corpus, one scenario.

    CI runs this as its own ``partial-theft-smoke`` step so a chunking
    regression fails loudly even when the full floor benchmark is
    skipped or times out.  The report lands in
    ``benchmarks/out/partial_theft_smoke.json``.
    """
    config = EvalConfig(scenarios=("partial_theft",))
    start = time.time()
    result = run_evaluation(config)
    total_seconds = time.time() - start

    data = result.as_dict()
    partial = data["scenarios"]["partial_theft"]
    by_fraction = partial.get("recall_by_fraction") or {}

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "floor": FLOORS["partial_theft"],
        "min_fraction": PARTIAL_THEFT_MIN_FRACTION,
        "recall_at_10": partial.get("recall_at_k", {}).get("10"),
        "recall_by_fraction": by_fraction,
        "suspects": partial.get("suspects"),
        "total_seconds": total_seconds,
        "full": FULL,
    }
    with open(OUT_DIR / "partial_theft_smoke.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    lines = [f"partial_theft@{fraction:4s}  recall@10 = "
             + (f"{by_k.get('10'):.3f}" if by_k.get("10") is not None
                else "n/a")
             for fraction, by_k in sorted(by_fraction.items())]
    lines.append(f"total {total_seconds:.1f}s")
    report("bench_partial_theft_smoke", "\n".join(lines))

    assert by_fraction, "no per-fraction recall in the report"
    failures = []
    for fraction, by_k in sorted(by_fraction.items()):
        if float(fraction) < PARTIAL_THEFT_MIN_FRACTION:
            continue
        value = by_k.get("10")
        if value is None or value < FLOORS["partial_theft"]:
            failures.append(f"partial_theft@{fraction}: recall@10 = "
                            f"{value} < {FLOORS['partial_theft']}")
    assert not failures, \
        "partial-theft floor broken: " + "; ".join(failures)
