"""Query-serving benchmark: memmap open, batched lookups, IVF pre-filter.

The index is the deployment hot path — embed a suspect once, score it
against a corpus of stored fingerprints.  Three serving claims are
measured over a synthetic ~50k-fingerprint corpus (clustered unit
vectors, mimicking design families) and enforced:

- **Memmap open vs v2 npz load** — opening the v3 shard store (stat +
  mmap, no decompression, no re-normalization) must be >= 10x faster
  than the v2-era load (decompress the float64 ``.npz``, materialize the
  key list, re-normalize every row).
- **Batched vs single-suspect queries** — serving 64 suspects through
  one ``query_many`` call (one BLAS matmul + one partial top-k per
  suspect) must be >= 5x faster than 64 single-vector queries.
- **IVF vs exact** — the coarse-quantized path (probe the best clusters,
  exactly re-rank the candidates) must be >= 3x faster than exact
  scoring while keeping recall@10 >= 0.95.
- **Served micro-batching** — 64 concurrent single-suspect queries
  through the HTTP service (``repro.server``, requests coalesced into
  shared engine passes) must be >= 3x faster than the same 64 calls
  issued sequentially; the served-vs-in-process overhead factor is
  recorded alongside.

Exact-mode ``query_many`` must also match per-vector ``query_vector``
bit-for-bit (single-row batches are padded so BLAS keeps one kernel).

Scale comes from ``REPRO_BENCH_QUERY_N`` (default 50000).  The recall
floor holds at any size; the timing floors are asserted only at >= 20000
rows — below that (CI smoke runs) fixed per-call overheads dominate and
the ratios measure noise, so they are recorded but not enforced.
Results land in ``benchmarks/out/bench_query.json``.
"""

import json
import os
import time

import numpy as np
import pytest

from conftest import OUT_DIR, report
from repro.index.ann import IVFIndex
from repro.index.engine import QueryEngine
from repro.index.shards import ShardStore, unit_rows_f32, write_shard

N = int(os.environ.get("REPRO_BENCH_QUERY_N", "50000"))
HIDDEN = 16
SUSPECTS = 64
IVF_QUERIES = 256
#: Timing floors are only meaningful once the corpus dwarfs per-call
#: overhead; smoke runs below this record ratios without enforcing them.
FLOORS_MIN_ROWS = 20000
SEED = 7


def _assert_floors():
    return N >= FLOORS_MIN_ROWS


def _merge_json(payload):
    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "bench_query.json"
    existing = json.loads(out_path.read_text()) if out_path.exists() else {}
    existing.update(payload)
    with open(out_path, "w") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)


def timed(fn, repeats=5):
    """Best-of-N wall time (first call outside the timed region)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def corpus():
    """Clustered synthetic unit float32 rows — design families in
    embedding space (tight same-family clusters, like the real corpus)."""
    rng = np.random.default_rng(SEED)
    families = max(8, N // 100)
    centers = rng.standard_normal((families, HIDDEN))
    labels = rng.integers(0, families, size=N)
    rows = centers[labels] + 0.15 * rng.standard_normal((N, HIDDEN))
    return unit_rows_f32(rows)


@pytest.fixture(scope="module")
def entries():
    return [{"name": f"d{i:06d}", "path": f"d{i:06d}.v",
             "design": f"fam{i}", "status": "ok"} for i in range(N)]


@pytest.fixture(scope="module")
def stores(corpus, tmp_path_factory):
    """The same corpus persisted both ways: v2-style npz and v3 shards."""
    root = tmp_path_factory.mktemp("query_store")
    matrix64 = np.asarray(corpus, dtype=np.float64)
    keys = np.array([f"{i:064d}" for i in range(N)], dtype="U64")
    np.savez(root / "embeddings.npz", matrix=matrix64, keys=keys)
    spec = write_shard(root, 0, corpus)
    return root, [spec]


def bench_memmap_open_vs_npz_load(stores):
    """v3 open (stat + mmap) must be >= 10x faster than the v2 load."""
    root, specs = stores

    def v2_load():
        # The retired loader: decompress the whole float64 matrix,
        # materialize the key list, re-normalize every row.
        with np.load(root / "embeddings.npz", allow_pickle=False) as data:
            matrix = data["matrix"]
            keys = [str(k) for k in data["keys"]]
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        unit = matrix / np.maximum(norms, 1e-12)
        return unit, keys

    def v3_open():
        return ShardStore(root, HIDDEN, specs).open().blocks()

    npz_s = timed(v2_load)
    mmap_s = timed(v3_open, repeats=20)
    speedup = npz_s / mmap_s
    lines = [f"rows: {N} x {HIDDEN} float32",
             f"v2 npz load:   {npz_s * 1000:10.3f} ms",
             f"v3 memmap open:{mmap_s * 1000:10.3f} ms",
             f"speedup:       {speedup:10.1f}x (required: >= 10x)"]
    report("query_memmap_open", "\n".join(lines))
    _merge_json({"rows": N, "hidden": HIDDEN,
                 "npz_load_seconds": npz_s,
                 "memmap_open_seconds": mmap_s,
                 "memmap_open_speedup": speedup})
    if _assert_floors():
        assert speedup >= 10.0, \
            f"memmap open only {speedup:.1f}x faster than the npz load"


def bench_batched_vs_single_queries(corpus, entries):
    """One 64-suspect query_many must be >= 5x faster than 64 singles,
    and bit-identical to them."""
    engine = QueryEngine([corpus], entries)
    rng = np.random.default_rng(SEED + 1)
    picks = rng.choice(N, size=SUSPECTS, replace=False)
    suspects = unit_rows_f32(
        corpus[picks] + 0.05 * rng.standard_normal((SUSPECTS, HIDDEN)))

    batched_s = timed(lambda: engine.query_many(suspects, k=10))
    single_s = timed(lambda: [engine.query_many(s[None], k=10)[0]
                              for s in suspects])

    batched = engine.query_many(suspects, k=10)
    singles = [engine.query_many(s[None], k=10)[0] for s in suspects]
    identical = all(
        [(h.name, h.score) for h in many] == [(h.name, h.score)
                                              for h in one]
        for many, one in zip(batched, singles))

    speedup = single_s / batched_s
    lines = [f"corpus: {N} rows, suspects: {SUSPECTS}, k=10",
             f"64 single queries: {single_s * 1000:8.1f} ms",
             f"one batched call:  {batched_s * 1000:8.1f} ms",
             f"speedup:           {speedup:8.2f}x (required: >= 5x)",
             f"bit-identical results: {identical}"]
    report("query_batched_vs_single", "\n".join(lines))
    _merge_json({"suspects": SUSPECTS,
                 "single_queries_seconds": single_s,
                 "batched_query_seconds": batched_s,
                 "batched_query_speedup": speedup,
                 "batched_equals_single": identical})
    assert identical, "batched exact results diverged from single queries"
    if _assert_floors():
        assert speedup >= 5.0, \
            f"batched serving only {speedup:.2f}x faster than singles"


def bench_ivf_vs_exact(corpus, entries):
    """IVF pre-filter must be >= 3x faster at recall@10 >= 0.95."""
    n_clusters = max(64, min(1024, int(round(4 * N ** 0.5))))
    nprobe = 8
    fit_start = time.perf_counter()
    ivf = IVFIndex.fit(corpus, n_clusters=n_clusters, seed=SEED)
    fit_seconds = time.perf_counter() - fit_start
    engine = QueryEngine([corpus], entries, ivf=ivf)

    rng = np.random.default_rng(SEED + 2)
    picks = rng.choice(N, size=IVF_QUERIES, replace=False)
    queries = unit_rows_f32(
        corpus[picks] + 0.05 * rng.standard_normal((IVF_QUERIES, HIDDEN)))

    exact_s = timed(lambda: engine.query_many(queries, k=10, exact=True))
    ivf_s = timed(lambda: engine.query_many(queries, k=10, nprobe=nprobe))

    exact = engine.query_many(queries, k=10, exact=True)
    approx = engine.query_many(queries, k=10, nprobe=nprobe)
    recalls = [len({h.name for h in ex} & {h.name for h in ap}) / len(ex)
               for ex, ap in zip(exact, approx)]
    recall = float(np.mean(recalls))

    speedup = exact_s / ivf_s
    lines = [f"corpus: {N} rows, {n_clusters} clusters, "
             f"nprobe={nprobe}, {IVF_QUERIES} queries, k=10",
             f"k-means fit:  {fit_seconds * 1000:8.1f} ms (build-time)",
             f"exact batch:  {exact_s * 1000:8.1f} ms",
             f"ivf batch:    {ivf_s * 1000:8.1f} ms",
             f"speedup:      {speedup:8.2f}x (required: >= 3x)",
             f"recall@10:    {recall:8.4f} (required: >= 0.95)"]
    report("query_ivf_vs_exact", "\n".join(lines))
    _merge_json({"ivf_clusters": n_clusters, "nprobe": nprobe,
                 "ivf_queries": IVF_QUERIES,
                 "ivf_fit_seconds": fit_seconds,
                 "exact_query_seconds": exact_s,
                 "ivf_query_seconds": ivf_s,
                 "ivf_speedup": speedup,
                 "recall_at_10": recall,
                 "timing_floors_enforced": _assert_floors()})
    assert recall >= 0.95, f"IVF recall@10 only {recall:.4f}"
    if _assert_floors():
        assert speedup >= 3.0, \
            f"IVF serving only {speedup:.2f}x faster than exact"


def bench_served_vs_inprocess(corpus, entries, tmp_path_factory):
    """HTTP serving overhead: 64 concurrent suspects, micro-batched into
    shared BLAS passes, must beat the same 64 suspects issued as
    sequential single-suspect HTTP calls by >= 3x — and the in-process
    overhead factor is recorded alongside.

    The server runs in a background thread over a synthetic v3 index
    (the same clustered corpus, served through the real
    Session -> Corpus -> QueryEngine path with vector suspects).
    """
    import asyncio
    import threading

    from repro.api import Corpus as ApiCorpus, Session
    from repro.client import AsyncClient, Client
    from repro.index.store import FORMAT_VERSION, FingerprintIndex
    from repro.server import ReproServer

    root = tmp_path_factory.mktemp("served_store")
    spec = write_shard(root, 0, corpus)
    served_entries = [dict(entry, key=f"{i:064d}")
                      for i, entry in enumerate(entries)]
    meta = {"version": FORMAT_VERSION, "model_hash": "bench",
            "options": {"top": None, "level": "rtl", "use_cache": False},
            "store": {"dtype": "float32", "hidden": HIDDEN,
                      "shards": [spec]},
            "entries": served_entries}
    index = FingerprintIndex(root, meta,
                             ShardStore(root, HIDDEN, [spec]).open())
    session = Session(corpus=ApiCorpus(index))

    loop = asyncio.new_event_loop()
    server = ReproServer(session, port=0)
    started = threading.Event()

    def _serve():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    assert started.wait(10), "server did not start"

    rng = np.random.default_rng(SEED + 3)
    picks = rng.choice(N, size=SUSPECTS, replace=False)
    suspects = unit_rows_f32(
        corpus[picks] + 0.05 * rng.standard_normal((SUSPECTS, HIDDEN)))
    sync = Client("127.0.0.1", server.port)

    def sequential():
        for suspect in suspects:
            sync.query(vectors=[suspect], k=10)

    async def _concurrent():
        client = AsyncClient("127.0.0.1", server.port)
        return await asyncio.gather(
            *[client.query(vectors=[suspect], k=10)
              for suspect in suspects])

    def concurrent():
        asyncio.run(_concurrent())

    # Sanity: the served ranking matches the in-process engine.
    served_top = sync.query(vectors=[suspects[0]], k=1)
    inproc_top = index.engine.query_many(suspects[:1], k=1)[0][0]
    assert served_top["results"][0]["matches"][0]["name"] == inproc_top.name

    seq_s = timed(sequential, repeats=3)
    conc_s = timed(concurrent, repeats=3)
    inproc_s = timed(lambda: index.engine.query_many(suspects, k=10))
    stats = sync.stats()

    try:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10)
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()

    speedup = seq_s / conc_s
    overhead = conc_s / inproc_s
    lines = [f"corpus: {N} rows, {SUSPECTS} single-suspect HTTP calls",
             f"sequential HTTP:    {seq_s * 1000:8.1f} ms",
             f"concurrent batched: {conc_s * 1000:8.1f} ms",
             f"in-process engine:  {inproc_s * 1000:8.1f} ms",
             f"batched speedup:    {speedup:8.2f}x (required: >= 3x)",
             f"served-vs-in-process overhead: {overhead:8.1f}x",
             f"mean requests per micro-batch: "
             f"{stats['mean_requests_per_batch']:.1f}"]
    report("query_served_vs_inprocess", "\n".join(lines))
    _merge_json({"served_sequential_seconds": seq_s,
                 "served_concurrent_seconds": conc_s,
                 "served_inprocess_seconds": inproc_s,
                 "served_batched_speedup": speedup,
                 "served_vs_inprocess_overhead": overhead,
                 "served_mean_requests_per_batch":
                     stats["mean_requests_per_batch"]})
    if _assert_floors():
        assert speedup >= 3.0, \
            f"micro-batched serving only {speedup:.2f}x faster than " \
            f"sequential single-suspect HTTP calls"
