"""Fingerprint-index benchmark: cache leverage, batched embedding/training.

Three scaling claims are measured and enforced:

- **Cold vs warm indexing** — rebuilding an unchanged corpus must be at
  least 2x faster than the first build, because every DFG comes out of the
  content-addressed cache instead of the Verilog front-end.
- **Batched vs per-graph embedding** — embedding the corpus through the
  block-diagonal batched forward pass must beat one ``embed`` call per
  graph.
- **Batched vs per-pair-loop training** — a training epoch through the
  block-diagonal forward+backward path must be at least 2x faster than the
  per-graph autograd loop, with identical losses.

Results are also written as JSON (``benchmarks/out/bench_index.json`` and
``benchmarks/out/bench_train.json``) so future PRs can track the
trajectory of all three speedups.
"""

import json
import time

import pytest

from conftest import OUT_DIR, report
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.designs import materialize_corpus, rtl_records
from repro.index import CorpusExtractor, EmbeddingService, build_index

#: Small but non-trivial slice of the generated corpus; extraction cost
#: dominates indexing, which is exactly what the cache is for.
FAMILIES = ("adder8", "addsub8", "cmp8", "mux8", "barrel8", "counter8",
            "lfsr8", "crc8")
INSTANCES = 4


@pytest.fixture(scope="module")
def corpus_files(tmp_path_factory, config):
    root = tmp_path_factory.mktemp("index_corpus")
    return materialize_corpus(root, families=list(FAMILIES),
                              instances_per_design=INSTANCES,
                              seed=config.seed)


def _write_json(payload):
    OUT_DIR.mkdir(exist_ok=True)
    with open(OUT_DIR / "bench_index.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def bench_index_cold_vs_warm(benchmark, corpus_files, tmp_path_factory,
                             config):
    """Warm rebuilds must be >= 2x faster than the cold build."""
    root = tmp_path_factory.mktemp("index_store")
    model = GNN4IP(seed=config.seed)

    start = time.perf_counter()
    _, cold_report = build_index(root, corpus_files, model, jobs=1)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    _, warm_report = build_index(root, corpus_files, model, jobs=1)
    warm = time.perf_counter() - start

    benchmark(build_index, root, corpus_files, model, jobs=1)

    assert cold_report["cache"]["hits"] == 0
    assert warm_report["cache"]["misses"] == 0
    speedup = cold / warm
    lines = [f"corpus: {len(corpus_files)} files, "
             f"{cold_report['embedded']} embedded",
             f"cold build: {cold * 1000:8.1f} ms "
             f"({cold_report['cache']['stores']} cache stores)",
             f"warm build: {warm * 1000:8.1f} ms "
             f"({warm_report['cache']['hits']} cache hits)",
             f"speedup:    {speedup:8.2f}x (required: >= 2x)"]
    report("index_cold_vs_warm", "\n".join(lines))

    payload = {"corpus_files": len(corpus_files),
               "cold_seconds": cold, "warm_seconds": warm,
               "warm_speedup": speedup}
    existing = {}
    out_path = OUT_DIR / "bench_index.json"
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    existing.update(payload)
    _write_json(existing)
    assert speedup >= 2.0, \
        f"warm rebuild only {speedup:.2f}x faster than cold"


def bench_index_batched_embedding(benchmark, corpus_files, config):
    """Batched embedding must beat one-at-a-time embedding."""
    graphs = [r.graph for r in
              CorpusExtractor(jobs=1).extract_paths(corpus_files) if r.ok]
    model = GNN4IP(seed=config.seed)
    model.encoder.eval()  # embedding is always eval-mode; keep fwd fair
    service = EmbeddingService(model)

    def timed(fn, repeats=5):
        fn()  # warm numpy/scipy code paths
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats

    # End-to-end: both sides start from raw DFGs, so both pay prepare()
    # (features + adjacency normalization) inside the timed region.
    single_s = timed(lambda: [model.encoder.embed(g) for g in graphs])
    batched_s = timed(lambda: service.embed_graphs(graphs))

    # Forward-pass only: both sides get prepared graphs, isolating the
    # block-diagonal batching win from the shared prepare() cost.
    prepared = [model.encoder.prepare(g) for g in graphs]
    single_fwd_s = timed(
        lambda: [model.encoder.forward(p).numpy() for p in prepared])
    batched_fwd_s = timed(lambda: service.embed_graphs(prepared))
    benchmark(service.embed_graphs, prepared)

    single_eps = len(graphs) / single_s
    batched_eps = len(graphs) / batched_s
    lines = [f"graphs: {len(graphs)}",
             f"end-to-end one-at-a-time: {single_s * 1000:8.1f} ms "
             f"({single_eps:8.0f} graphs/s)",
             f"end-to-end batched:       {batched_s * 1000:8.1f} ms "
             f"({batched_eps:8.0f} graphs/s)",
             f"end-to-end speedup:       {single_s / batched_s:8.2f}x",
             f"forward-only one-at-a-time: {single_fwd_s * 1000:6.1f} ms",
             f"forward-only batched:       {batched_fwd_s * 1000:6.1f} ms",
             f"forward-only speedup:     "
             f"{single_fwd_s / batched_fwd_s:8.2f}x"]
    report("index_batched_embedding", "\n".join(lines))

    existing = {}
    out_path = OUT_DIR / "bench_index.json"
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    existing.update({"graphs": len(graphs),
                     "per_graph_seconds": single_s,
                     "batched_seconds": batched_s,
                     "per_graph_eps": single_eps,
                     "batched_eps": batched_eps,
                     "batched_speedup": single_s / batched_s,
                     "forward_per_graph_seconds": single_fwd_s,
                     "forward_batched_seconds": batched_fwd_s,
                     "forward_batched_speedup":
                         single_fwd_s / batched_fwd_s})
    _write_json(existing)
    assert batched_s < single_s, \
        "batched embedding slower than per-graph embedding"


def bench_train_batched_vs_loop(benchmark, config):
    """Batched training epochs must be >= 2x faster than the per-pair loop.

    Both trainers see the same dataset, seed, and (dropout-free) model, so
    the per-epoch losses must agree to rounding — the speedup is pure
    execution strategy, not a different optimization trajectory.
    """
    records = rtl_records(families=list(FAMILIES),
                          instances_per_design=INSTANCES,
                          seed=config.seed)
    dataset = build_pair_dataset(records, seed=config.seed)

    def epoch_time(mode, epochs=3):
        trainer = Trainer(GNN4IP(seed=config.seed, dropout=0.0),
                          seed=config.seed, mode=mode)
        trainer.train_epoch(dataset, 0)  # warm caches + prepare()
        losses = []
        start = time.perf_counter()
        for epoch in range(1, epochs + 1):
            loss, _ = trainer.train_epoch(dataset, epoch)
            losses.append(loss)
        return (time.perf_counter() - start) / epochs, losses

    loop_s, loop_losses = epoch_time("loop")
    batched_s, batched_losses = epoch_time("batched")

    trainer = Trainer(GNN4IP(seed=config.seed, dropout=0.0),
                      seed=config.seed)
    trainer.train_epoch(dataset, 0)
    benchmark(trainer.train_epoch, dataset, 1)

    speedup = loop_s / batched_s
    pairs = len(dataset.train_pairs)
    lines = [f"graphs: {len(records)}, train pairs: {pairs}",
             f"per-pair loop epoch: {loop_s * 1000:8.1f} ms "
             f"({pairs / loop_s:8.0f} pairs/s)",
             f"batched epoch:       {batched_s * 1000:8.1f} ms "
             f"({pairs / batched_s:8.0f} pairs/s)",
             f"speedup:             {speedup:8.2f}x (required: >= 2x)"]
    report("train_batched_vs_loop", "\n".join(lines))

    OUT_DIR.mkdir(exist_ok=True)
    with open(OUT_DIR / "bench_train.json", "w") as handle:
        json.dump({"graphs": len(records), "train_pairs": pairs,
                   "loop_epoch_seconds": loop_s,
                   "batched_epoch_seconds": batched_s,
                   "batched_speedup": speedup,
                   "loop_losses": loop_losses,
                   "batched_losses": batched_losses},
                  handle, indent=2, sort_keys=True)

    for loop_loss, batched_loss in zip(loop_losses, batched_losses):
        assert batched_loss == pytest.approx(loop_loss, abs=1e-8)
    assert speedup >= 2.0, \
        f"batched training only {speedup:.2f}x faster than the loop"


def bench_index_parallel_extraction(corpus_files, tmp_path_factory):
    """Parallel and serial extraction agree graph-for-graph."""
    serial = CorpusExtractor(jobs=1).extract_paths(corpus_files)
    parallel = CorpusExtractor(jobs=2).extract_paths(corpus_files)
    mismatches = sum(
        1 for a, b in zip(serial, parallel)
        if (len(a.graph), a.graph.num_edges) != (len(b.graph),
                                                 b.graph.num_edges))
    lines = [f"files: {len(corpus_files)}",
             f"serial ok:   {sum(r.ok for r in serial)}",
             f"parallel ok: {sum(r.ok for r in parallel)}",
             f"mismatches:  {mismatches}"]
    report("index_parallel_extraction", "\n".join(lines))
    assert mismatches == 0
