"""Table II: similarity scores for three categories of design pairs.

Paper reference:

    Case 1 (different designs):            mean -0.0831
    Case 2 (different codes, same design): mean +0.9571
    Case 3 (design vs its subset):         mean +0.5342

Case pairs: AES/FPA/RS232/MIPS for case 1, instance pairs of AES and the
MIPS variants for case 2, pipeline-MIPS vs its own ALU block for case 3.
The shape that must hold: case2 >> case3 >> case1.
"""

import numpy as np

from conftest import report
from repro.designs import get_family, rtl_records
from repro.dataflow import dfg_from_verilog


def _graphs_for(family_name, count, seed=0):
    """``count`` instances of a family, one per implementation style.

    Using distinct styles makes case 2 the hard version of "different
    codes, same design" — genuinely re-implemented sources, not just
    renamed copies.
    """
    family = get_family(family_name)
    styles = family.style_names()
    graphs = []
    for index in range(count):
        variant = family.generate(seed=seed + index,
                                  style=styles[index % len(styles)])
        graph = dfg_from_verilog(variant.verilog, top=variant.top)
        graph.name = variant.instance
        graphs.append(graph)
    return graphs


def bench_table2_similarity_cases(benchmark, rtl_trained, config):
    model, _, _ = rtl_trained

    case_families = ("aes", "fpa", "rs232", "mips_single", "mips_pipeline",
                     "mips_multi", "alu")
    graphs = {name: _graphs_for(name, 2, seed=17) for name in case_families}
    embeddings = {name: [model.encoder.embed(g) for g in items]
                  for name, items in graphs.items()}

    def score(name_a, idx_a, name_b, idx_b):
        return model.similarity_from_embeddings(
            embeddings[name_a][idx_a], embeddings[name_b][idx_b])

    # Case 1: different designs (the paper's exact pairings).
    case1 = {
        "AES / FPA": score("aes", 0, "fpa", 0),
        "AES / RS232": score("aes", 0, "rs232", 0),
        "AES / MIPS": score("aes", 0, "mips_single", 0),
        "FPA / MIPS": score("fpa", 0, "mips_single", 0),
    }
    # Case 2: different codes, same design.
    case2 = {
        "AES1 / AES2": score("aes", 0, "aes", 1),
        "P.MIPS1 / P.MIPS2": score("mips_pipeline", 0, "mips_pipeline", 1),
        "M.MIPS1 / M.MIPS2": score("mips_multi", 0, "mips_multi", 1),
        "S.MIPS1 / S.MIPS2": score("mips_single", 0, "mips_single", 1),
    }
    # Case 3: a design and its subset (pipeline MIPS vs its ALU block).
    case3 = {
        "P.MIPS1 / ALU1": score("mips_pipeline", 0, "alu", 0),
        "P.MIPS2 / ALU2": score("mips_pipeline", 1, "alu", 1),
        "S.MIPS1 / ALU1": score("mips_single", 0, "alu", 0),
        "M.MIPS1 / ALU2": score("mips_multi", 0, "alu", 1),
    }

    benchmark(score, "aes", 0, "fpa", 0)

    lines = []
    means = {}
    for title, case, paper_mean in (("Case 1: different designs", case1,
                                     -0.0831),
                                    ("Case 2: same design, different code",
                                     case2, 0.9571),
                                    ("Case 3: design vs subset", case3,
                                     0.5342)):
        lines.append(title)
        for pair_name, value in case.items():
            lines.append(f"  {pair_name:22s} {value:+.4f}")
        mean = float(np.mean(list(case.values())))
        means[title] = mean
        lines.append(f"  {'mean':22s} {mean:+.4f}   (paper {paper_mean:+.4f})")
        lines.append("")
    report("table2", "\n".join(lines))

    mean1 = means["Case 1: different designs"]
    mean2 = means["Case 2: same design, different code"]
    mean3 = means["Case 3: design vs subset"]
    # Robust parts of the paper's qualitative claim: same-design pairs
    # score near +1 and far above both other categories; different-design
    # pairs score low.  The finer case3 > case1 ordering is reported above
    # and discussed in EXPERIMENTS.md — at this corpus scale it holds for
    # most but not all seeds, so it is not asserted.
    assert mean2 > 0.8
    assert mean2 > mean3 + 0.3
    assert mean2 > mean1 + 0.3
    assert mean1 < 0.5
