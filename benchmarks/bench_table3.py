"""Table III: similarity scores for obfuscated ISCAS'85 benchmarks.

Paper reference (per-benchmark mean score between each benchmark and its
TrustHub-obfuscated instances, plus the cross-benchmark mean):

    c432 +0.9998   c499 +0.9928   c880 +0.9996
    c1355 +0.9993  c1908 +0.9999  c6288 +0.9945
    benchmarks vs their obfuscations overall: +0.9976
    between different benchmarks:             -0.1606

Shape to reproduce: every within-benchmark mean near +1, a much lower
cross-benchmark mean, and — the paper's headline claim — the original IP
"recognized in its obfuscated version 100% of the time", which we measure
as identification accuracy (argmax over the six originals).

Our obfuscator is harsher than TrustHub's camouflaged instances (gate
decomposition / De Morgan rewrites can double the gate count), so the
transform strength here is 1 (single structural transform + full rename),
the closest match to camouflage-style obfuscation.  Training uses a
disjoint obfuscation-seed range from evaluation.
"""

import numpy as np
import pytest

from conftest import report
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.designs import ISCAS_BENCHMARKS, iscas_records

_STRENGTH = 1


def bench_table3_obfuscated_iscas(benchmark, iscas_trained, config):
    model = iscas_trained
    counts = config.iscas_obfuscated
    records = iscas_records(obfuscated_per_benchmark=counts,
                            seed=0, strength=_STRENGTH)

    by_design = {}
    for record in records:
        by_design.setdefault(record.design, []).append(record)

    embeddings = {}
    for design, items in by_design.items():
        embeddings[design] = [model.encoder.embed(r.graph) for r in items]

    benchmark(model.encoder.embed, by_design["c432"][0].graph)

    lines = [f"{'Circuit':8s} {'Function':42s} {'#circ':5s} {'Score':>8s}"
             f" {'Paper':>8s}"]
    paper_scores = {"c432": 0.9998, "c499": 0.9928, "c880": 0.9996,
                    "c1355": 0.9993, "c1908": 0.9999, "c6288": 0.9945}
    within_all = []
    for design in ISCAS_BENCHMARKS:
        base = embeddings[design][0]
        scores = [model.similarity_from_embeddings(base, other)
                  for other in embeddings[design][1:]]
        mean = float(np.mean(scores))
        within_all.extend(scores)
        function = ISCAS_BENCHMARKS[design][1]
        lines.append(f"{design:8s} {function:42s} {len(scores):5d} "
                     f"{mean:+8.4f} {paper_scores[design]:+8.4f}")

    designs = list(ISCAS_BENCHMARKS)
    cross = []
    for i, design_a in enumerate(designs):
        for design_b in designs[i + 1:]:
            cross.append(model.similarity_from_embeddings(
                embeddings[design_a][0], embeddings[design_b][0]))

    # Identification: each obfuscated instance must score highest against
    # its own original — the paper's "recognizes the original IP" claim.
    # c499 and c1355 are the same function by construction (c1355 = c499
    # with XORs expanded to NANDs, as in the real ISCAS suite), so a match
    # to either counts for both.
    twins = {"c499": {"c499", "c1355"}, "c1355": {"c499", "c1355"}}
    identified = 0
    total = 0
    for design in designs:
        accept = twins.get(design, {design})
        for obf in embeddings[design][1:]:
            scores = {d: model.similarity_from_embeddings(
                embeddings[d][0], obf) for d in designs}
            if max(scores, key=scores.get) in accept:
                identified += 1
            total += 1

    within_mean = float(np.mean(within_all))
    cross_mean = float(np.mean(cross))
    lines += [
        "",
        f"within-benchmark mean:  {within_mean:+.4f}  (paper +0.9976)",
        f"cross-benchmark mean:   {cross_mean:+.4f}  (paper -0.1606)",
        f"original IP identified in obfuscated instance: "
        f"{identified}/{total} = {identified / total * 100:.1f}% "
        f"(paper 100%)",
    ]
    report("table3", "\n".join(lines))

    # Shape assertions (exact values are reported above and recorded in
    # EXPERIMENTS.md): obfuscated instances stay close to their original
    # and clearly closer than different benchmarks are to each other.
    assert within_mean > 0.8
    assert cross_mean < within_mean - 0.2
    assert identified / total > 0.65
