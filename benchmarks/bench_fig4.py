"""Fig. 4(b,c): PCA and t-SNE projections of hw2vec embeddings.

The paper embeds 250 hardware instances of two deliberately-similar
processor designs (pipeline MIPS vs single-cycle MIPS) and shows that both
projections form two well-separated clusters.  We reproduce the setting and
assert separation quantitatively (2-means purity and silhouette).
"""

import numpy as np
import pytest

from conftest import report
from repro.analysis import (
    PCA,
    purity_with_2means,
    silhouette_score,
    tsne_project,
)
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.designs import mips_visualization_records, rtl_records


@pytest.fixture(scope="module")
def processor_trained():
    """Encoder trained on a processor-heavy corpus (pinned seeds).

    The paper's Fig. 4(b,c) shows that *its trained model* separates two
    deliberately similar processors; the corpus here emphasizes the MIPS
    families (labeled as different designs) so the model must learn that
    separation, plus a handful of contrast designs.
    """
    records = rtl_records(families=("mips_single", "mips_pipeline",
                                    "mips_multi", "aes", "rs232",
                                    "counter8", "adder8", "crc8"),
                          instances_per_design=6, seed=0)
    dataset = build_pair_dataset(records, seed=0, max_negative_ratio=3.5)
    model = GNN4IP(seed=0)
    Trainer(model, seed=0).fit(dataset, epochs=60)
    return model


def _ascii_scatter(points, labels, width=56, height=18):
    """Tiny ASCII rendering of a 2-D labeled scatter plot."""
    points = np.asarray(points)
    mins = points.min(axis=0)
    maxs = points.max(axis=0)
    span = np.maximum(maxs - mins, 1e-9)
    canvas = [[" "] * width for _ in range(height)]
    markers = {0: "P", 1: "s"}
    for point, label in zip(points, labels):
        x = int((point[0] - mins[0]) / span[0] * (width - 1))
        y = int((point[1] - mins[1]) / span[1] * (height - 1))
        canvas[height - 1 - y][x] = markers[int(label)]
    return "\n".join("".join(row) for row in canvas)


def bench_fig4_embedding_projections(benchmark, processor_trained, config):
    model = processor_trained
    records = mips_visualization_records(
        instances_per_design=config.fig4_instances, seed=5)
    labels = np.array([0 if r.design == "mips_pipeline" else 1
                       for r in records])
    embeddings = np.stack([model.encoder.embed(r.graph) for r in records])

    pca = PCA(2)
    pca_points = pca.fit_transform(embeddings)
    benchmark(pca.fit_transform, embeddings)
    tsne_points = tsne_project(embeddings, 2, perplexity=8, seed=1,
                               n_iter=500)

    pca_purity = purity_with_2means(pca_points, labels, seed=0)
    tsne_purity = purity_with_2means(tsne_points, labels, seed=0)
    pca_sil = silhouette_score(pca_points, labels)
    tsne_sil = silhouette_score(tsne_points, labels)

    lines = [
        f"instances: {len(records)} "
        f"({int((labels == 0).sum())} pipeline MIPS 'P', "
        f"{int((labels == 1).sum())} single-cycle MIPS 's')",
        "",
        "PCA 2-D projection:",
        _ascii_scatter(pca_points, labels),
        f"  explained variance: "
        f"{pca.explained_variance_ratio_.sum() * 100:.1f}%",
        f"  2-means purity: {pca_purity * 100:.1f}%   "
        f"silhouette: {pca_sil:+.3f}",
        "",
        "t-SNE 2-D projection:",
        _ascii_scatter(tsne_points, labels),
        f"  2-means purity: {tsne_purity * 100:.1f}%   "
        f"silhouette: {tsne_sil:+.3f}",
        "",
        "paper: 'two well-separated clusters ... such that data points "
        "for the same processor design are close'",
    ]
    report("fig4_projections", "\n".join(lines))

    # The paper's qualitative claim: the two designs separate cleanly.
    assert pca_purity > 0.9
    assert tsne_purity > 0.9
