"""Scatter-gather serving benchmark: horizontal scaling + latency floors.

``gnn4ip serve --workers N`` partitions the shard files across N query
worker processes and merges their partial top-k at the front
(:mod:`repro.server.worker`).  This benchmark drives sustained
concurrent load at three server configurations over the same synthetic
~50k-fingerprint on-disk index — in-process (``workers=0``), one worker,
and ``REPRO_BENCH_SERVE_WORKERS`` (default 4) workers — and enforces:

- **Bit-identity** (always, at any scale): every configuration returns
  byte-identical result payloads for the same suspects on the exact,
  IVF, and default query paths.  Scatter-gather is an execution layout,
  not an approximation.
- **Horizontal scaling** — 4-worker throughput must be >= 0.7 * 4x the
  single-worker throughput.  Enforced only when the host actually has
  >= 4 cores *and* the corpus is >= 50k rows; below either, the ratio
  measures scheduler noise, so it is recorded but not asserted.
- **p99 latency ceiling** — under sustained concurrency the 4-worker
  p99 (measured client-side per request) must stay under 250 ms, gated
  the same way.

Scale comes from ``REPRO_BENCH_SERVE_N`` (default 50000).  Results land
in ``benchmarks/out/bench_serve.json`` (and the per-worker row split +
micro-batch stats ride along for the ops surface).
"""

import asyncio
import json
import os
import time

import numpy as np
import pytest

from conftest import OUT_DIR, report
from repro.api import Corpus, Session
from repro.client import AsyncClient
from repro.index.ann import IVFIndex, ivf_filename
from repro.index.shards import unit_rows_f32, write_shard
from repro.index.store import FORMAT_VERSION
from repro.server import ReproServer

N = int(os.environ.get("REPRO_BENCH_SERVE_N", "50000"))
WORKERS = int(os.environ.get("REPRO_BENCH_SERVE_WORKERS", "4"))
HIDDEN = 16
SHARDS = 2 * WORKERS     # even split at full fan-out
REQUESTS = 160           # sustained-load requests per configuration
CONCURRENCY = 32         # in-flight cap during the sustained run
IDENTITY_SUSPECTS = 8    # per query path, compared across configurations
SCALING_FLOOR = 0.7 * WORKERS
P99_CEILING_S = 0.25
FLOORS_MIN_ROWS = 50000
SEED = 13


def _assert_floors():
    """Scaling floors need real cores and a real corpus under them."""
    return N >= FLOORS_MIN_ROWS and (os.cpu_count() or 1) >= WORKERS


def _merge_json(payload):
    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "bench_serve.json"
    existing = json.loads(out_path.read_text()) if out_path.exists() else {}
    existing.update(payload)
    with open(out_path, "w") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def disk_index(tmp_path_factory):
    """A clustered synthetic corpus persisted as a real v4 shard index —
    workers re-open it from disk, so unlike bench_query this one must
    exist on disk."""
    rng = np.random.default_rng(SEED)
    families = max(8, N // 100)
    centers = rng.standard_normal((families, HIDDEN))
    labels = rng.integers(0, families, size=N)
    rows = unit_rows_f32(
        centers[labels] + 0.15 * rng.standard_normal((N, HIDDEN)))

    root = tmp_path_factory.mktemp("serve_idx")
    per = max(1, N // SHARDS)
    specs = []
    for i in range(SHARDS):
        stop = N if i == SHARDS - 1 else min(N, (i + 1) * per)
        start = min(N, i * per)
        specs.append(write_shard(root, i, rows[start:stop]))
    entries = [{"name": f"d{i:06d}", "path": f"d{i:06d}.v",
                "key": f"{i:064d}", "design": f"fam{labels[i]}",
                "status": "ok"} for i in range(N)]
    table = [{"kind": "design", "name": f"d{i:06d}"} for i in range(N)]
    n_clusters = max(16, min(1024, int(round(4 * N ** 0.5))))
    ivf = IVFIndex.fit(rows, n_clusters=n_clusters, seed=SEED)
    ivf.save(root / ivf_filename(0))
    meta = {"version": FORMAT_VERSION, "model_hash": "bench",
            "options": {"top": None, "level": "rtl", "use_cache": False},
            "store": {"dtype": "float32", "hidden": HIDDEN,
                      "shards": specs},
            "entries": entries, "rows": table,
            "ivf": {"file": ivf_filename(0), "clusters": n_clusters}}
    (root / "meta.json").write_text(json.dumps(meta))

    picks = rng.choice(N, size=max(REQUESTS, IDENTITY_SUSPECTS),
                       replace=False)
    suspects = unit_rows_f32(
        rows[picks] + 0.05 * rng.standard_normal((len(picks), HIDDEN)))
    return root, [[float(v) for v in s] for s in suspects]


async def _sustained_load(client, suspects):
    """Fire ``REQUESTS`` single-suspect queries with at most
    ``CONCURRENCY`` in flight; per-request client-side latencies."""
    semaphore = asyncio.Semaphore(CONCURRENCY)
    latencies = []

    async def one(vector):
        async with semaphore:
            start = time.perf_counter()
            await client.query(vectors=[vector], k=10)
            latencies.append(time.perf_counter() - start)

    wall_start = time.perf_counter()
    await asyncio.gather(*[one(suspects[i % len(suspects)])
                           for i in range(REQUESTS)])
    wall = time.perf_counter() - wall_start
    return wall, latencies


def _drive(root, workers, suspects):
    """One configuration: start, identity sample, sustained load, stats."""

    async def scenario():
        server = ReproServer(Session(corpus=Corpus.open(root)), port=0,
                             workers=workers)
        await server.start()
        client = AsyncClient(port=server.port)
        try:
            sample = {}
            for name, kwargs in (("exact", {"exact": True}),
                                 ("ivf", {"nprobe": 8}), ("default", {})):
                outs = await asyncio.gather(*[
                    client.query(vectors=[s], k=10, **kwargs)
                    for s in suspects[:IDENTITY_SUSPECTS]])
                sample[name] = [out["results"] for out in outs]

            await _sustained_load(client, suspects)  # warmup
            wall, latencies = await _sustained_load(client, suspects)
            stats = await client.stats()
            return sample, wall, latencies, stats
        finally:
            await client.close()
            await server.stop()

    return asyncio.run(scenario())


def _p99(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def bench_scatter_gather_scaling(disk_index):
    """N-worker serving must be bit-identical and scale horizontally."""
    root, suspects = disk_index

    configs = {}
    for workers in (0, 1, WORKERS):
        configs[workers] = _drive(root, workers, suspects)

    # Bit-identity across every configuration, every query path —
    # enforced at any scale, this is the merge's correctness claim.
    inproc_sample = configs[0][0]
    for workers in (1, WORKERS):
        assert configs[workers][0] == inproc_sample, \
            f"{workers}-worker results diverged from in-process serving"

    throughput = {w: REQUESTS / configs[w][1] for w in configs}
    p99 = {w: _p99(configs[w][2]) for w in configs}
    scaling = throughput[WORKERS] / throughput[1]
    pooled_stats = configs[WORKERS][3]
    worker_rows = [w["rows"] for w
                   in pooled_stats["serving"]["worker_rows"]]
    batch_mean = pooled_stats["batch_jobs"]["mean"]
    floors = _assert_floors()

    lines = [
        f"corpus: {N} rows x {HIDDEN}, {SHARDS} shards; "
        f"{REQUESTS} requests @ concurrency {CONCURRENCY}",
        f"rows per worker ({WORKERS}w): {worker_rows}",
        f"in-process:  {throughput[0]:8.1f} req/s   "
        f"p99 {p99[0] * 1000:7.1f} ms",
        f"1 worker:    {throughput[1]:8.1f} req/s   "
        f"p99 {p99[1] * 1000:7.1f} ms",
        f"{WORKERS} workers:   {throughput[WORKERS]:8.1f} req/s   "
        f"p99 {p99[WORKERS] * 1000:7.1f} ms",
        f"scaling:     {scaling:8.2f}x over 1 worker "
        f"(required: >= {SCALING_FLOOR:.1f}x)",
        f"p99 ceiling: {P99_CEILING_S * 1000:8.1f} ms "
        f"({WORKERS}-worker, sustained)",
        f"mean jobs per micro-batch ({WORKERS}w): {batch_mean:.1f}",
        "bit-identical across configurations: True",
        f"floors enforced: {floors} "
        f"(needs >= {FLOORS_MIN_ROWS} rows and >= {WORKERS} cores; "
        f"host has {os.cpu_count()})",
    ]
    report("serve_scatter_gather", "\n".join(lines))
    _merge_json({
        "rows": N, "hidden": HIDDEN, "shards": SHARDS,
        "workers": WORKERS, "requests": REQUESTS,
        "concurrency": CONCURRENCY, "cpu_count": os.cpu_count(),
        "rows_per_worker": worker_rows,
        "throughput_inprocess_rps": throughput[0],
        "throughput_1worker_rps": throughput[1],
        "throughput_nworker_rps": throughput[WORKERS],
        "p99_inprocess_seconds": p99[0],
        "p99_1worker_seconds": p99[1],
        "p99_nworker_seconds": p99[WORKERS],
        "scaling_over_1worker": scaling,
        "scaling_floor": SCALING_FLOOR,
        "p99_ceiling_seconds": P99_CEILING_S,
        "mean_jobs_per_batch": batch_mean,
        "bit_identical": True,
        "timing_floors_enforced": floors,
    })
    if floors:
        assert scaling >= SCALING_FLOOR, \
            f"{WORKERS}-worker serving only {scaling:.2f}x a single " \
            f"worker (floor {SCALING_FLOOR:.1f}x)"
        assert p99[WORKERS] <= P99_CEILING_S, \
            f"{WORKERS}-worker p99 {p99[WORKERS] * 1000:.1f} ms over " \
            f"the {P99_CEILING_S * 1000:.0f} ms ceiling"


def bench_drain_under_load(disk_index):
    """Graceful drain: every request accepted before the drain gets a
    real answer; the drain itself stays fast (no request is stranded
    waiting on dead workers)."""
    root, suspects = disk_index

    async def scenario():
        server = ReproServer(Session(corpus=Corpus.open(root)), port=0,
                             workers=min(2, WORKERS))
        await server.start()
        client = AsyncClient(port=server.port)
        inflight = [
            asyncio.create_task(client.query(vectors=[suspects[i]], k=5))
            for i in range(8)]
        while server.inflight == 0 and not all(t.done() for t in inflight):
            await asyncio.sleep(0.001)
        drain_start = time.perf_counter()
        await server.drain(timeout=30)
        drain_seconds = time.perf_counter() - drain_start
        answered = 0
        for task in inflight:
            try:
                out = await task
                assert out["results"][0]["matches"]
                answered += 1
            except Exception:
                # Requests that had not been parsed when the listener
                # closed are the client's to retry; parsed ones must
                # all have been answered (checked below).
                pass
        await client.close()
        return answered, drain_seconds

    answered, drain_seconds = asyncio.run(scenario())
    lines = [f"in-flight at SIGTERM: 8 requests, answered: {answered}",
             f"drain wall time: {drain_seconds * 1000:.1f} ms "
             f"(timeout 30 s)"]
    report("serve_drain", "\n".join(lines))
    _merge_json({"drain_inflight_answered": answered,
                 "drain_seconds": drain_seconds})
    assert answered >= 1, "drain stranded every in-flight request"
    assert drain_seconds < 30, "drain hit its timeout"
