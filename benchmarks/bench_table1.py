"""Table I + Fig. 4(a): piracy-detection accuracy and per-sample timing.

Paper reference values (their private corpus, two-GPU box):

    Dataset  size   graphs  accuracy  train/sample  test/sample
    RTL      75855  390     97.21 %   0.577 ms      0.566 ms
    Netlist  9870   143     94.61 %   5.999 ms      5.918 ms

plus the confusion matrices of Fig. 4(a).  We report the same rows on the
generated corpora; the shape that must reproduce: high accuracy on both
datasets, netlist slower per sample than RTL (its DFGs are larger).
"""

from conftest import report
from repro.analysis import score_distribution_text


def _table_row(name, dataset, history, result, config_epochs):
    train_pairs = len(dataset.train_pairs)
    train_per_sample = history["train_seconds"] / max(
        train_pairs * config_epochs, 1)
    test_per_sample = result["seconds_per_pair"]
    summary = dataset.summary()
    return (f"{name:8s} {summary['pairs']:7d} {summary['graphs']:7d} "
            f"{result['accuracy'] * 100:8.2f}% "
            f"{train_per_sample * 1000:10.3f} ms "
            f"{test_per_sample * 1000:10.3f} ms")


def bench_table1_rtl(benchmark, rtl_dataset, rtl_trained, config):
    model, trainer, history = rtl_trained
    result = trainer.test(rtl_dataset)

    # Benchmark the per-pair inference path (embed two graphs + cosine).
    record_a = rtl_dataset.records[0]
    record_b = rtl_dataset.records[1]
    benchmark(model.similarity, record_a.graph, record_b.graph)

    lines = ["Dataset    pairs  graphs  accuracy  train/sample  test/sample",
             _table_row("RTL", rtl_dataset, history, result,
                        config.rtl_epochs),
             "",
             "Fig 4(a) RTL confusion matrix:",
             result["confusion"].as_text(),
             "",
             f"delta = {model.delta:+.4f}",
             f"false-negative rate = {result['false_negative_rate']:.4f}",
             f"paper: accuracy 97.21%, FNR 6.65e-4",
             "",
             score_distribution_text(result["similarities"],
                                     result["labels"], model.delta)]
    report("table1_rtl", "\n".join(lines))
    labels = result["labels"]
    majority = max(sum(labels), len(labels) - sum(labels)) / len(labels)
    assert result["accuracy"] >= majority + 0.05, \
        f"accuracy {result['accuracy']:.3f} vs majority {majority:.3f}"


def bench_table1_netlist(benchmark, netlist_dataset, netlist_trained,
                         config):
    model, trainer, history = netlist_trained
    result = trainer.test(netlist_dataset)

    record_a = netlist_dataset.records[0]
    record_b = netlist_dataset.records[1]
    benchmark(model.similarity, record_a.graph, record_b.graph)

    lines = ["Dataset    pairs  graphs  accuracy  train/sample  test/sample",
             _table_row("Netlist", netlist_dataset, history, result,
                        config.netlist_epochs),
             "",
             "Fig 4(a) netlist confusion matrix:",
             result["confusion"].as_text(),
             "",
             f"delta = {model.delta:+.4f}",
             f"false-negative rate = {result['false_negative_rate']:.4f}",
             f"paper: accuracy 94.61%, FNR 0.0",
             "",
             score_distribution_text(result["similarities"],
                                     result["labels"], model.delta)]
    report("table1_netlist", "\n".join(lines))
    labels = result["labels"]
    majority = max(sum(labels), len(labels) - sum(labels)) / len(labels)
    assert result["accuracy"] >= majority, \
        f"accuracy {result['accuracy']:.3f} vs majority {majority:.3f}"


def bench_table1_timing_shape(rtl_dataset, netlist_dataset, rtl_trained,
                              benchmark):
    """Netlist inference must be slower per sample than RTL (bigger DFGs)."""
    model, _, _ = rtl_trained
    import time

    def time_pairs(dataset, pairs=10):
        start = time.perf_counter()
        for i, j, _ in dataset.test_pairs[:pairs]:
            model.similarity(dataset.records[i].graph,
                             dataset.records[j].graph)
        return (time.perf_counter() - start) / pairs

    rtl_time = time_pairs(rtl_dataset)
    netlist_time = time_pairs(netlist_dataset)
    benchmark(time_pairs, rtl_dataset, 2)
    rtl_nodes = sum(len(r.graph) for r in rtl_dataset.records) / \
        len(rtl_dataset.records)
    netlist_nodes = sum(len(r.graph) for r in netlist_dataset.records) / \
        len(netlist_dataset.records)
    lines = [f"mean RTL DFG nodes:     {rtl_nodes:8.1f}",
             f"mean netlist DFG nodes: {netlist_nodes:8.1f}",
             f"RTL inference / pair:     {rtl_time * 1000:8.3f} ms",
             f"netlist inference / pair: {netlist_time * 1000:8.3f} ms",
             "paper shape: netlist DFGs larger => netlist timing slower"]
    report("table1_timing_shape", "\n".join(lines))
    assert netlist_nodes > rtl_nodes
    assert netlist_time > rtl_time
