"""Streaming-ingest benchmark: memory, worker scaling, kill-and-resume.

Three production claims from the ingest pipeline are measured and
enforced (see ``repro.index.ingest``):

- **Flat peak memory** — streaming ingest flushes embedding rows to
  shards in bounded batches instead of holding every graph until the
  end, so its peak RSS must stay under half of the one-shot
  ``build_index`` peak *or* under an absolute cap (at reduced corpus
  sizes the interpreter baseline dominates both numbers and the ratio
  is meaningless; at ``REPRO_BENCH_FULL=1`` scale the ratio bites).
- **Worker scaling** — with >= 4 usable cores, multi-worker ingest must
  embed at >= 2x the single-worker rows/sec.  On smaller machines the
  multiprocess path still runs and the ratio is only reported.
- **Kill-and-resume equivalence** — an ingest SIGKILLed mid-stream
  (a real kill -9, after at least one durable flush) must resume from
  its checkpoint and produce an index whose top-k query results are
  identical to an uninterrupted run: same names, scores within float32
  epsilon.

Corpus size defaults to 1200 designs (CI scale); set
``REPRO_BENCH_INGEST_N`` to override, or ``REPRO_BENCH_FULL=1`` for the
20k-design paper-scale run.  Results land in
``benchmarks/out/bench_ingest.json``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from conftest import FULL, OUT_DIR, report
from repro.dataflow import dfg_from_verilog
from repro.designs import materialize_corpus
from repro.index import IngestConfig, ingest_corpus
from repro.index.ingest import CHECKPOINT_NAME

N_DESIGNS = int(os.environ.get("REPRO_BENCH_INGEST_N",
                               20_000 if FULL else 1200))
#: Streaming peak RSS must stay under this even when the ratio test is
#: moot (reduced corpora, where the interpreter baseline dominates).
ABS_RSS_CAP_MB = 512
#: Single-module families: replicas are stamped out by renaming the one
#: top module, which multi-module designs would break.
FAMILIES = ("adder8", "addsub8", "cmp8", "mux8", "barrel8", "counter8",
            "lfsr8", "crc8")
SEED = 2

#: Subprocess runner: performs one build or ingest and reports its own
#: peak RSS + throughput as JSON on stdout.  RSS must be measured in a
#: separate process per run — ru_maxrss is a process-lifetime high-water
#: mark and never goes back down.
RUNNER = """
import json, resource, sys
from pathlib import Path

mode, root, listfile = sys.argv[1], sys.argv[2], sys.argv[3]
jobs, flush_rows, seed = (int(a) for a in sys.argv[4:7])
paths = json.loads(Path(listfile).read_text())

from repro.core import GNN4IP
if mode == "build":
    from repro.index import build_index
    index, rep = build_index(root, paths, GNN4IP(seed=seed), jobs=jobs,
                             use_cache=False)
    wall = rep["extract_seconds"] + rep["embed_seconds"]
    rows = rep["embedded"] + rep["chunk_rows"]
else:
    from repro.index import IngestConfig, ingest_corpus
    index, rep = ingest_corpus(
        root, paths, GNN4IP(seed=seed),
        IngestConfig(jobs=jobs, flush_rows=flush_rows, use_cache=False))
    wall = rep["ingest"]["wall_seconds"]
    rows = rep["ingest"]["session_rows"]
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"peak_rss_mb": peak_kb / 1024.0,
                  "wall_seconds": wall, "rows": rows,
                  "rows_per_sec": rows / max(wall, 1e-9),
                  "embedded": rep["embedded"]}))
"""

#: Kill-and-resume victim: a plain streaming ingest the parent will
#: SIGKILL mid-run (no cooperation — the checkpoint protocol is what is
#: under test).
VICTIM = """
import json, sys
from pathlib import Path

root, listfile = sys.argv[1], sys.argv[2]
flush_rows, seed = int(sys.argv[3]), int(sys.argv[4])
paths = json.loads(Path(listfile).read_text())

from repro.core import GNN4IP
from repro.index import IngestConfig, ingest_corpus
ingest_corpus(root, paths, GNN4IP(seed=seed),
              IngestConfig(jobs=1, flush_rows=flush_rows,
                           use_cache=False))
"""


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _subprocess_env():
    env = dict(os.environ)
    src = str(OUT_DIR.parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_script(script, args, **popen_kwargs):
    out = subprocess.run([sys.executable, "-c", script, *args],
                         env=_subprocess_env(), capture_output=True,
                         text=True, **popen_kwargs)
    assert out.returncode == 0, f"subprocess failed:\n{out.stderr}"
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """N synthetic designs: unique base instances from the generator,
    replicated with unique module names (the cache is off in every run,
    so replicas cost full extract+embed like distinct designs)."""
    root = tmp_path_factory.mktemp("ingest_corpus")
    base = [p.read_text() for p in
            materialize_corpus(root / "base", families=list(FAMILIES),
                               instances_per_design=4, seed=SEED)]
    corpus_dir = root / "designs"
    corpus_dir.mkdir()
    paths = []
    for i in range(N_DESIGNS):
        text = base[i % len(base)]
        name = re.search(r"module\s+(\w+)", text).group(1)
        path = corpus_dir / f"d{i:05d}.v"
        path.write_text(re.sub(rf"\b{name}\b", f"{name}_r{i}", text))
        paths.append(str(path))
    return paths


@pytest.fixture(scope="module")
def listfile(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("ingest_lists") / "corpus.json"
    path.write_text(json.dumps(corpus))
    return str(path)


def _merge_out(payload):
    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "bench_ingest.json"
    existing = json.loads(out_path.read_text()) if out_path.exists() \
        else {}
    existing.update(payload)
    with open(out_path, "w") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)


def bench_ingest_peak_rss(corpus, listfile, tmp_path_factory):
    """Streaming peak RSS: <= 0.5x one-shot, or under the absolute cap."""
    roots = tmp_path_factory.mktemp("rss_roots")
    one_shot = _run_script(RUNNER, ["build", str(roots / "oneshot"),
                                    listfile, "1", "0", str(SEED)])
    streaming = _run_script(RUNNER, ["ingest", str(roots / "stream"),
                                     listfile, "1", "2048", str(SEED)])
    ratio = streaming["peak_rss_mb"] / max(one_shot["peak_rss_mb"], 1e-9)
    lines = [f"designs: {len(corpus)} (REPRO_BENCH_INGEST_N)",
             f"one-shot build peak RSS: {one_shot['peak_rss_mb']:8.1f} MB "
             f"({one_shot['wall_seconds']:.1f}s)",
             f"streaming ingest peak:   "
             f"{streaming['peak_rss_mb']:8.1f} MB "
             f"({streaming['wall_seconds']:.1f}s)",
             f"ratio: {ratio:.2f}x "
             f"(required: <= 0.5x or <= {ABS_RSS_CAP_MB} MB absolute)"]
    report("ingest_peak_rss", "\n".join(lines))
    _merge_out({"designs": len(corpus),
                "one_shot_peak_rss_mb": one_shot["peak_rss_mb"],
                "streaming_peak_rss_mb": streaming["peak_rss_mb"],
                "one_shot_wall_seconds": one_shot["wall_seconds"],
                "streaming_wall_seconds": streaming["wall_seconds"],
                "streaming_rows_per_sec": streaming["rows_per_sec"],
                "rss_ratio": ratio})
    assert (ratio <= 0.5
            or streaming["peak_rss_mb"] <= ABS_RSS_CAP_MB), \
        (f"streaming ingest peaked at {streaming['peak_rss_mb']:.0f} MB "
         f"({ratio:.2f}x one-shot) — neither bound holds")


def bench_ingest_worker_scaling(corpus, listfile, tmp_path_factory):
    """Multi-worker rows/sec vs single-worker (enforced >= 2x when the
    machine has >= 4 usable cores; reported otherwise)."""
    cores = _usable_cores()
    workers = max(2, min(4, cores))
    roots = tmp_path_factory.mktemp("scaling_roots")
    single = _run_script(RUNNER, ["ingest", str(roots / "w1"), listfile,
                                  "1", "2048", str(SEED)])
    multi = _run_script(RUNNER, ["ingest", str(roots / "wN"), listfile,
                                 str(workers), "2048", str(SEED)])
    speedup = multi["rows_per_sec"] / max(single["rows_per_sec"], 1e-9)
    enforced = cores >= 4
    lines = [f"designs: {len(corpus)}, usable cores: {cores}",
             f"jobs=1:         {single['rows_per_sec']:8.0f} rows/s "
             f"({single['wall_seconds']:.1f}s)",
             f"jobs={workers}:         {multi['rows_per_sec']:8.0f} "
             f"rows/s ({multi['wall_seconds']:.1f}s)",
             f"speedup:        {speedup:8.2f}x "
             f"({'required: >= 2x' if enforced else 'not enforced: < 4 cores'})"]
    report("ingest_worker_scaling", "\n".join(lines))
    _merge_out({"cores": cores, "workers": workers,
                "single_rows_per_sec": single["rows_per_sec"],
                "multi_rows_per_sec": multi["rows_per_sec"],
                "worker_speedup": speedup,
                "scaling_enforced": enforced})
    assert multi["embedded"] == single["embedded"] == len(corpus)
    if enforced:
        assert speedup >= 2.0, \
            (f"{workers} workers only {speedup:.2f}x faster than one "
             f"on {cores} cores")


def bench_ingest_kill_and_resume(corpus, tmp_path_factory):
    """kill -9 mid-ingest, resume, and match the uninterrupted index."""
    n_kill = min(len(corpus), 600)
    subset = corpus[:n_kill]
    work = tmp_path_factory.mktemp("kill_resume")
    listfile = work / "subset.json"
    listfile.write_text(json.dumps(subset))
    flush_rows = 64

    # The victim runs in its own process group so the kill cannot leak
    # to the test runner; SIGKILL means no atexit, no cleanup — only
    # the bytes already fsynced survive, exactly the crash being tested.
    victim_root = work / "killed"
    victim = subprocess.Popen(
        [sys.executable, "-c", VICTIM, str(victim_root), str(listfile),
         str(flush_rows), str(SEED)],
        env=_subprocess_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    checkpoint_path = victim_root / CHECKPOINT_NAME
    killed_at = None
    deadline = time.monotonic() + 300
    try:
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                pytest.fail("victim finished before it could be killed "
                            f"(stderr: {victim.stderr.read()[-500:]})")
            try:
                done = json.loads(
                    checkpoint_path.read_text())["completed"]
            except (OSError, json.JSONDecodeError, KeyError):
                done = 0  # not yet flushed / mid-rename: keep polling
            if 0 < done < n_kill:
                killed_at = done
                os.killpg(victim.pid, signal.SIGKILL)
                break
            time.sleep(0.01)
    finally:
        if victim.poll() is None and killed_at is None:
            os.killpg(victim.pid, signal.SIGKILL)
        victim.wait()
    assert killed_at is not None, "never saw a checkpoint to kill after"
    assert checkpoint_path.is_file()

    resume_start = time.monotonic()
    resumed_index, resume_report = ingest_corpus(
        victim_root, subset,
        config=IngestConfig(jobs=1, flush_rows=flush_rows))
    resume_seconds = time.monotonic() - resume_start
    assert resume_report["ingest"]["resumed"] is True
    # Resume continued from the checkpoint instead of starting over.
    assert resume_report["ingest"]["session_designs"] <= \
        n_kill - killed_at + flush_rows

    from repro.core import GNN4IP
    uninterrupted, _ = ingest_corpus(
        work / "onego", subset, GNN4IP(seed=SEED),
        IngestConfig(jobs=1, flush_rows=flush_rows, use_cache=False))

    model = resumed_index.model()
    suspects = [open(subset[i]).read()
                for i in range(0, n_kill, max(1, n_kill // 5))][:5]
    max_delta = 0.0
    for text in suspects:
        graph = dfg_from_verilog(text)
        got = resumed_index.query_graph(graph, model, k=10)
        want = uninterrupted.query_graph(graph, model, k=10)
        assert [h.name for h in got] == [h.name for h in want]
        deltas = np.abs(np.array([h.score for h in got])
                        - np.array([h.score for h in want]))
        max_delta = max(max_delta, float(deltas.max()))
        assert max_delta <= 2e-6

    lines = [f"designs: {n_kill}, flush_rows: {flush_rows}",
             f"SIGKILLed after {killed_at} checkpointed designs",
             f"resume finished {resume_report['ingest']['session_designs']}"
             f" remaining designs in {resume_seconds:.1f}s",
             f"top-10 names identical on {len(suspects)} probes, "
             f"max |score delta| = {max_delta:.2e} (required <= 2e-6)"]
    report("ingest_kill_and_resume", "\n".join(lines))
    _merge_out({"kill_designs": n_kill, "killed_at": killed_at,
                "resume_session_designs":
                    resume_report["ingest"]["session_designs"],
                "resume_seconds": resume_seconds,
                "max_score_delta": max_delta,
                "probes": len(suspects)})
