"""Ablations over the design choices the paper fixes in §IV.

The paper fixes: 2 GCN layers x 16 hidden units, pooling ratio 0.5, max
readout, dropout 0.1.  These benches sweep each knob on the RTL corpus and
also measure the embed-once-pair-many training optimization documented in
DESIGN.md.
"""

import time

import numpy as np

from conftest import report
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.designs import rtl_records

_ABLATION_FAMILIES = ("adder8", "cmp8", "mux8", "counter8", "lfsr8",
                      "crc8", "alu", "rs232")
_EPOCHS = 12


def _make_dataset(seed=0):
    records = rtl_records(families=_ABLATION_FAMILIES,
                          instances_per_design=4, seed=seed)
    return build_pair_dataset(records, seed=seed, max_negative_ratio=3.5)


def _run(dataset, **model_kwargs):
    model = GNN4IP(seed=0, **model_kwargs)
    trainer = Trainer(model, seed=0)
    start = time.perf_counter()
    trainer.fit(dataset, epochs=_EPOCHS)
    elapsed = time.perf_counter() - start
    result = trainer.test(dataset)
    return result["accuracy"], elapsed


def bench_ablation_readout(benchmark):
    dataset = _make_dataset()
    rows = []
    for mode in ("max", "mean", "sum"):
        accuracy, elapsed = _run(dataset, readout=mode)
        rows.append(f"  readout={mode:5s} accuracy={accuracy * 100:6.2f}% "
                    f"({elapsed:5.1f}s)")
    benchmark(_run, dataset, readout="max")
    report("ablation_readout", "\n".join(
        ["readout aggregation (paper uses max):"] + rows))


def bench_ablation_pool_ratio(benchmark):
    dataset = _make_dataset()
    rows = []
    for ratio in (0.25, 0.5, 0.75, 1.0):
        accuracy, elapsed = _run(dataset, pool_ratio=ratio)
        rows.append(f"  ratio={ratio:4.2f} accuracy={accuracy * 100:6.2f}% "
                    f"({elapsed:5.1f}s)")
    benchmark(_run, dataset, pool_ratio=0.5)
    report("ablation_pool_ratio", "\n".join(
        ["SAGPool keep ratio (paper uses 0.5):"] + rows))


def bench_ablation_depth_width(benchmark):
    dataset = _make_dataset()
    rows = []
    for layers, hidden in ((1, 16), (2, 16), (3, 16), (2, 8), (2, 32)):
        accuracy, elapsed = _run(dataset, num_layers=layers, hidden=hidden)
        rows.append(f"  layers={layers} hidden={hidden:2d} "
                    f"accuracy={accuracy * 100:6.2f}% ({elapsed:5.1f}s)")
    benchmark(_run, dataset, num_layers=2, hidden=16)
    report("ablation_depth_width", "\n".join(
        ["GCN depth/width (paper uses 2 x 16):"] + rows))


def bench_ablation_embed_once_speedup(benchmark):
    """Measure the shared-embedding optimization against naive pairing.

    Naive training embeds both graphs of every pair; the trainer embeds
    each distinct graph in a batch once.  The ratio grows with pair/graph
    density, and the gradients are identical (verified in the test suite).
    """
    dataset = _make_dataset()
    trainer = Trainer(GNN4IP(seed=0), seed=0)
    trainer._prepare_all(dataset)

    start = time.perf_counter()
    trainer.train_epoch(dataset, 0)
    shared = time.perf_counter() - start

    # Naive cost model: one forward+backward per *pair member* rather than
    # per unique graph; measured by embedding that many graphs.
    from repro.core.dataset import batches as batch_iter
    encoder = trainer.model.encoder
    encoder.train()
    naive_embeds = 0
    start = time.perf_counter()
    for batch in batch_iter(dataset.train_pairs, trainer.batch_size, seed=0):
        for i, j, _ in batch:
            encoder(trainer._prepared[i])
            encoder(trainer._prepared[j])
            naive_embeds += 2
        break  # one batch is enough to extrapolate the per-embed cost
    per_embed = (time.perf_counter() - start) / naive_embeds
    naive_estimate = per_embed * 2 * len(dataset.train_pairs)

    benchmark(trainer.train_epoch, dataset, 1)
    lines = [
        f"train pairs: {len(dataset.train_pairs)}, unique graphs: "
        f"{dataset.num_graphs}",
        f"embed-once epoch time:        {shared:7.2f} s",
        f"naive per-pair estimate:      {naive_estimate:7.2f} s "
        f"(forward only)",
        f"speedup (lower bound):        {naive_estimate / shared:7.1f}x",
    ]
    report("ablation_embed_once", "\n".join(lines))
    assert naive_estimate > shared
