"""Calibration-quality floors: the decision subsystem in CI.

The detection benchmarks (``bench_eval``) gate *ranking* quality; this
one gates the **decision layer**: after the out-of-fold calibration
pass, the reported probabilities must be honest (low expected
calibration error) and the calibrated operating point must actually
separate pirated suspects from the never-indexed impostor pool:

- **ECE <= 0.10** — a suspect reported at probability p is pirated
  about p of the time (10 equal-width reliability bins).
- **F1 >= 0.80** at the calibrated operating point, with both error
  rates bounded: **FPR <= 0.20** and **FNR <= 0.20**.  The operating
  threshold minimizes max(FPR, FNR) on the *fit* folds only, so these
  are honest held-out numbers.

The run also fits and persists a real ``calibration.json`` artifact
from the same index (``gnn4ip calibrate``'s code path) and copies it to
``benchmarks/out/`` so CI uploads both the metrics
(``bench_calibration.json``) and the artifact itself.

``REPRO_BENCH_FULL=1`` scales instances and epochs up; the default is
the CI smoke configuration.
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

from conftest import FULL, OUT_DIR, report
from repro.api import Session
from repro.calib import ARTIFACT_NAME
from repro.eval import EvalConfig, run_evaluation

#: Enforced ceilings/floors on the out-of-fold calibrated decisions.
ECE_CEILING = 0.10
F1_FLOOR = 0.80
FPR_CEILING = 0.20
FNR_CEILING = 0.20


def bench_calibration_quality():
    config = (EvalConfig(corpus_instances=5, suspects_per_design=3,
                         train_instances=6, epochs=120)
              if FULL else EvalConfig())
    workdir = Path(tempfile.mkdtemp(prefix="gnn4ip-bench-calib-"))
    try:
        start = time.time()
        result = run_evaluation(config, workdir=workdir)
        eval_seconds = time.time() - start

        data = result.as_dict()
        calibration = data["overall"].get("calibration") or {}
        assert "skipped" not in calibration, \
            f"calibration pass skipped: {calibration.get('skipped')}"

        # Fit + persist the deployable artifact from the same index
        # (exactly what ``gnn4ip calibrate`` does), so CI uploads a
        # real calibration.json next to the metrics.
        fit_start = time.time()
        session = Session.open(workdir / "index")
        artifact = session.calibrate(config=config, bootstrap=16)
        fit_seconds = time.time() - fit_start
        OUT_DIR.mkdir(exist_ok=True)
        shutil.copy(workdir / "index" / ARTIFACT_NAME,
                    OUT_DIR / ARTIFACT_NAME)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "floors": {"ece_ceiling": ECE_CEILING, "f1_floor": F1_FLOOR,
                   "fpr_ceiling": FPR_CEILING,
                   "fnr_ceiling": FNR_CEILING},
        "calibration": {k: calibration.get(k) for k in
                        ("method", "folds", "suspects", "positives",
                         "negatives", "ece", "f1", "fpr", "fnr",
                         "confusion", "mean_operating_threshold")},
        "reliability_bins": calibration.get("reliability_bins"),
        "artifact": artifact.describe(),
        "eval_seconds": eval_seconds,
        "fit_seconds": fit_seconds,
        "full": FULL,
    }
    with open(OUT_DIR / "bench_calibration.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    lines = [
        f"suspects {calibration.get('suspects')} "
        f"({calibration.get('positives')} pirated / "
        f"{calibration.get('negatives')} impostor), "
        f"{calibration.get('folds')}-fold out-of-fold",
        f"ece {calibration.get('ece'):.4f}  (ceiling {ECE_CEILING})",
        f"f1  {calibration.get('f1'):.4f}  (floor {F1_FLOOR})",
        f"fpr {calibration.get('fpr'):.4f}  fnr "
        f"{calibration.get('fnr'):.4f}  (ceilings {FPR_CEILING})",
        f"artifact tiers: {', '.join(artifact.describe()['tiers'])}  "
        f"match threshold {artifact.match.threshold:.3f}",
        f"eval {eval_seconds:.1f}s  artifact fit {fit_seconds:.1f}s",
    ]
    report("bench_calibration", "\n".join(lines))

    failures = []
    if calibration.get("ece") is None \
            or calibration["ece"] > ECE_CEILING:
        failures.append(f"ece = {calibration.get('ece')} "
                        f"> {ECE_CEILING}")
    if calibration.get("f1") is None or calibration["f1"] < F1_FLOOR:
        failures.append(f"f1 = {calibration.get('f1')} < {F1_FLOOR}")
    if calibration.get("fpr") is None \
            or calibration["fpr"] > FPR_CEILING:
        failures.append(f"fpr = {calibration.get('fpr')} "
                        f"> {FPR_CEILING}")
    if calibration.get("fnr") is None \
            or calibration["fnr"] > FNR_CEILING:
        failures.append(f"fnr = {calibration.get('fnr')} "
                        f"> {FNR_CEILING}")
    assert not failures, \
        "calibration floors broken: " + "; ".join(failures)
