"""Obfuscation resilience (the paper's §IV-E, Table III scenario).

A gate-level ALU netlist is obfuscated with behaviour-preserving rewrites
(inverter pairs, gate decomposition, De Morgan restructuring, renaming).
The example verifies the rewrites preserve behaviour via random-vector
equivalence checking, then shows a trained GNN4IP still scores the
obfuscated copies as the same IP while scoring other circuits low.

Run:  python examples/obfuscation_resilience.py
"""

from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.designs import iscas_records, netlist_records
from repro.designs.iscas import iscas_netlist
from repro.obfuscate import obfuscate
from repro.sim import check_netlists_equivalent


def main():
    # --- 1. Obfuscate c880 (8-bit ALU) and verify equivalence -----------
    base = iscas_netlist("c880")
    print(f"c880: {base.num_gates} gates, "
          f"{len(base.inputs)} inputs, {len(base.outputs)} outputs")
    variants = []
    for seed in range(3):
        variant = obfuscate(base, seed=seed, strength=1)
        report = check_netlists_equivalent(base, variant, vectors=64,
                                           seed=seed)
        print(f"  obfuscated #{seed}: {variant.num_gates} gates "
              f"({variant.num_gates - base.num_gates:+d}), "
              f"equivalence check: "
              f"{'PASS' if report.equivalent else 'FAIL'}")
        variants.append(variant)

    # --- 2. Train GNN4IP on a netlist corpus ----------------------------
    print("\ntraining on a netlist corpus...")
    records = netlist_records(
        families=("adder8", "mult4", "cmp8", "prienc8", "barrel8",
                  "counter8", "lfsr8", "crc8"),
        instances_per_design=4, seed=0)
    records += iscas_records(names=["c432", "c880", "c1908"],
                             obfuscated_per_benchmark=3, seed=7,
                             strength=1)
    dataset = build_pair_dataset(records, seed=0, max_negative_ratio=3.5)
    model = GNN4IP(seed=0)
    trainer = Trainer(model, seed=0)
    trainer.fit(dataset, epochs=60)
    result = trainer.test(dataset)
    print(f"  held-out accuracy: {result['accuracy'] * 100:.2f}%")

    # --- 3. Score the fresh obfuscated instances ------------------------
    from repro.dataflow import dfg_from_verilog
    from repro.netlist import write_netlist

    base_graph = dfg_from_verilog(write_netlist(base))
    print(f"\nc880 vs its obfuscated instances "
          f"(delta = {model.delta:+.3f}):")
    for index, variant in enumerate(variants):
        graph = dfg_from_verilog(write_netlist(variant))
        score = model.similarity(base_graph, graph)
        verdict = "same IP" if score > model.delta else "different"
        print(f"  instance #{index}: score {score:+.4f} -> {verdict}")

    other = dfg_from_verilog(write_netlist(iscas_netlist("c432")))
    cross = model.similarity(base_graph, other)
    print(f"\nc880 vs c432 (different design): {cross:+.4f} -> "
          f"{'same IP' if cross > model.delta else 'different'}")


if __name__ == "__main__":
    main()
