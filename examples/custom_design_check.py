"""Check two user-provided Verilog files for IP piracy.

Usage:
    python examples/custom_design_check.py [file_a.v file_b.v]

Without arguments, two demo files are written to a temp directory and
compared.  With arguments, your own files are compared — hierarchical
designs are flattened automatically, so multi-module files work.
"""

import sys
import tempfile
from pathlib import Path

from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.dataflow import DFGPipeline
from repro.designs import default_rtl_families, rtl_records

DEMO_A = """
// A small checksum engine.
module checksum(input clk, input rst, input [7:0] data_in,
                output reg [7:0] digest);
  always @(posedge clk) begin
    if (rst)
      digest <= 8'd0;
    else
      digest <= (digest ^ data_in) + {digest[6:0], 1'b0};
  end
endmodule
"""

DEMO_B = """
// The "same" engine after a rogue employee renamed everything and
// swapped some operands.
module hash_unit(input clk, input clear, input [7:0] word,
                 output reg [7:0] state);
  always @(posedge clk) begin
    if (clear)
      state <= 8'd0;
    else
      state <= {state[6:0], 1'b0} + (word ^ state);
  end
endmodule
"""


def main(argv):
    if len(argv) == 3:
        path_a, path_b = Path(argv[1]), Path(argv[2])
    else:
        tmp = Path(tempfile.mkdtemp(prefix="gnn4ip_demo_"))
        path_a = tmp / "original.v"
        path_b = tmp / "suspect.v"
        path_a.write_text(DEMO_A)
        path_b.write_text(DEMO_B)
        print(f"no files given; using demo designs in {tmp}\n")

    pipeline = DFGPipeline()
    graph_a = pipeline.extract_file(path_a)
    graph_b = pipeline.extract_file(path_b)
    print(f"{path_a.name}: {len(graph_a)} DFG nodes")
    print(f"{path_b.name}: {len(graph_b)} DFG nodes")

    print("\ntraining a reference model on the built-in corpus "
          "(one-time cost; use repro.cli save/load to persist)...")
    records = rtl_records(families=default_rtl_families()[:14],
                          instances_per_design=3, seed=0)
    dataset = build_pair_dataset(records, seed=0, max_negative_ratio=3.5)
    model = GNN4IP(seed=0)
    Trainer(model, seed=0).fit(dataset, epochs=40)

    score = model.similarity(graph_a, graph_b)
    print(f"\nsimilarity score: {score:+.4f}")
    print(f"decision boundary: {model.delta:+.4f}")
    if score > model.delta:
        print("verdict: PIRACY — the designs implement the same IP")
        return 2
    print("verdict: no piracy detected")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
