"""End-to-end smoke check for the HTTP detection service.

Builds a tiny index with the CLI, starts ``gnn4ip serve`` (via
``python -m repro``) as a real subprocess on an ephemeral port, runs one
multi-suspect ``/v1/query`` round trip plus a health check through
:mod:`repro.client`, and shuts the server down cleanly.  CI runs this as
the server smoke job; it also works standalone::

    python examples/server_smoke.py
"""

import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.client import Client

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = a + b;
endmodule
"""

MUX = """
module mux(input [7:0] d, input [2:0] sel, output q);
  assign q = d[sel];
endmodule
"""


def main():
    from repro.cli import main as cli

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        corpus = tmp / "corpus"
        corpus.mkdir()
        (corpus / "adder.v").write_text(ADDER)
        (corpus / "mux.v").write_text(MUX)
        index_dir = tmp / "idx"
        code = cli(["index", "build", str(index_dir), str(corpus),
                    "--allow-untrained", "--jobs", "1"])
        assert code == 0, f"index build failed with exit code {code}"

        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(index_dir),
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            port = None
            deadline = time.time() + 30
            while time.time() < deadline:
                line = server.stdout.readline()
                if not line:
                    break
                print(f"[serve] {line.rstrip()}")
                match = re.search(r"http://[^:]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port, "server never announced its port"

            client = Client("127.0.0.1", port)
            health = client.healthz()
            assert health["status"] == "ok", health
            assert health["designs"] == 2, health

            out = client.query(sources=[ADDER, MUX],
                               labels=["adder.v", "mux.v"], k=2)
            adder_result, mux_result = out["results"]
            top = adder_result["matches"][0]
            assert top["design"] == "adder" and top["rank"] == 1, out
            assert top["is_piracy"], out
            assert mux_result["matches"][0]["design"] == "mux", out
            print(f"round trip ok: {len(out['results'])} suspects ranked "
                  f"({out['serving']})")
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                code = server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                raise AssertionError("server ignored SIGTERM")
        assert code == 0, f"server exited with code {code}"
        print("clean shutdown ok")


if __name__ == "__main__":
    main()
