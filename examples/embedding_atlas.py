"""Embedding atlas: visualize hw2vec embeddings with PCA and t-SNE.

Reproduces Fig. 4(b,c)'s setting: many instances of two deliberately
similar processor designs (pipeline vs single-cycle MIPS), embedded and
projected to 2-D, rendered as ASCII scatter plots.

Run:  python examples/embedding_atlas.py
"""

import numpy as np

from repro.analysis import PCA, purity_with_2means, tsne_project
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.designs import mips_visualization_records, rtl_records


def ascii_scatter(points, labels, markers, width=64, height=20):
    points = np.asarray(points)
    mins, maxs = points.min(axis=0), points.max(axis=0)
    span = np.maximum(maxs - mins, 1e-9)
    canvas = [[" "] * width for _ in range(height)]
    for point, label in zip(points, labels):
        x = int((point[0] - mins[0]) / span[0] * (width - 1))
        y = int((point[1] - mins[1]) / span[1] * (height - 1))
        canvas[height - 1 - y][x] = markers[int(label)]
    return "\n".join("".join(row) for row in canvas)


def main():
    # Train on a general corpus so the encoder has seen processors.
    print("training encoder...")
    train_records = rtl_records(
        families=("adder8", "alu", "counter8", "crc8", "mips_single",
                  "mips_pipeline", "mips_multi", "rs232", "lfsr8", "mux8"),
        instances_per_design=4, seed=0)
    dataset = build_pair_dataset(train_records, seed=0,
                                 max_negative_ratio=3.5)
    model = GNN4IP(seed=0)
    Trainer(model, seed=0).fit(dataset, epochs=50)

    # Embed fresh instances of the two processors.
    print("embedding 2 x 12 fresh MIPS instances...")
    records = mips_visualization_records(instances_per_design=12, seed=21)
    labels = np.array([0 if r.design == "mips_pipeline" else 1
                       for r in records])
    embeddings = np.stack([model.encoder.embed(r.graph) for r in records])

    pca_points = PCA(2).fit_transform(embeddings)
    tsne_points = tsne_project(embeddings, 2, perplexity=8, seed=3,
                               n_iter=500)

    print("\nPCA projection ('P' = pipeline MIPS, 's' = single-cycle):")
    print(ascii_scatter(pca_points, labels, {0: "P", 1: "s"}))
    print(f"2-means purity: "
          f"{purity_with_2means(pca_points, labels) * 100:.1f}%")

    print("\nt-SNE projection:")
    print(ascii_scatter(tsne_points, labels, {0: "P", 1: "s"}))
    print(f"2-means purity: "
          f"{purity_with_2means(tsne_points, labels) * 100:.1f}%")


if __name__ == "__main__":
    main()
