"""Full IP-piracy detection workflow on a generated RTL corpus.

Scenario (the paper's threat model, §III-A): an IP vendor holds a corpus
of designs.  A suspect design arrives — actually a stolen, reworked copy
of the vendor's UART transmitter (signals renamed, statements reordered,
operands swapped).  GNN4IP is trained on the corpus and then judges the
suspect against every owned IP.

Run:  python examples/piracy_detection.py
"""

from repro.core import GNN4IP, IPMatcher, Trainer, build_pair_dataset
from repro.dataflow import dfg_from_verilog
from repro.designs import get_family, rtl_records
from repro.obfuscate import make_rtl_variant

CORPUS_FAMILIES = ("adder8", "cmp8", "mux8", "counter8", "lfsr8", "crc8",
                   "alu", "rs232", "uart_rx", "seqdet", "fifo4x8", "traffic")


def main():
    # --- 1. Build the vendor's corpus and train ------------------------
    print("generating corpus...")
    records = rtl_records(families=CORPUS_FAMILIES, instances_per_design=4,
                          seed=0)
    dataset = build_pair_dataset(records, test_fraction=0.2, seed=0,
                                 max_negative_ratio=3.5)
    summary = dataset.summary()
    print(f"  {summary['graphs']} instances, {summary['pairs']} pairs "
          f"({summary['similar_pairs']} similar)")

    model = GNN4IP(seed=0)
    trainer = Trainer(model, seed=0)
    print("training (60 epochs)...")
    history = trainer.fit(dataset, epochs=60, verbose=True, log_every=20)
    result = trainer.test(dataset)
    print(f"  held-out accuracy: {result['accuracy'] * 100:.2f}%  "
          f"delta={model.delta:+.3f}")

    # --- 2. The adversary reworks a stolen UART transmitter -------------
    original = get_family("rs232").generate(seed=99, style="counter_fsm",
                                            rewrite=False)
    stolen_text = make_rtl_variant(original.verilog, seed=1234)
    suspect = dfg_from_verilog(stolen_text, top=original.top)
    print("\nsuspect design: reworked copy of the UART TX "
          f"({len(suspect)} DFG nodes)")

    # --- 3. Sweep the IP library for matches -----------------------------
    matcher = IPMatcher(model)
    matcher.add_records(records)
    print(f"\n{'owned design':16s} {'best instance':28s} {'score':>8s}"
          f"  verdict")
    for match in matcher.piracy_report(suspect):
        verdict = "PIRACY" if match.is_piracy else "-"
        print(f"{match.design:16s} {match.instance:28s} "
              f"{match.score:+8.4f}  {verdict}")

    best_name, best_score = matcher.best_design(suspect)
    print(f"\nbest match: {best_name} (score {best_score:+.4f})")
    if best_name == "rs232":
        print("the stolen UART was correctly traced to its source IP")
    else:
        print("unexpected best match; try more training epochs")


if __name__ == "__main__":
    main()
