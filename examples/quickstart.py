"""Quickstart: the paper's Fig. 1 motivational example, end to end.

Two full adders with very different Verilog (behavioral vs gate-level)
are converted to data-flow graphs and scored for similarity, against a
third, unrelated circuit.

Run:  python examples/quickstart.py
"""

from repro.core import GNN4IP, GraphRecord, Trainer, build_pair_dataset
from repro.dataflow import dfg_from_verilog

ADDER_BEHAVIORAL = """
module ADDER(input Num1, input Num2, input Cin,
             output reg Sum, output reg Cout);
  always @(Num1, Num2, Cin) begin
    Sum <= ((Num1 ^ Num2) ^ Cin);
    Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
  end
endmodule
"""

ADDER_STRUCTURAL = """
module ADDER(Num1, Num2, Cin, Sum, Cout);
  input Num1, Num2, Cin;
  output Sum, Cout;
  wire t1, t2, t3;
  xor (t1, Num1, Num2);
  and (t2, Num1, Num2);
  and (t3, t1, Cin);
  xor (Sum, t1, Cin);
  or (Cout, t3, t2);
endmodule
"""

UNRELATED_MUX = """
module picker(input [3:0] d, input [1:0] sel, output reg y);
  always @(*) begin
    case (sel)
      2'd0: y = d[0];
      2'd1: y = d[1];
      2'd2: y = d[2];
      default: y = d[3];
    endcase
  end
endmodule
"""


def main():
    # 1. Extract DFGs (preprocess -> parse -> analyze -> merge -> trim).
    adder_a = dfg_from_verilog(ADDER_BEHAVIORAL)
    adder_b = dfg_from_verilog(ADDER_STRUCTURAL)
    mux = dfg_from_verilog(UNRELATED_MUX)
    for graph, title in ((adder_a, "behavioral adder"),
                         (adder_b, "structural adder"),
                         (mux, "unrelated mux")):
        stats = graph.stats()
        print(f"{title:18s} -> {stats['nodes']:3d} nodes, "
              f"{stats['edges']:3d} edges")

    # 2. Train a small GNN4IP model on labeled pairs.  A real corpus would
    #    be much larger (see examples/piracy_detection.py); three graphs
    #    are enough to illustrate the mechanics, so we train on all pairs
    #    instead of holding some out.
    records = [
        GraphRecord("adder", "adder_behavioral", adder_a),
        GraphRecord("adder", "adder_structural", adder_b),
        GraphRecord("mux", "mux_case", mux),
    ]
    from repro.core.dataset import PairDataset, make_pairs
    pairs = make_pairs(records)
    dataset = PairDataset(records=records, train_pairs=pairs,
                          test_pairs=pairs)
    model = GNN4IP(seed=0)
    trainer = Trainer(model, seed=0, lr=0.01)
    trainer.fit(dataset, epochs=150)

    # 3. Score pairs: the two adders are "different codes, same design".
    same = model.similarity(adder_a, adder_b)
    different = model.similarity(adder_a, mux)
    print(f"\nsimilarity(adder_a, adder_b) = {same:+.4f}")
    print(f"similarity(adder_a, mux)     = {different:+.4f}")
    print(f"decision boundary delta      = {model.delta:+.4f}")
    print(f"\nadder pair verdict: "
          f"{'PIRACY' if model.predict(adder_a, adder_b) else 'no piracy'}")
    print(f"mux pair verdict:   "
          f"{'PIRACY' if model.predict(adder_a, mux) else 'no piracy'}")


if __name__ == "__main__":
    main()
