"""The public facade: ``Detector``, ``Corpus``, and ``Session``.

These three objects are the supported programmatic surface of the
reproduction (see ``docs/api.md`` for the stability contract).  They wrap
the fast internals grown in earlier PRs — GraphIR frontends, the batched
:class:`~repro.index.service.EmbeddingService`, the memory-mapped shard
store, and the sublinear :class:`~repro.index.engine.QueryEngine` —
behind a small, typed API, so notebooks, CI pipelines, the bundled HTTP
server, and the CLI all share one wiring instead of each re-deriving it:

- :class:`Detector` — a loaded model.  Fingerprints designs and compares
  pairs; loads the model once and caches the embedding service and the
  extraction frontend across calls.
- :class:`Corpus` — a fingerprint index on disk.  Open / build / add /
  migrate, plus typed top-k queries.
- :class:`Session` — a Detector bound to a Corpus: the one blessed entry
  point for detection work.  Reuses stored embeddings and the on-disk
  graph cache where possible and batches multi-suspect queries through
  one BLAS pass.

A *suspect* argument anywhere in this module may be a
:class:`~repro.ir.graphir.GraphIR`, a filesystem path (``pathlib.Path``,
any ``os.PathLike``, or a newline-free string naming an existing file or
ending in ``.v``), or a string of Verilog source text.
"""

import os
from pathlib import Path

import numpy as np

from repro.api.config import DetectorConfig, IndexConfig
from repro.api.types import (
    ORIGIN_CACHE,
    ORIGIN_EXTRACTED,
    ORIGIN_INDEX,
    Comparison,
    Fingerprint,
    QueryResult,
    matches_from_hits,
)
from repro.calib import ARTIFACT_NAME, Calibration
from repro.core.gnn4ip import GNN4IP
from repro.core.persist import load_model
from repro.errors import IndexStoreError, ModelError
from repro.index.cache import DFGCache
from repro.index.ingest import ingest_corpus
from repro.index.service import EmbeddingService
from repro.index.shards import assign_partitions
from repro.index.store import (
    CACHE_DIR,
    FORMAT_VERSION,
    FingerprintIndex,
    add_to_index,
    build_index,
    migrate_index,
)
from repro.ir.frontends import get_frontend
from repro.ir.graphir import GraphIR


def _resolve_suspect(suspect, label=None, allow_paths=True):
    """Normalize a suspect to ``(graph_or_None, text_or_None, label)``.

    Strings are Verilog source unless they are newline-free and either
    name an existing file or end in ``.v`` (in which case the file is
    read — a missing ``.v`` path raises the usual ``FileNotFoundError``
    instead of being parsed as one-line source).

    ``allow_paths=False`` disables every filesystem access: strings are
    always source text and path-like objects are rejected.  Services
    handling **untrusted** input (the HTTP server) must use it — the
    convenience heuristic would otherwise let a remote caller probe and
    read local files by sending a filename as "source".
    """
    if isinstance(suspect, GraphIR):
        return suspect, None, label if label is not None else suspect.name
    if isinstance(suspect, os.PathLike):
        if not allow_paths:
            raise TypeError("path suspects are not accepted here "
                            "(untrusted-input mode)")
        path = Path(suspect)
        return None, path.read_text(), label if label is not None else str(path)
    if isinstance(suspect, str):
        if allow_paths and "\n" not in suspect \
                and (suspect.endswith(".v") or Path(suspect).is_file()):
            with open(suspect) as handle:
                return None, handle.read(), (label if label is not None
                                             else suspect)
        return None, suspect, label
    raise TypeError(f"suspect must be a GraphIR, a path, or Verilog "
                    f"source text, not {type(suspect).__name__}")


class Detector:
    """A loaded detection model with cached embedding machinery.

    Construct through :meth:`load`, :meth:`from_config`,
    :meth:`from_model`, or (explicitly) :meth:`untrained` — a missing
    model is always a loud :class:`~repro.errors.ModelError`, never a
    silent fall-back to random weights.
    """

    def __init__(self, model, *, level=None, delta=None, batch_size=64):
        featurizer = getattr(model.encoder, "featurizer", None)
        model_level = featurizer.level if featurizer is not None else "rtl"
        if level is not None and level != model_level:
            raise ModelError(
                f"model was trained at level {model_level!r}, not "
                f"{level!r}; train one with --level {level} or drop the "
                f"level override")
        self.model = model
        if delta is not None:
            self.model.delta = float(delta)
        self._service = EmbeddingService(model, batch_size=batch_size)
        self._frontend = None

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_config(cls, config):
        """Build a detector from a :class:`~repro.api.config.DetectorConfig`.

        Raises:
            ModelError: when no model path is configured and
                ``allow_untrained`` is not set, when the file is missing
                or not a model archive, or when the model's level
                conflicts with ``config.level``.
        """
        path = config.model_path()
        if path is None:
            if not config.allow_untrained:
                raise ModelError(
                    "no model configured: pass DetectorConfig(model=...) "
                    "or opt in to an untrained model with "
                    "allow_untrained=True")
            model = GNN4IP(seed=config.seed,
                           featurizer=config.level or "rtl")
        else:
            model = load_model(path)
        return cls(model, level=config.level, delta=config.delta,
                   batch_size=config.batch_size)

    @classmethod
    def load(cls, path, level=None, delta=None, batch_size=64):
        """Load a saved model (:class:`~repro.errors.ModelError` when
        missing or incompatible)."""
        return cls.from_config(DetectorConfig(model=path, level=level,
                                              delta=delta,
                                              batch_size=batch_size))

    @classmethod
    def untrained(cls, level="rtl", seed=0, delta=None):
        """An explicitly-requested fresh model (tests, smoke runs)."""
        return cls.from_config(DetectorConfig(level=level, seed=seed,
                                              delta=delta,
                                              allow_untrained=True))

    @classmethod
    def from_model(cls, model, delta=None, batch_size=64):
        """Wrap an in-memory :class:`~repro.core.gnn4ip.GNN4IP`."""
        return cls(model, delta=delta, batch_size=batch_size)

    # -- cached machinery ----------------------------------------------------
    @property
    def level(self):
        featurizer = getattr(self.model.encoder, "featurizer", None)
        return featurizer.level if featurizer is not None else "rtl"

    @property
    def delta(self):
        return self.model.delta

    @delta.setter
    def delta(self, value):
        self.model.delta = float(value)

    @property
    def service(self):
        """The batched embedding service (one per detector)."""
        return self._service

    @property
    def fingerprint_hash(self):
        """SHA-256 model fingerprint (computed once, cached)."""
        return self._service.fingerprint

    def frontend(self):
        """The extraction frontend for this model's level (cached)."""
        if self._frontend is None:
            self._frontend = get_frontend(self.level)
        return self._frontend

    # -- operations ----------------------------------------------------------
    def _graph_of(self, suspect, top=None, label=None, allow_paths=True):
        """(graph, content_key, label) for any suspect form."""
        graph, text, label = _resolve_suspect(suspect, label,
                                              allow_paths=allow_paths)
        if graph is not None:
            return graph, None, label
        frontend = self.frontend()
        cleaned = frontend.preprocess_text(text)
        key = frontend.content_key(cleaned, top=top)
        return frontend.extract_preprocessed(cleaned, top=top), key, label

    def fingerprint(self, suspect, top=None, label=None, allow_paths=True):
        """Embed one design; returns a :class:`~repro.api.types.Fingerprint`."""
        graph, key, label = self._graph_of(suspect, top=top, label=label,
                                           allow_paths=allow_paths)
        vector = self._service.embed_one(graph)
        return Fingerprint(vector=vector, key=key, design=graph.name,
                           level=self.level, origin=ORIGIN_EXTRACTED,
                           label=label)

    def compare(self, a, b, top=None, allow_paths=True):
        """Pairwise piracy check (Algorithm 1) on two suspects."""
        graph_a = self._graph_of(a, top=top, allow_paths=allow_paths)[0]
        graph_b = self._graph_of(b, top=top, allow_paths=allow_paths)[0]
        score = self.model.similarity(graph_a, graph_b)
        return Comparison(score=score, delta=self.model.delta,
                          is_piracy=bool(score > self.model.delta))

    def compare_fingerprints(self, fp_a, fp_b):
        """Piracy check from two precomputed fingerprints."""
        score = self.model.similarity_from_embeddings(fp_a.vector,
                                                      fp_b.vector)
        return Comparison(score=score, delta=self.model.delta,
                          is_piracy=bool(score > self.model.delta),
                          origins=(fp_a.origin, fp_b.origin))


class Corpus:
    """A fingerprint index on disk, wrapped for facade consumers.

    All constructors go through the v3 on-disk format checks: a v2 index
    is refused with a migration message
    (:class:`~repro.errors.IndexStoreError`), use :meth:`migrate`.
    """

    #: Sentinel: the calibration artifact has not been looked up yet
    #: (``None`` is a valid cached answer — "no artifact on disk").
    _CALIBRATION_UNSET = object()

    def __init__(self, index):
        self._index = index
        self._detector = None
        self._partition = None
        self._calibration = Corpus._CALIBRATION_UNSET

    @classmethod
    def open(cls, root, partition=None):
        """Open an existing index (IndexStoreError when unusable).

        Args:
            partition: optional ``(which, count)`` pair for
                scatter-gather serving — the corpus then scopes its
                partial queries to partition ``which`` of ``count``
                balanced shard-file partitions (see
                :func:`repro.index.shards.assign_partitions`).  Whole-
                corpus queries (:meth:`query` etc.) are unaffected; the
                mmap'd shards are shared through the OS page cache, so
                N partitioned opens cost no extra memory.
        """
        corpus = cls(FingerprintIndex.load(root))
        if partition is not None:
            corpus.set_partition(*partition)
        return corpus

    def set_partition(self, which, count):
        """Scope partial queries to partition ``which`` of ``count``;
        returns the partition's shard ordinals."""
        parts = assign_partitions(self._index.shards.specs, count)
        which = int(which)
        if not 0 <= which < len(parts):
            raise IndexStoreError(
                f"partition {which} out of range for {len(parts)} "
                f"partitions")
        self._partition = parts[which]
        return self._partition

    @property
    def partition(self):
        """Shard ordinals partial queries score (``None`` = unscoped)."""
        return self._partition

    @property
    def partition_rows(self):
        """Stored rows in this corpus's partition (all rows when
        unscoped)."""
        specs = self._index.shards.specs
        if self._partition is None:
            return self._index.shards.rows
        return sum(int(specs[s]["rows"]) for s in self._partition)

    def partial_parts(self, vectors, offsets, regions=None, k=5,
                      delta=0.0, nprobe=None, exact=False, fused=None):
        """Partition-local mergeable partials for part-vector groups
        (the worker half of scatter-gather serving; see
        :meth:`repro.index.store.FingerprintIndex.partial_parts`)."""
        return self._index.partial_parts(vectors, offsets, regions=regions,
                                         k=k, delta=delta, nprobe=nprobe,
                                         exact=exact, fused=fused,
                                         shards=self._partition)

    def merge_parts(self, partials, offsets, regions=None, k=5,
                    delta=0.0, struct=None):
        """Merge per-partition partials into final hit lists, applying
        the structural channel here (fuse at the front)."""
        return self._index.merge_parts(partials, offsets, regions=regions,
                                       k=k, delta=delta, struct=struct)

    @classmethod
    def build(cls, root, paths, detector, config=None):
        """Build (or rebuild) an index; returns ``(corpus, report)``.

        Args:
            detector: a :class:`Detector` (or a bare
                :class:`~repro.core.gnn4ip.GNN4IP`).
            config: an :class:`~repro.api.config.IndexConfig`.
        """
        config = config if config is not None else IndexConfig()
        model = detector.model if isinstance(detector, Detector) else detector
        index, report = build_index(root, paths, model, jobs=config.jobs,
                                    use_cache=config.use_cache,
                                    top=config.top,
                                    batch_size=config.batch_size,
                                    level=config.level,
                                    chunks=config.chunks,
                                    chunk_config=config.chunk_config,
                                    progress=config.progress)
        return cls(index), report

    @classmethod
    def ingest(cls, root, paths, detector=None, config=None, resume=True,
               fresh=False):
        """Streaming, resumable ingest; returns ``(corpus, report)``.

        The production-scale alternative to :meth:`build`/:meth:`add`:
        a multiprocess extract→chunk→embed worker pool, bounded-size
        shard flushes (flat peak memory), and a durable checkpoint so a
        killed ingest resumes exactly where it stopped — see
        :func:`repro.index.ingest.ingest_corpus`.  With an existing
        index at ``root`` and no checkpoint, new designs are appended in
        place.

        Args:
            detector: a :class:`Detector` (or bare
                :class:`~repro.core.gnn4ip.GNN4IP`); required for a
                fresh index, optional when resuming or appending (the
                index's own model is the default).
            config: an :class:`~repro.index.ingest.IngestConfig`.
            resume: pick up an existing checkpoint at ``root``.
            fresh: discard any checkpoint and existing index.

        Returns:
            ``(corpus, report)``; ``corpus`` is ``None`` when the run
            paused at ``config.stop_after``.
        """
        model = (detector.model if isinstance(detector, Detector)
                 else detector)
        index, report = ingest_corpus(root, paths, model=model,
                                      config=config, resume=resume,
                                      fresh=fresh)
        if index is None:
            return None, report
        return cls(index), report

    @classmethod
    def migrate(cls, root):
        """Convert a v2/v3 index to v4 in place; returns the opened
        corpus (no re-embedding; rebuild to also index chunks)."""
        return cls(migrate_index(root))

    def add(self, paths, jobs=None, batch_size=64):
        """Append designs in place (no re-embedding); returns the report."""
        self._index, report = add_to_index(self.root, paths, jobs=jobs,
                                           batch_size=batch_size)
        return report

    # -- introspection -------------------------------------------------------
    @property
    def index(self):
        """The underlying :class:`~repro.index.store.FingerprintIndex`
        (internal surface — may change between versions)."""
        return self._index

    @property
    def root(self):
        return self._index.root

    @property
    def level(self):
        return self._index.level

    @property
    def top(self):
        return self._index.top

    @property
    def use_cache(self):
        return self._index.use_cache

    @property
    def model_hash(self):
        return self._index.model_hash

    @property
    def entries(self):
        return self._index.entries

    @property
    def shard_count(self):
        return len(self._index.shards.specs)

    @property
    def ivf_clusters(self):
        return self._index.ivf.n_clusters if self._index.ivf else 0

    def __len__(self):
        return len(self._index)

    def stats(self):
        return self._index.stats()

    def serving_description(self, nprobe=None, exact=False):
        """How a query with these flags is served: ``"exact"`` or
        ``"ivf:N probes"`` with the clamp the quantizer actually applies."""
        if exact or self._index.ivf is None:
            return "exact"
        nprobe = self._index.ivf.effective_nprobe(nprobe)
        return f"ivf:{nprobe} probes"

    def frontend(self):
        return self._index.frontend()

    def detector(self):
        """A :class:`Detector` over the index's own persisted model
        (loaded once, cached on the corpus)."""
        if self._detector is None:
            self._detector = Detector.from_model(self._index.model())
        return self._detector

    def calibration(self):
        """The index's persisted calibration artifact, or ``None``.

        Looks for ``calibration.json`` in the index root (written by
        ``gnn4ip calibrate`` / :meth:`Session.calibrate`), validates it
        against this corpus's model hash, on-disk format version, and
        level, and caches the result — including the negative "no
        artifact" answer.  A stale artifact raises
        :class:`~repro.errors.CalibrationError` instead of being
        silently applied.
        """
        if self._calibration is Corpus._CALIBRATION_UNSET:
            path = self.root / ARTIFACT_NAME
            if not path.is_file():
                self._calibration = None
            else:
                self._calibration = Calibration.load(
                    path, model_hash=self.model_hash,
                    index_format=FORMAT_VERSION, level=self.level)
        return self._calibration

    def set_calibration(self, artifact):
        """Replace the cached calibration (e.g. after a fresh fit)."""
        self._calibration = artifact

    # -- queries -------------------------------------------------------------
    def lookup(self, key):
        """Stored embedding for a content key, or ``None``."""
        return self._index.lookup_key(key)

    def entry_for_key(self, key):
        """The stored ok-entry dict for a content key, or ``None``."""
        return self._index.entry_for_key(key)

    def query(self, suspects, k=5, nprobe=None, exact=False, detector=None,
              labels=None):
        """Rank the corpus against suspect graphs, batched.

        Args:
            suspects: :class:`~repro.ir.graphir.GraphIR` list (embedded
                in one batched pass with the corpus model, or
                ``detector``'s when given).
            detector: optional model override; its fingerprint must match
                the index (:class:`~repro.errors.IndexStoreError`).

        Returns:
            One :class:`~repro.api.types.QueryResult` per suspect, in
            input order.
        """
        detector = detector if detector is not None else self.detector()
        hit_lists = self._index.query_graphs(list(suspects), detector.model,
                                             k=k, nprobe=nprobe,
                                             exact=exact)
        return self._wrap_results(hit_lists, suspects, labels)

    def query_vectors(self, vectors, k=5, delta=0.0, nprobe=None,
                      exact=False, labels=None):
        """Rank the corpus against precomputed embedding vectors."""
        hit_lists = self._index.query_many(vectors, k=k, delta=delta,
                                           nprobe=nprobe, exact=exact)
        return self._wrap_results(hit_lists, vectors, labels)

    def _wrap_results(self, hit_lists, suspects, labels):
        if labels is None:
            labels = [getattr(s, "name", None) or f"suspect[{i}]"
                      for i, s in enumerate(suspects)]
        results = [QueryResult(label=label, matches=matches_from_hits(hits))
                   for label, hits in zip(labels, hit_lists)]
        artifact = self.calibration()
        if artifact is not None:
            for result in results:
                artifact.annotate_matches(result.matches)
        return results


class Session:
    """A :class:`Detector` bound to a :class:`Corpus` — the blessed entry
    point.

    The session owns nothing heavyweight itself; it wires the cached
    pieces together so repeated calls stay hot: the detector's embedding
    service and frontend, the corpus's memory-mapped engine and stored
    rows, and the on-disk graph cache.  ``fingerprint`` reuses stored
    index rows (then the graph cache) before extracting from scratch;
    ``query`` embeds every suspect in one batched forward pass and scores
    the whole batch in one engine call.
    """

    def __init__(self, detector=None, corpus=None):
        if detector is None and corpus is None:
            raise ValueError("a Session needs a detector, a corpus, "
                             "or both")
        if detector is not None and corpus is not None \
                and detector.level != corpus.level:
            raise ModelError(
                f"the corpus was built at level {corpus.level!r} but the "
                f"detector runs at {detector.level!r}")
        self._detector = detector
        self.corpus = corpus

    @classmethod
    def open(cls, index_dir, model=None, delta=None, partition=None):
        """Open an index directory, binding its own model (or ``model``).

        The one-call entry point::

            session = Session.open("library.index")
            results = session.query(["suspect_a.v", "suspect_b.v"], k=5)

        ``partition`` is forwarded to :meth:`Corpus.open` — serving
        workers open the same index scoped to their shard partition.
        """
        corpus = Corpus.open(index_dir, partition=partition)
        detector = Detector.load(model, delta=delta) if model else None
        return cls(detector=detector, corpus=corpus)

    @property
    def detector(self):
        """The bound detector (the corpus's own model, loaded lazily,
        when none was supplied)."""
        if self._detector is None:
            self._detector = self.corpus.detector()
        return self._detector

    @property
    def bound_detector(self):
        """The detector only if one is already bound — never triggers a
        lazy model load (vector-only consumers probe this)."""
        return self._detector

    @property
    def delta(self):
        return self.detector.delta

    def serving_description(self, nprobe=None, exact=False):
        if self.corpus is None:
            return "pairwise"
        return self.corpus.serving_description(nprobe=nprobe, exact=exact)

    # -- extraction ----------------------------------------------------------
    def _frontend(self):
        return (self.corpus.frontend() if self.corpus is not None
                else self.detector.frontend())

    def _default_top(self):
        return self.corpus.top if self.corpus is not None else None

    def extract(self, suspect, top=None, allow_paths=True):
        """Extract a suspect to GraphIR with the session's frontend and
        default top-module option."""
        graph, text, _ = _resolve_suspect(suspect, allow_paths=allow_paths)
        if graph is not None:
            return graph
        top = top if top is not None else self._default_top()
        return self._frontend().extract(text, top=top)

    # -- operations ----------------------------------------------------------
    def fingerprint(self, suspect, top=None, label=None, allow_paths=True):
        """Embed a suspect, reusing index rows and the graph cache.

        Resolution order (the ``origin`` field records which won):
        a stored index row for the same content under the same model,
        the index's on-disk graph cache, then fresh extraction.  A
        ``--no-cache`` corpus never grows a cache directory as a side
        effect.  ``allow_paths=False`` treats string suspects strictly
        as source text (untrusted-input mode; see
        :func:`_resolve_suspect`).
        """
        if self.corpus is None:
            return self.detector.fingerprint(suspect, top=top, label=label,
                                             allow_paths=allow_paths)
        graph, text, label = _resolve_suspect(suspect, label,
                                              allow_paths=allow_paths)
        if graph is not None:
            vector = self.detector.service.embed_one(graph)
            return Fingerprint(vector=vector, key=None, design=graph.name,
                               level=self.detector.level,
                               origin=ORIGIN_EXTRACTED, label=label)
        frontend = self._frontend()
        top = top if top is not None else self._default_top()
        cleaned = frontend.preprocess_text(text)
        key = frontend.content_key(cleaned, top=top)
        if self.detector.fingerprint_hash == self.corpus.model_hash:
            stored = self.corpus.lookup(key)
            if stored is not None:
                entry = self.corpus.entry_for_key(key)
                return Fingerprint(vector=stored, key=key,
                                   design=entry["design"],
                                   level=self.corpus.level,
                                   origin=ORIGIN_INDEX, label=label)
        # Respect the corpus's cache policy: a --no-cache index must not
        # grow a cache/ directory as a side effect of lookups.
        cache = (DFGCache(self.corpus.root / CACHE_DIR)
                 if self.corpus.use_cache else None)
        graph = cache.load(key) if cache is not None else None
        origin = ORIGIN_CACHE if graph is not None else ORIGIN_EXTRACTED
        if graph is None:
            graph = frontend.extract_preprocessed(cleaned, top=top)
            if cache is not None:
                cache.store(key, graph)
        vector = self.detector.service.embed_one(graph)
        return Fingerprint(vector=vector, key=key, design=graph.name,
                           level=self.corpus.level, origin=origin,
                           label=label)

    def compare(self, a, b, top=None, allow_paths=True):
        """Pairwise check; with a corpus bound, both sides reuse stored
        embeddings / cached graphs where possible.  A fitted corpus
        calibration annotates the result with a probability, confidence
        band, and calibrated verdict (raw score and delta unchanged).
        """
        if self.corpus is None:
            return self.detector.compare(a, b, top=top,
                                         allow_paths=allow_paths)
        fp_a = self.fingerprint(a, top=top, allow_paths=allow_paths)
        fp_b = self.fingerprint(b, top=top, allow_paths=allow_paths)
        comparison = self.detector.compare_fingerprints(fp_a, fp_b)
        artifact = self.corpus.calibration()
        if artifact is not None:
            artifact.annotate_comparison(comparison)
        return comparison

    @property
    def default_delta(self):
        """The decision boundary vector-only queries are judged against.

        The bound detector's delta when one is (or can be) bound; a
        corpus whose persisted model cannot be loaded (synthetic /
        model-less stores) falls back to 0.0.  Resolving eagerly here
        keeps verdicts independent of call order — the first *source*
        query must not silently change the threshold later vector
        queries use.
        """
        if self._detector is not None:
            return self._detector.delta
        if self.corpus is not None:
            try:
                return self.detector.delta
            except ModelError:
                return 0.0
        return 0.0

    def evaluate(self, config=None, **overrides):
        """Run the adversarial piracy-scenario evaluation on this session.

        Generates the attack suite from :mod:`repro.eval.scenarios` for
        every configured design family present in the bound corpus,
        pushes all suspects through one batched :meth:`query` pass, and
        scores detection quality per scenario and overall.

        Args:
            config: an :class:`~repro.eval.runner.EvalConfig` (defaults
                to the small default corpus configuration).
            **overrides: field overrides applied on top of ``config``
                (e.g. ``scenarios=("netlist_obfuscate_s2",)``, ``seed=7``).

        Returns:
            :class:`~repro.eval.report.EvalReport`

        Raises:
            EvalError: no corpus bound, level mismatch, or no
                configured family present in the corpus.
        """
        from dataclasses import replace

        from repro.eval.runner import EvalConfig, evaluate_session

        config = config if config is not None else EvalConfig(
            level=self.corpus.level if self.corpus is not None else "rtl")
        if overrides:
            config = replace(config, **overrides)
        return evaluate_session(self, config)

    def calibrate(self, config=None, bootstrap=32, save=True, **overrides):
        """Fit a calibration artifact for this session's corpus.

        Generates the scenario suite (genuine suspects plus the
        configured impostor families), runs it through one batched
        :meth:`query` pass, fits both calibration tiers, and — with
        ``save`` — persists ``calibration.json`` into the index root so
        every later :meth:`query`/:meth:`compare` (in-process, CLI, or
        served) reports calibrated probabilities.

        Args:
            config: an :class:`~repro.eval.runner.EvalConfig`; defaults
                to the corpus's level with standard settings.
            bootstrap: confidence-band bootstrap replicas (0 disables
                bands; probabilities are unaffected).
            save: write the artifact next to the index.
            **overrides: ``EvalConfig`` field overrides.

        Returns:
            the fitted :class:`~repro.calib.Calibration`.

        Raises:
            EvalError: no corpus bound or no configured family present.
            CalibrationError: too little or single-class fit data.
        """
        from dataclasses import replace

        from repro.eval.runner import EvalConfig, fit_session_calibration

        if self.corpus is None:
            raise ModelError("calibration needs a corpus bound; "
                             "open one with Session.open(index_dir)")
        config = config if config is not None else EvalConfig(
            level=self.corpus.level)
        if overrides:
            config = replace(config, **overrides)
        # The fit queries must run *un*-annotated: an existing artifact
        # adds nothing to the raw evidence rows, and a stale one would
        # make the refit refuse — the one command that fixes staleness
        # has to work on a stale index.
        self.corpus.set_calibration(None)
        artifact = fit_session_calibration(self, config,
                                           bootstrap=bootstrap)
        if save:
            artifact.save(self.corpus.root)
        self.corpus.set_calibration(artifact)
        return artifact

    def query(self, suspects, k=5, nprobe=None, exact=False, top=None,
              labels=None, allow_paths=True):
        """Rank the corpus against a batch of suspects.

        Suspects may be GraphIRs, paths, source strings, or — for
        callers that already hold embeddings (e.g. the HTTP server's
        vector requests) — numeric vectors; forms cannot be mixed with
        vectors in one call.  Graph suspects are embedded in **one**
        batched forward pass and scored in one engine call.
        """
        if self.corpus is None:
            raise ModelError("this session has no corpus bound; "
                             "open one with Session.open(index_dir)")
        suspects = list(suspects)
        vectors = [np.asarray(s, dtype=np.float64) for s in suspects
                   if isinstance(s, (np.ndarray, list, tuple))]
        if vectors:
            if len(vectors) != len(suspects):
                raise TypeError("cannot mix vector suspects with "
                                "graph/source suspects in one query")
            return self.corpus.query_vectors(vectors, k=k,
                                             delta=self.default_delta,
                                             nprobe=nprobe, exact=exact,
                                             labels=labels)
        if labels is None:
            labels = [_resolve_suspect(s, allow_paths=allow_paths)[2]
                      or f"suspect[{i}]"
                      for i, s in enumerate(suspects)]
        graphs = [self.extract(s, top=top, allow_paths=allow_paths)
                  for s in suspects]
        return self.corpus.query(graphs, k=k, nprobe=nprobe, exact=exact,
                                 detector=self.detector, labels=labels)
