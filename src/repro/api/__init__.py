"""Public API facade for the GNN4IP reproduction.

This package is the **stable programmatic surface**: everything else
under ``repro.*`` (the index internals, the nn stack, the frontends) is
implementation detail that may change between versions; see
``docs/api.md`` for the contract.

Three facade objects cover the paper's deployment workflow:

>>> from repro.api import Detector, Corpus, Session          # doctest: +SKIP
>>> detector = Detector.load("model.npz")                    # doctest: +SKIP
>>> corpus, report = Corpus.build("lib.index", paths, detector)  # doctest: +SKIP
>>> session = Session(detector=detector, corpus=corpus)      # doctest: +SKIP
>>> for result in session.query(["suspect.v"], k=5):         # doctest: +SKIP
...     for match in result:
...         print(match.rank, match.design, match.score, match.is_piracy)
"""

from repro.api.config import DetectorConfig, IndexConfig
from repro.api.facade import Corpus, Detector, Session
from repro.index.ingest import IngestConfig, walk_sources
from repro.api.types import (
    ORIGIN_CACHE,
    ORIGIN_EXTRACTED,
    ORIGIN_INDEX,
    Comparison,
    Fingerprint,
    Match,
    QueryResult,
    matches_from_hits,
)

__all__ = [
    "DetectorConfig", "IndexConfig", "IngestConfig", "walk_sources",
    "Detector", "Corpus", "Session",
    "Comparison", "Fingerprint", "Match", "QueryResult",
    "matches_from_hits",
    "ORIGIN_CACHE", "ORIGIN_EXTRACTED", "ORIGIN_INDEX",
]
