"""Configuration dataclasses for the public facade.

Both configs are plain data: constructing one never touches the
filesystem.  Validation and loading happen when the config is handed to
:class:`~repro.api.facade.Detector` / :class:`~repro.api.facade.Corpus`.
"""

from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class DetectorConfig:
    """How to obtain and run a detection model.

    Attributes:
        model: path to a ``.npz`` model archive from ``gnn4ip train
            --save`` (or :func:`repro.core.persist.save_model`).  When
            ``None``, the facade **refuses** to run with an untrained
            model (:class:`~repro.errors.ModelError`) unless
            ``allow_untrained`` is set — silently scoring with random
            weights is the one footgun this layer exists to remove.
        level: extraction level the detector must operate at (``rtl`` /
            ``netlist``).  ``None`` means "whatever the model was
            trained for"; a conflicting explicit level raises
            :class:`~repro.errors.ModelError`.
        delta: decision-boundary override (``None`` keeps the model's
            stored delta).
        allow_untrained: opt in to a fresh, untrained model when
            ``model`` is ``None`` (tests, smoke runs).
        seed: weight-init seed for an untrained model.
        batch_size: graphs per packed embedding forward pass.
    """

    model: str = None
    level: str = None
    delta: float = None
    allow_untrained: bool = False
    seed: int = 0
    batch_size: int = 64

    def model_path(self):
        return None if self.model is None else Path(self.model)


@dataclass
class IndexConfig:
    """Options for building or growing a fingerprint index.

    Mirrors :func:`repro.index.store.build_index` keyword-for-keyword;
    see that docstring for semantics.

    Attributes:
        chunks: also index each design's subgraph chunks (format v4
            multi-granularity rows) so partial theft matches; disable
            for whole-design-only indexes.
        chunk_config: optional
            :class:`~repro.index.chunks.ChunkConfig` override.
        progress: optional ``callback(done, total)`` invoked as files
            finish extraction (drives the CLI's ``--progress``).
    """

    level: str = None
    top: str = None
    jobs: int = None
    use_cache: bool = True
    batch_size: int = 64
    chunks: bool = True
    chunk_config: object = None
    progress: object = field(default=None, repr=False)
