"""Typed results returned by the public facade.

Every result object carries an ``as_dict()`` serializer producing plain
JSON-compatible data.  These serializers are the single wire format for
the whole surface: the HTTP server's response bodies, the CLI's
``--json`` output, and library consumers all read the same shapes, so a
script that parses ``gnn4ip compare --json`` also parses a
``POST /v1/compare`` response.
"""

from dataclasses import dataclass, field

import numpy as np

#: Where a fingerprint's embedding came from (cheapest first): reused
#: straight from the index's stored rows, rebuilt from the on-disk graph
#: cache, or extracted + embedded from scratch.
ORIGIN_INDEX = "index"
ORIGIN_CACHE = "cache"
ORIGIN_EXTRACTED = "extracted"


@dataclass
class Fingerprint:
    """One design's embedding under a fixed model.

    Attributes:
        vector: the embedding row (numpy float array).
        key: content-address of the preprocessed source under the
            frontend that extracted it (``None`` for raw-graph inputs).
        design: the design (module) name, when known.
        level: extraction level (``rtl`` / ``netlist``).
        origin: :data:`ORIGIN_INDEX`, :data:`ORIGIN_CACHE`, or
            :data:`ORIGIN_EXTRACTED`.
        label: caller-supplied label (usually the source path).
    """

    vector: np.ndarray
    key: str = None
    design: str = None
    level: str = None
    origin: str = ORIGIN_EXTRACTED
    label: str = None

    def as_dict(self):
        return {
            "vector": [float(v) for v in np.asarray(self.vector).ravel()],
            "key": self.key,
            "design": self.design,
            "level": self.level,
            "origin": self.origin,
            "label": self.label,
        }


@dataclass
class Comparison:
    """A pairwise piracy check (paper Algorithm 1).

    ``score``/``delta``/``is_piracy`` are the raw decision (unchanged
    for compatibility).  When a calibration artifact is bound to the
    session, ``probability`` carries the calibrated piracy probability
    with its bootstrap band in ``confidence_low``/``confidence_high``,
    and ``verdict`` follows the calibrated operating point instead of
    the raw delta cut (see docs/api.md for the precedence rules).
    """

    score: float
    delta: float
    is_piracy: bool
    #: Embedding origins for the two sides, when the comparison ran
    #: through a :class:`~repro.api.facade.Session` with an index bound.
    origins: tuple = None
    #: Calibrated piracy probability in [0, 1] (``None`` uncalibrated).
    probability: float = None
    confidence_low: float = None
    confidence_high: float = None
    #: Calibrated yes/no decision at the artifact's operating point
    #: (``None`` uncalibrated — ``verdict`` then falls back to the raw
    #: ``is_piracy`` delta cut).
    calibrated_piracy: bool = None

    @property
    def flagged(self):
        """The effective decision: calibrated operating point when a
        calibration is attached, the raw delta cut otherwise."""
        return (self.is_piracy if self.calibrated_piracy is None
                else self.calibrated_piracy)

    @property
    def verdict(self):
        """Human-readable verdict string (the CLI's wording)."""
        return "PIRACY" if self.flagged else "no piracy"

    def as_dict(self):
        return {
            "score": float(self.score),
            "delta": float(self.delta),
            "is_piracy": bool(self.is_piracy),
            "verdict": self.verdict,
            "origins": list(self.origins) if self.origins else None,
            "probability": (None if self.probability is None
                            else float(self.probability)),
            "confidence_low": (None if self.confidence_low is None
                               else float(self.confidence_low)),
            "confidence_high": (None if self.confidence_high is None
                                else float(self.confidence_high)),
        }


@dataclass
class Match:
    """One ranked corpus hit for a query design.

    The last four fields are locality evidence from chunk-level
    aggregation (format-v4 indexes): *which region* of the stored
    design matched (``region``), which region of the suspect matched it
    (``query_region``), whether the winning row was a whole design or a
    chunk (``via``), and the fraction of the design's stored rows
    scoring above delta (``coverage``).  They keep their defaults on a
    chunk-less index.

    ``struct`` is the structural reverse-containment score from rank
    fusion (``None`` outside fused queries).  When the session has a
    calibration artifact bound, ``probability`` carries the calibrated
    piracy probability for this match with its bootstrap confidence
    band in ``confidence_low``/``confidence_high``; ``verdict`` then
    reflects the calibrated operating point.  Raw ``score`` and
    ``is_piracy`` (the delta cut) are unchanged for compatibility.
    """

    rank: int
    name: str
    path: str
    design: str
    score: float
    is_piracy: bool
    via: str = "design"
    region: dict = None
    query_region: dict = None
    coverage: float = None
    struct: float = None
    probability: float = None
    confidence_low: float = None
    confidence_high: float = None
    calibrated_piracy: bool = None

    @property
    def flagged(self):
        """The effective decision: calibrated operating point when a
        calibration is attached, the raw delta cut otherwise."""
        return (self.is_piracy if self.calibrated_piracy is None
                else self.calibrated_piracy)

    @property
    def verdict(self):
        """Calibrated verdict when a probability is attached, the raw
        delta cut otherwise."""
        return "PIRACY" if self.flagged else "no piracy"

    def as_dict(self):
        return {
            "rank": int(self.rank),
            "name": self.name,
            "path": self.path,
            "design": self.design,
            "score": float(self.score),
            "is_piracy": bool(self.is_piracy),
            "via": self.via,
            "region": self.region,
            "query_region": self.query_region,
            "coverage": (None if self.coverage is None
                         else float(self.coverage)),
            "struct": (None if self.struct is None
                       else float(self.struct)),
            "probability": (None if self.probability is None
                            else float(self.probability)),
            "confidence_low": (None if self.confidence_low is None
                               else float(self.confidence_low)),
            "confidence_high": (None if self.confidence_high is None
                                else float(self.confidence_high)),
            "verdict": self.verdict,
        }


@dataclass
class QueryResult:
    """Ranked matches for one suspect in a query batch."""

    label: str
    matches: list = field(default_factory=list)

    def __iter__(self):
        return iter(self.matches)

    def __len__(self):
        return len(self.matches)

    def __getitem__(self, item):
        return self.matches[item]

    def as_dict(self):
        return {
            "label": self.label,
            "matches": [m.as_dict() for m in self.matches],
        }


def matches_from_hits(hits):
    """Convert engine :class:`~repro.index.engine.QueryHit` rows to
    ranked :class:`Match` objects (ranks are 1-based)."""
    return [Match(rank=rank, name=hit.name, path=hit.path,
                  design=hit.design, score=hit.score,
                  is_piracy=hit.is_piracy, via=hit.via,
                  region=hit.region, query_region=hit.query_region,
                  coverage=hit.coverage,
                  struct=getattr(hit, "struct", None))
            for rank, hit in enumerate(hits, 1)]
