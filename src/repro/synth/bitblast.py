"""Bit-level expression lowering used by the synthesizer.

A *bit vector* here is a Python list of net names, LSB first; constant bits
are the reserved nets ``CONST0``/``CONST1``.  :class:`BitLowering` provides
word-level operations (add, mul, compare, shift, mux) implemented with the
:class:`~repro.netlist.NetlistBuilder` gate helpers.
"""

from repro.errors import SynthesisError
from repro.netlist.netlist import CONST0, CONST1


def const_bits(value, width):
    """Bit vector for an integer constant."""
    return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]


def fit(bits, width):
    """Zero-extend or truncate a bit vector to ``width``."""
    if len(bits) >= width:
        return bits[:width]
    return bits + [CONST0] * (width - len(bits))


class BitLowering:
    """Word-level operators over bit vectors, emitting gates into a builder."""

    def __init__(self, builder):
        self.builder = builder

    # -- single-bit helpers ------------------------------------------------
    def bit_not(self, a):
        if a == CONST0:
            return CONST1
        if a == CONST1:
            return CONST0
        return self.builder.not_(a)

    def bit_and(self, a, b):
        if CONST0 in (a, b):
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        return self.builder.and_(a, b)

    def bit_or(self, a, b):
        if CONST1 in (a, b):
            return CONST1
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        return self.builder.or_(a, b)

    def bit_xor(self, a, b):
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        if a == CONST1:
            return self.bit_not(b)
        if b == CONST1:
            return self.bit_not(a)
        return self.builder.xor_(a, b)

    def bit_mux(self, d0, d1, sel):
        if sel == CONST0:
            return d0
        if sel == CONST1:
            return d1
        if d0 == d1:
            return d0
        return self.builder.mux_(d0, d1, sel)

    # -- bitwise word ops ------------------------------------------------
    def word_not(self, a):
        return [self.bit_not(bit) for bit in a]

    def word_and(self, a, b):
        return [self.bit_and(x, y) for x, y in zip(*self._align(a, b))]

    def word_or(self, a, b):
        return [self.bit_or(x, y) for x, y in zip(*self._align(a, b))]

    def word_xor(self, a, b):
        return [self.bit_xor(x, y) for x, y in zip(*self._align(a, b))]

    def _align(self, a, b):
        width = max(len(a), len(b))
        return fit(a, width), fit(b, width)

    # -- reductions -----------------------------------------------------------
    def reduce_and(self, a):
        result = a[0]
        for bit in a[1:]:
            result = self.bit_and(result, bit)
        return result

    def reduce_or(self, a):
        result = a[0]
        for bit in a[1:]:
            result = self.bit_or(result, bit)
        return result

    def reduce_xor(self, a):
        result = a[0]
        for bit in a[1:]:
            result = self.bit_xor(result, bit)
        return result

    # -- arithmetic -----------------------------------------------------------
    def add(self, a, b, carry_in=CONST0, width=None):
        """Unsigned addition; result has ``width`` bits (default max+1)."""
        if width is None:
            width = max(len(a), len(b)) + 1
        a = fit(a, width)
        b = fit(b, width)
        carry = carry_in
        sums = []
        for x, y in zip(a, b):
            axb = self.bit_xor(x, y)
            sums.append(self.bit_xor(axb, carry))
            carry = self.bit_or(self.bit_and(x, y), self.bit_and(axb, carry))
        return sums

    def sub(self, a, b, width=None):
        """a - b (two's complement), ``width`` bits."""
        if width is None:
            width = max(len(a), len(b))
        a = fit(a, width)
        b = fit(b, width)
        return self.add(a, self.word_not(b), carry_in=CONST1, width=width)

    def neg(self, a, width=None):
        width = width or len(a)
        return self.sub(const_bits(0, width), a, width=width)

    def mul(self, a, b, width=None):
        """Array multiplier; result truncated to ``width`` (default len sum)."""
        if width is None:
            width = len(a) + len(b)
        accum = const_bits(0, width)
        for shift, bit in enumerate(b):
            if shift >= width or bit == CONST0:
                continue
            partial = [self.bit_and(x, bit) for x in a]
            shifted = const_bits(0, shift) + partial
            accum = self.add(accum, fit(shifted, width), width=width)
        return accum

    # -- comparisons (unsigned) ------------------------------------------
    def eq(self, a, b):
        a, b = self._align(a, b)
        bits = [self.bit_not(self.bit_xor(x, y)) for x, y in zip(a, b)]
        return self.reduce_and(bits)

    def neq(self, a, b):
        return self.bit_not(self.eq(a, b))

    def lt(self, a, b):
        """a < b via MSB-first borrow chain."""
        a, b = self._align(a, b)
        result = CONST0
        equal_so_far = CONST1
        for x, y in zip(reversed(a), reversed(b)):
            x_lt_y = self.bit_and(self.bit_not(x), y)
            result = self.bit_or(result, self.bit_and(equal_so_far, x_lt_y))
            equal_so_far = self.bit_and(
                equal_so_far, self.bit_not(self.bit_xor(x, y)))
        return result

    def le(self, a, b):
        return self.bit_or(self.lt(a, b), self.eq(a, b))

    # -- shifts ---------------------------------------------------------------
    def shift_const(self, a, amount, left, width):
        if left:
            bits = const_bits(0, min(amount, width)) + a
        else:
            bits = a[amount:] if amount < len(a) else []
        return fit(bits, width)

    def shift_var(self, a, amount_bits, left, width):
        """Barrel shifter: log2 stages of muxes."""
        current = fit(a, width)
        for stage, sel in enumerate(amount_bits):
            step = 1 << stage
            if step >= width:
                # Any higher set bit shifts everything out.
                zeroed = const_bits(0, width)
                current = [self.bit_mux(cur, z, sel)
                           for cur, z in zip(current, zeroed)]
                continue
            shifted = self.shift_const(current, step, left, width)
            current = [self.bit_mux(cur, sh, sel)
                       for cur, sh in zip(current, shifted)]
        return current

    # -- selection ------------------------------------------------------------
    def mux_word(self, d0, d1, sel):
        d0, d1 = self._align(d0, d1)
        return [self.bit_mux(x, y, sel) for x, y in zip(d0, d1)]

    def select_var_bit(self, a, index_bits):
        """a[index] with a non-constant index: mux tree over all bits."""
        current = list(a)
        for stage, sel in enumerate(index_bits):
            step = 1 << stage
            nxt = []
            for i in range(len(current)):
                high = current[i + step] if i + step < len(current) else CONST0
                nxt.append(self.bit_mux(current[i], high, sel))
            current = nxt
        if not current:
            raise SynthesisError("bit select on empty vector")
        return current[0]

    def logic_value(self, a):
        """Verilog truthiness: OR-reduce to one bit."""
        return self.reduce_or(a)
