"""Technology remapping onto restricted cell vocabularies.

A thief who re-maps a stolen netlist onto a different cell library keeps
its function bit-for-bit while changing every gate type and the whole
connectivity texture — the classic laundering step between synthesis
runs.  :func:`map_netlist` rewrites a flat netlist so it uses only the
cells of one of the :data:`LIBRARIES` below (DFFs pass through
untouched; ``buf``/``not`` are in every library).

Each library is defined by two binary emitters (AND2, OR2) plus NOT;
variadic gates fold left over the binary form, and the derived gates
(xor/xnor/nand/nor/mux) are expanded through verified boolean
identities, so the mapped netlist is equivalent by construction and is
re-checked by random-vector equivalence wherever the attack pipeline
runs it.
"""

from repro.errors import SynthesisError
from repro.netlist.cells import DFF
from repro.netlist.netlist import Netlist

#: Cell vocabularies a netlist can be mapped onto.  ``dff`` is implicitly
#: allowed in every library (sequential state is not remapped).
LIBRARIES = {
    "nand": frozenset({"nand", "not", "buf"}),
    "nor": frozenset({"nor", "not", "buf"}),
    "aig": frozenset({"and", "not", "buf"}),
}


class _Mapper:
    """Rewrites gates of one netlist into a target vocabulary."""

    def __init__(self, source, library, name):
        if library not in LIBRARIES:
            raise SynthesisError(
                f"unknown techmap library {library!r}; "
                f"choose from {sorted(LIBRARIES)}")
        self._library = library
        self._cells = LIBRARIES[library]
        self._source = source
        self._out = Netlist(name or source.name, list(source.inputs),
                            list(source.outputs))
        self._used = set(source.nets())
        self._counter = 0
        self._gate_counter = 0

    def _fresh(self, hint):
        name = f"tm_{hint}_{self._counter}"
        self._counter += 1
        while name in self._used:
            name = f"tm_{hint}_{self._counter}"
            self._counter += 1
        self._used.add(name)
        return name

    def _emit(self, cell_name, inputs, output=None):
        if cell_name != DFF and cell_name not in self._cells:
            raise SynthesisError(
                f"cell {cell_name!r} is not in library {self._library!r}")
        if output is None:
            output = self._fresh(cell_name)
        gate_name = f"tg{self._gate_counter}"
        self._gate_counter += 1
        self._out.add_gate(cell_name, output, inputs, name=gate_name)
        return output

    # -- library primitives ----------------------------------------------
    def _not(self, a, out=None):
        if "not" in self._cells:
            return self._emit("not", [a], out)
        raise SynthesisError("library has no inverter")  # pragma: no cover

    def _and2(self, a, b, out=None):
        if "and" in self._cells:
            return self._emit("and", [a, b], out)
        if "nand" in self._cells:
            return self._not(self._emit("nand", [a, b]), out)
        # nor library: a & b == ~(~a | ~b) == nor(~a, ~b)
        return self._emit("nor", [self._not(a), self._not(b)], out)

    def _or2(self, a, b, out=None):
        if "nor" in self._cells:
            return self._not(self._emit("nor", [a, b]), out)
        if "nand" in self._cells:
            # a | b == nand(~a, ~b)
            return self._emit("nand", [self._not(a), self._not(b)], out)
        # aig: a | b == ~(~a & ~b)
        return self._not(self._emit("and", [self._not(a), self._not(b)]), out)

    def _xor2(self, a, b, out=None):
        if "nand" in self._cells:
            # 4-NAND form: t = nand(a,b); xor = nand(nand(a,t), nand(b,t))
            t = self._emit("nand", [a, b])
            return self._emit(
                "nand",
                [self._emit("nand", [a, t]), self._emit("nand", [b, t])],
                out)
        if "nor" in self._cells:
            # xor = ~xnor; xnor in 4 NORs: t = nor(a,b);
            # xnor = nor(nor(a,t), nor(b,t))
            return self._not(self._xnor2(a, b), out)
        # aig: xor = ~(~(a & ~b) & ~(~a & b))
        left = self._not(self._emit("and", [a, self._not(b)]))
        right = self._not(self._emit("and", [self._not(a), b]))
        return self._not(self._emit("and", [left, right]), out)

    def _xnor2(self, a, b, out=None):
        if "nor" in self._cells:
            t = self._emit("nor", [a, b])
            return self._emit(
                "nor",
                [self._emit("nor", [a, t]), self._emit("nor", [b, t])],
                out)
        return self._not(self._xor2(a, b), out)

    # -- folds over variadic inputs --------------------------------------
    def _fold(self, op, nets, out=None):
        if len(nets) == 1:
            return self._emit("buf", [nets[0]], out)
        acc = nets[0]
        for net in nets[1:-1]:
            acc = op(acc, net)
        return op(acc, nets[-1], out)

    def _fold_inverted(self, op, nets, out=None):
        if len(nets) == 1:
            return self._not(nets[0], out)
        acc = nets[0]
        for net in nets[1:]:
            acc = op(acc, net)
        return self._not(acc, out)

    # -- the rewrite ------------------------------------------------------
    def _map_gate(self, gate):
        ins, out = gate.inputs, gate.output
        if gate.cell == DFF:
            self._emit(DFF, list(ins), out)
        elif gate.cell in ("buf", "not"):
            self._emit(gate.cell, list(ins), out)
        elif gate.cell == "and":
            self._fold(self._and2, ins, out)
        elif gate.cell == "or":
            self._fold(self._or2, ins, out)
        elif gate.cell == "xor":
            self._fold(self._xor2, ins, out)
        elif gate.cell == "nand":
            self._fold_inverted(self._and2, ins, out)
        elif gate.cell == "nor":
            self._fold_inverted(self._or2, ins, out)
        elif gate.cell == "xnor":
            self._fold_inverted(self._xor2, ins, out)
        elif gate.cell == "mux":
            # (d0, d1, sel) -> d1 when sel: (d0 & ~sel) | (d1 & sel)
            d0, d1, sel = ins
            self._or2(self._and2(d0, self._not(sel)),
                      self._and2(d1, sel), out)
        else:
            raise SynthesisError(
                f"cannot techmap cell {gate.cell!r}")  # pragma: no cover

    def run(self):
        for gate in self._source.gates:
            self._map_gate(gate)
        self._out.validate()
        return self._out


def map_netlist(netlist, library, name=None):
    """Remap ``netlist`` onto a restricted cell ``library``.

    Args:
        netlist: source :class:`~repro.netlist.Netlist`.
        library: one of :data:`LIBRARIES` (``"nand"``, ``"nor"``,
            ``"aig"``).
        name: optional name for the mapped netlist.

    Returns:
        A new validated netlist using only the library's cells (plus
        DFFs), with identical primary I/O and identical behaviour.
    """
    return _Mapper(netlist, library, name).run()
