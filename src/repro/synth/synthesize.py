"""RTL-to-gates synthesizer.

Lowers a *flattened* module (see :func:`repro.dataflow.elaborate`) to a
single-bit gate-level :class:`~repro.netlist.Netlist`:

* vector signals become ``name_0 .. name_{w-1}`` nets (LSB first);
* continuous assigns, gate primitives, and combinational always blocks are
  bit-blasted through :class:`~repro.synth.bitblast.BitLowering`;
* posedge-clocked always blocks infer one DFF per register bit (async
  resets are folded into the D input, i.e. implemented synchronously —
  equivalent under the cycle-accurate reference simulator).

The result is deliberately un-optimized: like the paper's netlist corpus,
the graphs are large relative to their RTL source.
"""

from repro.errors import SynthesisError
from repro.dataflow.consteval import try_evaluate_const
from repro.netlist.netlist import CONST0, CONST1, NetlistBuilder
from repro.synth.bitblast import BitLowering, const_bits, fit
from repro.verilog import ast_nodes as ast

#: Bumped when the synthesizer's *output structure* changes for the same
#: source (folded into the netlist frontend's options fingerprint, so
#: content-addressed caches and index keys can never reuse graphs from an
#: older lowering).  v2: structural gate instances drive their output
#: nets directly instead of through a per-gate buffer.
SYNTH_VERSION = 2

_MAX_UNROLL = 4096


class Synthesizer:
    """Synthesizes one flattened module into a netlist."""

    def __init__(self, module):
        self._module = module
        self._builder = NetlistBuilder(module.name)
        self._logic = BitLowering(self._builder)
        self._widths = {}
        self._signs = {}
        self._integers = set()
        self._clock = None

    def synthesize(self):
        """Run synthesis; returns the validated netlist."""
        self._collect_signals()
        for item in self._module.items:
            if isinstance(item, ast.Assign):
                self._synth_assign(item)
            elif isinstance(item, ast.GateInstance):
                self._synth_gate(item)
            elif isinstance(item, ast.Always):
                self._synth_always(item)
            elif isinstance(item, (ast.NetDecl, ast.Initial)):
                continue
            elif isinstance(item, ast.ModuleInstance):
                raise SynthesisError("flatten the design before synthesis")
            else:
                raise SynthesisError(
                    f"cannot synthesize {type(item).__name__}")
        return self._builder.build()

    # -- signal table ----------------------------------------------------
    def _width_of_decl(self, width):
        if width is None:
            return 1
        msb = try_evaluate_const(width.msb)
        lsb = try_evaluate_const(width.lsb)
        if msb is None or lsb is None:
            raise SynthesisError(f"non-constant width {width}")
        return abs(msb - lsb) + 1

    def _collect_signals(self):
        netlist = self._builder.netlist
        for port in self._module.ports:
            width = self._width_of_decl(port.width)
            self._widths[port.name] = width
            if port.direction == "input":
                if width == 1:
                    netlist.add_input(port.name)
                else:
                    for i in range(width):
                        netlist.add_input(f"{port.name}_{i}")
            else:
                if width == 1:
                    netlist.add_output(port.name)
                else:
                    for i in range(width):
                        netlist.add_output(f"{port.name}_{i}")
        for item in self._module.items:
            if isinstance(item, ast.NetDecl):
                if item.kind == "integer":
                    self._integers.update(item.names)
                    continue
                width = self._width_of_decl(item.width)
                for name in item.names:
                    self._widths.setdefault(name, width)
        # Fresh intermediate nets must never collide with declared
        # signals: a structural source can legitimately contain wires
        # named like the builder's fresh-net scheme (``xor_0`` ...),
        # e.g. when a netlist this synthesizer emitted is re-synthesized.
        for name, width in self._widths.items():
            if width == 1:
                self._builder.reserve((name,))
            else:
                self._builder.reserve(f"{name}_{i}" for i in range(width))

    def _signal_bits(self, name):
        width = self._widths.get(name)
        if width is None:
            raise SynthesisError(f"undeclared signal {name!r}")
        if width == 1:
            return [name]
        return [f"{name}_{i}" for i in range(width)]

    def _drive(self, nets, bits):
        """Connect computed ``bits`` onto named signal nets with buffers."""
        for net, bit in zip(nets, fit(bits, len(nets))):
            self._builder.buf_(bit, out=net)

    # -- module items ----------------------------------------------------
    def _adopt_output(self, bit, target):
        """Try to rename a just-created gate's output onto ``target``.

        Succeeds only when ``bit`` is the expression's freshly allocated
        root net — the output of the last gate added and not a declared
        signal — so no other reader can exist.  The gate then drives the
        assign target directly instead of through a buffer, keeping
        write -> parse -> synthesize round-trips gate-for-gate.
        """
        gates = self._builder.netlist.gates
        if not gates or gates[-1].output != bit:
            return False
        if bit in (CONST0, CONST1) or self._builder.is_reserved(bit):
            return False
        gates[-1].output = target
        return True

    def _synth_assign(self, item):
        env = {}
        lhs_nets, width = self._lhs_nets(item.lhs, env)
        bits = fit(self._eval(item.rhs, env, width_hint=width), width)
        if len(lhs_nets) == 1 and len(bits) == 1 \
                and self._adopt_output(bits[0], lhs_nets[0]):
            return
        self._drive(lhs_nets, bits)

    def _synth_gate(self, item):
        inputs = []
        for arg in item.args[1:]:
            bits = self._eval(arg, {}, width_hint=1)
            inputs.append(self._logic.logic_value(bits))
        lhs_nets, _ = self._lhs_nets(item.args[0], {})
        gate = item.gate
        if gate == "buf":
            self._drive(lhs_nets, [inputs[0]])
            return
        if len(lhs_nets) == 1:
            # A structural gate instance drives its output net directly.
            # Routing it through _drive would add a buffer per gate, so
            # re-synthesizing a netlist (the evaluation harness's
            # round-trip treatment) would inflate it ~2x and the graph
            # would stop resembling a freshly synthesized one.
            self._builder.gate(gate, inputs, output=lhs_nets[0])
            return
        value = (self._logic.bit_not(inputs[0]) if gate == "not"
                 else self._builder.gate(gate, inputs))
        self._drive(lhs_nets, [value])

    def _synth_always(self, item):
        env = {}
        nba_env = {} if item.is_clocked else env
        loop_env = {}
        self._exec_statement(item.statement, env, nba_env, loop_env)
        if item.is_clocked:
            clock = self._find_clock(item)
            combined = dict(env)
            combined.update(nba_env)
            for name, bits in combined.items():
                targets = self._signal_bits(name)
                width = len(targets)
                for net, bit in zip(targets, fit(bits, width)):
                    self._builder.dff_(bit, clock, out=net)
        else:
            for name, bits in env.items():
                targets = self._signal_bits(name)
                self._drive(targets, fit(bits, len(targets)))

    def _find_clock(self, item):
        """Pick the clock edge signal; async-reset edges are folded to sync."""
        posedges = [s for s in item.sens_list if s.edge == "posedge"]
        negedges = [s for s in item.sens_list if s.edge == "negedge"]
        candidates = posedges + negedges
        if not candidates:
            raise SynthesisError("clocked always without an edge")
        for sens in candidates:
            if isinstance(sens.signal, ast.Identifier) and \
                    sens.signal.name.lower() in ("clk", "clock", "ck"):
                return sens.signal.name
        signal = candidates[0].signal
        if not isinstance(signal, ast.Identifier):
            raise SynthesisError("clock must be a plain signal")
        return signal.name

    # -- statements ---------------------------------------------------------
    def _exec_statement(self, stmt, env, nba_env, loop_env):
        """Symbolically execute a statement.

        ``env`` holds blocking updates (reads see it); ``nba_env`` collects
        non-blocking updates (reads never see it).  Combinational blocks
        pass the same dict for both.
        """
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._exec_statement(inner, env, nba_env, loop_env)
        elif isinstance(stmt, ast.BlockingAssign):
            self._exec_assign(stmt, env, env, loop_env)
        elif isinstance(stmt, ast.NonblockingAssign):
            self._exec_assign(stmt, env, nba_env, loop_env)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env, nba_env, loop_env)
        elif isinstance(stmt, ast.Case):
            self._exec_case(stmt, env, nba_env, loop_env)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env, nba_env, loop_env)
        else:
            raise SynthesisError(
                f"cannot synthesize statement {type(stmt).__name__}")

    def _exec_assign(self, stmt, read_env, write_env, loop_env):
        lhs = stmt.lhs
        if isinstance(lhs, ast.Identifier) and (
                lhs.name in self._integers or lhs.name in loop_env):
            value = try_evaluate_const(stmt.rhs, dict(loop_env))
            if value is None:
                raise SynthesisError(
                    f"loop variable {lhs.name!r} assigned non-constant")
            loop_env[lhs.name] = value
            return
        self._assign_lhs(lhs, stmt.rhs, read_env, write_env, loop_env)

    def _assign_lhs(self, lhs, rhs_expr, read_env, write_env, loop_env):
        if isinstance(lhs, ast.Identifier):
            width = self._widths.get(lhs.name)
            if width is None:
                raise SynthesisError(f"undeclared signal {lhs.name!r}")
            bits = self._eval(rhs_expr, read_env, loop_env, width_hint=width)
            write_env[lhs.name] = fit(bits, width)
            return
        if isinstance(lhs, ast.BitSelect):
            name = self._lhs_base(lhs)
            index = try_evaluate_const(lhs.index, dict(loop_env))
            current = list(self._read_signal(name, write_env))
            bits = self._eval(rhs_expr, read_env, loop_env, width_hint=1)
            if index is not None:
                if 0 <= index < len(current):
                    current[index] = bits[0]
            else:
                index_bits = self._eval(lhs.index, read_env, loop_env)
                for position in range(len(current)):
                    match = self._logic.eq(
                        index_bits, const_bits(position, len(index_bits)))
                    current[position] = self._logic.bit_mux(
                        current[position], bits[0], match)
            write_env[name] = current
            return
        if isinstance(lhs, ast.PartSelect):
            name = self._lhs_base(lhs)
            left = try_evaluate_const(lhs.left, dict(loop_env))
            right = try_evaluate_const(lhs.right, dict(loop_env))
            if left is None or right is None:
                raise SynthesisError("part-select assign needs const bounds")
            if lhs.mode == "+:":
                lsb, width = left, right
            elif lhs.mode == "-:":
                lsb, width = left - right + 1, right
            else:
                lsb, width = right, left - right + 1
            current = list(self._read_signal(name, write_env))
            bits = self._eval(rhs_expr, read_env, loop_env, width_hint=width)
            bits = fit(bits, width)
            for offset in range(width):
                if 0 <= lsb + offset < len(current):
                    current[lsb + offset] = bits[offset]
            write_env[name] = current
            return
        if isinstance(lhs, ast.Concat):
            total = sum(self._lhs_width(p) for p in lhs.parts)
            bits = fit(self._eval(rhs_expr, read_env, loop_env,
                                  width_hint=total), total)
            offset = total
            for part in lhs.parts:
                width = self._lhs_width(part)
                offset -= width
                piece = bits[offset:offset + width]
                self._assign_bits(part, piece, write_env)
            return
        raise SynthesisError(f"invalid lvalue {type(lhs).__name__}")

    def _assign_bits(self, lhs, bits, env):
        if isinstance(lhs, ast.Identifier):
            width = self._widths.get(lhs.name, len(bits))
            env[lhs.name] = fit(bits, width)
            return
        raise SynthesisError("nested concat lvalues must be identifiers")

    def _lhs_base(self, lhs):
        base = lhs.base
        if not isinstance(base, ast.Identifier):
            raise SynthesisError("lvalue base must be an identifier")
        return base.name

    def _lhs_width(self, lhs):
        if isinstance(lhs, ast.Identifier):
            return self._widths.get(lhs.name, 1)
        if isinstance(lhs, ast.BitSelect):
            return 1
        if isinstance(lhs, ast.PartSelect):
            left = try_evaluate_const(lhs.left)
            right = try_evaluate_const(lhs.right)
            if lhs.mode in ("+:", "-:"):
                return right
            return abs(left - right) + 1
        raise SynthesisError("unsupported lvalue in concat")

    def _lhs_nets(self, lhs, env):
        """Resolve a continuous-assign target to its nets."""
        if isinstance(lhs, ast.Identifier):
            nets = self._signal_bits(lhs.name)
            return nets, len(nets)
        if isinstance(lhs, ast.BitSelect):
            name = self._lhs_base(lhs)
            index = try_evaluate_const(lhs.index)
            if index is None:
                raise SynthesisError("continuous bit-select needs const index")
            return [self._signal_bits(name)[index]], 1
        if isinstance(lhs, ast.PartSelect):
            name = self._lhs_base(lhs)
            left = try_evaluate_const(lhs.left)
            right = try_evaluate_const(lhs.right)
            if left is None or right is None:
                raise SynthesisError("part-select needs const bounds")
            if lhs.mode == "+:":
                lsb, width = left, right
            elif lhs.mode == "-:":
                lsb, width = left - right + 1, right
            else:
                lsb, width = right, left - right + 1
            nets = self._signal_bits(name)[lsb:lsb + width]
            return nets, width
        if isinstance(lhs, ast.Concat):
            nets = []
            for part in lhs.parts:
                part_nets, _ = self._lhs_nets(part, env)
                nets = part_nets + nets  # concat is MSB-first
            return nets, len(nets)
        raise SynthesisError(f"invalid assign target {type(lhs).__name__}")

    def _exec_if(self, stmt, env, nba_env, loop_env):
        constant = try_evaluate_const(stmt.cond, dict(loop_env))
        if constant is not None and _only_loop_vars(stmt.cond, loop_env,
                                                    self._integers):
            branch = stmt.then_stmt if constant else stmt.else_stmt
            if branch is not None:
                self._exec_statement(branch, env, nba_env, loop_env)
            return
        cond = self._logic.logic_value(self._eval(stmt.cond, env, loop_env))
        then_env = dict(env)
        then_nba = nba_env if nba_env is env else dict(nba_env)
        self._exec_statement(stmt.then_stmt, then_env,
                             then_env if nba_env is env else then_nba,
                             dict(loop_env))
        else_env = dict(env)
        else_nba = nba_env if nba_env is env else dict(nba_env)
        if stmt.else_stmt is not None:
            self._exec_statement(stmt.else_stmt, else_env,
                                 else_env if nba_env is env else else_nba,
                                 dict(loop_env))
        self._merge(cond, then_env, else_env, env)
        if nba_env is not env:
            self._merge(cond, then_nba, else_nba, nba_env)

    def _exec_case(self, stmt, env, nba_env, loop_env):
        subject = self._eval(stmt.expr, env, loop_env)
        separate_nba = nba_env is not env
        arms = []
        default_env = dict(env)
        default_nba = dict(nba_env) if separate_nba else default_env
        explicit_default = False
        constant_patterns = set()
        for item in stmt.items:
            if not item.patterns:
                explicit_default = True
                self._exec_statement(item.statement, default_env,
                                     default_nba, dict(loop_env))
                continue
            match = CONST0
            for pattern in item.patterns:
                value = try_evaluate_const(pattern, dict(loop_env))
                if value is not None:
                    constant_patterns.add(value & ((1 << len(subject)) - 1))
                pattern_bits = self._eval(pattern, env, loop_env,
                                          width_hint=len(subject))
                match = self._logic.bit_or(
                    match, self._logic.eq(subject, pattern_bits))
            arm_env = dict(env)
            arm_nba = dict(nba_env) if separate_nba else arm_env
            self._exec_statement(item.statement, arm_env, arm_nba,
                                 dict(loop_env))
            arms.append((match, arm_env, arm_nba))
        # A case whose constant patterns cover every subject value is
        # complete: its last arm acts as the default (prevents latched
        # feedback, i.e. a fake combinational cycle).
        if (not explicit_default and arms
                and len(constant_patterns) == (1 << len(subject))):
            _, default_env, default_nba = arms.pop()
        result, result_nba = default_env, default_nba
        for match, arm_env, arm_nba in reversed(arms):
            merged = dict(env)
            self._merge(match, arm_env, result, merged)
            if separate_nba:
                merged_nba = dict(nba_env)
                self._merge(match, arm_nba, result_nba, merged_nba)
                result_nba = merged_nba
            else:
                result_nba = merged
            result = merged
        env.clear()
        env.update(result)
        if separate_nba:
            nba_env.clear()
            nba_env.update(result_nba)

    def _merge(self, cond, then_env, else_env, out_env):
        # Sorted so gate creation order never depends on hash-randomized
        # set order; identical source must synthesize identically in every
        # process (content-addressed caching relies on it).
        for name in sorted(set(then_env) | set(else_env)):
            then_bits = then_env.get(name)
            else_bits = else_env.get(name)
            if then_bits is None:
                then_bits = self._read_signal(name, out_env)
            if else_bits is None:
                else_bits = self._read_signal(name, out_env)
            if then_bits == else_bits:
                out_env[name] = then_bits
            else:
                out_env[name] = self._logic.mux_word(else_bits, then_bits,
                                                     cond)

    def _read_signal(self, name, env):
        if env is not None and name in env:
            return env[name]
        return self._signal_bits(name)

    def _exec_for(self, stmt, env, nba_env, loop_env):
        inner = dict(loop_env)
        self._exec_assign(stmt.init, env, env, inner)
        iterations = 0
        while True:
            condition = try_evaluate_const(stmt.cond, dict(inner))
            if condition is None:
                raise SynthesisError("for condition must be constant")
            if not condition:
                break
            iterations += 1
            if iterations > _MAX_UNROLL:
                raise SynthesisError("for loop exceeds unroll limit")
            self._exec_statement(stmt.body, env, nba_env, inner)
            self._exec_assign(stmt.step, env, env, inner)

    # -- expressions ----------------------------------------------------------
    def _natural_width(self, expr, loop_env):
        if isinstance(expr, ast.Identifier):
            if expr.name in loop_env:
                return max(1, int(loop_env[expr.name]).bit_length())
            return self._widths.get(expr.name, 1)
        if isinstance(expr, ast.IntConst):
            return max(1, expr.value.bit_length())
        if isinstance(expr, ast.BasedConst):
            if expr.width is not None:
                return expr.width
            return max(1, expr.value.bit_length())
        if isinstance(expr, ast.UnaryOp):
            if expr.op in ("&", "|", "^", "~&", "~|", "~^", "!"):
                return 1
            return self._natural_width(expr.operand, loop_env)
        if isinstance(expr, ast.BinaryOp):
            op = expr.op
            if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                return 1
            left = self._natural_width(expr.left, loop_env)
            right = self._natural_width(expr.right, loop_env)
            if op == "+":
                return max(left, right) + 1
            if op == "*":
                return left + right
            if op in ("<<", "<<<"):
                amount = try_evaluate_const(expr.right, dict(loop_env))
                return left + (amount if amount is not None else 0)
            return max(left, right)
        if isinstance(expr, ast.Ternary):
            return max(self._natural_width(expr.true_value, loop_env),
                       self._natural_width(expr.false_value, loop_env))
        if isinstance(expr, ast.Concat):
            return sum(self._natural_width(p, loop_env) for p in expr.parts)
        if isinstance(expr, ast.Repeat):
            count = try_evaluate_const(expr.count, dict(loop_env)) or 1
            return count * self._natural_width(expr.value, loop_env)
        if isinstance(expr, ast.BitSelect):
            return 1
        if isinstance(expr, ast.PartSelect):
            left = try_evaluate_const(expr.left, dict(loop_env))
            right = try_evaluate_const(expr.right, dict(loop_env))
            if expr.mode in ("+:", "-:"):
                return right if right is not None else 1
            if left is None or right is None:
                raise SynthesisError("part select needs const bounds")
            return abs(left - right) + 1
        if isinstance(expr, ast.FunctionCall):
            if expr.args:
                return self._natural_width(expr.args[0], loop_env)
        return 1

    def _eval(self, expr, env, loop_env=None, width_hint=None):
        loop_env = loop_env if loop_env is not None else {}
        bits = self._eval_inner(expr, env, loop_env, width_hint)
        if width_hint is not None:
            return fit(bits, max(width_hint, len(bits)))
        return bits

    def _eval_inner(self, expr, env, loop_env, width_hint):
        logic = self._logic
        if isinstance(expr, ast.Identifier):
            if expr.name in loop_env:
                value = loop_env[expr.name]
                return const_bits(value, width_hint
                                  or max(1, value.bit_length()))
            return list(self._read_signal(expr.name, env))
        if isinstance(expr, (ast.IntConst, ast.BasedConst)):
            value = expr.value
            width = (expr.width if isinstance(expr, ast.BasedConst)
                     and expr.width is not None
                     else width_hint or max(1, value.bit_length()))
            return const_bits(value, width)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env, loop_env)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, env, loop_env, width_hint)
        if isinstance(expr, ast.Ternary):
            cond = logic.logic_value(self._eval(expr.cond, env, loop_env))
            then_bits = self._eval(expr.true_value, env, loop_env, width_hint)
            else_bits = self._eval(expr.false_value, env, loop_env, width_hint)
            return logic.mux_word(else_bits, then_bits, cond)
        if isinstance(expr, ast.Concat):
            bits = []
            for part in reversed(expr.parts):
                width = self._natural_width(part, loop_env)
                bits.extend(fit(self._eval(part, env, loop_env), width))
            return bits
        if isinstance(expr, ast.Repeat):
            count = try_evaluate_const(expr.count, dict(loop_env))
            if count is None:
                raise SynthesisError("repeat count must be constant")
            width = self._natural_width(expr.value, loop_env)
            piece = fit(self._eval(expr.value, env, loop_env), width)
            return piece * count
        if isinstance(expr, ast.BitSelect):
            base = self._eval(expr.base, env, loop_env)
            index = try_evaluate_const(expr.index, dict(loop_env))
            if index is not None:
                if 0 <= index < len(base):
                    return [base[index]]
                return [CONST0]
            index_bits = self._eval(expr.index, env, loop_env)
            return [logic.select_var_bit(base, index_bits)]
        if isinstance(expr, ast.PartSelect):
            base = self._eval(expr.base, env, loop_env)
            left = try_evaluate_const(expr.left, dict(loop_env))
            right = try_evaluate_const(expr.right, dict(loop_env))
            if left is None or right is None:
                raise SynthesisError("part select needs const bounds")
            if expr.mode == "+:":
                lsb, width = left, right
            elif expr.mode == "-:":
                lsb, width = left - right + 1, right
            else:
                lsb, width = right, left - right + 1
            return fit(base[lsb:lsb + width], width)
        if isinstance(expr, ast.FunctionCall):
            if expr.name in ("$signed", "$unsigned") and expr.args:
                return self._eval(expr.args[0], env, loop_env, width_hint)
            raise SynthesisError(f"cannot synthesize call {expr.name!r}")
        raise SynthesisError(
            f"cannot synthesize expression {type(expr).__name__}")

    def _eval_unary(self, expr, env, loop_env):
        logic = self._logic
        operand = self._eval(expr.operand, env, loop_env)
        op = expr.op
        if op == "+":
            return operand
        if op == "-":
            return logic.neg(operand)
        if op == "~":
            return logic.word_not(operand)
        if op == "!":
            return [logic.bit_not(logic.logic_value(operand))]
        if op == "&":
            return [logic.reduce_and(operand)]
        if op == "~&":
            return [logic.bit_not(logic.reduce_and(operand))]
        if op == "|":
            return [logic.reduce_or(operand)]
        if op == "~|":
            return [logic.bit_not(logic.reduce_or(operand))]
        if op == "^":
            return [logic.reduce_xor(operand)]
        if op == "~^":
            return [logic.bit_not(logic.reduce_xor(operand))]
        raise SynthesisError(f"unknown unary {op!r}")

    def _eval_binary(self, expr, env, loop_env, width_hint):
        logic = self._logic
        op = expr.op
        if op in ("&&", "||"):
            left = logic.logic_value(self._eval(expr.left, env, loop_env))
            right = logic.logic_value(self._eval(expr.right, env, loop_env))
            if op == "&&":
                return [logic.bit_and(left, right)]
            return [logic.bit_or(left, right)]
        # Context-determined sizing: the assignment-context width reaches
        # down into arithmetic/bitwise operands (IEEE 1364 expression
        # sizing), so nested additions keep their carries.
        operand_hint = (width_hint if op in ("+", "-", "*", "&", "|", "^",
                                             "~^", "^~") else None)
        left = self._eval(expr.left, env, loop_env, width_hint=operand_hint)
        right = self._eval(expr.right, env, loop_env,
                           width_hint=operand_hint)
        natural = max(len(left), len(right))
        target = max(width_hint or 0, natural)
        if op == "+":
            # Keep the carry when the context does not cap the width.
            return logic.add(left, right,
                             width=target if width_hint else natural + 1)
        if op == "-":
            return logic.sub(left, right, width=target)
        if op == "*":
            return logic.mul(left, right, width=width_hint
                             or (len(left) + len(right)))
        if op == "&":
            return logic.word_and(left, right)
        if op == "|":
            return logic.word_or(left, right)
        if op == "^":
            return logic.word_xor(left, right)
        if op in ("~^", "^~"):
            return logic.word_not(logic.word_xor(left, right))
        if op == "==":
            return [logic.eq(left, right)]
        if op == "!=":
            return [logic.neq(left, right)]
        if op == "<":
            return [logic.lt(left, right)]
        if op == ">":
            return [logic.lt(right, left)]
        if op == "<=":
            return [logic.le(left, right)]
        if op == ">=":
            return [logic.le(right, left)]
        if op in ("<<", "<<<", ">>", ">>>"):
            is_left = op in ("<<", "<<<")
            amount = try_evaluate_const(expr.right, dict(loop_env))
            width = max(target, len(left))
            if amount is not None:
                return logic.shift_const(left, amount, is_left, width)
            return logic.shift_var(left, right, is_left, width)
        raise SynthesisError(f"cannot synthesize operator {op!r}")


def _only_loop_vars(expr, loop_env, integers):
    if isinstance(expr, ast.Identifier):
        return expr.name in loop_env or expr.name in integers
    if isinstance(expr, (ast.IntConst, ast.BasedConst)):
        return True
    if isinstance(expr, ast.UnaryOp):
        return _only_loop_vars(expr.operand, loop_env, integers)
    if isinstance(expr, ast.BinaryOp):
        return (_only_loop_vars(expr.left, loop_env, integers)
                and _only_loop_vars(expr.right, loop_env, integers))
    return False


def synthesize(module):
    """Synthesize a flattened module; returns a validated Netlist."""
    return Synthesizer(module).synthesize()


def synthesize_verilog(text, top=None, library=None):
    """Parse + elaborate + synthesize Verilog text in one call.

    Args:
        library: optional techmap vocabulary (see
            :data:`repro.synth.techmap.LIBRARIES`); when given, the
            synthesized netlist is remapped onto that cell library.
    """
    from repro.dataflow.elaborate import elaborate
    from repro.verilog import parse_source

    source = parse_source(text)
    netlist = synthesize(elaborate(source, top=top))
    if library is not None:
        from repro.synth.techmap import map_netlist

        netlist = map_netlist(netlist, library)
    return netlist
