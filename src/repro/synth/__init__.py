"""RTL-to-gates synthesis: bit blasting and DFF inference."""

from repro.synth.bitblast import BitLowering, const_bits, fit
from repro.synth.synthesize import Synthesizer, synthesize, synthesize_verilog
from repro.synth.techmap import LIBRARIES, map_netlist

__all__ = [
    "BitLowering", "const_bits", "fit",
    "Synthesizer", "synthesize", "synthesize_verilog",
    "LIBRARIES", "map_netlist",
]
