"""RTL-to-gates synthesis: bit blasting and DFF inference."""

from repro.synth.bitblast import BitLowering, const_bits, fit
from repro.synth.synthesize import Synthesizer, synthesize, synthesize_verilog

__all__ = [
    "BitLowering", "const_bits", "fit",
    "Synthesizer", "synthesize", "synthesize_verilog",
]
