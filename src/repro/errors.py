"""Exception hierarchy for the GNN4IP reproduction library."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class VerilogError(ReproError):
    """Base class for errors in the Verilog front-end."""


class LexerError(VerilogError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ParseError(VerilogError):
    """Raised when the parser meets an unexpected token."""

    def __init__(self, message, line=None):
        location = f" at line {line}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line


class PreprocessorError(VerilogError):
    """Raised for malformed compiler directives (`define, `include...)."""


class ElaborationError(ReproError):
    """Raised when design hierarchy cannot be flattened."""


class DataflowError(ReproError):
    """Raised when dataflow analysis cannot handle a construct."""


class GraphIRError(ReproError):
    """Raised for malformed or incompatible GraphIR payloads."""


class SynthesisError(ReproError):
    """Raised when RTL cannot be lowered to a gate-level netlist."""


class SimulationError(ReproError):
    """Raised when a netlist or RTL module cannot be simulated."""


class NetlistError(ReproError):
    """Raised for structurally invalid netlists."""


class DatasetError(ReproError):
    """Raised when a corpus or pair dataset cannot be constructed."""


class ModelError(ReproError):
    """Raised for invalid model configuration or usage."""


class IndexStoreError(ReproError):
    """Raised for missing, corrupt, or incompatible fingerprint indexes."""


class EvalError(ReproError):
    """Raised when an evaluation run cannot be configured or executed."""


class CalibrationError(ReproError):
    """Raised for unusable calibration data or incompatible artifacts."""

