"""Adversarial piracy scenarios: named, seeded attack pipelines.

The paper's threat model (§II) is a thief who takes an IP from the
defender's library and hides the theft before taping out: restyling the
RTL, obfuscating the gate-level netlist, resynthesizing, or burying the
stolen block inside a larger design of their own.  Each scenario here
composes the repo's existing transforms (:mod:`repro.obfuscate`,
:mod:`repro.synth`) into one such attack and emits
:class:`Suspect` records — Verilog source plus ground truth plus
provenance — that the evaluation runner pushes through one batched
:meth:`~repro.api.facade.Session.query` pass.

Every scenario is deterministic per ``(scenario, design, variant, seed)``:
the same context always generates byte-identical suspects, which is what
makes the golden-report regression test possible.  Scenarios marked
``semantics_preserving`` are spot-checked with random-vector equivalence
(:mod:`repro.sim.equivalence`) at generation time; ``partial_theft`` is
intentionally lossy (only a fraction of the stolen logic survives) and is
excluded from those checks.
"""

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.attacks import AttackNotApplicable, run_attack, verify_provenance
from repro.designs.base import get_family
from repro.designs.corpus import canonical_variant
from repro.errors import EvalError
from repro.netlist.cells import DFF
from repro.netlist.netlist import CONST0, CONST1
from repro.netlist.verilog_io import write_netlist
from repro.obfuscate.rtl_variants import make_rtl_variant
from repro.obfuscate.transforms import obfuscate
from repro.sim.equivalence import check_netlists_equivalent
from repro.synth.synthesize import synthesize_verilog


@dataclass
class Suspect:
    """One attack instance handed to the detector.

    Attributes:
        name: unique suspect id (``scenario/design.variant``).
        scenario: the generating scenario's name.
        source: Verilog text (behavioral RTL or structural netlist —
            both extraction frontends accept either).
        true_design: top-module name of the stolen design (``None`` for
            non-pirated suspects).
        pirated: ground-truth label.
        provenance: seeds, transform parameters, equivalence-check
            outcome — everything needed to regenerate or audit the
            suspect.
    """

    name: str
    scenario: str
    source: str
    true_design: str
    pirated: bool
    provenance: dict = field(default_factory=dict)
    #: Transient ``(base_netlist, suspect_netlist)`` pair used by the
    #: generation-time equivalence spot check; never serialized.
    check_pair: tuple = None

    def as_dict(self):
        """JSON-ready record (the source text is deliberately omitted)."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "true_design": self.true_design,
            "pirated": bool(self.pirated),
            "provenance": self.provenance,
        }


@dataclass
class ScenarioContext:
    """Everything a scenario needs to generate suspects deterministically.

    ``families`` are the designs present in the corpus (the thief steals
    these); ``holdouts`` are synthesizable families *not* in the corpus —
    they provide the non-pirated negatives and the host designs that
    stolen blocks are grafted into.
    """

    families: tuple
    holdouts: tuple
    seed: int = 0
    suspects_per_design: int = 1
    #: Theft fractions swept by ``partial_theft`` (one suspect batch per
    #: fraction).  A bare float is accepted and normalized to a 1-tuple.
    theft_fractions: tuple = (0.3, 0.6)
    check_equivalence: bool = True
    equivalence_checks: int = 2
    equivalence_vectors: int = 24
    #: Which corpus builder's seeding scheme the base designs follow:
    #: ``netlist`` (``materialize_netlist_corpus`` / ``canonical_variant``)
    #: or ``rtl`` (``materialize_corpus`` / ``generate_corpus`` instance 0).
    corpus_scheme: str = "netlist"
    #: Family -> position in the corpus builder's *original* family list.
    #: Must be supplied when ``families`` is a filtered subset — offsets
    #: derived from a shrunken list would regenerate different design
    #: instances than the corpus indexed.
    offsets: dict = None
    #: Extra never-indexed families that only feed the ``unrelated``
    #: scenario (no graft hosting, so adding them leaves every pirated
    #: suspect byte-identical).  They widen the negative pool enough
    #: for calibration to have measurable FPR resolution.
    negative_families: tuple = ()
    #: Variants per negative family in ``unrelated`` (``None`` falls
    #: back to ``suspects_per_design``).  Raising it only *appends*
    #: variants — the per-suspect seed depends on (scenario, design,
    #: variant) alone, so existing negatives stay byte-identical.
    negatives_per_design: int = None

    def __post_init__(self):
        self.families = tuple(self.families)
        self.holdouts = tuple(self.holdouts)
        self.negative_families = tuple(self.negative_families)
        if isinstance(self.theft_fractions, (int, float)):
            self.theft_fractions = (self.theft_fractions,)
        self.theft_fractions = tuple(float(f)
                                     for f in self.theft_fractions)
        if self.corpus_scheme not in ("netlist", "rtl"):
            raise EvalError(f"unknown corpus scheme {self.corpus_scheme!r}")
        overlap = set(self.families) & set(self.holdouts)
        if overlap:
            raise EvalError(f"holdout families must not be in the corpus: "
                            f"{sorted(overlap)}")
        overlap = set(self.negative_families) & (set(self.families)
                                                 | set(self.holdouts))
        if overlap:
            raise EvalError(f"negative families must be distinct from "
                            f"corpus and holdout families: "
                            f"{sorted(overlap)}")
        if self.offsets is None:
            self.offsets = {name: i for i, name in enumerate(self.families)}
            self.offsets.update(
                {name: len(self.families) + i
                 for i, name in enumerate(self.holdouts)})
        base = len(self.families) + len(self.holdouts)
        for i, name in enumerate(self.negative_families):
            self.offsets.setdefault(name, base + i)
        self._rtl = {}
        self._netlists = {}

    # -- deterministic seeds -------------------------------------------------
    def suspect_seed(self, scenario, design, variant):
        """A stable per-suspect seed, independent of generation order."""
        tag = zlib.crc32(f"{scenario}:{design}".encode()) % 99991
        return self.seed * 1000003 + tag * 101 + variant

    # -- cached base designs -------------------------------------------------
    def base_rtl(self, name):
        """The RTL instance the corpus indexed as this family's instance 0
        (per the corpus scheme's seeding), cached."""
        if name not in self._rtl:
            offset = self.offsets[name]
            if self.corpus_scheme == "rtl":
                # generate_corpus / materialize_corpus instance 0.
                family = get_family(name)
                self._rtl[name] = family.variants(
                    1, seed=self.seed + 1000 * offset)[0]
            else:
                self._rtl[name] = canonical_variant(name, offset=offset,
                                                    seed=self.seed)
        return self._rtl[name]

    def base_netlist(self, name):
        """Synthesized netlist of :meth:`base_rtl` (cached)."""
        if name not in self._netlists:
            variant = self.base_rtl(name)
            self._netlists[name] = synthesize_verilog(variant.verilog,
                                                      top=variant.top)
        return self._netlists[name]


# -- partial-theft grafting ---------------------------------------------------
def graft_netlists(host, stolen, fraction=1.0, seed=0, name=None):
    """Splice a fraction of a stolen netlist's logic into a host design.

    Models the paper's hardest piracy case: the thief embeds (part of)
    the stolen block inside a larger design of their own.  The host is
    kept fully intact; ``fraction`` of the stolen gates (a prefix of the
    levelized order, flip-flops last) are copied in under fresh names,
    their dangling inputs are driven by randomly chosen host nets, and
    any surviving stolen primary output becomes an extra output of the
    graft so the logic stays observable.

    The graft is deliberately **not** equivalent to either parent — it is
    a third design containing stolen logic.

    Args:
        host: the thief's own :class:`~repro.netlist.Netlist` (unchanged
            ports; gains gates and outputs).
        stolen: the victim netlist.
        fraction: fraction of the stolen gates to keep, in ``(0, 1]``.
        seed: drives the host-net hookup choices.
        name: module name of the grafted design.

    Returns:
        A new validated :class:`~repro.netlist.Netlist`.
    """
    if not 0.0 < fraction <= 1.0:
        raise EvalError(f"theft fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    out = host.copy(name if name is not None else f"{host.name}_graft")
    prefix = "st_"
    host_names = out.nets() | set(out.clocks)
    while any(net.startswith(prefix) for net in host_names):
        prefix = "s" + prefix

    combinational = stolen.levelize()
    flops = [g for g in stolen.gates if g.cell == DFF]
    ordered = combinational + flops
    keep = max(1, int(round(fraction * len(ordered))))
    kept = ordered[:keep]
    kept_outputs = {g.output for g in kept}

    # Data nets the kept slice reads but does not drive are wired to the
    # host; stolen clocks collapse onto the host clock (or a new input).
    candidates = sorted(host_names - set(out.clocks))
    clock = out.clocks[0] if out.clocks else None
    mapping = {}

    def mapped(net, is_clock=False):
        nonlocal clock
        if net in (CONST0, CONST1):
            return net
        if net in kept_outputs:
            return prefix + net
        if net not in mapping:
            if is_clock or net in stolen.clocks:
                if clock is None:
                    clock = out.add_input(prefix + "clk")
                mapping[net] = clock
            else:
                mapping[net] = candidates[int(rng.integers(0,
                                                           len(candidates)))]
        return mapping[net]

    for gate in kept:
        if gate.cell == DFF:
            inputs = [mapped(gate.inputs[0]), mapped(gate.inputs[1],
                                                     is_clock=True)]
        else:
            inputs = [mapped(net) for net in gate.inputs]
        out.add_gate(gate.cell, prefix + gate.output, inputs,
                     name=f"{prefix}g{len(out.gates)}")

    exposed = [net for net in stolen.outputs if net in kept_outputs]
    if not exposed:
        exposed = [kept[-1].output]
    for net in exposed:
        out.add_output(prefix + net)
    out.validate()
    return out


# -- scenario generators ------------------------------------------------------
def _per_design(ctx, scenario):
    """Yield ``(offset, design_name, variant_index, seed)`` tuples."""
    for offset, name in enumerate(ctx.families):
        for variant in range(ctx.suspects_per_design):
            yield offset, name, variant, ctx.suspect_seed(scenario, name,
                                                          variant)


def _scenario_rtl_variant(ctx):
    """RTL restyling: rename signals, shuffle items, swap commutative
    operands — the second-engineer / code-laundering attack."""
    for _, name, variant, seed in _per_design(ctx, "rtl_variant"):
        base = ctx.base_rtl(name)
        text = make_rtl_variant(base.verilog, seed=seed)
        suspect_net = synthesize_verilog(text, top=base.top)
        yield Suspect(
            name=f"rtl_variant/{name}.{variant}",
            scenario="rtl_variant", source=text,
            true_design=base.top, pirated=True,
            provenance={"seed": seed,
                        "transforms": ["rename", "swap_commutative",
                                       "shuffle"]},
            check_pair=(ctx.base_netlist(name), suspect_net))


def _scenario_obfuscate(strength):
    def generate(ctx):
        scenario = f"netlist_obfuscate_s{strength}"
        for _, name, variant, seed in _per_design(ctx, scenario):
            base = ctx.base_netlist(name)
            net = obfuscate(base, seed=seed, strength=strength,
                            name=f"{name}_s{strength}v{variant}")
            yield Suspect(
                name=f"{scenario}/{name}.{variant}",
                scenario=scenario, source=write_netlist(net),
                true_design=ctx.base_rtl(name).top, pirated=True,
                provenance={"seed": seed, "strength": strength,
                            "gates": net.num_gates,
                            "base_gates": base.num_gates},
                check_pair=(base, net))
    return generate


def _scenario_resynthesis(ctx):
    """Cross-level attack: restyle the stolen RTL, then resynthesize it —
    the suspect arrives as a gate-level netlist of an RTL theft."""
    for _, name, variant, seed in _per_design(ctx, "resynthesis"):
        base = ctx.base_rtl(name)
        restyled = make_rtl_variant(base.verilog, seed=seed)
        net = synthesize_verilog(restyled, top=base.top)
        net.name = f"{name}_rs{variant}"
        yield Suspect(
            name=f"resynthesis/{name}.{variant}",
            scenario="resynthesis", source=write_netlist(net),
            true_design=base.top, pirated=True,
            provenance={"seed": seed, "gates": net.num_gates},
            check_pair=(ctx.base_netlist(name), net))


def _scenario_partial_theft(ctx):
    """Graft a stolen block into a host design from a holdout family.

    Sweeps every configured theft fraction: the same design/variant grid
    is regenerated per fraction with a fraction-tagged seed and name, so
    the report can break recall down by how little of the block was
    stolen.
    """
    if not ctx.holdouts:
        raise EvalError("partial_theft needs at least one holdout family "
                        "to host the stolen logic")
    for fraction in ctx.theft_fractions:
        tag = f"f{int(round(fraction * 100)):02d}"
        for _, name, variant, _ in _per_design(ctx, "partial_theft"):
            seed = ctx.suspect_seed(f"partial_theft@{tag}", name, variant)
            host_name = ctx.holdouts[(ctx.offsets[name] + variant)
                                     % len(ctx.holdouts)]
            graft = graft_netlists(ctx.base_netlist(host_name),
                                   ctx.base_netlist(name),
                                   fraction=fraction, seed=seed,
                                   name=f"{host_name}_pt{tag}v{variant}")
            yield Suspect(
                name=f"partial_theft/{name}.{tag}.{variant}",
                scenario="partial_theft", source=write_netlist(graft),
                true_design=ctx.base_rtl(name).top, pirated=True,
                provenance={"seed": seed, "host": host_name,
                            "fraction": fraction,
                            "gates": graft.num_gates})


def _scenario_attack(attack, tag, sequential_only=False):
    """Generator factory for the staged pipelines in :mod:`repro.attacks`.

    Each suspect is the final artifact of one seeded multi-stage attack;
    its provenance carries the full stage chain (per-stage seeds,
    artifact hashes, chain hash) and is re-verified by
    :func:`generate_scenarios` before the suspect is released.  The
    first ``ctx.equivalence_checks`` suspects run with in-pipeline
    checks enabled: per-stage equivalence for preserving stages, the
    on/off-trigger contract for the Trojan.
    """
    def generate(ctx):
        checked = 0
        for _, name, variant, seed in _per_design(ctx, attack):
            base = ctx.base_netlist(name)
            if sequential_only and base.is_combinational():
                continue
            check = (ctx.check_equivalence
                     and checked < ctx.equivalence_checks)
            try:
                result = run_attack(attack, base, seed, check=check,
                                    vectors=ctx.equivalence_vectors,
                                    name=f"{name}_{tag}{variant}")
            except AttackNotApplicable:
                continue
            if check:
                checked += 1
            yield Suspect(
                name=f"{attack}/{name}.{variant}",
                scenario=attack, source=write_netlist(result.netlist),
                true_design=ctx.base_rtl(name).top, pirated=True,
                provenance={**result.provenance,
                            "gates": result.netlist.num_gates,
                            "base_gates": base.num_gates},
                check_pair=((base, result.check_netlist)
                            if result.semantics_preserving else None))
    return generate


def _scenario_unrelated(ctx):
    """Negatives: designs from families the corpus has never seen, both
    as restyled RTL and as obfuscated netlists.

    Draws from the holdouts plus any extra ``negative_families``;
    ``negatives_per_design`` widens the variant grid.  Both knobs only
    append suspects — the per-suspect seeds of the original
    holdout-variant grid are unchanged.
    """
    variants = (ctx.negatives_per_design
                if ctx.negatives_per_design is not None
                else ctx.suspects_per_design)
    for name in ctx.holdouts + ctx.negative_families:
        base = ctx.base_rtl(name)
        for variant in range(variants):
            seed = ctx.suspect_seed("unrelated", name, variant)
            yield Suspect(
                name=f"unrelated/{name}.rtl{variant}",
                scenario="unrelated",
                source=make_rtl_variant(base.verilog, seed=seed),
                true_design=None, pirated=False,
                provenance={"seed": seed, "form": "rtl"})
            net = obfuscate(ctx.base_netlist(name), seed=seed + 1,
                            strength=2, name=f"{name}_u{variant}")
            yield Suspect(
                name=f"unrelated/{name}.net{variant}",
                scenario="unrelated", source=write_netlist(net),
                true_design=None, pirated=False,
                provenance={"seed": seed + 1, "form": "netlist"})


@dataclass(frozen=True)
class ScenarioSpec:
    """One named attack pipeline in the registry."""

    name: str
    generate: object
    pirated: bool
    semantics_preserving: bool
    description: str


#: The registry, in report order.  ``semantics_preserving`` scenarios are
#: spot-checked with random-vector equivalence at generation time;
#: ``partial_theft`` is intentionally lossy and therefore excluded.
SCENARIOS = {spec.name: spec for spec in (
    ScenarioSpec("rtl_variant", _scenario_rtl_variant, True, True,
                 "RTL restyling: rename / reorder / operand swaps"),
    ScenarioSpec("netlist_obfuscate_s1", _scenario_obfuscate(1), True, True,
                 "netlist obfuscation, strength 1"),
    ScenarioSpec("netlist_obfuscate_s2", _scenario_obfuscate(2), True, True,
                 "netlist obfuscation, strength 2"),
    ScenarioSpec("netlist_obfuscate_s3", _scenario_obfuscate(3), True, True,
                 "netlist obfuscation, strength 3"),
    ScenarioSpec("resynthesis", _scenario_resynthesis, True, True,
                 "RTL restyle, then resynthesize to a netlist"),
    ScenarioSpec("partial_theft", _scenario_partial_theft, True, False,
                 "stolen block grafted into a holdout host design"),
    ScenarioSpec("tech_remap", _scenario_attack("tech_remap", "tm"),
                 True, True,
                 "staged attack: alternate cell-library remap + rename"),
    ScenarioSpec("retime",
                 _scenario_attack("retime", "rt", sequential_only=True),
                 True, True,
                 "staged attack: backward register retiming"),
    ScenarioSpec("fsm_reencode",
                 _scenario_attack("fsm_reencode", "fsm",
                                  sequential_only=True),
                 True, True,
                 "staged attack: linear FSM state re-encoding"),
    ScenarioSpec("wrapper", _scenario_attack("wrapper", "wr"), True, True,
                 "staged attack: core wrapped in a decoy-port top"),
    ScenarioSpec("trojan", _scenario_attack("trojan", "tj"), True, False,
                 "staged attack: rare-trigger Trojan on a stolen design"),
    ScenarioSpec("unrelated", _scenario_unrelated, False, False,
                 "designs from families the corpus has never seen"),
)}


def scenario_names():
    """All registered scenario names, in report order."""
    return list(SCENARIOS)


def _spot_check(ctx, suspects):
    """Equivalence-check the first few suspects of a preserving scenario.

    Records the outcome on each checked suspect's provenance as
    ``{"vectors": n, "equivalent": bool}`` (plus the counterexample on a
    failure); unchecked suspects carry ``None``.
    """
    checked = 0
    for suspect in suspects:
        if suspect.check_pair is None or checked >= ctx.equivalence_checks:
            suspect.provenance.setdefault("equivalence", None)
            continue
        base, transformed = suspect.check_pair
        report = check_netlists_equivalent(base, transformed,
                                           vectors=ctx.equivalence_vectors,
                                           seed=ctx.suspect_seed(
                                               "equivalence",
                                               suspect.name, 0) % (2 ** 31))
        outcome = {"vectors": report.vectors,
                   "equivalent": bool(report.equivalent)}
        if not report.equivalent:
            outcome["counterexample"] = repr(report.counterexample)
        suspect.provenance["equivalence"] = outcome
        checked += 1


def generate_scenarios(ctx, names=None):
    """Generate every suspect for the requested scenarios.

    Args:
        ctx: a :class:`ScenarioContext`.
        names: scenario subset (default: all registered, in order).

    Returns:
        list of :class:`Suspect`, grouped by scenario in registry order.
        Deterministic: the same context and names always produce the
        same suspects, byte for byte.
    """
    if names is None:
        names = scenario_names()
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise EvalError(f"unknown scenarios {unknown}; "
                        f"known: {scenario_names()}")
    suspects = []
    for name in scenario_names():
        if name not in names:
            continue
        spec = SCENARIOS[name]
        generated = list(spec.generate(ctx))
        if ctx.check_equivalence and spec.semantics_preserving:
            _spot_check(ctx, generated)
        for suspect in generated:
            suspect.check_pair = None  # drop netlists; keep records light
            if "chain_hash" in suspect.provenance:
                # Staged attacks ship a provenance chain; refuse loudly
                # if the artifact or its history was corrupted.
                verify_provenance(suspect.source, suspect.provenance)
        suspects.extend(generated)
    return suspects
