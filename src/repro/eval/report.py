"""The evaluation report: one stable, JSON-serializable result object.

``EvalReport.as_dict()`` is the wire format: the CLI's ``--json`` output,
the benchmark artifact, and the golden-file regression fixture are all
this exact shape.  Floats are rounded (:data:`FLOAT_DIGITS` places) so
reports are stable across BLAS rounding noise, and every mapping is
emitted with sorted keys — a metric drift shows up as a clean one-line
diff against the checked-in golden file.

``timings`` is the one deliberately non-deterministic section (wall-clock
seconds); regression comparisons must exclude it.
"""

import json

#: Bump when the report shape changes; consumers key on this.
#: v2: staged-attack scenarios (tech_remap / retime / fsm_reencode /
#: wrapper / trojan) with provenance chains in suspect records.
SCHEMA_VERSION = 2

#: Rounding applied to every float in the serialized report.
FLOAT_DIGITS = 6


def _stable(value):
    """Recursively round floats and sort mappings for stable output."""
    if isinstance(value, float):
        return round(value, FLOAT_DIGITS)
    if isinstance(value, dict):
        return {str(k): _stable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_stable(v) for v in value]
    return value


class EvalReport:
    """Results of one evaluation run (see :mod:`repro.eval.runner`).

    Attributes:
        config: the :class:`~repro.eval.runner.EvalConfig` as a dict.
        corpus: indexed-corpus summary (designs, entries, level...).
        model: detector summary (delta, fingerprint hash, trained flag).
        scenarios: per-scenario metric dicts, keyed by scenario name.
        overall: corpus-wide metrics (confusion at delta, AUC, recall@k).
        baselines: optional classical-baseline comparisons.
        timings: wall-clock seconds per phase (non-deterministic).
    """

    def __init__(self, config, corpus, model, scenarios, overall,
                 baselines=None, timings=None):
        self.config = config
        self.corpus = corpus
        self.model = model
        self.scenarios = scenarios
        self.overall = overall
        self.baselines = baselines or {}
        self.timings = timings or {}

    def as_dict(self):
        """The stable JSON shape (rounded floats, sorted keys)."""
        return _stable({
            "schema_version": SCHEMA_VERSION,
            "config": self.config,
            "corpus": self.corpus,
            "model": self.model,
            "scenarios": self.scenarios,
            "overall": self.overall,
            "baselines": self.baselines,
            "timings": self.timings,
        })

    def to_json(self, indent=1):
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    # -- convenience accessors -------------------------------------------
    def recall_at(self, k, scenario=None):
        """Recall@k for one scenario (or overall); ``None`` when absent."""
        section = (self.scenarios.get(scenario, {}) if scenario
                   else self.overall)
        return section.get("recall_at_k", {}).get(str(k))

    def render_text(self):
        """Human-readable summary (the CLI's non-JSON output)."""
        lines = []
        corpus = self.corpus
        trained = self.model.get("trained")
        lines.append(f"corpus: {corpus.get('designs', '?')} designs / "
                     f"{corpus.get('entries', '?')} entries at level "
                     f"{corpus.get('level', '?')}   "
                     f"delta {self.model.get('delta', 0.0):+.4f}"
                     f"{'  (UNTRAINED)' if trained is False else ''}")
        ks = sorted(int(k) for k in
                    self.overall.get("recall_at_k", {}))
        header = (f"{'scenario':22s} {'n':>4s} "
                  + " ".join(f"r@{k:<3d}" for k in ks)
                  + f" {'det@delta':>9s} {'auc':>6s} {'equiv':>7s}")
        lines.append(header)
        for name, metrics in self.scenarios.items():
            recalls = " ".join(
                self._cell(metrics.get("recall_at_k", {}).get(str(k)))
                for k in ks)
            equivalence = metrics.get("equivalence")
            equiv = (f"{equivalence['passed']}/{equivalence['checked']}"
                     if equivalence else "-")
            lines.append(
                f"{name:22s} {metrics.get('suspects', 0):4d} {recalls} "
                f"{self._cell(metrics.get('detection_rate'), 9)} "
                f"{self._cell(metrics.get('auc'), 6)} {equiv:>7s}")
            for fraction, by_k in sorted(
                    metrics.get("recall_by_fraction", {}).items()):
                cells = " ".join(self._cell(by_k.get(str(k)))
                                 for k in ks)
                lines.append(f"  {'at fraction ' + fraction:20s} "
                             f"{'':4s} {cells}")
        overall = self.overall
        confusion = overall.get("confusion", {})
        lines.append(
            f"overall: accuracy {self._cell(confusion.get('accuracy'))}  "
            f"precision {self._cell(confusion.get('precision'))}  "
            f"recall {self._cell(confusion.get('recall'))}  "
            f"f1 {self._cell(confusion.get('f1'))}  "
            f"auc {self._cell(overall.get('auc'))}")
        calibration = overall.get("calibration")
        if calibration is not None:
            if "skipped" in calibration:
                lines.append(f"calibration: skipped "
                             f"({calibration['skipped']})")
            else:
                lines.append(
                    f"calibration ({calibration.get('folds', '?')}-fold "
                    f"out-of-fold): "
                    f"ece {self._cell(calibration.get('ece'))}  "
                    f"f1 {self._cell(calibration.get('f1'))}  "
                    f"fpr {self._cell(calibration.get('fpr'))}  "
                    f"fnr {self._cell(calibration.get('fnr'))}  "
                    f"(operating point: min max(FPR, FNR); "
                    f"{calibration.get('negatives', '?')} negatives)")
        for name, metrics in self.baselines.items():
            if "error" in metrics:
                lines.append(f"baseline {name}: skipped ({metrics['error']})")
                continue
            recalls = " ".join(
                f"r@{k}={self._cell(metrics.get('recall_at_k', {}).get(str(k)))}"
                for k in ks)
            lines.append(f"baseline {name}: {recalls} "
                         f"auc {self._cell(metrics.get('auc'))}")
        return "\n".join(lines)

    @staticmethod
    def _cell(value, width=5):
        return f"{value:{width}.3f}" if value is not None else "-" * width
