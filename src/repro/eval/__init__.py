"""Adversarial piracy-scenario evaluation harness.

Turns the repo's raw parts — obfuscation transforms, RTL variants, the
synthesizer, the equivalence checker, the fingerprint index — into
claim-level evidence: named attack scenarios mirroring the paper's
threat model, scored end-to-end (recall@k, δ-threshold confusion, AUC)
through one batched query pass.  See ``docs/evaluation.md``.

>>> from repro.eval import EvalConfig, run_evaluation       # doctest: +SKIP
>>> report = run_evaluation(EvalConfig())                   # doctest: +SKIP
>>> report.recall_at(10, "netlist_obfuscate_s2")            # doctest: +SKIP
1.0
"""

from repro.eval.report import FLOAT_DIGITS, SCHEMA_VERSION, EvalReport
from repro.eval.runner import (
    DEFAULT_EVAL_FAMILIES,
    DEFAULT_HOLDOUT_FAMILIES,
    DEFAULT_NEGATIVE_FAMILIES,
    EvalConfig,
    build_eval_corpus,
    evaluate_session,
    fit_session_calibration,
    run_evaluation,
    scenario_suite,
    train_eval_model,
)
from repro.eval.scenarios import (
    SCENARIOS,
    ScenarioContext,
    ScenarioSpec,
    Suspect,
    generate_scenarios,
    graft_netlists,
    scenario_names,
)

__all__ = [
    "EvalConfig", "EvalReport", "run_evaluation", "evaluate_session",
    "scenario_suite", "train_eval_model", "build_eval_corpus",
    "fit_session_calibration",
    "DEFAULT_EVAL_FAMILIES", "DEFAULT_HOLDOUT_FAMILIES",
    "DEFAULT_NEGATIVE_FAMILIES",
    "SCENARIOS", "ScenarioContext", "ScenarioSpec", "Suspect",
    "generate_scenarios", "graft_netlists", "scenario_names",
    "SCHEMA_VERSION", "FLOAT_DIGITS",
]
