"""End-to-end detection-quality evaluation over the scenario suite.

This is the claim-level harness: it builds (or reuses) a fingerprint
index over a design corpus, generates every adversarial scenario from
:mod:`repro.eval.scenarios`, pushes **all** suspects through one batched
:meth:`~repro.api.facade.Session.query` pass, and scores detection
quality — recall@k, the paper's δ-threshold confusion matrix, AUC — per
scenario and overall, into a stable :class:`~repro.eval.report.EvalReport`.

Three entry points, outermost first:

- :func:`run_evaluation` — everything from a config: train (or load) a
  model, materialize and index the corpus in a work directory, evaluate.
- :func:`evaluate_session` — score an existing
  :class:`~repro.api.facade.Session` (this is what
  ``Session.evaluate(...)`` delegates to).
- :func:`scenario_suite` — just the suspects, for callers that bring
  their own scoring.
"""

import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.api import Detector, IndexConfig, Session
from repro.api import Corpus as ApiCorpus
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.core.dataset import GraphRecord
from repro.core.metrics import confusion_from_scores, roc_auc
from repro.designs import (
    get_family,
    materialize_corpus,
    materialize_netlist_corpus,
    netlist_ir_records,
    rtl_records,
)
from repro.errors import CalibrationError, EvalError
from repro.eval.report import EvalReport
from repro.index.chunks import ChunkConfig, extract_chunks
from repro.eval.scenarios import SCENARIOS, ScenarioContext, generate_scenarios

#: The small default corpus: synthesizable families, bench-scale.
DEFAULT_EVAL_FAMILIES = (
    "adder8", "mult4", "cmp8", "prienc8", "barrel8", "counter8",
    "lfsr8", "crc8", "popcount8", "hamdec74", "mux8", "updown4",
)

#: Synthesizable families kept out of the corpus: negatives + graft hosts.
DEFAULT_HOLDOUT_FAMILIES = ("satadd8", "bin2gray8", "dec3to8")

#: Extra never-indexed families feeding only the ``unrelated`` scenario.
#: They widen the negative pool (FPR resolution for calibration) without
#: touching any pirated suspect.  ``absdiff8`` and ``shiftreg8`` are
#: deliberately *not* here: their cores genuinely overlap corpus
#: arithmetic (an adder inside absdiff, a plain register chain), so they
#: sit inside the positive score range — keep them as an adversarial
#: stress option, not a default negative.
DEFAULT_NEGATIVE_FAMILIES = ("addsub8", "parity16", "gray2bin8",
                             "hamenc74")


@dataclass
class EvalConfig:
    """Scale and threat-model knobs for one evaluation run.

    The defaults are the "small default corpus" configuration: the one
    ``gnn4ip eval`` runs out of the box, ``benchmarks/bench_eval.py``
    enforces the detection floor on, and CI's eval-smoke job executes.
    """

    level: str = "netlist"
    families: tuple = DEFAULT_EVAL_FAMILIES
    holdouts: tuple = DEFAULT_HOLDOUT_FAMILIES
    corpus_instances: int = 4
    suspects_per_design: int = 2
    scenarios: tuple = None          # None -> every registered scenario
    recall_ks: tuple = (1, 5, 10)
    seed: int = 2
    epochs: int = 80                 # 0 -> untrained (needs allow_untrained)
    train_instances: int = 5
    #: Theft fractions swept by partial_theft (one suspect grid each).
    #: A bare float is accepted and normalized to a 1-tuple.
    theft_fractions: tuple = (0.3, 0.6)
    #: Augment training with (subgraph chunk, whole design) pairs so the
    #: encoder embeds a design's parts near the design itself — the
    #: relation chunk-level partial-theft serving scores against.
    chunk_training: bool = True
    check_equivalence: bool = True
    equivalence_checks: int = 2
    equivalence_vectors: int = 24
    baselines: tuple = ()            # e.g. ("wl_kernel", "spectral")
    allow_untrained: bool = False
    jobs: int = None
    #: Extra never-indexed families feeding only the unrelated scenario
    #: (negative pool for calibration; pirated suspects untouched).
    negative_families: tuple = DEFAULT_NEGATIVE_FAMILIES
    #: Unrelated variants per negative/holdout family (None falls back
    #: to ``suspects_per_design``).
    negatives_per_design: int = 4
    #: Fit the calibrated decision layer and report stratified
    #: out-of-fold ECE / F1 / FPR / FNR next to the raw-delta confusion.
    calibration: bool = True
    #: Pair-tier method: ``platt`` or ``isotonic`` (the match tier's
    #: two-stage logistic is method-independent).
    calibration_method: str = "platt"
    calibration_folds: int = 4
    calibration_seed: int = 0
    #: Mined hard negatives per training record (0 = off; training is
    #: bit-identical to the unmined run).
    hard_negatives: int = 0
    #: Fine-tuning epochs for the mined-pair phase.
    hard_negative_epochs: int = 20

    def __post_init__(self):
        if self.level not in ("rtl", "netlist"):
            raise EvalError(f"unknown evaluation level {self.level!r}")
        self.families = tuple(self.families)
        self.holdouts = tuple(self.holdouts)
        self.negative_families = tuple(self.negative_families)
        if self.scenarios is not None:
            self.scenarios = tuple(self.scenarios)
        self.recall_ks = tuple(sorted(int(k) for k in self.recall_ks))
        self.baselines = tuple(self.baselines)
        if isinstance(self.theft_fractions, (int, float)):
            self.theft_fractions = (self.theft_fractions,)
        self.theft_fractions = tuple(float(f)
                                     for f in self.theft_fractions)
        if self.calibration_method not in ("platt", "isotonic"):
            raise EvalError(f"unknown calibration method "
                            f"{self.calibration_method!r}; "
                            f"known: platt, isotonic")

    def as_dict(self):
        data = asdict(self)
        data["scenarios"] = (list(self.scenarios)
                             if self.scenarios is not None else None)
        for key in ("families", "holdouts", "recall_ks", "baselines",
                    "theft_fractions", "negative_families"):
            data[key] = list(data[key])
        return data


def train_eval_model(config, verbose=False):
    """Train a detection model on the evaluation families.

    Returns a :class:`~repro.core.gnn4ip.GNN4IP` at ``config.level``;
    with ``epochs=0`` the untrained model is returned only behind the
    explicit ``allow_untrained`` opt-in (scores are noise otherwise).
    """
    if config.epochs <= 0 and not config.allow_untrained:
        raise EvalError("epochs=0 means an untrained model; opt in with "
                        "allow_untrained=True (or pass a trained model)")
    model = GNN4IP(seed=config.seed, featurizer=config.level)
    if config.epochs <= 0:
        return model
    if config.level == "netlist":
        records = netlist_ir_records(
            families=list(config.families),
            instances_per_design=config.train_instances, seed=config.seed)
    else:
        records = rtl_records(
            families=list(config.families),
            instances_per_design=config.train_instances, seed=config.seed)
    dataset = build_pair_dataset(records, seed=config.seed)
    trainer = Trainer(model, seed=config.seed)
    if not config.chunk_training:
        trainer.fit(dataset, epochs=config.epochs, verbose=verbose)
        _hard_negative_phase(trainer, dataset, config,
                             list(dataset.train_pairs), verbose=verbose)
        return model
    # Multi-granularity training: add (chunk, whole) pairs, but keep the
    # original whole-graph train pairs as the delta calibration set —
    # the decision boundary stays a whole-design boundary.
    whole_train = list(dataset.train_pairs)
    augment_with_chunk_pairs(dataset, seed=config.seed)
    trainer.fit(dataset, epochs=config.epochs, tune_delta=False,
                verbose=verbose)
    similarities, labels, _ = trainer.evaluate_pairs(dataset, whole_train)
    model.tune_delta(similarities, labels)
    _hard_negative_phase(trainer, dataset, config, whole_train,
                         verbose=verbose)
    return model


def _hard_negative_phase(trainer, dataset, config, delta_pairs,
                         verbose=False):
    """Optional mined-negative fine-tune after the main fit.

    With ``config.hard_negatives=0`` (the default) this is a no-op and
    the trained model is bit-identical to the unmined run.  Otherwise
    the corpus is embedded under the *trained* model, the nearest
    non-matching pairs are mined (:func:`repro.calib.negatives.
    mine_hard_negatives`), a short fine-tune runs with those pairs
    appended to the loss, and delta is re-tuned on ``delta_pairs``.
    """
    if not config.hard_negatives or config.hard_negative_epochs <= 0:
        return 0
    from repro.calib.negatives import mine_hard_negatives

    mined = mine_hard_negatives(dataset.records, trainer.model,
                                per_record=config.hard_negatives)
    if not mined:
        return 0
    if verbose:
        print(f"hard negatives: fine-tuning on {len(mined)} mined pairs "
              f"({config.hard_negative_epochs} epochs)")
    trainer.fit(dataset, epochs=config.hard_negative_epochs,
                tune_delta=False, verbose=verbose, extra_pairs=mined)
    similarities, labels, _ = trainer.evaluate_pairs(dataset, delta_pairs)
    trainer.model.tune_delta(similarities, labels)
    return len(mined)


def augment_with_chunk_pairs(dataset, seed=0, per_instance=2,
                             positives_per_chunk=2, negative_ratio=3.0):
    """Extend a pair dataset with (subgraph chunk, whole design) pairs.

    The serving side scores suspect *parts* against stored design and
    chunk rows (``FingerprintIndex.suspect_parts``), so the encoder must
    map a design's subgraphs near the design's own embedding cluster —
    a relation plain whole-graph training never exercises, leaving chunk
    embeddings saturated and undiscriminative.  For each record, up to
    ``per_instance`` chunks (under the index's default
    :class:`~repro.index.chunks.ChunkConfig`, so training granularity
    matches serving granularity) are added as extra records labeled with
    the parent's design; each gets similar pairs against sampled wholes
    of the same design and ``negative_ratio`` times as many different
    pairs against other designs' wholes.  Records too small to chunk
    contribute nothing, so tiny unit-test corpora are unaffected.

    Only ``train_pairs`` grows — the test split and any external delta
    calibration stay whole-graph-only.
    """
    rng = np.random.default_rng(seed)
    chunk_config = ChunkConfig()
    base = len(dataset.records)
    by_design = {}
    for i, record in enumerate(dataset.records):
        by_design.setdefault(record.design, []).append(i)
    extra_records, extra_pairs = [], []
    for i in range(base):
        record = dataset.records[i]
        for sub, _region in extract_chunks(record.graph,
                                           chunk_config)[:per_instance]:
            ci = base + len(extra_records)
            extra_records.append(GraphRecord(
                design=record.design, instance=sub.name, graph=sub,
                kind=record.kind))
            same = by_design[record.design]
            pos = rng.choice(same, size=min(positives_per_chunk,
                                            len(same)), replace=False)
            others = [j for design, members in by_design.items()
                      if design != record.design for j in members]
            neg = rng.choice(others,
                             size=min(int(round(negative_ratio * len(pos))),
                                      len(others)), replace=False)
            extra_pairs.extend((ci, int(j), 1) for j in pos)
            extra_pairs.extend((ci, int(j), -1) for j in neg)
    dataset.records.extend(extra_records)
    dataset.train_pairs.extend(extra_pairs)
    return len(extra_records)


def build_eval_corpus(workdir, config, detector):
    """Materialize the IP library under ``workdir`` and index it.

    RTL-level corpora are the rewritten RTL instances
    (:func:`~repro.designs.corpus.materialize_corpus`); netlist-level
    corpora are synthesized-plus-obfuscated structural netlists
    (:func:`~repro.designs.corpus.materialize_netlist_corpus`).

    Returns:
        (corpus, build_report)
    """
    workdir = Path(workdir)
    if config.level == "netlist":
        paths = materialize_netlist_corpus(
            workdir / "corpus", families=list(config.families),
            instances_per_design=config.corpus_instances, seed=config.seed)
    else:
        paths = materialize_corpus(
            workdir / "corpus", families=list(config.families),
            instances_per_design=config.corpus_instances, seed=config.seed)
    return ApiCorpus.build(workdir / "index", paths, detector,
                           IndexConfig(level=config.level,
                                       jobs=config.jobs))


def scenario_suite(config, families=None):
    """Generate the full suspect list for a config (no scoring).

    Args:
        families: restrict to these corpus families (default:
            ``config.families``).  Offsets into the corpus seeding
            scheme always come from ``config.families``' original
            positions, so a filtered subset still regenerates exactly
            the design instances the corpus indexed.
    """
    families = tuple(families if families is not None
                     else config.families)
    configured = list(config.families)
    offsets = {name: configured.index(name) for name in families
               if name in configured}
    offsets.update({name: len(configured) + i
                    for i, name in enumerate(config.holdouts)})
    offsets.update({name: len(configured) + len(config.holdouts) + i
                    for i, name in enumerate(config.negative_families)})
    # Families outside the configured list (direct callers) go after.
    for name in families:
        offsets.setdefault(name, len(configured) + len(config.holdouts)
                           + len(offsets))
    ctx = ScenarioContext(
        families=families,
        holdouts=config.holdouts, seed=config.seed,
        suspects_per_design=config.suspects_per_design,
        theft_fractions=config.theft_fractions,
        check_equivalence=config.check_equivalence,
        equivalence_checks=config.equivalence_checks,
        equivalence_vectors=config.equivalence_vectors,
        corpus_scheme=config.level,
        offsets=offsets,
        negative_families=config.negative_families,
        negatives_per_design=config.negatives_per_design)
    return generate_scenarios(ctx, config.scenarios)


# -- metric assembly ----------------------------------------------------------
def _truth_rank(result, true_design):
    """1-based rank of the first hit for the true design, or ``None``."""
    for rank, match in enumerate(result, 1):
        if match.design == true_design:
            return rank
    return None


def _recall_at_k(rows, ks):
    """{str(k): fraction of pirated rows whose truth ranked <= k}."""
    pirated = [row for row in rows if row["pirated"]]
    if not pirated:
        return {str(k): None for k in ks}
    return {str(k): sum(1 for row in pirated
                        if row["rank"] is not None and row["rank"] <= k)
            / len(pirated)
            for k in ks}


def _scenario_metrics(name, rows, negative_scores, delta, ks):
    """Metric block for one scenario's result rows."""
    scores = [row["score"] for row in rows]
    pirated = [row for row in rows if row["pirated"]]
    metrics = {
        "description": SCENARIOS[name].description,
        "semantics_preserving": SCENARIOS[name].semantics_preserving,
        "suspects": len(rows),
        "pirated": len(pirated),
        "recall_at_k": _recall_at_k(rows, ks),
        "mean_top1_score": (sum(scores) / len(scores) if scores else None),
    }
    # Partial theft sweeps several fractions; break recall down per
    # fraction so the floor "recall@10 at fraction >= 0.3" is checkable.
    fractions = sorted({row["provenance"].get("fraction") for row in rows}
                       - {None})
    if fractions:
        metrics["recall_by_fraction"] = {
            f"{fraction:g}": _recall_at_k(
                [row for row in rows
                 if row["provenance"].get("fraction") == fraction], ks)
            for fraction in fractions}
    metrics.update({
        "suspect_results": [
            {"name": row["name"], "true_design": row["true_design"],
             "pirated": row["pirated"], "rank": row["rank"],
             "top1_score": row["score"], "top1_design": row["top1_design"],
             "provenance": row["provenance"]}
            for row in rows],
    })
    if pirated:
        metrics["detection_rate"] = (
            sum(1 for row in pirated if row["score"] > delta) / len(pirated))
        metrics["identification_rate"] = (
            sum(1 for row in pirated if row["rank"] == 1) / len(pirated))
        # AUC of this scenario's positives against the shared negatives.
        metrics["auc"] = roc_auc(
            [row["score"] for row in pirated] + negative_scores,
            [1] * len(pirated) + [0] * len(negative_scores))
    else:
        metrics["false_alarm_rate"] = (
            sum(1 for row in rows if row["score"] > delta) / len(rows)
            if rows else None)
    checks = [row["provenance"].get("equivalence") for row in rows]
    checks = [c for c in checks if c]
    if checks:
        metrics["equivalence"] = {
            "checked": len(checks),
            "passed": sum(1 for c in checks if c["equivalent"]),
            "vectors": checks[0]["vectors"],
        }
    return metrics


def _baseline_metrics(name, suspects, rows, corpus_graphs, delta, ks):
    """Score one classical baseline over the same suspects and corpus.

    The baseline ranks every corpus graph per suspect with its own
    similarity; failures (missing optional deps) are reported, not
    raised.
    """
    try:
        if name == "wl_kernel":
            from repro.baselines.wl_kernel import wl_similarity as similarity
        elif name == "spectral":
            from repro.baselines.spectral import (
                spectral_similarity as similarity,
            )
        else:
            raise EvalError(f"unknown baseline {name!r}; "
                            f"known: wl_kernel, spectral")
    except ImportError as exc:
        return {"error": f"unavailable ({exc})"}
    out_rows = []
    for suspect, row in zip(suspects, rows):
        scored = sorted(
            ((similarity(row["graph"], graph), design)
             for design, graph in corpus_graphs),
            key=lambda pair: -pair[0])
        rank = None
        for position, (_, design) in enumerate(scored, 1):
            if design == suspect.true_design:
                rank = position
                break
        out_rows.append({"score": scored[0][0] if scored else 0.0,
                         "rank": rank, "pirated": suspect.pirated})
    pirated = [row for row in out_rows if row["pirated"]]
    return {
        "recall_at_k": _recall_at_k(out_rows, ks),
        "auc": roc_auc([row["score"] for row in out_rows],
                       [row["pirated"] for row in out_rows]),
        "identification_rate": (
            sum(1 for row in pirated if row["rank"] == 1) / len(pirated)
            if pirated else None),
    }


# -- calibration fitting ------------------------------------------------------
def _calibration_rows(suspects, results, delta):
    """Per-suspect calibration inputs from one batched query pass."""
    from repro.calib import match_evidence

    rows = []
    for suspect, result in zip(suspects, results):
        matches = list(result)
        rows.append({
            "name": suspect.name,
            "scenario": suspect.scenario,
            "pirated": bool(suspect.pirated),
            "evidence": match_evidence(matches, delta),
            "labels": np.array(
                [1.0 if (suspect.pirated
                         and m.design == suspect.true_design) else 0.0
                 for m in matches]),
            "top1": (float(matches[0].score) if matches else -1.0),
        })
    return rows


def _calibration_folds(rows, folds, seed):
    """Stratified fold assignment: suspects are grouped by
    ``(scenario, pirated)``, each group seeded-shuffled and dealt
    round-robin, so every fold sees every scenario and both classes."""
    rng = np.random.default_rng(seed)
    groups = {}
    for i, row in enumerate(rows):
        groups.setdefault((row["scenario"], row["pirated"]), []).append(i)
    assignment = [[] for _ in range(folds)]
    for key in sorted(groups):
        members = sorted(groups[key], key=lambda i: rows[i]["name"])
        rng.shuffle(members)
        for position, i in enumerate(members):
            assignment[position % folds].append(i)
    return assignment


def _calibration_metrics(rows, config, delta):
    """Stratified out-of-fold calibration quality block.

    Every suspect's probability (and the operating threshold applied to
    it) comes from a calibrator that never saw that suspect — the
    honest estimate of deployed behavior, reported next to the raw
    delta-cut confusion.
    """
    from repro.calib import EvidenceCalibrator
    from repro.calib.report import (
        expected_calibration_error,
        reliability_bins,
        threshold_sweep,
    )

    folds = _calibration_folds(rows, config.calibration_folds,
                               config.calibration_seed)
    probs = np.zeros(len(rows))
    cuts = np.full(len(rows), 0.5)
    for i, fold in enumerate(folds):
        fit_idx = [j for k, members in enumerate(folds) if k != i
                   for j in members]
        calibrator = EvidenceCalibrator.fit(
            [rows[j]["evidence"] for j in fit_idx],
            [rows[j]["labels"] for j in fit_idx],
            [rows[j]["pirated"] for j in fit_idx],
            delta, bootstrap=0, seed=config.calibration_seed)
        for j in fold:
            if len(rows[j]["evidence"]):
                probs[j] = calibrator.probability(rows[j]["evidence"])
            cuts[j] = calibrator.threshold
    labels = np.array([row["pirated"] for row in rows], dtype=float)
    positives = int(labels.sum())
    negatives = len(labels) - positives
    flagged = probs >= cuts
    tp = int((flagged & (labels == 1)).sum())
    fp = int((flagged & (labels == 0)).sum())
    fn = positives - tp
    tn = negatives - fp
    return {
        "method": config.calibration_method,
        "folds": config.calibration_folds,
        "suspects": len(rows),
        "positives": positives,
        "negatives": negatives,
        "ece": expected_calibration_error(probs, labels),
        "f1": 2 * tp / max(2 * tp + fp + fn, 1),
        "fpr": (fp / negatives if negatives else None),
        "fnr": (fn / positives if positives else None),
        "confusion": {"tp": tp, "fp": fp, "fn": fn, "tn": tn},
        "mean_operating_threshold": float(cuts.mean()),
        "reliability_bins": reliability_bins(probs, labels),
        "threshold_sweep": threshold_sweep(probs, labels),
    }


def fit_session_calibration(session, config=None, suspects=None,
                            results=None, bootstrap=32):
    """Fit a persistable :class:`~repro.calib.Calibration` artifact.

    Generates the scenario suite over the corpus' evaluable families
    (unless ``suspects``/``results`` from a prior pass are handed in),
    fits the match tier on the ranked evidence and the pair tier on the
    top-1 scores, and binds the artifact to the corpus' model hash,
    index format, and level.  The caller persists it with
    ``artifact.save(corpus.root)``.

    Raises:
        CalibrationError: too little fit data (< 8 suspects or a
            single class).
        EvalError: no corpus bound or level mismatch.
    """
    from repro.calib import Calibration, EvidenceCalibrator, ScoreCalibrator
    from repro.index.store import FORMAT_VERSION

    config = config if config is not None else EvalConfig()
    families = _evaluable_families(session, config)
    if suspects is None or results is None:
        suspects = scenario_suite(config, families=families)
        results = session.query([s.source for s in suspects],
                                k=max(config.recall_ks),
                                labels=[s.name for s in suspects])
    delta = session.delta
    rows = _calibration_rows(suspects, results, delta)
    pirated = [row["pirated"] for row in rows]
    match_tier = EvidenceCalibrator.fit(
        [row["evidence"] for row in rows],
        [row["labels"] for row in rows],
        pirated, delta, bootstrap=bootstrap,
        seed=config.calibration_seed)
    pair_tier = ScoreCalibrator.fit(
        [row["top1"] for row in rows], pirated,
        method=config.calibration_method, bootstrap=bootstrap,
        seed=config.calibration_seed)
    return Calibration(
        model_hash=session.corpus.model_hash,
        index_format=FORMAT_VERSION,
        level=session.corpus.level,
        delta=delta,
        pair=pair_tier,
        match=match_tier,
        info={"suspects": len(rows),
              "positives": int(sum(pirated)),
              "negatives": int(len(pirated) - sum(pirated)),
              "families": list(families),
              "seed": config.seed})


def _evaluable_families(session, config):
    """The configured families actually present in the session's corpus.

    Raises:
        EvalError: no corpus bound, level mismatch, or no configured
            family present in the corpus.
    """
    if session.corpus is None:
        raise EvalError("evaluation needs a session with a corpus bound")
    if session.corpus.level != config.level:
        raise EvalError(
            f"config evaluates at level {config.level!r} but the corpus "
            f"was built at {session.corpus.level!r}")
    indexed = {entry["design"] for entry in session.corpus.entries
               if entry["status"] == "ok"}
    families = [name for name in config.families
                if get_family(name).top in indexed]
    if not families:
        raise EvalError(
            "none of the configured families appear in the corpus; "
            "evaluation scenarios are generated from registered design "
            "families (see repro.designs)")
    return families


def evaluate_session(session, config=None):
    """Score an existing session against the adversarial scenario suite.

    The session's corpus decides which configured families are evaluable
    (their top modules must appear among the indexed designs); suspects
    are embedded in **one** batched query pass.

    Returns:
        :class:`~repro.eval.report.EvalReport`

    Raises:
        EvalError: no corpus bound, level mismatch, or no configured
            family present in the corpus.
    """
    config = config if config is not None else EvalConfig()
    families = _evaluable_families(session, config)
    indexed = {entry["design"] for entry in session.corpus.entries
               if entry["status"] == "ok"}

    generate_start = time.perf_counter()
    suspects = scenario_suite(config, families=families)
    generate_seconds = time.perf_counter() - generate_start

    k_max = max(config.recall_ks)
    query_start = time.perf_counter()
    results = session.query([s.source for s in suspects], k=k_max,
                            labels=[s.name for s in suspects])
    query_seconds = time.perf_counter() - query_start

    delta = session.delta
    # Seed every requested scenario so one that generated no suspects
    # (e.g. retime over an all-combinational family set) still reports
    # an explicit empty block instead of silently vanishing.
    rows_by_scenario = {
        name: [] for name in SCENARIOS
        if config.scenarios is None or name in config.scenarios}
    all_rows = []
    for suspect, result in zip(suspects, results):
        row = {
            "name": suspect.name,
            "scenario": suspect.scenario,
            "true_design": suspect.true_design,
            "pirated": suspect.pirated,
            "score": (result[0].score if len(result) else -1.0),
            "top1_design": (result[0].design if len(result) else None),
            "rank": _truth_rank(result, suspect.true_design),
            "provenance": suspect.provenance,
        }
        rows_by_scenario.setdefault(suspect.scenario, []).append(row)
        all_rows.append(row)

    negative_scores = [row["score"] for row in all_rows
                       if not row["pirated"]]
    scenarios = {
        name: _scenario_metrics(name, rows, negative_scores, delta,
                                config.recall_ks)
        for name, rows in rows_by_scenario.items()}
    overall = {
        "suspects": len(all_rows),
        "pirated": sum(1 for row in all_rows if row["pirated"]),
        "recall_at_k": _recall_at_k(all_rows, config.recall_ks),
        "confusion": confusion_from_scores(
            [row["score"] for row in all_rows],
            [row["pirated"] for row in all_rows], delta).as_dict(),
        "auc": roc_auc([row["score"] for row in all_rows],
                       [row["pirated"] for row in all_rows]),
    }
    calibration_seconds = 0.0
    if config.calibration:
        calibration_start = time.perf_counter()
        try:
            overall["calibration"] = _calibration_metrics(
                _calibration_rows(suspects, results, delta), config,
                delta)
        except CalibrationError as exc:
            # A corpus too small to calibrate is a valid evaluation —
            # report why the block is missing instead of failing.
            overall["calibration"] = {"skipped": str(exc)}
        calibration_seconds = time.perf_counter() - calibration_start

    baselines = {}
    baseline_seconds = 0.0
    if config.baselines:
        baseline_start = time.perf_counter()
        frontend = session.corpus.frontend()
        corpus_graphs = []
        for entry in session.corpus.entries:
            if entry["status"] != "ok":
                continue
            graph = frontend.extract_file(entry["path"])
            corpus_graphs.append((graph.name, graph))
        for row, suspect in zip(all_rows, suspects):
            row["graph"] = session.extract(suspect.source)
        baselines = {
            name: _baseline_metrics(name, suspects, all_rows,
                                    corpus_graphs, delta, config.recall_ks)
            for name in config.baselines}
        baseline_seconds = time.perf_counter() - baseline_start

    detector = session.bound_detector
    model_info = {
        "delta": delta,
        "level": session.corpus.level,
        "hash": session.corpus.model_hash,
        # Whether the session's model was actually trained is unknowable
        # here; run_evaluation (which trained or loaded it) overwrites
        # this, and render_text only flags an explicit False.
        "trained": None,
    }
    if detector is not None:
        model_info["hash"] = detector.fingerprint_hash
    corpus_info = {
        "designs": len(indexed),
        "entries": len(session.corpus),
        "level": session.corpus.level,
        "families": families,
        "holdouts": list(config.holdouts),
    }
    return EvalReport(
        config=config.as_dict(), corpus=corpus_info, model=model_info,
        scenarios=scenarios, overall=overall, baselines=baselines,
        timings={"generate_seconds": generate_seconds,
                 "query_seconds": query_seconds,
                 "baseline_seconds": baseline_seconds,
                 "calibration_seconds": calibration_seconds})


def run_evaluation(config=None, workdir=None, model=None, verbose=False):
    """The one-call evaluation: model + corpus + scenario suite + report.

    Args:
        config: an :class:`EvalConfig` (default: the small default
            corpus configuration).
        workdir: directory for the materialized corpus and index
            (reused when it already holds a matching index); a
            temporary directory when ``None``.
        model: path to a trained ``.npz`` model; when ``None`` a model
            is trained per ``config.epochs`` / ``config.seed``.
        verbose: print per-epoch training progress.

    Returns:
        :class:`~repro.eval.report.EvalReport`
    """
    config = config if config is not None else EvalConfig()
    timings = {}
    if model is not None:
        detector = Detector.load(model, level=config.level)
        trained = True
    else:
        train_start = time.perf_counter()
        detector = Detector.from_model(train_eval_model(config,
                                                        verbose=verbose))
        timings["train_seconds"] = time.perf_counter() - train_start
        trained = config.epochs > 0

    with tempfile.TemporaryDirectory(prefix="gnn4ip-eval-") as scratch:
        build_start = time.perf_counter()
        corpus, _ = build_eval_corpus(workdir if workdir is not None
                                      else scratch, config, detector)
        timings["build_seconds"] = time.perf_counter() - build_start
        session = Session(detector=detector, corpus=corpus)
        report = evaluate_session(session, config)
    report.model["trained"] = trained
    report.timings.update(timings)
    return report
