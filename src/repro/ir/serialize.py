"""GraphIR serialization: the stable on-disk format for extracted graphs.

The format is zlib-compressed JSON of a flat dict — deterministic for a
given graph, safe to load from untrusted bytes (no pickling of arbitrary
objects), and versioned so stale cache entries from an incompatible format
are rejected instead of misread.  It is the codec the fingerprint index's
content-addressed graph cache uses for every level (RTL and netlist); the
legacy DFG-only codec lives in :mod:`repro.dataflow.serialize`.
"""

import json
import zlib

from repro.errors import GraphIRError
from repro.ir.graphir import GraphIR

#: Bump when the payload layout changes; loaders reject other versions.
FORMAT_VERSION = 1


def to_dict(graph):
    """Flatten a :class:`~repro.ir.graphir.GraphIR` (or any graph with the
    same node/edge interface, e.g. a DFG) into plain JSON types."""
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "level": getattr(graph, "level", "rtl"),
        "kinds": [node.kind for node in graph.nodes],
        "labels": [node.label for node in graph.nodes],
        "names": [node.name for node in graph.nodes],
        "edges": [[src, dst]
                  for src in range(len(graph))
                  for dst in graph.successors(src)],
    }


def from_dict(payload):
    """Rebuild a :class:`GraphIR` from :func:`to_dict` output.

    Raises:
        GraphIRError: on a malformed or version-incompatible payload.
    """
    try:
        if payload["version"] != FORMAT_VERSION:
            raise GraphIRError(
                f"GraphIR payload version {payload['version']!r} "
                f"!= {FORMAT_VERSION}")
        graph = GraphIR(payload["name"], level=payload["level"])
        kinds, labels, names = (payload["kinds"], payload["labels"],
                                payload["names"])
        if not (len(kinds) == len(labels) == len(names)):
            raise GraphIRError("GraphIR payload arrays disagree in length")
        for kind, label, name in zip(kinds, labels, names):
            graph.add_node(kind, label, name)
        count = len(kinds)
        for src, dst in payload["edges"]:
            if not (0 <= src < count and 0 <= dst < count):
                raise GraphIRError(f"GraphIR payload edge {src}->{dst} "
                                   f"out of range")
            graph.add_edge(src, dst)
        return graph
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphIRError(f"malformed GraphIR payload: {exc}") from exc


def dumps(graph):
    """Serialize a GraphIR to compressed bytes."""
    text = json.dumps(to_dict(graph), separators=(",", ":"),
                      sort_keys=True)
    return zlib.compress(text.encode("utf-8"), level=6)


def loads(blob):
    """Deserialize bytes from :func:`dumps`.

    Raises:
        GraphIRError: if the bytes are corrupt or not a GraphIR payload.
    """
    try:
        payload = json.loads(zlib.decompress(blob).decode("utf-8"))
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphIRError(f"corrupt GraphIR blob: {exc}") from exc
    return from_dict(payload)
