"""The pluggable featurizer protocol: GraphIR -> node feature matrix.

A featurizer turns a :class:`~repro.ir.graphir.GraphIR` into the ``(N, dim)``
node-feature matrix the encoder consumes.  Featurizers are *typed by level*:
an RTL featurizer only accepts RTL graphs, a netlist featurizer only
netlist graphs — feeding a model graphs from the wrong frontend raises
:class:`~repro.errors.ModelError` instead of silently producing garbage
similarities.

Every featurizer exposes a stable :meth:`~Featurizer.fingerprint` over its
schema (name, level, vocabulary, format version).  The fingerprint is folded
into content-addressed cache keys and index metadata, so a vocabulary change
invalidates stale cached fingerprints instead of silently reusing them.

Concrete featurizers live in :mod:`repro.core.features`; this module only
defines the protocol so frontends and the encoder can be typed against it.
"""

from typing import Protocol, runtime_checkable


@runtime_checkable
class Featurizer(Protocol):
    """Structural interface every featurizer implements."""

    #: Registry name (``rtl``, ``netlist``, ...).
    name: str
    #: Graph level this featurizer accepts (matches ``GraphIR.level``).
    level: str
    #: Feature dimensionality (width of the returned matrices).
    dim: int

    def fingerprint(self) -> str:
        """Stable hex digest of the feature schema (name/level/vocab)."""
        ...

    def check(self, graph) -> None:
        """Raise ``ModelError`` when ``graph`` is from the wrong level."""
        ...

    def features(self, graph):
        """``(len(graph), dim)`` feature matrix for a GraphIR."""
        ...
