"""GraphIR: the typed graph intermediate representation.

Every frontend (RTL dataflow analysis, gate-level netlists) lowers a
hardware design to one :class:`GraphIR`: typed nodes (kind + vocabulary
label + optional name) connected by dependency edges, tagged with the
``level`` the graph was extracted at.  Everything downstream of a frontend
— featurization, the hw2vec encoder, batched training, the fingerprint
index — consumes GraphIR only, so a new design representation plugs in by
writing one adapter.

Edges run from the dependent node toward the nodes it depends on, matching
the paper's rooted DFG orientation; the GCN consumes the symmetrized
adjacency, so orientation only matters to structural queries.
"""

import numpy as np
from scipy import sparse

#: Node kinds shared by every frontend.  ``op`` nodes carry an operator
#: label, ``signal`` nodes a role label (input/output/wire/reg), ``const``
#: nodes the literal value, and ``cell`` nodes a cell-library gate label.
KIND_SIGNAL = "signal"
KIND_OP = "op"
KIND_CONST = "const"
KIND_CELL = "cell"

#: Graph levels produced by the built-in frontends.
LEVEL_RTL = "rtl"
LEVEL_NETLIST = "netlist"


class IRNode:
    """One vertex of a :class:`GraphIR`.

    Attributes:
        node_id: dense integer id, index into :attr:`GraphIR.nodes`.
        kind: ``signal`` / ``op`` / ``const`` / ``cell``.
        label: vocabulary label used for GNN features (e.g. ``xor``,
            ``input``, ``nand``).
        name: full signal/instance name (when meaningful) or literal text.
    """

    __slots__ = ("node_id", "kind", "label", "name")

    def __init__(self, node_id, kind, label, name=None):
        self.node_id = node_id
        self.kind = kind
        self.label = label
        self.name = name

    def __repr__(self):
        descr = self.name if self.name else self.label
        return f"IRNode({self.node_id}, {self.kind}, {descr})"


class GraphIR:
    """A typed graph with dependency edges and a frontend level tag."""

    #: Node class used by :meth:`add_node`; subclasses may refine it.
    node_class = IRNode

    def __init__(self, name="graph", level=LEVEL_RTL):
        self.name = name
        self.level = level
        self.nodes = []
        self._succ = []           # adjacency: node -> list of dependencies
        self._pred = []           # reverse adjacency

    # -- construction ------------------------------------------------------
    def add_node(self, kind, label, name=None):
        """Append a node; returns its id."""
        node_id = len(self.nodes)
        self.nodes.append(self.node_class(node_id, kind, label, name))
        self._succ.append([])
        self._pred.append([])
        return node_id

    def add_edge(self, src, dst):
        """Record that node ``src`` depends on node ``dst``."""
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._pred[dst].append(src)

    # -- queries -------------------------------------------------------------
    def __len__(self):
        return len(self.nodes)

    @property
    def num_edges(self):
        return sum(len(deps) for deps in self._succ)

    def successors(self, node_id):
        """Nodes that ``node_id`` depends on."""
        return list(self._succ[node_id])

    def predecessors(self, node_id):
        """Nodes that depend on ``node_id``."""
        return list(self._pred[node_id])

    def labels(self):
        """List of node labels in node-id order."""
        return [node.label for node in self.nodes]

    def label_counts(self):
        """Histogram of node labels."""
        counts = {}
        for node in self.nodes:
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    # -- transforms ----------------------------------------------------------
    def reachable_from(self, seed_ids):
        """Set of node ids reachable from ``seed_ids`` along dependencies."""
        seen = set()
        stack = list(seed_ids)
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.extend(self._succ[node_id])
        return seen

    def _empty_like(self):
        """A fresh graph of the same type/level (used by :meth:`subgraph`)."""
        return GraphIR(self.name, self.level)

    def subgraph(self, keep_ids):
        """A new graph containing only ``keep_ids`` (edges restricted)."""
        keep = sorted(set(keep_ids))
        remap = {old: new for new, old in enumerate(keep)}
        out = self._empty_like()
        for old in keep:
            node = self.nodes[old]
            out.add_node(node.kind, node.label, node.name)
        for old in keep:
            for dep in self._succ[old]:
                if dep in remap:
                    out.add_edge(remap[old], remap[dep])
        return out

    def to_networkx(self):
        """Export as a networkx DiGraph with node attributes."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(node.node_id, kind=node.kind, label=node.label,
                           name=node.name)
        for src, deps in enumerate(self._succ):
            for dst in deps:
                graph.add_edge(src, dst)
        return graph

    def adjacency(self, symmetric=True, dtype=np.float64):
        """Sparse adjacency matrix (CSR).

        Args:
            symmetric: union with the transpose, which is what the GCN
                propagation (Eq. 5) expects for undirected message passing.
        """
        n = len(self.nodes)
        rows, cols = [], []
        for src, deps in enumerate(self._succ):
            for dst in deps:
                rows.append(src)
                cols.append(dst)
        data = np.ones(len(rows), dtype=dtype)
        matrix = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
        if symmetric:
            matrix = matrix.maximum(matrix.T)
        return matrix

    def stats(self):
        """Summary dict used in reports and tests."""
        return {
            "name": self.name,
            "level": self.level,
            "nodes": len(self.nodes),
            "edges": self.num_edges,
        }

    def __repr__(self):
        return (f"{type(self).__name__}({self.name!r}, level={self.level!r}, "
                f"nodes={len(self.nodes)}, edges={self.num_edges})")
