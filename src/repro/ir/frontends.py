"""Level-selectable extraction frontends: Verilog text -> GraphIR.

A frontend owns one extraction level end-to-end: preprocessing, the
level-specific lowering, the default featurizer, and the fingerprints that
make extraction content-addressable.  The fingerprint index, the CLI's
``--level rtl|netlist`` flags, and the corpus extractor all select a
frontend instead of hard-coding the DFG pipeline:

- :class:`RTLFrontend` — the paper's five-phase dataflow pipeline
  (preprocess / parse / analyze / merge / trim), emitting RTL-level IR.
- :class:`NetlistFrontend` — parse + elaborate, then *synthesize* to a
  gate-level netlist (bit-blasting RTL when the input is not already
  structural) and lower it through :func:`~repro.netlist.to_ir.netlist_to_ir`.

Both share the same preprocessor, so one ``.v`` corpus can be indexed at
either level; a structural netlist file flows through the synthesizer
unchanged because gate instances lower to themselves.
"""

from repro.core.features import get_featurizer
from repro.ir import serialize as ir_serialize
from repro.ir.graphir import LEVEL_NETLIST, LEVEL_RTL


class _Frontend:
    """Shared frontend behavior (fingerprints, convenience entry points)."""

    #: Extraction level; matches the ``GraphIR.level`` this frontend emits.
    level = None

    def __init__(self, featurizer=None):
        self.featurizer = get_featurizer(featurizer
                                         if featurizer is not None
                                         else self.level)

    # -- extraction (level-specific) ------------------------------------
    def preprocess_text(self, text):
        raise NotImplementedError

    def extract_preprocessed(self, cleaned, top=None):
        raise NotImplementedError

    def extract(self, text, top=None):
        """Preprocess + extract in one call; returns a GraphIR."""
        return self.extract_preprocessed(self.preprocess_text(text), top=top)

    def extract_file(self, path, top=None):
        """Run the frontend on a Verilog file."""
        with open(path) as handle:
            return self.extract(handle.read(), top=top)

    # -- fingerprints ----------------------------------------------------
    def options_fingerprint(self):
        """Stable string over every option that affects the output graph."""
        raise NotImplementedError

    def schema_fingerprint(self):
        """Stable string over everything that affects *downstream* meaning:
        the level, the IR serialization format, and the featurizer schema.

        Folded into content-addressed cache keys (see
        :func:`repro.index.cache.content_key`), so a feature-vocabulary or
        format change can never silently reuse stale cached fingerprints.
        """
        return (f"{self.level}:ir-v{ir_serialize.FORMAT_VERSION}"
                f":feat={self.featurizer.fingerprint()}")

    def content_key(self, cleaned, top=None):
        """Cache/index key for preprocessed source under this frontend."""
        from repro.index.cache import content_key

        return content_key(cleaned, self.options_fingerprint(), top=top,
                           schema=self.schema_fingerprint())

    def worker_spec(self):
        """(level, options) pair a worker process can rebuild us from."""
        return self.level, {}


class RTLFrontend(_Frontend):
    """RTL dataflow frontend wrapping :class:`~repro.dataflow.pipeline.DFGPipeline`."""

    level = LEVEL_RTL

    def __init__(self, pipeline=None, do_trim=True, featurizer=None):
        super().__init__(featurizer)
        from repro.dataflow.pipeline import DFGPipeline

        self.pipeline = pipeline if pipeline is not None \
            else DFGPipeline(do_trim=do_trim)

    @property
    def do_trim(self):
        return self.pipeline.do_trim

    def preprocess_text(self, text):
        return self.pipeline.preprocess_text(text)

    def extract_preprocessed(self, cleaned, top=None):
        from repro.dataflow.to_ir import dfg_to_ir

        return dfg_to_ir(self.pipeline.extract_preprocessed(cleaned, top=top))

    def options_fingerprint(self):
        return f"level={self.level}:{self.pipeline.options_fingerprint()}"

    def worker_spec(self):
        return self.level, {"do_trim": self.pipeline.do_trim}


class NetlistFrontend(_Frontend):
    """Gate-level frontend: synthesize (when needed) and lower to IR."""

    level = LEVEL_NETLIST

    def preprocess_text(self, text):
        from repro.verilog import preprocess

        return preprocess(text)

    def extract_preprocessed(self, cleaned, top=None):
        from repro.dataflow.elaborate import elaborate
        from repro.netlist.to_ir import netlist_to_ir
        from repro.synth.synthesize import synthesize
        from repro.verilog import parse

        module = elaborate(parse(cleaned), top=top)
        return netlist_to_ir(synthesize(module))

    def options_fingerprint(self):
        from repro.synth.synthesize import SYNTH_VERSION

        return f"level={self.level}:synth-v{SYNTH_VERSION}"


def get_frontend(level, do_trim=True, featurizer=None):
    """Build the frontend for ``level`` (``rtl`` or ``netlist``).

    Raises:
        ValueError: for an unknown level.
    """
    if level in (None, LEVEL_RTL):
        return RTLFrontend(do_trim=do_trim, featurizer=featurizer)
    if level == LEVEL_NETLIST:
        return NetlistFrontend(featurizer=featurizer)
    raise ValueError(f"unknown extraction level {level!r} "
                     f"(expected 'rtl' or 'netlist')")
