"""Unified graph IR: one representation between frontends and the model.

``GraphIR`` is the hand-off point of the architecture::

    frontends (dataflow / netlist)  ->  GraphIR  ->  featurizer  ->  encoder

:func:`to_graphir` adapts any supported design object (DFG, gate-level
Netlist, or an existing GraphIR) into the IR; :mod:`repro.ir.frontends`
holds the level-selectable extraction frontends used by the index and CLI.

This package root deliberately imports only dependency-free modules so the
frontends (which pull in the Verilog pipeline and synthesizer) never create
import cycles; access them as ``repro.ir.frontends``.
"""

from repro.ir.featurize import Featurizer
from repro.ir.graphir import (
    KIND_CELL,
    KIND_CONST,
    KIND_OP,
    KIND_SIGNAL,
    LEVEL_NETLIST,
    LEVEL_RTL,
    GraphIR,
    IRNode,
)


def to_graphir(graph):
    """Adapt ``graph`` to a :class:`GraphIR`.

    Accepts a GraphIR (returned as-is, including DFG instances, which are
    GraphIR subclasses) or a gate-level
    :class:`~repro.netlist.netlist.Netlist` (lowered through
    :func:`~repro.netlist.to_ir.netlist_to_ir`).
    """
    if isinstance(graph, GraphIR):
        return graph
    from repro.netlist.netlist import Netlist

    if isinstance(graph, Netlist):
        from repro.netlist.to_ir import netlist_to_ir

        return netlist_to_ir(graph)
    raise TypeError(f"cannot adapt {type(graph).__name__} to GraphIR")


__all__ = [
    "Featurizer", "GraphIR", "IRNode", "to_graphir",
    "KIND_CELL", "KIND_CONST", "KIND_OP", "KIND_SIGNAL",
    "LEVEL_NETLIST", "LEVEL_RTL",
]
