"""Fixed-bucket histograms for the serving ops surface.

``/v1/stats`` reports request latency, micro-batch size, and scatter
latency as cumulative-bucket histograms (Prometheus-style ``le``
buckets) plus exact count/sum/max.  Quantiles are read off the bucket
table — each reported percentile is the upper bound of the bucket the
rank falls in, an *upper estimate* whose resolution is the bucket
spacing.  Observation is O(#buckets) with no allocation, so it sits on
the per-request hot path without showing up in the latency it measures.
"""

import bisect
import threading

#: Log-spaced seconds: 1 ms .. 10 s covers a cold mmap page walk on the
#: slow end and sub-batch-window responses on the fast end.
LATENCY_BUCKETS_S = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                     0.25, 0.5, 1.0, 2.5, 5.0, 10.0)
#: Powers of two up to the default ``max_batch``.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Histogram:
    """Cumulative fixed-bucket histogram, thread-safe.

    Observed from both the event loop (request latency) and the
    executor thread (batch sizes), hence the lock — contention is nil
    at the service's request rates.
    """

    def __init__(self, buckets):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +overflow
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, value):
        value = float(value)
        slot = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[slot] += 1
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value

    def quantile(self, q):
        """Upper-bound estimate of the q-quantile (0 < q <= 1)."""
        with self._lock:
            count = self.count
            counts = list(self._counts)
        if not count:
            return 0.0
        rank = q * count
        seen = 0
        for slot, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                if slot < len(self.buckets):
                    return self.buckets[slot]
                return self.max  # overflow bucket: only the max bounds it
        return self.max

    def snapshot(self):
        """JSON-ready view for ``/v1/stats``."""
        with self._lock:
            count = self.count
            total = self.total
            peak = self.max
            counts = list(self._counts)
        cumulative = {}
        seen = 0
        for bucket, bucket_count in zip(self.buckets, counts):
            seen += bucket_count
            cumulative[f"{bucket:g}"] = seen
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "max": peak,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": cumulative,
        }
