"""Long-lived asyncio detection service over the public facade.

``gnn4ip serve <index_dir>`` (or :func:`run` programmatically) keeps one
:class:`~repro.api.facade.Session` hot — model weights, featurizer,
frontend, and the memory-mapped query engine load once — and serves
``/v1/fingerprint``, ``/v1/query``, ``/v1/compare``, ``/v1/healthz``,
and ``/v1/stats`` with micro-batched request coalescing (see
:mod:`repro.server.batcher`).  Pure stdlib: asyncio + json, no web
framework.
"""

import asyncio
import contextlib
import signal

from repro.server.app import ReproServer, error_envelope
from repro.server.batcher import MicroBatcher
from repro.server.http import HttpError, Request, read_request, response_bytes

__all__ = [
    "ReproServer", "MicroBatcher", "HttpError", "Request",
    "read_request", "response_bytes", "error_envelope", "run",
]


def _announce(message):
    """Default announcer: flushed, so subprocess pipes see the port line
    immediately (stdout is block-buffered under a pipe)."""
    print(message, flush=True)


def run(session, host="127.0.0.1", port=8000, max_batch=256,
        batch_window_s=0.002, workers=0, max_pending=None, log_json=False,
        drain_timeout_s=30.0, announce=_announce):
    """Serve ``session`` until SIGINT/SIGTERM; returns a process exit code.

    Announces ``serving on http://host:port`` (the real port, so
    ``--port 0`` callers — CI smoke jobs, tests — can parse it) before
    blocking.  ``workers >= 1`` turns on scatter-gather serving over a
    partitioned worker pool (:mod:`repro.server.worker`).  A signal
    triggers a graceful drain: the listener closes first, in-flight
    requests finish (up to ``drain_timeout_s``), then the batcher and
    the worker pool stop.
    """

    async def _main():
        server = ReproServer(session, host=host, port=port,
                             max_batch=max_batch,
                             batch_window_s=batch_window_s,
                             workers=workers, max_pending=max_pending,
                             log_json=log_json)
        await server.start()
        corpus = session.corpus
        if corpus is not None:
            announce(f"index: {len(corpus)} designs at level "
                     f"{corpus.level} ({corpus.serving_description()})")
        if server.pool is not None:
            rows = [w.get("rows", 0) for w in server.pool.stats()]
            announce(f"workers: {server.workers} partitions "
                     f"(rows per worker: {rows})")
        announce(f"serving on http://{server.host}:{server.port}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        announce("draining (in-flight requests finish, listener closed)")
        await server.drain(timeout=drain_timeout_s)
        announce("shutdown complete")
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return 0
