"""Partitioned query workers and the front-side pool that drives them.

``gnn4ip serve --workers N`` forks N query workers with a spawn
context.  Each worker opens the index scoped to a disjoint partition
of the shard *files* (:func:`repro.index.shards.assign_partitions`)
as read-only mmaps — the OS page cache shares the bytes, so N workers
cost no extra index memory — and answers
:meth:`~repro.api.facade.Corpus.partial_parts` requests over a
unix-domain socket in a ``0700`` temp directory (see
:mod:`repro.server.protocol` for framing and the trust argument).

The front scatters every embedded batch to all workers and merges the
per-partition partials with the engine's block-maxima merge
(:meth:`~repro.api.facade.Corpus.merge_parts`), which keeps results
bit-identical to single-process serving.  Workers never see the
structural channel: WL-signature scores join at the front, after the
per-partition embed/struct rank candidates are merged (fuse at the
front, not in the workers).

Worker processes inherit single-thread BLAS caps: with one worker per
core, intra-gemm threading would only oversubscribe, and capping both
sides keeps the 1-worker vs N-worker comparison honest.
"""

import multiprocessing
import os
import shutil
import socket
import tempfile
import time

from repro.api.facade import Corpus
from repro.errors import ReproError
from repro.server.protocol import ProtocolError, recv_msg, send_msg

#: Exported to worker processes around spawn (existing values win).
BLAS_CAPS = {
    "OPENBLAS_NUM_THREADS": "1",
    "OMP_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
    "NUMEXPR_NUM_THREADS": "1",
}

#: Ceiling on worker startup (spawn + index open + hello).
START_TIMEOUT_S = 120.0
#: Ceiling on one partial query; a worker past this is treated as dead.
REPLY_TIMEOUT_S = 600.0


class WorkerPoolError(Exception):
    """A worker died or desynchronized mid-query.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the client
    did nothing wrong, so the HTTP layer maps this to a 500 envelope
    rather than a 4xx.  The pool respawns the lost worker before the
    next scatter.
    """


def worker_main(socket_path, which, count, index_dir):
    """Entry point of one query worker process.

    Opens the index scoped to partition ``which`` of ``count``, sends
    a hello frame (partition row count and shard ordinals), then
    serves ``query`` requests until a ``stop`` frame or the channel
    closes.  Query-time :class:`~repro.errors.ReproError` (and any
    other exception) is reported back as an ``error`` frame instead of
    killing the worker.

    Fault injection: a ``crash_next`` frame arms the worker to
    ``os._exit`` on its *next* query without replying — the only
    deterministic way to exercise the front's died-mid-query path
    (a worker killed while idle is transparently respawned before the
    next scatter and no request ever fails).
    """
    corpus = Corpus.open(index_dir, partition=(which, count))
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(socket_path)
    crash_next = False
    try:
        send_msg(sock, {"op": "hello", "worker": which, "pid": os.getpid(),
                        "rows": corpus.partition_rows,
                        "shards": corpus.partition})
        while True:
            try:
                msg = recv_msg(sock)
            except (EOFError, ProtocolError, OSError):
                break
            op = msg.get("op")
            if op == "stop":
                break
            if op == "crash_next":
                crash_next = True
                continue
            if op != "query":
                send_msg(sock, {"op": "error", "id": msg.get("id"),
                                "kind": "ProtocolError",
                                "message": f"unknown op {op!r}"})
                continue
            if crash_next:
                os._exit(1)
            try:
                partial = corpus.partial_parts(
                    msg["vectors"], msg["offsets"], msg["regions"],
                    k=msg["k"], delta=msg["delta"], nprobe=msg["nprobe"],
                    exact=msg["exact"], fused=msg["fused"])
                reply = {"op": "result", "id": msg["id"], "partials": partial}
            except Exception as exc:
                reply = {"op": "error", "id": msg["id"],
                         "kind": type(exc).__name__, "message": str(exc)}
            send_msg(sock, reply)
    finally:
        sock.close()


class _Member:
    """One live worker: its process, channel, and hello-reported stats."""

    __slots__ = ("process", "conn", "rows", "shards", "pid")

    def __init__(self, process, conn, rows, shards, pid):
        self.process = process
        self.conn = conn
        self.rows = int(rows)
        self.shards = list(shards)
        self.pid = int(pid)


class WorkerPool:
    """Spawn, feed, and supervise the partitioned query workers.

    :meth:`scatter` is called from the MicroBatcher's executor thread,
    which serializes batches — at most one scatter is ever in flight,
    so plain blocking socket I/O here never stalls the event loop and
    needs no per-connection locking.

    Args:
        index_dir: index root every worker opens (read-only mmaps).
        workers: partition count; worker ``i`` owns partition ``i``.
    """

    def __init__(self, index_dir, workers,
                 start_timeout_s=START_TIMEOUT_S,
                 reply_timeout_s=REPLY_TIMEOUT_S):
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.index_dir = str(index_dir)
        self.workers = workers
        self.respawns = 0
        self._start_timeout = float(start_timeout_s)
        self._reply_timeout = float(reply_timeout_s)
        self._ctx = multiprocessing.get_context("spawn")
        self._dir = None
        self._path = None
        self._listener = None
        self._members = {}
        self._next_id = 0

    # -- lifecycle ---------------------------------------------------

    def start(self):
        """Spawn all workers and wait for their hellos; returns self."""
        if self._listener is not None:
            return self
        self._dir = tempfile.mkdtemp(prefix="gnn4ip-serve-")
        self._path = os.path.join(self._dir, "workers.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self._path)
        listener.listen(self.workers)
        self._listener = listener
        try:
            self._spawn_members(range(self.workers))
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self):
        """Stop workers (polite stop frame, then terminate) and clean up."""
        for member in self._members.values():
            try:
                send_msg(member.conn, {"op": "stop"})
            except OSError:
                pass
        for member in self._members.values():
            try:
                member.conn.close()
            except OSError:
                pass
            member.process.join(timeout=5)
            if member.process.is_alive():
                member.process.terminate()
                member.process.join(timeout=5)
        self._members.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
            self._path = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # -- supervision -------------------------------------------------

    def _spawn_members(self, which_ids):
        """Spawn the given partitions and collect their hellos.

        BLAS caps are exported around the spawn (the child copies the
        environment at exec time) and restored afterwards; the parent's
        already-loaded BLAS is unaffected either way.
        """
        which_ids = list(which_ids)
        if not which_ids:
            return
        saved = {var: os.environ.get(var) for var in BLAS_CAPS}
        for var, val in BLAS_CAPS.items():
            os.environ.setdefault(var, val)
        try:
            pending = {}
            for which in which_ids:
                proc = self._ctx.Process(
                    target=worker_main,
                    args=(self._path, which, self.workers, self.index_dir),
                    daemon=True, name=f"gnn4ip-worker-{which}")
                proc.start()
                pending[which] = proc
        finally:
            for var, prev in saved.items():
                if prev is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = prev
        deadline = time.monotonic() + self._start_timeout
        while pending:
            for which, proc in pending.items():
                if not proc.is_alive():
                    raise WorkerPoolError(
                        f"worker {which} exited with code {proc.exitcode} "
                        f"before reporting ready")
            if time.monotonic() > deadline:
                raise WorkerPoolError(
                    f"workers {sorted(pending)} failed to report ready "
                    f"within {self._start_timeout:.0f}s")
            self._listener.settimeout(0.2)
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            conn.settimeout(self._reply_timeout)
            hello = recv_msg(conn)
            which = int(hello["worker"])
            proc = pending.pop(which, None)
            if proc is None:
                conn.close()
                raise WorkerPoolError(
                    f"unexpected hello from worker {which}")
            self._members[which] = _Member(proc, conn, hello["rows"],
                                           hello["shards"], hello["pid"])

    def _bury(self, which):
        member = self._members.pop(which, None)
        if member is None:
            return
        try:
            member.conn.close()
        except OSError:
            pass
        if member.process.is_alive():
            member.process.terminate()
        member.process.join(timeout=5)

    def _ensure_members(self):
        """Respawn any dead workers so the pool covers every partition."""
        for which in range(self.workers):
            member = self._members.get(which)
            if member is not None and not member.process.is_alive():
                self._bury(which)
        missing = [w for w in range(self.workers) if w not in self._members]
        if missing:
            self.respawns += len(missing)
            self._spawn_members(missing)

    # -- queries -----------------------------------------------------

    def scatter(self, vectors, offsets, regions=None, k=5, delta=0.0,
                nprobe=None, exact=False, fused=None):
        """Fan one batch out to every worker; partials in partition order.

        The returned list feeds :meth:`Corpus.merge_parts`, whose
        block-maxima merge makes the final hits bit-identical to a
        single-process :meth:`Corpus.query_parts` call.

        Raises:
            ReproError: re-raised worker-side query errors (same type
                name, so the HTTP envelope matches single-process).
            WorkerPoolError: a worker died or desynchronized; the lost
                workers are respawned before this raises, so the *next*
                request sees a full pool.
        """
        self._ensure_members()
        self._next_id += 1
        msg = {"op": "query", "id": self._next_id, "vectors": vectors,
               "offsets": offsets, "regions": regions, "k": k,
               "delta": delta, "nprobe": nprobe, "exact": exact,
               "fused": fused}
        dead = []
        replies = {}
        members = sorted(self._members.items())
        for which, member in members:
            try:
                send_msg(member.conn, msg)
            except OSError:
                dead.append(which)
        # Drain every surviving worker before raising anything, or the
        # next scatter would read this batch's stale reply frames.
        for which, member in members:
            if which in dead:
                continue
            try:
                reply = recv_msg(member.conn)
            except (EOFError, ProtocolError, OSError):
                dead.append(which)
                continue
            if reply.get("id") != msg["id"]:
                dead.append(which)
                continue
            replies[which] = reply
        if dead:
            for which in dead:
                self._bury(which)
            self._ensure_members()
            raise WorkerPoolError(
                f"worker(s) {sorted(set(dead))} died mid-query; "
                f"respawned — retry the request")
        for which in sorted(replies):
            reply = replies[which]
            if reply.get("op") == "error":
                self._raise_remote(reply)
        return [replies[which]["partials"] for which in sorted(replies)]

    @staticmethod
    def _raise_remote(reply):
        """Re-raise a worker-side error under its original ReproError
        type when possible (keeps HTTP status parity with in-process
        serving); anything else becomes a WorkerPoolError → 500."""
        import repro.errors as _errors
        cls = getattr(_errors, str(reply.get("kind")), None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            raise cls(reply.get("message", "worker query failed"))
        raise WorkerPoolError(
            f"worker query failed: {reply.get('kind')}: "
            f"{reply.get('message')}")

    # -- introspection -----------------------------------------------

    @property
    def members(self):
        """Live workers as ``{partition: _Member}`` (read-only view)."""
        return dict(self._members)

    def stats(self):
        """Per-worker stats for ``/v1/stats`` (partition order)."""
        out = []
        for which in range(self.workers):
            member = self._members.get(which)
            if member is None:
                out.append({"worker": which, "alive": False})
            else:
                out.append({"worker": which,
                            "alive": member.process.is_alive(),
                            "pid": member.pid,
                            "rows": member.rows,
                            "shards": member.shards})
        return out
