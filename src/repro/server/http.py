"""Minimal asyncio HTTP/1.1 plumbing (stdlib only).

Just enough protocol for the detection service: JSON requests in, JSON
responses out, with HTTP/1.1 keep-alive (a client may pipeline many
requests over one connection; ``Connection: close`` is honored).  No
routing, no framework — :mod:`repro.server.app` layers the endpoints on
top.
"""

import asyncio
import json
from dataclasses import dataclass, field

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
}

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024


class HttpError(Exception):
    """A protocol-level failure that maps straight to a response."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """Decoded JSON body (HttpError 400 on malformed payloads)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") \
                from exc


async def read_request(reader):
    """Parse one request from an asyncio stream reader.

    Returns ``None`` on a cleanly closed connection (no bytes), raises
    :class:`HttpError` on malformed or oversized input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed cleanly between requests
        raise HttpError(400, "truncated request head") from exc
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, "malformed request line") from exc
    headers = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            length = int(length)
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
    # Strip any query string; the service's routes take none.
    return Request(method=method.upper(), path=path.split("?", 1)[0],
                   headers=headers, body=body)


def response_bytes(status, payload, keep_alive=False, extra_headers=None):
    """A complete HTTP response for a JSON-serializable payload.

    ``keep_alive`` controls the ``Connection`` header: the handler loop
    passes ``True`` when it will read another request from the same
    connection, ``False`` when it is about to close (client asked for
    ``Connection: close``, or the request was malformed and the framing
    can no longer be trusted).  ``extra_headers`` appends literal
    ``name: value`` pairs (e.g. ``Retry-After`` on a 429).
    """
    body = json.dumps(payload).encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n")
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    return (head + "\r\n").encode("latin-1") + body
