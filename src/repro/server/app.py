"""The asyncio detection service: routes, batching, error envelopes.

``ReproServer`` exposes a :class:`~repro.api.facade.Session` over HTTP
(stdlib only — no web framework):

- ``POST /v1/fingerprint`` — embed one design.
- ``POST /v1/query`` — rank the corpus against suspects (multi-suspect
  per request; concurrent requests micro-batched into one embedding
  pass + one BLAS matmul per parameter group).
- ``POST /v1/compare`` — pairwise piracy check.
- ``GET /v1/healthz`` / ``GET /v1/stats`` — liveness and counters.

Failures map to JSON error envelopes
``{"error": {"type", "message", "status"}}``:
:class:`~repro.errors.ModelError` and other library errors are 400s,
:class:`~repro.errors.IndexStoreError` (fingerprint mismatch, empty or
corrupt index) is 409, protocol problems keep their HTTP status, and
anything unexpected is a 500 that names the exception type only.

The model, featurizer, frontend, and memory-mapped engine stay hot in
the bound session across requests — the whole point of running a
long-lived process instead of a CLI call per suspect.
"""

import asyncio
import contextlib
import json
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from repro import __version__
from repro.api.types import QueryResult, matches_from_hits
from repro.errors import IndexStoreError, ReproError
from repro.server.batcher import BacklogFull, MicroBatcher
from repro.server.http import (
    HttpError,
    Request,  # noqa: F401  (re-export for tests/tooling)
    read_request,
    response_bytes,
)
from repro.server.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    Histogram,
)
from repro.server.worker import WorkerPool


def error_envelope(exc, status=None):
    """(payload, status) for an exception, per the mapping above."""
    if status is None:
        if isinstance(exc, HttpError):
            status = exc.status
        elif isinstance(exc, IndexStoreError):
            status = 409
        elif isinstance(exc, (ReproError, OSError)):
            status = 400
        else:
            status = 500
    if status >= 500 and not isinstance(exc, HttpError):
        # Never leak internal state through a 500 message.
        message = f"internal error ({type(exc).__name__})"
    else:
        message = str(exc)
    return {"error": {"type": type(exc).__name__, "message": message,
                      "status": status}}, status


@dataclass
class _QueryJob:
    """One ``/v1/query`` request queued for micro-batched processing."""

    sources: list = None       # Verilog source strings (exclusive with
    vectors: object = None     # a (n, hidden) float array)
    labels: list = field(default_factory=list)
    k: int = 5
    nprobe: int = None
    exact: bool = False
    top: str = None


def _parse_suspects(payload):
    """Split a request's suspect list into sources/vectors + labels."""
    suspects = payload.get("suspects")
    if not isinstance(suspects, list) or not suspects:
        raise HttpError(400, "body must carry a non-empty 'suspects' list")
    sources, vectors, labels = [], [], []
    for i, suspect in enumerate(suspects):
        if isinstance(suspect, str):
            suspect = {"source": suspect}
        if not isinstance(suspect, dict):
            raise HttpError(400, f"suspects[{i}] must be an object or a "
                                 f"source string")
        labels.append(suspect.get("label") or f"suspect[{i}]")
        if "vector" in suspect:
            vectors.append(suspect["vector"])
        elif "source" in suspect:
            sources.append(suspect["source"])
        else:
            raise HttpError(400, f"suspects[{i}] needs a 'source' or a "
                                 f"'vector'")
    if sources and vectors:
        raise HttpError(400, "cannot mix 'source' and 'vector' suspects "
                             "in one request")
    return sources or None, vectors or None, labels


class ReproServer:
    """The async detection service over one bound session.

    Args:
        workers: ``0`` (default) serves queries in-process; ``N >= 1``
            forks N partitioned query workers and scatter-gathers every
            embedded batch across them (:mod:`repro.server.worker`) —
            results stay bit-identical to in-process serving because the
            per-partition partials merge through the engine's own
            block-maxima merge and the structural channel fuses at the
            front.  Requires a corpus loaded from disk (workers re-open
            the index root as read-only mmaps).
        max_pending: refuse ``/v1/query`` submits past this many queued
            requests with a 429 + ``Retry-After`` (``None`` = unbounded).
        log_json: emit one structured JSON access-log line per request.
    """

    def __init__(self, session, host="127.0.0.1", port=0, max_batch=256,
                 batch_window_s=0.002, workers=0, max_pending=None,
                 log_json=False, log_stream=None):
        self.session = session
        self.host = host
        self.port = port
        self.workers = int(workers or 0)
        if self.workers and session.corpus is None:
            raise ValueError("--workers needs a corpus-backed session")
        self.batcher = MicroBatcher(self._process_query_jobs,
                                    max_batch=max_batch,
                                    max_delay_s=batch_window_s,
                                    max_pending=max_pending)
        self.pool = None
        self.log_json = bool(log_json)
        self._log_stream = log_stream if log_stream is not None else sys.stdout
        self.requests = 0
        self.errors = 0
        #: Accepted TCP connections (with keep-alive, many requests can
        #: share one — tests and stats use the ratio).
        self.connections = 0
        #: Requests parsed but not yet answered (drain waits on this).
        self.inflight = 0
        self.request_seconds = Histogram(LATENCY_BUCKETS_S)
        self.batch_jobs = Histogram(BATCH_SIZE_BUCKETS)
        self.scatter_seconds = Histogram(LATENCY_BUCKETS_S)
        self.started_at = None
        self._server = None
        self._writers = set()
        self._drained = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self):
        """Bind the socket and start the batch worker.  With ``port=0``
        the OS picks an ephemeral port; ``self.port`` holds the real one."""
        if self.workers and self.pool is None:
            pool = WorkerPool(self.session.corpus.index.root, self.workers)
            # Spawning + index opens block; keep the loop responsive.
            await asyncio.get_running_loop().run_in_executor(None,
                                                             pool.start)
            self.pool = pool
        await self.batcher.start()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        return self

    async def stop(self):
        if self._server is not None:
            self._server.close()
            # Idle keep-alive connections sit blocked in read_request;
            # close their transports so the handler tasks wind down
            # (3.12's wait_closed waits for handlers, not just the
            # listener).
            for writer in list(self._writers):
                writer.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()
        if self.pool is not None:
            pool, self.pool = self.pool, None
            await asyncio.get_running_loop().run_in_executor(None, pool.stop)

    async def drain(self, timeout=30.0):
        """Graceful shutdown: stop accepting, answer what's in flight,
        then :meth:`stop` (which also stops the worker pool).

        In-flight means parsed requests whose response has not been
        written — including everything queued in the micro-batcher.
        Keep-alive connections that go idle are simply closed; ones
        that keep submitting extend the drain until ``timeout``, after
        which shutdown proceeds anyway.
        """
        if self._server is not None:
            self._server.close()  # refuse new connections, keep transports
        if self.inflight:
            self._drained = asyncio.Event()
            if self.inflight:  # re-check: last response may have just landed
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._drained.wait(), timeout)
            self._drained = None
        await self.stop()

    async def serve_forever(self):
        await self._server.serve_forever()

    # -- connection handling -------------------------------------------------
    async def _handle(self, reader, writer):
        """Serve requests off one connection until it winds down.

        HTTP/1.1 keep-alive: the loop answers request after request on
        the same socket (the sync client's connection reuse depends on
        it) and exits on a clean client close, a ``Connection: close``
        request, or a framing error — after a malformed head or torn
        body the byte stream can no longer be trusted to start a next
        request.
        """
        self.connections += 1
        self._writers.add(writer)
        try:
            while True:
                request = None
                started = None
                counted = False
                try:
                    try:
                        request = await read_request(reader)
                        if request is None:
                            return  # client closed cleanly between requests
                        started = time.perf_counter()
                        # Only a *parsed* request is in flight — an idle
                        # keep-alive connection parked in read_request
                        # must not hold up a drain.
                        self.inflight += 1
                        counted = True
                        payload, status = await self._dispatch(request)
                    except Exception as exc:  # every failure -> an envelope
                        payload, status = error_envelope(exc)
                    seconds = (time.perf_counter() - started
                               if started is not None else 0.0)
                    keep_alive = (request is not None
                                  and request.headers.get("connection", "")
                                  .strip().lower() != "close")
                    self.requests += 1
                    if status >= 400:
                        self.errors += 1
                    self.request_seconds.observe(seconds)
                    extra = {"Retry-After": "1"} if status == 429 else None
                    writer.write(response_bytes(status, payload,
                                                keep_alive=keep_alive,
                                                extra_headers=extra))
                    await writer.drain()
                    if self.log_json:
                        self._access_log(writer, request, status, seconds)
                finally:
                    if counted:
                        self.inflight -= 1
                        if self._drained is not None and self.inflight == 0:
                            self._drained.set()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _access_log(self, writer, request, status, seconds):
        """One JSON line per answered request (``--log-json``)."""
        peer = writer.get_extra_info("peername")
        record = {
            "ts": round(time.time(), 6),
            "remote": peer[0] if isinstance(peer, tuple) else str(peer),
            "method": request.method if request else None,
            "path": request.path if request else None,
            "status": status,
            "seconds": round(seconds, 6),
        }
        print(json.dumps(record, sort_keys=True), file=self._log_stream,
              flush=True)

    async def _dispatch(self, request):
        route = (request.method, request.path)
        if route == ("GET", "/v1/healthz"):
            return self._healthz(), 200
        if route == ("GET", "/v1/stats"):
            return self._stats(), 200
        if route == ("POST", "/v1/fingerprint"):
            return await self._fingerprint(request.json()), 200
        if route == ("POST", "/v1/compare"):
            return await self._compare(request.json()), 200
        if route == ("POST", "/v1/query"):
            return await self._query(request.json()), 200
        known_paths = {"/v1/fingerprint", "/v1/compare", "/v1/query",
                       "/v1/healthz", "/v1/stats"}
        if request.path in known_paths:
            raise HttpError(405, f"{request.method} is not allowed on "
                                 f"{request.path}")
        raise HttpError(404, f"no route for {request.path}")

    # -- endpoints -----------------------------------------------------------
    def _healthz(self):
        corpus = self.session.corpus
        return {
            "status": "ok",
            "version": __version__,
            "designs": len(corpus) if corpus is not None else 0,
            "level": corpus.level if corpus is not None else None,
        }

    def _stats(self):
        corpus = self.session.corpus
        index = {}
        if corpus is not None:
            index = corpus.stats()
            index.pop("build", None)
        batches = self.batcher.batches
        serving = {
            "workers": self.workers,
            "mode": "scatter-gather" if self.pool is not None
                    else "in-process",
            "pending_requests": self.batcher.pending,
            "max_pending": self.batcher.max_pending,
            "rejected_requests": self.batcher.rejected,
        }
        if self.pool is not None:
            serving["worker_rows"] = self.pool.stats()
            serving["worker_respawns"] = self.pool.respawns
        return {
            "uptime_seconds": time.time() - self.started_at,
            "requests": self.requests,
            "errors": self.errors,
            "inflight": self.inflight,
            "query_batches": batches,
            "batched_requests": self.batcher.jobs,
            "mean_requests_per_batch": (self.batcher.jobs / batches
                                        if batches else 0.0),
            "serving": serving,
            "request_seconds": self.request_seconds.snapshot(),
            "batch_jobs": self.batch_jobs.snapshot(),
            "scatter_seconds": self.scatter_seconds.snapshot(),
            "index": index,
        }

    async def _fingerprint(self, payload):
        source = payload.get("source")
        if not isinstance(source, str):
            raise HttpError(400, "body must carry Verilog text in 'source'")
        loop = asyncio.get_running_loop()
        fingerprint = await loop.run_in_executor(
            None, lambda: self.session.fingerprint(
                source, top=payload.get("top"),
                label=payload.get("label"), allow_paths=False))
        return fingerprint.as_dict()

    async def _compare(self, payload):
        sides = []
        for side in ("a", "b"):
            suspect = payload.get(side)
            if isinstance(suspect, dict):
                suspect = suspect.get("source")
            if not isinstance(suspect, str):
                raise HttpError(400, f"body must carry Verilog text in "
                                     f"'{side}' (string or "
                                     f"{{'source': ...}})")
            sides.append(suspect)
        loop = asyncio.get_running_loop()
        comparison = await loop.run_in_executor(
            None, lambda: self.session.compare(sides[0], sides[1],
                                               top=payload.get("top"),
                                               allow_paths=False))
        return comparison.as_dict()

    async def _query(self, payload):
        if self.session.corpus is None:
            raise HttpError(400, "this server has no corpus bound")
        sources, vectors, labels = _parse_suspects(payload)
        k = payload.get("k", 5)
        nprobe = payload.get("nprobe")
        exact = bool(payload.get("exact", False))
        if not isinstance(k, int) or k < 0:
            raise HttpError(400, "'k' must be a non-negative integer")
        if nprobe is not None and (not isinstance(nprobe, int)
                                   or nprobe < 1):
            raise HttpError(400, "'nprobe' must be a positive integer")
        if vectors is not None:
            try:
                vectors = np.asarray(vectors, dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f"malformed vector suspects: {exc}") \
                    from exc
        job = _QueryJob(sources=sources, vectors=vectors, labels=labels,
                        k=k, nprobe=nprobe, exact=exact,
                        top=payload.get("top"))
        try:
            results = await self.batcher.submit(job)
        except BacklogFull as exc:
            raise HttpError(429, f"server is at capacity: {exc}") from exc
        return {
            "results": [result.as_dict() for result in results],
            "serving": self.session.serving_description(nprobe=nprobe,
                                                        exact=exact),
        }

    # -- the batch processor (runs in the executor) --------------------------
    def _process_query_jobs(self, jobs):
        """Serve a gulp of query jobs with shared heavy passes.

        All source suspects across the gulp are embedded in **one**
        packed forward pass, and all suspects sharing (k, nprobe, exact)
        are scored with **one** engine call — the micro-batching win.
        Per-job failures (bad Verilog, wrong vector width) become that
        job's error without failing the gulp.
        """
        session = self.session
        corpus = session.corpus
        self.batch_jobs.observe(len(jobs))
        out = [None] * len(jobs)
        # The corpus's calibration annotates merged results identically
        # to in-process serving (annotation is a pure function of the
        # final match list).  A stale artifact fails the gulp loudly —
        # silently dropping probabilities would hide the problem.
        try:
            calibration = corpus.calibration()
        except ReproError as exc:
            return [exc] * len(jobs)
        # Per job: flat part vectors, group prefix offsets (one group =
        # one suspect), and per-part region descriptors.  On a chunk-less
        # index every suspect is a single part and the engine call below
        # takes the legacy (bit-identical) path.
        vectors_by_job = {}
        offsets_by_job = {}
        regions_by_job = {}
        struct_by_job = {}

        # Phase 1: extract every source suspect (pure-python, per job so
        # one broken design only fails its own request) and decompose it
        # the same way the corpus is stored ...
        parts_by_job = {}
        detector = None
        for idx, job in enumerate(jobs):
            if job.sources is None:
                continue
            try:
                detector = session.detector
                graphs = [
                    session.extract(src, top=job.top, allow_paths=False)
                    for src in job.sources]
                parts_by_job[idx] = corpus.index.suspect_parts(graphs)
                # Structural scores for rank fusion (None on an index
                # without signatures); vector suspects never get them —
                # there is no graph to fingerprint structurally.
                struct_by_job[idx] = corpus.index.suspect_struct(graphs)
            except (ReproError, OSError) as exc:
                out[idx] = exc
        # ... then embed all parts across the gulp in one batched pass.
        if parts_by_job:
            flat = [g for parts, _, _ in parts_by_job.values()
                    for g in parts]
            try:
                service = corpus.index.service_for(detector.model)
                embedded = service.embed_graphs(flat)
            except ReproError as exc:
                for idx in parts_by_job:
                    out[idx] = exc
            else:
                cursor = 0
                for idx, (parts, offsets, regions) in parts_by_job.items():
                    vectors_by_job[idx] = embedded[cursor:cursor
                                                   + len(parts)]
                    offsets_by_job[idx] = offsets
                    regions_by_job[idx] = regions
                    cursor += len(parts)

        # Phase 2: validate vector suspects against the store width.
        # Each supplied vector is its own single-part group.
        hidden = corpus.index.engine.hidden
        for idx, job in enumerate(jobs):
            if job.vectors is None or out[idx] is not None:
                continue
            rows = np.atleast_2d(np.asarray(job.vectors, dtype=np.float64))
            if rows.ndim != 2 or rows.shape[1] != hidden:
                out[idx] = IndexStoreError(
                    f"query vectors have shape {rows.shape}, expected "
                    f"(n, {hidden})")
                continue
            vectors_by_job[idx] = rows
            offsets_by_job[idx] = list(range(len(rows) + 1))
            regions_by_job[idx] = [None] * len(rows)

        # Phase 3: one engine pass per distinct parameter group, with
        # every member job's part groups rebased into one offsets table.
        # Session.default_delta keeps verdicts call-order independent
        # (model-less synthetic stores fall back to 0.0).
        delta = session.default_delta
        groups = {}
        for idx, job in enumerate(jobs):
            if out[idx] is None:
                groups.setdefault((job.k, job.nprobe, job.exact),
                                  []).append(idx)
        for (k, nprobe, exact), members in groups.items():
            stacked = np.concatenate([vectors_by_job[idx]
                                      for idx in members])
            offsets, regions, struct = [0], [], []
            for idx in members:
                base = offsets[-1]
                groups_in_job = len(offsets_by_job[idx]) - 1
                offsets.extend(base + off
                               for off in offsets_by_job[idx][1:])
                regions.extend(regions_by_job[idx])
                struct.extend(struct_by_job.get(idx)
                              or [None] * groups_in_job)
            if all(s is None for s in struct):
                struct = None
            try:
                if self.pool is not None:
                    # Scatter-gather: workers score their shard
                    # partitions and return mergeable partials; the
                    # engine's block-maxima merge plus fusion-at-the-
                    # front (workers never see struct scores — only
                    # which groups *have* them) keeps the results
                    # bit-identical to the in-process call below.
                    fused = (None if struct is None
                             else [s is not None for s in struct])
                    scatter_start = time.perf_counter()
                    partials = self.pool.scatter(
                        stacked, offsets, regions, k=k, delta=delta,
                        nprobe=nprobe, exact=exact, fused=fused)
                    self.scatter_seconds.observe(
                        time.perf_counter() - scatter_start)
                    hit_lists = corpus.index.merge_parts(
                        partials, offsets, regions, k=k, delta=delta,
                        struct=struct)
                else:
                    hit_lists = corpus.index.query_parts(
                        stacked, offsets, regions, k=k, delta=delta,
                        nprobe=nprobe, exact=exact, struct=struct)
            except ReproError as exc:
                for idx in members:
                    out[idx] = exc
                continue
            cursor = 0
            for idx in members:
                count = len(offsets_by_job[idx]) - 1
                per_suspect = hit_lists[cursor:cursor + count]
                cursor += count
                results = [
                    QueryResult(label=label,
                                matches=matches_from_hits(hits))
                    for label, hits in zip(jobs[idx].labels, per_suspect)]
                if calibration is not None:
                    for result in results:
                        calibration.annotate_matches(result.matches)
                out[idx] = results
        return out
