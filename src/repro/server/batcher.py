"""Micro-batching request queue.

Concurrent requests land in one queue; a single worker drains it in
gulps and hands each gulp to a batch processor, so suspects that arrive
together are embedded in one packed forward pass and scored with one
BLAS matmul instead of one pass per request.

The price is a small collection window (``max_delay_s``, default 2 ms)
added to a lone request's latency; the payoff is that 64 concurrent
single-suspect requests cost roughly one 64-row batch instead of 64
1-row batches (see ``benchmarks/bench_query.py``'s served-vs-in-process
floor).

Backpressure: with ``max_pending`` set, a submit that would push the
queue past the cap is refused with :class:`BacklogFull` instead of
letting latency grow without bound — the HTTP layer turns that into a
429 with a ``Retry-After`` header, which load balancers and well-behaved
clients treat as "shed to another replica / back off".
"""

import asyncio


class BacklogFull(Exception):
    """Submit refused: the pending-job queue is at ``max_pending``."""


class MicroBatcher:
    """Coalesce concurrently submitted jobs into batched processing.

    Args:
        process: ``callable(list[job]) -> list[result]`` run in the
            default executor (numpy work releases the GIL inside BLAS,
            so the event loop keeps accepting connections).  Must return
            one result per job, in order; a returned ``Exception``
            instance fails only that job's waiter, while an exception
            *raised* by the callable fails the whole gulp.
        max_batch: hard cap on jobs per gulp.
        max_delay_s: how long the worker lingers after the first job to
            let concurrent arrivals join the batch.
        max_pending: refuse submits past this many queued jobs
            (``None`` = unbounded, the historical behavior).
    """

    def __init__(self, process, max_batch=256, max_delay_s=0.002,
                 max_pending=None):
        self._process = process
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.max_pending = max_pending
        self._queue = None
        self._worker = None
        #: Gulps processed / jobs processed — served via ``/v1/stats`` so
        #: operators (and the benchmark) can see coalescing happen.
        self.batches = 0
        self.jobs = 0
        #: Submits refused by the ``max_pending`` cap.
        self.rejected = 0

    async def start(self):
        self._queue = asyncio.Queue()
        self._worker = asyncio.create_task(self._run())

    async def stop(self):
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None

    @property
    def pending(self):
        """Jobs queued and not yet gulped (the backpressure gauge)."""
        return self._queue.qsize() if self._queue is not None else 0

    async def submit(self, job):
        """Enqueue one job and wait for its result.

        Raises:
            BacklogFull: the queue is at ``max_pending`` — nothing was
                enqueued; the caller should shed the request.
        """
        if (self.max_pending is not None
                and self._queue.qsize() >= self.max_pending):
            self.rejected += 1
            raise BacklogFull(
                f"{self._queue.qsize()} requests already pending "
                f"(max_pending={self.max_pending})")
        future = asyncio.get_running_loop().create_future()
        await self._queue.put((job, future))
        return await future

    async def _run(self):
        while True:
            batch = [await self._queue.get()]
            if self.max_delay_s > 0:
                await asyncio.sleep(self.max_delay_s)
            while len(batch) < self.max_batch and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            jobs = [job for job, _ in batch]
            loop = asyncio.get_running_loop()
            try:
                results = await loop.run_in_executor(None, self._process,
                                                     jobs)
            except Exception as exc:
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            self.batches += 1
            self.jobs += len(jobs)
            for (_, future), result in zip(batch, results):
                if future.done():
                    continue
                if isinstance(result, Exception):
                    future.set_exception(result)
                else:
                    future.set_result(result)
