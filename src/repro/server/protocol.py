"""Length-prefixed pickle framing for the front <-> worker channel.

Scatter-gather serving fans query batches out to worker processes over
unix-domain sockets.  Frames are ``!Q`` (8-byte big-endian) length
prefixes followed by a pickled payload — numpy arrays and the engine's
partial dataclasses cross the boundary without a serialization format
of their own.

Pickle is safe *here* because the channel is internal and trusted by
construction: the socket lives in a ``0700`` temp directory owned by
the serving process, both ends are the same installed codebase, and
nothing a remote HTTP client sends is ever unpickled (suspect payloads
are parsed from JSON at the front and cross this channel as plain
numpy arrays).  Do not point these helpers at a network socket.
"""

import pickle
import struct

#: Refuse absurd frames (a corrupted length prefix would otherwise ask
#: for exabytes); generous enough for any real query batch or partial.
MAX_FRAME_BYTES = 1 << 31

_HEADER = struct.Struct("!Q")


class ProtocolError(Exception):
    """A torn or oversized frame — the channel can no longer be trusted."""


def _recv_exact(sock, count):
    """Read exactly ``count`` bytes; EOFError on a closed peer."""
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise EOFError("peer closed the channel")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def send_msg(sock, obj):
    """Frame and send one message (blocking until fully written)."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_msg(sock):
    """Receive one framed message.

    Raises:
        EOFError: the peer closed the channel cleanly (no partial
            frame) — a worker exit, or the front dropping a worker.
        ProtocolError: a torn header/payload or an oversized frame.
    """
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte cap")
    try:
        payload = _recv_exact(sock, length)
    except EOFError as exc:
        raise ProtocolError("peer closed mid-frame") from exc
    try:
        return pickle.loads(payload)
    except Exception as exc:  # corrupt frame: unpickling can raise anything
        raise ProtocolError(f"undecodable frame: {exc}") from exc
