"""Reference RTL interpreter for flattened modules.

Evaluates synthesizable combinational and single-clock sequential designs:
``assign`` statements, combinational ``always`` blocks, gate primitives, and
posedge-clocked ``always`` blocks.  Values are unsigned integers masked to
each signal's declared width.  Used as the golden model when verifying the
synthesizer and the obfuscation transforms.
"""

from repro.errors import SimulationError
from repro.dataflow.consteval import try_evaluate_const
from repro.verilog import ast_nodes as ast

_MAX_SETTLE_ITERATIONS = 64


def _mask(value, width):
    return value & ((1 << width) - 1)


class RTLSimulator:
    """Interprets one flattened :class:`Module`.

    Args:
        module: a flattened module (run :func:`repro.dataflow.elaborate`
            first if the design has hierarchy).
        clock: name of the clock signal for sequential designs; inferred
            from the first posedge sensitivity when omitted.
    """

    def __init__(self, module, clock=None):
        self._module = module
        self._widths = {}
        self._inputs = []
        self._outputs = []
        self._collect_signals()
        self._comb_items = []
        self._seq_always = []
        self._split_items()
        self._clock = clock or self._infer_clock()
        self._values = {}
        self.reset()

    # -- setup -----------------------------------------------------------
    def _collect_signals(self):
        for port in self._module.ports:
            width = 1
            if port.width is not None:
                msb = try_evaluate_const(port.width.msb)
                lsb = try_evaluate_const(port.width.lsb)
                if msb is None or lsb is None:
                    raise SimulationError(
                        f"port {port.name!r} has a non-constant width")
                width = abs(msb - lsb) + 1
            self._widths[port.name] = width
            if port.direction == "input":
                self._inputs.append(port.name)
            else:
                self._outputs.append(port.name)
        for item in self._module.items:
            if isinstance(item, ast.NetDecl) and item.kind != "integer":
                width = 1
                if item.width is not None:
                    msb = try_evaluate_const(item.width.msb)
                    lsb = try_evaluate_const(item.width.lsb)
                    if msb is None or lsb is None:
                        raise SimulationError(
                            f"net {item.names} has a non-constant width")
                    width = abs(msb - lsb) + 1
                for name in item.names:
                    self._widths.setdefault(name, width)

    def _split_items(self):
        for item in self._module.items:
            if isinstance(item, (ast.Assign, ast.GateInstance)):
                self._comb_items.append(item)
            elif isinstance(item, ast.Always):
                if item.is_clocked:
                    self._seq_always.append(item)
                else:
                    self._comb_items.append(item)
            elif isinstance(item, (ast.NetDecl, ast.Initial)):
                continue
            elif isinstance(item, ast.ModuleInstance):
                raise SimulationError("elaborate the design before simulating")

    def _infer_clock(self):
        for always in self._seq_always:
            for sens in always.sens_list:
                if sens.edge == "posedge" and isinstance(sens.signal,
                                                         ast.Identifier):
                    return sens.signal.name
        return None

    # -- public API ----------------------------------------------------------
    @property
    def inputs(self):
        return list(self._inputs)

    @property
    def outputs(self):
        return list(self._outputs)

    def width(self, name):
        return self._widths.get(name, 1)

    def reset(self):
        """Zero every signal and settle combinational logic."""
        self._values = {name: 0 for name in self._widths}
        self._settle()

    def set_inputs(self, assignments):
        """Drive input signals from {name: int} and settle."""
        for name, value in assignments.items():
            if name not in self._inputs:
                raise SimulationError(f"{name!r} is not an input")
            self._values[name] = _mask(int(value), self._widths[name])
        self._settle()

    def clock(self):
        """One posedge on the clock: run sequential blocks, then settle."""
        if not self._seq_always:
            raise SimulationError("design has no clocked always blocks")
        updates = {}
        for always in self._seq_always:
            env = {}
            nba_env = {}
            self._exec_statement(always.statement, env, nba_env)
            # Blocking writes commit first, then non-blocking ones — both
            # evaluated against pre-edge values (reads never see nba_env).
            updates.update(env)
            updates.update(nba_env)
        for name, value in updates.items():
            self._values[name] = _mask(value, self._widths.get(name, 1))
        self._settle()

    def value(self, name):
        try:
            return self._values[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}") from None

    def output_values(self):
        return {name: self._values[name] for name in self._outputs}

    def evaluate(self, assignments):
        """Combinational one-shot: set inputs, return outputs."""
        self.set_inputs(assignments)
        return self.output_values()

    # -- combinational settling ------------------------------------------
    def _settle(self):
        for _ in range(_MAX_SETTLE_ITERATIONS):
            changed = False
            for item in self._comb_items:
                changed |= self._eval_comb_item(item)
            if not changed:
                return
        raise SimulationError("combinational logic did not settle "
                              "(cycle without a register?)")

    def _eval_comb_item(self, item):
        if isinstance(item, ast.Assign):
            value = self._eval(item.rhs)
            return self._commit_lhs(item.lhs, value)
        if isinstance(item, ast.GateInstance):
            inputs = [self._eval(arg) & 1 for arg in item.args[1:]]
            value = _GATE_EVAL[item.gate](inputs)
            return self._commit_lhs(item.args[0], value)
        if isinstance(item, ast.Always):
            env = {}
            self._exec_statement(item.statement, env, env)
            changed = False
            for name, value in env.items():
                changed |= self._commit_name(name, value)
            return changed
        return False

    def _commit_lhs(self, lhs, value):
        if isinstance(lhs, ast.Identifier):
            return self._commit_name(lhs.name, value)
        if isinstance(lhs, ast.BitSelect):
            name = lhs.base.name
            index = self._eval(lhs.index)
            old = self._values.get(name, 0)
            new = (old & ~(1 << index)) | ((value & 1) << index)
            return self._commit_name(name, new, mask_to_width=False)
        if isinstance(lhs, ast.PartSelect):
            name = lhs.base.name
            msb = self._eval(lhs.left)
            lsb = self._eval(lhs.right)
            if lhs.mode == "+:":
                lsb, msb = msb, msb + lsb - 1
            width = msb - lsb + 1
            old = self._values.get(name, 0)
            field_mask = ((1 << width) - 1) << lsb
            new = (old & ~field_mask) | ((value & ((1 << width) - 1)) << lsb)
            return self._commit_name(name, new, mask_to_width=False)
        if isinstance(lhs, ast.Concat):
            changed = False
            widths = [self._lhs_width(p) for p in lhs.parts]
            offset = sum(widths)
            for part, width in zip(lhs.parts, widths):
                offset -= width
                piece = (value >> offset) & ((1 << width) - 1)
                changed |= self._commit_lhs(part, piece)
            return changed
        raise SimulationError(f"invalid lvalue {type(lhs).__name__}")

    def _lhs_width(self, lhs):
        if isinstance(lhs, ast.Identifier):
            return self._widths.get(lhs.name, 1)
        if isinstance(lhs, ast.BitSelect):
            return 1
        if isinstance(lhs, ast.PartSelect):
            msb = self._eval(lhs.left)
            lsb = self._eval(lhs.right)
            if lhs.mode == "+:":
                return lsb
            return abs(msb - lsb) + 1
        raise SimulationError("unsupported lvalue in concat")

    def _commit_name(self, name, value, mask_to_width=True):
        width = self._widths.get(name, 1)
        if mask_to_width:
            value = _mask(int(value), width)
        else:
            value = _mask(int(value), width)
        old = self._values.get(name)
        self._values[name] = value
        return old != value

    # -- statements ---------------------------------------------------------
    def _exec_statement(self, stmt, env, nba_env=None):
        """Execute one statement.

        ``env`` holds blocking updates (reads see it); ``nba_env`` collects
        non-blocking updates (reads never see it).  Combinational callers
        pass the same dict for both.
        """
        if nba_env is None:
            nba_env = env
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._exec_statement(inner, env, nba_env)
        elif isinstance(stmt, ast.BlockingAssign):
            value = self._eval(stmt.rhs, env)
            self._assign_env(stmt.lhs, value, env)
        elif isinstance(stmt, ast.NonblockingAssign):
            value = self._eval(stmt.rhs, env)
            self._assign_env(stmt.lhs, value, nba_env)
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.cond, env):
                self._exec_statement(stmt.then_stmt, env, nba_env)
            elif stmt.else_stmt is not None:
                self._exec_statement(stmt.else_stmt, env, nba_env)
        elif isinstance(stmt, ast.Case):
            self._exec_case(stmt, env, nba_env)
        elif isinstance(stmt, ast.For):
            self._exec_statement(stmt.init, env, nba_env)
            guard = 0
            while self._eval(stmt.cond, env):
                self._exec_statement(stmt.body, env, nba_env)
                self._exec_statement(stmt.step, env, nba_env)
                guard += 1
                if guard > 65536:
                    raise SimulationError("runaway for loop")
        else:
            raise SimulationError(
                f"unsupported statement {type(stmt).__name__}")

    def _exec_case(self, stmt, env, nba_env):
        subject = self._eval(stmt.expr, env)
        default = None
        for item in stmt.items:
            if not item.patterns:
                default = item.statement
                continue
            for pattern in item.patterns:
                if self._case_match(subject, pattern, stmt.kind, env):
                    self._exec_statement(item.statement, env, nba_env)
                    return
        if default is not None:
            self._exec_statement(default, env, nba_env)

    def _case_match(self, subject, pattern, kind, env):
        if kind in ("casez", "casex") and isinstance(pattern, ast.BasedConst):
            digits = pattern.digits.replace("_", "")
            if pattern.base == "b" and any(c in "zZ?xX" for c in digits):
                mask = 0
                value = 0
                for char in digits:
                    mask <<= 1
                    value <<= 1
                    if char in "zZ?xX":
                        continue
                    mask |= 1
                    value |= int(char)
                return (subject & mask) == (value & mask)
        return subject == self._eval(pattern, env)

    def _assign_env(self, lhs, value, env):
        if isinstance(lhs, ast.Identifier):
            env[lhs.name] = _mask(value, self._widths.get(lhs.name, 32))
            return
        if isinstance(lhs, ast.BitSelect):
            name = lhs.base.name
            index = self._eval(lhs.index, env)
            old = env.get(name, self._values.get(name, 0))
            env[name] = (old & ~(1 << index)) | ((value & 1) << index)
            return
        if isinstance(lhs, ast.PartSelect):
            name = lhs.base.name
            msb = self._eval(lhs.left, env)
            lsb = self._eval(lhs.right, env)
            if lhs.mode == "+:":
                lsb, msb = msb, msb + lsb - 1
            width = msb - lsb + 1
            old = env.get(name, self._values.get(name, 0))
            field_mask = ((1 << width) - 1) << lsb
            env[name] = ((old & ~field_mask)
                         | ((value & ((1 << width) - 1)) << lsb))
            return
        if isinstance(lhs, ast.Concat):
            widths = [self._lhs_width(p) for p in lhs.parts]
            offset = sum(widths)
            for part, width in zip(lhs.parts, widths):
                offset -= width
                piece = (value >> offset) & ((1 << width) - 1)
                self._assign_env(part, piece, env)
            return
        raise SimulationError(f"invalid lvalue {type(lhs).__name__}")

    # -- expressions ----------------------------------------------------------
    def _read(self, name, env):
        if env is not None and name in env:
            return env[name]
        if name in self._values:
            return self._values[name]
        raise SimulationError(f"read of unknown signal {name!r}")

    def _expr_width(self, expr, env=None):
        if isinstance(expr, ast.Identifier):
            return self._widths.get(expr.name, 32)
        if isinstance(expr, ast.BasedConst):
            return expr.width if expr.width is not None else 32
        if isinstance(expr, ast.IntConst):
            return 32
        if isinstance(expr, ast.UnaryOp):
            if expr.op in ("&", "|", "^", "~&", "~|", "~^", "!"):
                return 1
            return self._expr_width(expr.operand, env)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||",
                           "===", "!=="):
                return 1
            return max(self._expr_width(expr.left, env),
                       self._expr_width(expr.right, env))
        if isinstance(expr, ast.Ternary):
            return max(self._expr_width(expr.true_value, env),
                       self._expr_width(expr.false_value, env))
        if isinstance(expr, ast.Concat):
            return sum(self._expr_width(p, env) for p in expr.parts)
        if isinstance(expr, ast.Repeat):
            count = self._eval(expr.count, env)
            return count * self._expr_width(expr.value, env)
        if isinstance(expr, ast.BitSelect):
            return 1
        if isinstance(expr, ast.PartSelect):
            msb = self._eval(expr.left, env)
            lsb = self._eval(expr.right, env)
            if expr.mode in ("+:", "-:"):
                return lsb
            return abs(msb - lsb) + 1
        return 32

    def _eval(self, expr, env=None):
        if isinstance(expr, ast.Identifier):
            return self._read(expr.name, env)
        if isinstance(expr, ast.IntConst):
            return expr.value
        if isinstance(expr, ast.BasedConst):
            return expr.value
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Ternary):
            if self._eval(expr.cond, env):
                return self._eval(expr.true_value, env)
            return self._eval(expr.false_value, env)
        if isinstance(expr, ast.Concat):
            value = 0
            for part in expr.parts:
                width = self._expr_width(part, env)
                value = (value << width) | _mask(self._eval(part, env), width)
            return value
        if isinstance(expr, ast.Repeat):
            count = self._eval(expr.count, env)
            width = self._expr_width(expr.value, env)
            piece = _mask(self._eval(expr.value, env), width)
            value = 0
            for _ in range(count):
                value = (value << width) | piece
            return value
        if isinstance(expr, ast.BitSelect):
            base = self._eval(expr.base, env)
            index = self._eval(expr.index, env)
            return (base >> index) & 1
        if isinstance(expr, ast.PartSelect):
            base = self._eval(expr.base, env)
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            if expr.mode == "+:":
                lsb, width = left, right
            elif expr.mode == "-:":
                lsb, width = left - right + 1, right
            else:
                lsb, width = right, left - right + 1
            return (base >> lsb) & ((1 << width) - 1)
        if isinstance(expr, ast.FunctionCall):
            if expr.name in ("$signed", "$unsigned"):
                return self._eval(expr.args[0], env)
            raise SimulationError(f"cannot evaluate call {expr.name!r}")
        raise SimulationError(
            f"cannot evaluate expression {type(expr).__name__}")

    def _eval_unary(self, expr, env):
        value = self._eval(expr.operand, env)
        width = self._expr_width(expr.operand, env)
        op = expr.op
        if op == "+":
            return value
        if op == "-":
            return _mask(-value, max(width, 32))
        if op == "~":
            return _mask(~value, width)
        if op == "!":
            return int(value == 0)
        if op == "&":
            return int(value == (1 << width) - 1)
        if op == "~&":
            return int(value != (1 << width) - 1)
        if op == "|":
            return int(value != 0)
        if op == "~|":
            return int(value == 0)
        if op == "^":
            return bin(value).count("1") & 1
        if op == "~^":
            return 1 ^ (bin(value).count("1") & 1)
        raise SimulationError(f"unknown unary operator {op!r}")

    def _eval_binary(self, expr, env):
        op = expr.op
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        width = max(self._expr_width(expr.left, env),
                    self._expr_width(expr.right, env))
        if op == "+":
            return left + right
        if op == "-":
            return _mask(left - right, max(width, 32))
        if op == "*":
            return left * right
        if op == "/":
            return left // right if right else 0
        if op == "%":
            return left % right if right else 0
        if op == "**":
            return left ** right
        if op == "<<" or op == "<<<":
            return left << right
        if op == ">>" or op == ">>>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op in ("~^", "^~"):
            return _mask(~(left ^ right), width)
        if op in ("==", "==="):
            return int(left == right)
        if op in ("!=", "!=="):
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "&&":
            return int(bool(left) and bool(right))
        if op == "||":
            return int(bool(left) or bool(right))
        raise SimulationError(f"unknown binary operator {op!r}")


_GATE_EVAL = {
    "and": lambda v: all(v) and 1 or 0,
    "or": lambda v: any(v) and 1 or 0,
    "nand": lambda v: 0 if all(v) else 1,
    "nor": lambda v: 0 if any(v) else 1,
    "xor": lambda v: sum(v) & 1,
    "xnor": lambda v: 1 ^ (sum(v) & 1),
    "not": lambda v: 1 ^ v[0],
    "buf": lambda v: v[0],
}
