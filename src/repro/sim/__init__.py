"""Logic simulation: netlist simulator, RTL interpreter, equivalence checks."""

from repro.sim.equivalence import (
    EquivalenceReport,
    check_netlists_equivalent,
    check_rtl_netlist_equivalent,
)
from repro.sim.netlistsim import NetlistSimulator
from repro.sim.rtlsim import RTLSimulator

__all__ = [
    "EquivalenceReport",
    "check_netlists_equivalent",
    "check_rtl_netlist_equivalent",
    "NetlistSimulator",
    "RTLSimulator",
]
