"""Event-free levelized simulation of gate-level netlists.

Combinational gates are evaluated in topological order; D flip-flops update
on an explicit :meth:`NetlistSimulator.clock` call (two-phase: sample, then
commit), so the simulator is race-free by construction.
"""

from repro.errors import SimulationError
from repro.netlist.cells import DFF, cell
from repro.netlist.netlist import CONST0, CONST1


class NetlistSimulator:
    """Simulates one :class:`~repro.netlist.Netlist`.

    Typical use::

        sim = NetlistSimulator(netlist)
        outputs = sim.evaluate({"a": 1, "b": 0})      # combinational
        sim.reset(); sim.set_inputs(...); sim.clock() # sequential
    """

    def __init__(self, netlist):
        netlist.validate()
        self._netlist = netlist
        self._order = netlist.levelize()
        self._dffs = [g for g in netlist.gates if g.cell == DFF]
        self._values = {}
        self.reset()

    @property
    def netlist(self):
        return self._netlist

    def reset(self, state_value=0):
        """Zero all nets and set flip-flop outputs to ``state_value``."""
        self._values = {CONST0: 0, CONST1: 1}
        for net in self._netlist.inputs:
            self._values[net] = 0
        for gate in self._dffs:
            self._values[gate.output] = state_value
        self._settle()

    def set_inputs(self, assignments):
        """Set primary-input values from {net: 0/1} and settle logic."""
        for net, value in assignments.items():
            if net not in self._netlist.inputs:
                raise SimulationError(f"{net!r} is not a primary input")
            self._values[net] = 1 if value else 0
        self._settle()

    def _settle(self):
        values = self._values
        for gate in self._order:
            try:
                inputs = [values[n] for n in gate.inputs]
            except KeyError as missing:
                raise SimulationError(
                    f"net {missing} has no value (unclocked DFF?)") from None
            values[gate.output] = cell(gate.cell).evaluate(inputs)

    def clock(self):
        """One positive clock edge on every DFF, then settle."""
        sampled = {}
        for gate in self._dffs:
            sampled[gate.output] = self._values[gate.inputs[0]]
        self._values.update(sampled)
        self._settle()

    def value(self, net):
        """Current value of one net."""
        try:
            return self._values[net]
        except KeyError:
            raise SimulationError(f"unknown net {net!r}") from None

    def outputs(self):
        """Current values of all primary outputs."""
        return {net: self._values[net] for net in self._netlist.outputs}

    def evaluate(self, assignments):
        """Combinational one-shot: set inputs, return outputs."""
        self.set_inputs(assignments)
        return self.outputs()

    def read_bus(self, base, width):
        """Read bit nets ``base_0..base_{w-1}`` as an integer (LSB first)."""
        value = 0
        for bit in range(width):
            value |= self.value(f"{base}_{bit}") << bit
        return value

    def drive_bus(self, base, width, value):
        """Build the {net: bit} assignment for an integer bus value."""
        return {f"{base}_{bit}": (value >> bit) & 1 for bit in range(width)}
