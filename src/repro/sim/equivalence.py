"""Random-vector equivalence checking.

Used to verify that (a) the synthesizer's netlists match their source RTL and
(b) obfuscation transforms preserve behaviour — the property §IV-E of the
paper relies on.
"""

import numpy as np

from repro.errors import SimulationError
from repro.sim.netlistsim import NetlistSimulator


class EquivalenceReport:
    """Outcome of an equivalence check."""

    def __init__(self, equivalent, vectors, counterexample=None):
        self.equivalent = equivalent
        self.vectors = vectors
        self.counterexample = counterexample

    def __bool__(self):
        return self.equivalent

    def __repr__(self):
        verdict = "equivalent" if self.equivalent else "NOT equivalent"
        return f"EquivalenceReport({verdict}, {self.vectors} vectors)"


def _random_assignment(inputs, rng):
    return {net: int(rng.integers(0, 2)) for net in inputs}


def check_netlists_equivalent(netlist_a, netlist_b, vectors=256, seed=0,
                              sequential_cycles=8, fixed=None):
    """Compare two netlists on random input vectors.

    Combinational netlists are compared pointwise; sequential ones are
    reset and driven with the same random stimulus for several cycles.

    Args:
        fixed: optional ``{input_net: 0/1}`` assignments pinned on every
            vector (random stimulus fills the remaining inputs).  The
            Trojan attack checks use this to hold a trigger condition
            asserted (expecting a mismatch) or deasserted (expecting
            equivalence); pins win over the random draw.

    Returns:
        :class:`EquivalenceReport`
    """
    if set(netlist_a.inputs) != set(netlist_b.inputs):
        raise SimulationError("netlists have different inputs")
    if set(netlist_a.outputs) != set(netlist_b.outputs):
        raise SimulationError("netlists have different outputs")
    fixed = dict(fixed) if fixed else {}
    unknown = set(fixed) - set(netlist_a.inputs)
    if unknown:
        raise SimulationError(
            f"fixed nets are not primary inputs: {sorted(unknown)}")
    rng = np.random.default_rng(seed)
    sim_a = NetlistSimulator(netlist_a)
    sim_b = NetlistSimulator(netlist_b)
    sequential = not (netlist_a.is_combinational()
                      and netlist_b.is_combinational())
    data_inputs = [n for n in netlist_a.inputs
                   if n not in netlist_a.clocks and n not in netlist_b.clocks]
    for trial in range(vectors):
        if sequential:
            sim_a.reset()
            sim_b.reset()
            for _ in range(sequential_cycles):
                stimulus = _random_assignment(data_inputs, rng)
                stimulus.update(fixed)
                sim_a.set_inputs(stimulus)
                sim_b.set_inputs(stimulus)
                if sim_a.outputs() != sim_b.outputs():
                    return EquivalenceReport(False, trial + 1, stimulus)
                sim_a.clock()
                sim_b.clock()
                if sim_a.outputs() != sim_b.outputs():
                    return EquivalenceReport(False, trial + 1, stimulus)
        else:
            stimulus = _random_assignment(data_inputs, rng)
            stimulus.update(fixed)
            if sim_a.evaluate(stimulus) != sim_b.evaluate(stimulus):
                return EquivalenceReport(False, trial + 1, stimulus)
    return EquivalenceReport(True, vectors)


def check_rtl_netlist_equivalent(rtl_sim, netlist, bus_widths, vectors=128,
                                 seed=0):
    """Compare an RTL golden model against a synthesized netlist.

    Args:
        rtl_sim: an :class:`~repro.sim.rtlsim.RTLSimulator` for the source.
        netlist: the synthesized :class:`~repro.netlist.Netlist` whose buses
            are flattened to ``name_i`` bit nets.
        bus_widths: {signal_name: width} for the RTL ports.
        vectors: number of random vectors (combinational designs only).

    Returns:
        :class:`EquivalenceReport`
    """
    rng = np.random.default_rng(seed)
    net_sim = NetlistSimulator(netlist)
    input_names = rtl_sim.inputs
    output_names = rtl_sim.outputs
    for trial in range(vectors):
        values = {name: int(rng.integers(0, 1 << bus_widths[name]))
                  for name in input_names}
        rtl_out = rtl_sim.evaluate(values)
        assignments = {}
        for name, value in values.items():
            width = bus_widths[name]
            if width == 1 and name in netlist.inputs:
                assignments[name] = value
            else:
                assignments.update(net_sim.drive_bus(name, width, value))
        net_sim.set_inputs(assignments)
        for name in output_names:
            width = bus_widths[name]
            if width == 1 and name in netlist.outputs:
                got = net_sim.value(name)
            else:
                got = net_sim.read_bus(name, width)
            if got != rtl_out[name]:
                return EquivalenceReport(False, trial + 1,
                                         {"inputs": values, "output": name,
                                          "rtl": rtl_out[name], "netlist": got})
    return EquivalenceReport(True, vectors)
