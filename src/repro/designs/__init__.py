"""Synthetic hardware-design corpus: families, ISCAS netlists, assembly."""

from repro.designs.base import (
    DesignFamily,
    DesignVariant,
    all_families,
    family_names,
    generate_corpus,
    get_family,
    register,
)
from repro.designs.corpus import (
    SYNTHESIZABLE_FAMILIES,
    canonical_variant,
    corpus_statistics,
    default_rtl_families,
    iscas_records,
    materialize_corpus,
    materialize_netlist_corpus,
    mips_visualization_records,
    netlist_ir_records,
    netlist_records,
    rtl_records,
)
from repro.designs.iscas import ISCAS_BENCHMARKS, iscas_names, iscas_netlist

__all__ = [
    "DesignFamily", "DesignVariant", "all_families", "family_names",
    "generate_corpus", "get_family", "register",
    "SYNTHESIZABLE_FAMILIES", "canonical_variant", "corpus_statistics",
    "default_rtl_families",
    "iscas_records", "materialize_corpus", "materialize_netlist_corpus",
    "mips_visualization_records",
    "netlist_ir_records", "netlist_records", "rtl_records",
    "ISCAS_BENCHMARKS", "iscas_names", "iscas_netlist",
]
