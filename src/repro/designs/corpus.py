"""Corpus assembly: RTL and netlist datasets of DFG records.

Turns design-family variants (RTL) and synthesized/obfuscated netlists into
:class:`~repro.core.dataset.GraphRecord` lists ready for pair-dataset
construction — the reproduction of the paper's "390 RTL codes and 143
netlists" collection (scaled by arguments).
"""

import zlib

from repro.core.dataset import GraphRecord
from repro.dataflow.pipeline import dfg_from_verilog
from repro.designs.base import family_names, generate_corpus, get_family
from repro.designs.iscas import ISCAS_BENCHMARKS, iscas_netlist
from repro.errors import DatasetError
from repro.netlist.verilog_io import write_netlist
from repro.obfuscate.transforms import obfuscate
from repro.synth.synthesize import synthesize_verilog

#: Families whose netlists are produced by synthesizing their RTL.  These
#: are the combinational / simple sequential designs where bit blasting is
#: cheap; processor families stay RTL-only (as most soft IPs do).
SYNTHESIZABLE_FAMILIES = (
    "adder8", "addsub8", "mult4", "cmp8", "absdiff8", "satadd8",
    "prienc8", "dec3to8", "mux8", "parity16", "popcount8",
    "bin2gray8", "gray2bin8", "barrel8", "counter8", "updown4",
    "lfsr8", "shiftreg8", "crc8", "hamenc74", "hamdec74",
)


def rtl_records(families=None, instances_per_design=4, seed=0, verbose=False):
    """RTL corpus: DFG records from design-family variants."""
    variants = generate_corpus(families=families,
                               instances_per_design=instances_per_design,
                               seed=seed)
    records = []
    for variant in variants:
        graph = dfg_from_verilog(variant.verilog, top=variant.top)
        graph.name = variant.instance
        records.append(GraphRecord(design=variant.design,
                                   instance=variant.instance,
                                   graph=graph, kind="rtl"))
        if verbose:
            print(f"  rtl {variant.instance}: {len(graph)} nodes")
    return records


def _netlist_graph(netlist, instance_name):
    graph = dfg_from_verilog(write_netlist(netlist))
    graph.name = instance_name
    return graph


def canonical_variant(name, offset=0, seed=0):
    """The canonical (unrewritten) RTL instance of a family under the
    netlist-corpus seeding scheme.

    ``offset`` is the family's position in its corpus list.  The netlist
    corpus builders and the evaluation harness's scenario generator both
    derive their base designs here, so an attack suspect is produced from
    exactly the IP instance the corpus indexed.
    """
    family = get_family(name)
    return family.generate(seed=seed + 31 * offset, rewrite=False)


def _netlist_variants(families, instances_per_design, seed):
    """Yield ``(design, index, netlist)`` synthesized-variant triples.

    The single source of the variant-generation scheme shared by
    :func:`netlist_records` and :func:`netlist_ir_records`: instance 0 of
    each design is the plain synthesized netlist; the others are
    behaviour-preserving obfuscations with increasing seeds, mirroring how
    netlist "hardware instances" of one design differ in practice.
    """
    if families is None:
        families = [n for n in SYNTHESIZABLE_FAMILIES if n in family_names()]
    for offset, name in enumerate(families):
        variant = canonical_variant(name, offset=offset, seed=seed)
        base = synthesize_verilog(variant.verilog, top=variant.top)
        for index in range(instances_per_design):
            if index == 0:
                net = base
            else:
                net = obfuscate(base, seed=seed + 1000 * offset + index,
                                strength=1 + index % 3)
            yield name, index, net


def netlist_records(families=None, instances_per_design=3, seed=0,
                    verbose=False):
    """Netlist corpus: synthesize family RTL, then obfuscate for variants.

    Graphs are netlists round-tripped through structural Verilog into RTL
    dataflow graphs (the paper's original netlist treatment); see
    :func:`netlist_ir_records` for the direct gate-level IR corpus.
    """
    records = []
    for name, index, net in _netlist_variants(families, instances_per_design,
                                              seed):
        instance = f"{name}_net{index}"
        graph = _netlist_graph(net, instance)
        records.append(GraphRecord(design=name, instance=instance,
                                   graph=graph, kind="netlist"))
        if verbose:
            print(f"  netlist {instance}: {len(graph)} nodes")
    return records


def netlist_ir_records(families=None, instances_per_design=3, seed=0,
                       verbose=False):
    """Gate-level GraphIR corpus for the netlist detection scenario.

    The same synthesized-plus-obfuscated instances as
    :func:`netlist_records` (one shared generation scheme,
    :func:`_netlist_variants`), but the graphs are lowered *directly* to
    netlist-level :class:`~repro.ir.graphir.GraphIR` (cell-library node
    labels) instead of being round-tripped through structural Verilog into
    RTL dataflow graphs — this is the corpus for models trained with the
    ``netlist`` featurizer.
    """
    from repro.netlist.to_ir import netlist_to_ir

    records = []
    for name, index, net in _netlist_variants(families, instances_per_design,
                                              seed):
        instance = f"{name}_nir{index}"
        graph = netlist_to_ir(net, name=instance)
        records.append(GraphRecord(design=name, instance=instance,
                                   graph=graph, kind="netlist"))
        if verbose:
            print(f"  netlist-ir {instance}: {len(graph)} nodes")
    return records


def iscas_records(names=None, obfuscated_per_benchmark=None, seed=0,
                  strength=2, verbose=False):
    """ISCAS'85 corpus: each benchmark plus obfuscated instances.

    Args:
        names: benchmark subset (default all six).
        obfuscated_per_benchmark: instances per benchmark; defaults to the
            paper's per-benchmark counts (scaled down via an int).
    """
    names = list(names) if names is not None else list(ISCAS_BENCHMARKS)
    records = []
    for name in names:
        if name not in ISCAS_BENCHMARKS:
            raise DatasetError(f"unknown ISCAS benchmark {name!r}")
        count = obfuscated_per_benchmark
        if count is None:
            count = ISCAS_BENCHMARKS[name][2]
        base = iscas_netlist(name)
        records.append(GraphRecord(design=name, instance=f"{name}_orig",
                                   graph=_netlist_graph(base, f"{name}_orig"),
                                   kind="netlist"))
        name_seed = zlib.crc32(name.encode()) % 997
        for index in range(count):
            net = obfuscate(base, seed=seed + 7919 * index + name_seed,
                            strength=strength)
            instance = f"{name}_obf{index}"
            records.append(GraphRecord(
                design=name, instance=instance,
                graph=_netlist_graph(net, instance), kind="netlist"))
            if verbose:
                print(f"  iscas {instance}: {len(records[-1].graph)} nodes")
    return records


def mips_visualization_records(instances_per_design=8, seed=0):
    """Pipeline-vs-single-cycle MIPS instances for Fig. 4(b,c)."""
    records = []
    for family_name in ("mips_pipeline", "mips_single"):
        family = get_family(family_name)
        for variant in family.variants(instances_per_design, seed=seed):
            graph = dfg_from_verilog(variant.verilog, top=variant.top)
            graph.name = variant.instance
            records.append(GraphRecord(design=family_name,
                                       instance=variant.instance,
                                       graph=graph, kind="rtl"))
    return records


def default_rtl_families(small=True):
    """The family list used by the benchmark harnesses."""
    names = family_names()
    if not small:
        return names
    # "alu" is deliberately absent: it is the subset block of the MIPS
    # designs (Table II case 3), and training it as a separate design would
    # teach the model to push the MIPS/ALU pair apart.
    preferred = [
        "adder8", "addsub8", "mult4", "cmp8", "prienc8", "mux8",
        "parity16", "barrel8", "counter8", "lfsr8", "fifo4x8", "traffic",
        "seqdet", "rs232", "uart_rx", "aes", "crc8", "hamdec74", "fpa",
        "mips_single", "mips_pipeline",
    ]
    return [n for n in preferred if n in names]


def materialize_corpus(directory, families=None, instances_per_design=4,
                       seed=0):
    """Write generated RTL instances as ``.v`` files under ``directory``.

    This is the bridge between the synthetic design families and
    file-oriented tooling (the fingerprint index, external EDA flows):
    each variant becomes ``<instance>.v``.  Returns the written paths in
    generation order.
    """
    from pathlib import Path

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for variant in generate_corpus(families=families,
                                   instances_per_design=instances_per_design,
                                   seed=seed):
        path = directory / f"{variant.instance}.v"
        path.write_text(variant.verilog)
        paths.append(path)
    return paths


def materialize_netlist_corpus(directory, families=None,
                               instances_per_design=3, seed=0):
    """Write synthesized-plus-obfuscated netlists as ``.v`` files.

    The gate-level sibling of :func:`materialize_corpus`, sharing the
    variant scheme of :func:`netlist_records` (instance 0 is the plain
    synthesized netlist, the rest are behaviour-preserving obfuscations):
    each instance becomes a self-contained structural
    ``<design>_net<i>.v`` that flows through either extraction frontend.
    The evaluation harness indexes these as the defender's IP library.
    Returns the written paths in generation order.
    """
    from pathlib import Path

    from repro.netlist.verilog_io import write_netlist

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, index, net in _netlist_variants(families, instances_per_design,
                                              seed):
        path = directory / f"{name}_net{index}.v"
        path.write_text(write_netlist(net))
        paths.append(path)
    return paths


def corpus_statistics(records):
    """Summary of a record list (sizes per design, Table I style)."""
    designs = {}
    total_nodes = 0
    for record in records:
        designs.setdefault(record.design, []).append(len(record.graph))
        total_nodes += len(record.graph)
    return {
        "designs": len(designs),
        "graphs": len(records),
        "mean_nodes": total_nodes / max(len(records), 1),
        "per_design": {k: len(v) for k, v in sorted(designs.items())},
    }
