"""Combinational logic design families: encoders, muxes, shifters, codes."""

from repro.designs.base import DesignFamily, register


@register
class PriorityEncoder8(DesignFamily):
    """8-to-3 priority encoder with a valid flag."""

    name = "prienc8"
    top = "prienc8"
    description = "8-to-3 priority encoder"

    def styles(self):
        return {"casez": self._casez, "if_chain": self._if_chain}

    @staticmethod
    def _casez(rng):
        return """
module prienc8 (input [7:0] req, output reg [2:0] idx, output valid);
  assign valid = |req;
  always @(*) begin
    casez (req)
      8'b1???????: idx = 3'd7;
      8'b01??????: idx = 3'd6;
      8'b001?????: idx = 3'd5;
      8'b0001????: idx = 3'd4;
      8'b00001???: idx = 3'd3;
      8'b000001??: idx = 3'd2;
      8'b0000001?: idx = 3'd1;
      default: idx = 3'd0;
    endcase
  end
endmodule
"""

    @staticmethod
    def _if_chain(rng):
        return """
module prienc8 (input [7:0] req, output reg [2:0] idx, output valid);
  assign valid = req != 8'd0;
  always @(*) begin
    idx = 3'd0;
    if (req[1]) idx = 3'd1;
    if (req[2]) idx = 3'd2;
    if (req[3]) idx = 3'd3;
    if (req[4]) idx = 3'd4;
    if (req[5]) idx = 3'd5;
    if (req[6]) idx = 3'd6;
    if (req[7]) idx = 3'd7;
  end
endmodule
"""


@register
class Decoder3to8(DesignFamily):
    """3-to-8 decoder with enable."""

    name = "dec3to8"
    top = "dec3to8"
    description = "3-to-8 line decoder"

    def styles(self):
        return {"shift": self._shift, "case": self._case}

    @staticmethod
    def _shift(rng):
        return """
module dec3to8 (input [2:0] sel, input en, output [7:0] y);
  assign y = en ? (8'b1 << sel) : 8'b0;
endmodule
"""

    @staticmethod
    def _case(rng):
        return """
module dec3to8 (input [2:0] sel, input en, output reg [7:0] y);
  always @(*) begin
    if (!en)
      y = 8'b0;
    else begin
      case (sel)
        3'd0: y = 8'b00000001;
        3'd1: y = 8'b00000010;
        3'd2: y = 8'b00000100;
        3'd3: y = 8'b00001000;
        3'd4: y = 8'b00010000;
        3'd5: y = 8'b00100000;
        3'd6: y = 8'b01000000;
        default: y = 8'b10000000;
      endcase
    end
  end
endmodule
"""


@register
class Mux8(DesignFamily):
    """8-to-1 single-bit multiplexer."""

    name = "mux8"
    top = "mux8"
    description = "8-to-1 multiplexer"

    def styles(self):
        return {"index": self._index, "case": self._case,
                "tree": self._tree}

    @staticmethod
    def _index(rng):
        return """
module mux8 (input [7:0] d, input [2:0] sel, output y);
  assign y = d[sel];
endmodule
"""

    @staticmethod
    def _case(rng):
        return """
module mux8 (input [7:0] d, input [2:0] sel, output reg y);
  always @(*) begin
    case (sel)
      3'd0: y = d[0];
      3'd1: y = d[1];
      3'd2: y = d[2];
      3'd3: y = d[3];
      3'd4: y = d[4];
      3'd5: y = d[5];
      3'd6: y = d[6];
      default: y = d[7];
    endcase
  end
endmodule
"""

    @staticmethod
    def _tree(rng):
        return """
module mux8 (input [7:0] d, input [2:0] sel, output y);
  wire [3:0] level0;
  wire [1:0] level1;
  assign level0[0] = sel[0] ? d[1] : d[0];
  assign level0[1] = sel[0] ? d[3] : d[2];
  assign level0[2] = sel[0] ? d[5] : d[4];
  assign level0[3] = sel[0] ? d[7] : d[6];
  assign level1[0] = sel[1] ? level0[1] : level0[0];
  assign level1[1] = sel[1] ? level0[3] : level0[2];
  assign y = sel[2] ? level1[1] : level1[0];
endmodule
"""


@register
class ParityGen16(DesignFamily):
    """16-bit even/odd parity generator."""

    name = "parity16"
    top = "parity16"
    description = "16-bit parity generator"

    def styles(self):
        return {"reduce": self._reduce, "loop": self._loop,
                "tree": self._tree}

    @staticmethod
    def _reduce(rng):
        return """
module parity16 (input [15:0] d, output even, output odd);
  assign odd = ^d;
  assign even = ~^d;
endmodule
"""

    @staticmethod
    def _loop(rng):
        return """
module parity16 (input [15:0] d, output even, output odd);
  reg p;
  integer i;
  always @(*) begin
    p = 1'b0;
    for (i = 0; i < 16; i = i + 1)
      p = p ^ d[i];
  end
  assign odd = p;
  assign even = ~p;
endmodule
"""

    @staticmethod
    def _tree(rng):
        return """
module parity16 (input [15:0] d, output even, output odd);
  wire [7:0] l0;
  wire [3:0] l1;
  wire [1:0] l2;
  assign l0 = d[15:8] ^ d[7:0];
  assign l1 = l0[7:4] ^ l0[3:0];
  assign l2 = l1[3:2] ^ l1[1:0];
  assign odd = l2[1] ^ l2[0];
  assign even = ~odd;
endmodule
"""


@register
class Popcount8(DesignFamily):
    """8-bit population count."""

    name = "popcount8"
    top = "popcount8"
    description = "8-bit ones counter"

    def styles(self):
        return {"loop": self._loop, "adder_tree": self._adder_tree}

    @staticmethod
    def _loop(rng):
        return """
module popcount8 (input [7:0] d, output reg [3:0] count);
  integer i;
  always @(*) begin
    count = 4'd0;
    for (i = 0; i < 8; i = i + 1)
      count = count + d[i];
  end
endmodule
"""

    @staticmethod
    def _adder_tree(rng):
        return """
module popcount8 (input [7:0] d, output [3:0] count);
  wire [1:0] s0;
  wire [1:0] s1;
  wire [1:0] s2;
  wire [1:0] s3;
  wire [2:0] t0;
  wire [2:0] t1;
  assign s0 = d[0] + d[1];
  assign s1 = d[2] + d[3];
  assign s2 = d[4] + d[5];
  assign s3 = d[6] + d[7];
  assign t0 = s0 + s1;
  assign t1 = s2 + s3;
  assign count = t0 + t1;
endmodule
"""


@register
class Bin2Gray8(DesignFamily):
    """8-bit binary to Gray converter."""

    name = "bin2gray8"
    top = "bin2gray8"
    description = "binary-to-Gray converter"

    def styles(self):
        return {"shift": self._shift, "bitwise": self._bitwise}

    @staticmethod
    def _shift(rng):
        return """
module bin2gray8 (input [7:0] bin, output [7:0] gray);
  assign gray = bin ^ (bin >> 1);
endmodule
"""

    @staticmethod
    def _bitwise(rng):
        return """
module bin2gray8 (input [7:0] bin, output [7:0] gray);
  assign gray[7] = bin[7];
  assign gray[6] = bin[7] ^ bin[6];
  assign gray[5] = bin[6] ^ bin[5];
  assign gray[4] = bin[5] ^ bin[4];
  assign gray[3] = bin[4] ^ bin[3];
  assign gray[2] = bin[3] ^ bin[2];
  assign gray[1] = bin[2] ^ bin[1];
  assign gray[0] = bin[1] ^ bin[0];
endmodule
"""


@register
class Gray2Bin8(DesignFamily):
    """8-bit Gray to binary converter (distinct design from bin2gray)."""

    name = "gray2bin8"
    top = "gray2bin8"
    description = "Gray-to-binary converter"

    def styles(self):
        return {"prefix": self._prefix, "loop": self._loop}

    @staticmethod
    def _prefix(rng):
        return """
module gray2bin8 (input [7:0] gray, output [7:0] bin);
  assign bin[7] = gray[7];
  assign bin[6] = bin[7] ^ gray[6];
  assign bin[5] = bin[6] ^ gray[5];
  assign bin[4] = bin[5] ^ gray[4];
  assign bin[3] = bin[4] ^ gray[3];
  assign bin[2] = bin[3] ^ gray[2];
  assign bin[1] = bin[2] ^ gray[1];
  assign bin[0] = bin[1] ^ gray[0];
endmodule
"""

    @staticmethod
    def _loop(rng):
        return """
module gray2bin8 (input [7:0] gray, output reg [7:0] bin);
  reg acc;
  integer i;
  always @(*) begin
    acc = 1'b0;
    for (i = 7; i >= 0; i = i - 1) begin
      acc = acc ^ gray[i];
      bin[i] = acc;
    end
  end
endmodule
"""


@register
class BarrelShifter8(DesignFamily):
    """8-bit logical barrel shifter (left/right)."""

    name = "barrel8"
    top = "barrel8"
    description = "8-bit barrel shifter"

    def styles(self):
        return {"operators": self._operators, "staged": self._staged}

    @staticmethod
    def _operators(rng):
        return """
module barrel8 (input [7:0] d, input [2:0] amount, input dir,
                output [7:0] y);
  assign y = dir ? (d >> amount) : (d << amount);
endmodule
"""

    @staticmethod
    def _staged(rng):
        return """
module barrel8 (input [7:0] d, input [2:0] amount, input dir,
                output [7:0] y);
  wire [7:0] s0;
  wire [7:0] s1;
  wire [7:0] s2;
  wire [7:0] r0;
  wire [7:0] r1;
  wire [7:0] r2;
  assign s0 = amount[0] ? {d[6:0], 1'b0} : d;
  assign s1 = amount[1] ? {s0[5:0], 2'b0} : s0;
  assign s2 = amount[2] ? {s1[3:0], 4'b0} : s1;
  assign r0 = amount[0] ? {1'b0, d[7:1]} : d;
  assign r1 = amount[1] ? {2'b0, r0[7:2]} : r0;
  assign r2 = amount[2] ? {4'b0, r1[7:4]} : r1;
  assign y = dir ? r2 : s2;
endmodule
"""


@register
class SevenSeg(DesignFamily):
    """Hex digit to 7-segment decoder."""

    name = "sevenseg"
    top = "sevenseg"
    description = "hex to seven-segment decoder"

    def styles(self):
        return {"case": self._case, "equations": self._equations}

    @staticmethod
    def _case(rng):
        return """
module sevenseg (input [3:0] digit, output reg [6:0] seg);
  always @(*) begin
    case (digit)
      4'h0: seg = 7'b0111111;
      4'h1: seg = 7'b0000110;
      4'h2: seg = 7'b1011011;
      4'h3: seg = 7'b1001111;
      4'h4: seg = 7'b1100110;
      4'h5: seg = 7'b1101101;
      4'h6: seg = 7'b1111101;
      4'h7: seg = 7'b0000111;
      4'h8: seg = 7'b1111111;
      4'h9: seg = 7'b1101111;
      4'hA: seg = 7'b1110111;
      4'hB: seg = 7'b1111100;
      4'hC: seg = 7'b0111001;
      4'hD: seg = 7'b1011110;
      4'hE: seg = 7'b1111001;
      default: seg = 7'b1110001;
    endcase
  end
endmodule
"""

    @staticmethod
    def _equations(rng):
        return """
module sevenseg (input [3:0] digit, output [6:0] seg);
  wire a, b, c, d;
  wire [6:0] off;
  assign a = digit[3];
  assign b = digit[2];
  assign c = digit[1];
  assign d = digit[0];
  assign off[0] = (~a & ~b & ~c & d) | (~a & b & ~c & ~d)
                | (a & b & ~c & d) | (a & ~b & c & d);
  assign off[1] = (~a & b & ~c & d) | (b & c & ~d)
                | (a & c & d) | (a & b & ~d);
  assign off[2] = (~a & ~b & c & ~d) | (a & b & ~d) | (a & b & c);
  assign off[3] = (~a & ~b & ~c & d) | (~a & b & ~c & ~d)
                | (b & c & d) | (a & ~b & c & ~d);
  assign off[4] = (~a & d) | (~a & b & ~c) | (~b & ~c & d);
  assign off[5] = (~a & ~b & d) | (~a & ~b & c) | (~a & c & d)
                | (a & b & ~c & d);
  assign off[6] = (~a & ~b & ~c) | (~a & b & c & d) | (a & b & ~c & ~d);
  assign seg = ~off;
endmodule
"""
