"""MIPS-style processor families: ALU, single-cycle, pipeline, multi-cycle.

These reproduce the paper's processor designs: "P.MIPS" (pipeline),
"S.MIPS" (single-cycle), "M.MIPS" (multi-cycle), and the standalone "ALU"
block that is *contained* in every MIPS (Table II case 3 measures the
design-vs-subset similarity between a pipeline MIPS and its ALU).

The ISA is a 16-bit teaching subset: 4-bit opcode, four 8-bit registers
held in explicit flops (no memories, which keeps every front-end stage of
the pipeline exercised).  All processor families instantiate the *same*
``mips_alu`` module emitted by :class:`MipsAlu`.
"""

from repro.designs.base import DesignFamily, register

#: Opcodes: 0 ADD, 1 SUB, 2 AND, 3 OR, 4 XOR, 5 SLT, 6 SLL, 7 SRL,
#: 8 LI (imm8), 9 J (target4), 10 BEQZ (rs, target4).
_NUM_OPS = 8


def _alu_module(style):
    """The shared 8-bit ALU (two coding styles)."""
    if style == "case":
        return """
module mips_alu (input [7:0] a, input [7:0] b, input [2:0] op,
                 output reg [7:0] y, output zero);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = a - b;
      3'd2: y = a & b;
      3'd3: y = a | b;
      3'd4: y = a ^ b;
      3'd5: y = (a < b) ? 8'd1 : 8'd0;
      3'd6: y = a << b[2:0];
      default: y = a >> b[2:0];
    endcase
  end
  assign zero = (y == 8'd0);
endmodule
"""
    return """
module mips_alu (input [7:0] a, input [7:0] b, input [2:0] op,
                 output [7:0] y, output zero);
  wire [7:0] added;
  wire [7:0] subbed;
  wire [7:0] anded;
  wire [7:0] ored;
  wire [7:0] xored;
  wire [7:0] slt;
  wire [7:0] shl;
  wire [7:0] shr;
  wire [7:0] low;
  wire [7:0] high;
  assign added = a + b;
  assign subbed = a - b;
  assign anded = a & b;
  assign ored = a | b;
  assign xored = a ^ b;
  assign slt = {7'b0, a < b};
  assign shl = a << b[2:0];
  assign shr = a >> b[2:0];
  assign low = op[1] ? (op[0] ? ored : anded) : (op[0] ? subbed : added);
  assign high = op[1] ? (op[0] ? shr : shl) : (op[0] ? slt : xored);
  assign y = op[2] ? high : low;
  assign zero = ~(|y);
endmodule
"""


def _program_rom(rng, name="rom16"):
    """A 16-entry instruction ROM with a random (valid) program."""
    lines = [f"module {name} (input [3:0] addr, output reg [15:0] instr);",
             "  always @(*) begin",
             "    case (addr)"]
    for address in range(15):
        opcode = int(rng.integers(0, 11))
        rd = int(rng.integers(0, 4))
        rs = int(rng.integers(0, 4))
        rt = int(rng.integers(0, 4))
        if opcode == 8:
            word = (8 << 12) | (rd << 10) | int(rng.integers(0, 256))
        elif opcode == 9:
            word = (9 << 12) | int(rng.integers(0, 16))
        elif opcode == 10:
            word = (10 << 12) | (rs << 8) | int(rng.integers(0, 16))
        else:
            word = (opcode << 12) | (rd << 10) | (rs << 8) | (rt << 6)
        lines.append(f"      4'd{address}: instr = 16'h{word:04X};")
    lines.append("      default: instr = 16'h9000;")  # jump to 0
    lines.append("    endcase")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)


_REGFILE = """
module regfile (input clk, input we, input [1:0] waddr, input [7:0] wdata,
                input [1:0] raddr_a, input [1:0] raddr_b,
                output [7:0] rdata_a, output [7:0] rdata_b);
  reg [7:0] r0;
  reg [7:0] r1;
  reg [7:0] r2;
  reg [7:0] r3;
  assign rdata_a = (raddr_a == 2'd0) ? r0 : (raddr_a == 2'd1) ? r1
                 : (raddr_a == 2'd2) ? r2 : r3;
  assign rdata_b = (raddr_b == 2'd0) ? r0 : (raddr_b == 2'd1) ? r1
                 : (raddr_b == 2'd2) ? r2 : r3;
  always @(posedge clk) begin
    if (we) begin
      if (waddr == 2'd0) r0 <= wdata;
      if (waddr == 2'd1) r1 <= wdata;
      if (waddr == 2'd2) r2 <= wdata;
      if (waddr == 2'd3) r3 <= wdata;
    end
  end
endmodule
"""


@register
class MipsAlu(DesignFamily):
    """Standalone MIPS ALU — the subset design used in Table II case 3."""

    name = "alu"
    top = "mips_alu"
    description = "8-bit MIPS ALU block"

    def styles(self):
        return {"case": lambda rng: _alu_module("case"),
                "mux_tree": lambda rng: _alu_module("mux")}


@register
class MipsSingleCycle(DesignFamily):
    """Single-cycle MIPS (the paper's S.MIPS)."""

    name = "mips_single"
    top = "mips_single"
    description = "single-cycle MIPS processor"

    def styles(self):
        return {"alu_case": lambda rng: self._cpu(rng, "case"),
                "alu_mux": lambda rng: self._cpu(rng, "mux")}

    @staticmethod
    def _cpu(rng, alu_style):
        core = """
module mips_single (input clk, input rst, output [7:0] result,
                    output [3:0] pc_out);
  reg [3:0] pc;
  wire [15:0] instr;
  wire [3:0] opcode;
  wire [1:0] rd;
  wire [1:0] rs;
  wire [1:0] rt;
  wire [7:0] imm;
  wire [3:0] target;
  wire [7:0] reg_a;
  wire [7:0] reg_b;
  wire [7:0] alu_y;
  wire alu_zero;
  wire is_li;
  wire is_jump;
  wire is_branch;
  wire reg_we;
  wire [7:0] wb_data;
  wire [3:0] pc_next;

  rom16 prog (.addr(pc), .instr(instr));
  assign opcode = instr[15:12];
  assign rd = instr[11:10];
  assign rs = instr[9:8];
  assign rt = instr[7:6];
  assign imm = instr[7:0];
  assign target = instr[3:0];
  assign is_li = (opcode == 4'd8);
  assign is_jump = (opcode == 4'd9);
  assign is_branch = (opcode == 4'd10);

  regfile regs (.clk(clk), .we(reg_we), .waddr(rd), .wdata(wb_data),
                .raddr_a(is_branch ? instr[9:8] : rs), .raddr_b(rt),
                .rdata_a(reg_a), .rdata_b(reg_b));
  mips_alu alu (.a(reg_a), .b(reg_b), .op(opcode[2:0]),
                .y(alu_y), .zero(alu_zero));

  assign reg_we = ~is_jump & ~is_branch;
  assign wb_data = is_li ? imm : alu_y;
  assign pc_next = is_jump ? target
                 : (is_branch & (reg_a == 8'd0)) ? target
                 : (pc + 4'd1);
  always @(posedge clk) begin
    if (rst)
      pc <= 4'd0;
    else
      pc <= pc_next;
  end
  assign result = wb_data;
  assign pc_out = pc;
endmodule
"""
        return (core + _REGFILE + "\n" + _alu_module(alu_style) + "\n"
                + _program_rom(rng))


@register
class MipsPipeline(DesignFamily):
    """Three-stage pipelined MIPS (the paper's P.MIPS)."""

    name = "mips_pipeline"
    top = "mips_pipeline"
    description = "pipelined MIPS processor"

    def styles(self):
        return {"alu_case": lambda rng: self._cpu(rng, "case"),
                "alu_mux": lambda rng: self._cpu(rng, "mux")}

    @staticmethod
    def _cpu(rng, alu_style):
        core = """
module mips_pipeline (input clk, input rst, output [7:0] result,
                      output [3:0] pc_out);
  // IF stage
  reg [3:0] pc;
  wire [15:0] instr;
  // IF/ID pipeline register
  reg [15:0] if_id_instr;
  reg [3:0] if_id_pc;
  // ID/EX pipeline register
  reg [3:0] id_ex_opcode;
  reg [1:0] id_ex_rd;
  reg [7:0] id_ex_a;
  reg [7:0] id_ex_b;
  reg [7:0] id_ex_imm;
  reg [3:0] id_ex_target;
  // EX/WB pipeline register
  reg [7:0] ex_wb_data;
  reg [1:0] ex_wb_rd;
  reg ex_wb_we;

  wire [3:0] opcode;
  wire [1:0] rd;
  wire [1:0] rs;
  wire [1:0] rt;
  wire [7:0] reg_a;
  wire [7:0] reg_b;
  wire [7:0] alu_y;
  wire alu_zero;
  wire ex_is_li;
  wire ex_is_jump;
  wire ex_is_branch;
  wire take_branch;
  wire [7:0] ex_data;
  wire [3:0] pc_next;

  rom16 prog (.addr(pc), .instr(instr));
  assign opcode = if_id_instr[15:12];
  assign rd = if_id_instr[11:10];
  assign rs = if_id_instr[9:8];
  assign rt = if_id_instr[7:6];

  regfile regs (.clk(clk), .we(ex_wb_we), .waddr(ex_wb_rd),
                .wdata(ex_wb_data),
                .raddr_a(rs), .raddr_b(rt),
                .rdata_a(reg_a), .rdata_b(reg_b));
  mips_alu alu (.a(id_ex_a), .b(id_ex_b), .op(id_ex_opcode[2:0]),
                .y(alu_y), .zero(alu_zero));

  assign ex_is_li = (id_ex_opcode == 4'd8);
  assign ex_is_jump = (id_ex_opcode == 4'd9);
  assign ex_is_branch = (id_ex_opcode == 4'd10);
  assign take_branch = ex_is_branch & (id_ex_a == 8'd0);
  assign ex_data = ex_is_li ? id_ex_imm : alu_y;
  assign pc_next = ex_is_jump ? id_ex_target
                 : take_branch ? id_ex_target
                 : (pc + 4'd1);

  always @(posedge clk) begin
    if (rst) begin
      pc <= 4'd0;
      if_id_instr <= 16'h9000;
      if_id_pc <= 4'd0;
      id_ex_opcode <= 4'd9;
      id_ex_rd <= 2'd0;
      id_ex_a <= 8'd0;
      id_ex_b <= 8'd0;
      id_ex_imm <= 8'd0;
      id_ex_target <= 4'd0;
      ex_wb_data <= 8'd0;
      ex_wb_rd <= 2'd0;
      ex_wb_we <= 1'b0;
    end else begin
      pc <= pc_next;
      if_id_instr <= instr;
      if_id_pc <= pc;
      id_ex_opcode <= opcode;
      id_ex_rd <= rd;
      id_ex_a <= reg_a;
      id_ex_b <= reg_b;
      id_ex_imm <= if_id_instr[7:0];
      id_ex_target <= if_id_instr[3:0];
      ex_wb_data <= ex_data;
      ex_wb_rd <= id_ex_rd;
      ex_wb_we <= ~ex_is_jump & ~ex_is_branch;
    end
  end
  assign result = ex_wb_data;
  assign pc_out = pc;
endmodule
"""
        return (core + _REGFILE + "\n" + _alu_module(alu_style) + "\n"
                + _program_rom(rng))


@register
class MipsMultiCycle(DesignFamily):
    """Multi-cycle MIPS with a fetch/decode/execute/writeback FSM."""

    name = "mips_multi"
    top = "mips_multi"
    description = "multi-cycle MIPS processor"

    def styles(self):
        return {"alu_case": lambda rng: self._cpu(rng, "case"),
                "alu_mux": lambda rng: self._cpu(rng, "mux")}

    @staticmethod
    def _cpu(rng, alu_style):
        core = """
module mips_multi (input clk, input rst, output [7:0] result,
                   output [3:0] pc_out);
  reg [1:0] state;  // 0 fetch, 1 decode, 2 execute, 3 writeback
  reg [3:0] pc;
  reg [15:0] ir;
  reg [7:0] op_a;
  reg [7:0] op_b;
  reg [7:0] alu_out;
  wire [15:0] instr;
  wire [3:0] opcode;
  wire [7:0] reg_a;
  wire [7:0] reg_b;
  wire [7:0] alu_y;
  wire alu_zero;
  wire is_li;
  wire is_jump;
  wire is_branch;
  wire reg_we;

  rom16 prog (.addr(pc), .instr(instr));
  assign opcode = ir[15:12];
  assign is_li = (opcode == 4'd8);
  assign is_jump = (opcode == 4'd9);
  assign is_branch = (opcode == 4'd10);
  assign reg_we = (state == 2'd3) & ~is_jump & ~is_branch;

  regfile regs (.clk(clk), .we(reg_we), .waddr(ir[11:10]),
                .wdata(is_li ? ir[7:0] : alu_out),
                .raddr_a(ir[9:8]), .raddr_b(ir[7:6]),
                .rdata_a(reg_a), .rdata_b(reg_b));
  mips_alu alu (.a(op_a), .b(op_b), .op(opcode[2:0]),
                .y(alu_y), .zero(alu_zero));

  always @(posedge clk) begin
    if (rst) begin
      state <= 2'd0;
      pc <= 4'd0;
      ir <= 16'h9000;
      op_a <= 8'd0;
      op_b <= 8'd0;
      alu_out <= 8'd0;
    end else begin
      case (state)
        2'd0: begin
          ir <= instr;
          state <= 2'd1;
        end
        2'd1: begin
          op_a <= reg_a;
          op_b <= reg_b;
          state <= 2'd2;
        end
        2'd2: begin
          alu_out <= alu_y;
          state <= 2'd3;
        end
        default: begin
          if (is_jump)
            pc <= ir[3:0];
          else if (is_branch && (op_a == 8'd0))
            pc <= ir[3:0];
          else
            pc <= pc + 4'd1;
          state <= 2'd0;
        end
      endcase
    end
  end
  assign result = alu_out;
  assign pc_out = pc;
endmodule
"""
        return (core + _REGFILE + "\n" + _alu_module(alu_style) + "\n"
                + _program_rom(rng))
