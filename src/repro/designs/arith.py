"""Arithmetic design families: adders, subtractors, multipliers, comparators.

Each family provides multiple genuinely different implementation styles
("different codes, same design" — the paper's positive-pair condition).
"""

from repro.designs.base import DesignFamily, register


def _ripple_adder_structural(width, with_carry=True):
    """Gate-level ripple-carry adder source (unrolled full adders)."""
    lines = [f"module adder{width} (input [{width-1}:0] a, "
             f"input [{width-1}:0] b, input cin, "
             f"output [{width-1}:0] sum, output cout);"]
    for i in range(width + 1):
        lines.append(f"  wire c{i};")
    for i in range(width):
        lines.append(f"  wire p{i}, g{i}, t{i};")
    lines.append("  buf (c0, cin);")
    for i in range(width):
        lines.append(f"  xor (p{i}, a[{i}], b[{i}]);")
        lines.append(f"  and (g{i}, a[{i}], b[{i}]);")
        lines.append(f"  xor (sum[{i}], p{i}, c{i});")
        lines.append(f"  and (t{i}, p{i}, c{i});")
        lines.append(f"  or (c{i+1}, g{i}, t{i});")
    lines.append(f"  buf (cout, c{width});")
    lines.append("endmodule")
    return "\n".join(lines)


@register
class Adder8(DesignFamily):
    """8-bit adder with carry in/out."""

    name = "adder8"
    top = "adder8"
    description = "8-bit adder with carry"

    def styles(self):
        return {
            "behavioral": self._behavioral,
            "structural": self._structural,
            "carry_select": self._carry_select,
        }

    @staticmethod
    def _behavioral(rng):
        return """
module adder8 (input [7:0] a, input [7:0] b, input cin,
               output [7:0] sum, output cout);
  wire [8:0] total;
  assign total = a + b + cin;
  assign sum = total[7:0];
  assign cout = total[8];
endmodule
"""

    @staticmethod
    def _structural(rng):
        return _ripple_adder_structural(8)

    @staticmethod
    def _carry_select(rng):
        return """
module adder8 (input [7:0] a, input [7:0] b, input cin,
               output [7:0] sum, output cout);
  wire [4:0] low;
  wire [4:0] high0;
  wire [4:0] high1;
  wire sel;
  assign low = a[3:0] + b[3:0] + cin;
  assign sel = low[4];
  assign high0 = a[7:4] + b[7:4];
  assign high1 = a[7:4] + b[7:4] + 4'd1;
  assign sum = sel ? {high1[3:0], low[3:0]} : {high0[3:0], low[3:0]};
  assign cout = sel ? high1[4] : high0[4];
endmodule
"""


@register
class Adder16(DesignFamily):
    """16-bit adder (distinct design from the 8-bit one)."""

    name = "adder16"
    top = "adder16"
    description = "16-bit adder with carry"

    def styles(self):
        return {"behavioral": self._behavioral, "blocked": self._blocked}

    @staticmethod
    def _behavioral(rng):
        return """
module adder16 (input [15:0] a, input [15:0] b, input cin,
                output [15:0] sum, output cout);
  wire [16:0] total;
  assign total = a + b + cin;
  assign sum = total[15:0];
  assign cout = total[16];
endmodule
"""

    @staticmethod
    def _blocked(rng):
        return """
module adder16 (input [15:0] a, input [15:0] b, input cin,
                output [15:0] sum, output cout);
  wire [8:0] lo;
  wire [8:0] hi;
  assign lo = a[7:0] + b[7:0] + cin;
  assign hi = a[15:8] + b[15:8] + lo[8];
  assign sum = {hi[7:0], lo[7:0]};
  assign cout = hi[8];
endmodule
"""


@register
class AddSub8(DesignFamily):
    """8-bit adder/subtractor with a mode select."""

    name = "addsub8"
    top = "addsub8"
    description = "8-bit add/subtract unit"

    def styles(self):
        return {"ternary": self._ternary, "xor_trick": self._xor_trick}

    @staticmethod
    def _ternary(rng):
        return """
module addsub8 (input [7:0] a, input [7:0] b, input mode,
                output [7:0] y, output carry);
  wire [8:0] added;
  wire [8:0] subbed;
  assign added = a + b;
  assign subbed = a - b;
  assign y = mode ? subbed[7:0] : added[7:0];
  assign carry = mode ? subbed[8] : added[8];
endmodule
"""

    @staticmethod
    def _xor_trick(rng):
        return """
module addsub8 (input [7:0] a, input [7:0] b, input mode,
                output [7:0] y, output carry);
  wire [7:0] bx;
  wire [8:0] total;
  assign bx = b ^ {8{mode}};
  assign total = a + bx + mode;
  assign y = total[7:0];
  assign carry = total[8];
endmodule
"""


@register
class Multiplier4(DesignFamily):
    """4x4 unsigned multiplier."""

    name = "mult4"
    top = "mult4"
    description = "4x4 unsigned multiplier"

    def styles(self):
        return {"behavioral": self._behavioral, "shift_add": self._shift_add}

    @staticmethod
    def _behavioral(rng):
        return """
module mult4 (input [3:0] a, input [3:0] b, output [7:0] p);
  assign p = a * b;
endmodule
"""

    @staticmethod
    def _shift_add(rng):
        return """
module mult4 (input [3:0] a, input [3:0] b, output [7:0] p);
  wire [7:0] pp0;
  wire [7:0] pp1;
  wire [7:0] pp2;
  wire [7:0] pp3;
  assign pp0 = b[0] ? {4'b0, a} : 8'b0;
  assign pp1 = b[1] ? {3'b0, a, 1'b0} : 8'b0;
  assign pp2 = b[2] ? {2'b0, a, 2'b0} : 8'b0;
  assign pp3 = b[3] ? {1'b0, a, 3'b0} : 8'b0;
  assign p = pp0 + pp1 + pp2 + pp3;
endmodule
"""


@register
class Mac8(DesignFamily):
    """8-bit multiply-accumulate register."""

    name = "mac8"
    top = "mac8"
    description = "clocked multiply-accumulate"

    def styles(self):
        return {"single_always": self._single, "split": self._split}

    @staticmethod
    def _single(rng):
        return """
module mac8 (input clk, input clear, input [3:0] a, input [3:0] b,
             output reg [7:0] acc);
  always @(posedge clk) begin
    if (clear)
      acc <= 8'd0;
    else
      acc <= acc + a * b;
  end
endmodule
"""

    @staticmethod
    def _split(rng):
        return """
module mac8 (input clk, input clear, input [3:0] a, input [3:0] b,
             output reg [7:0] acc);
  wire [7:0] product;
  wire [7:0] next;
  assign product = a * b;
  assign next = clear ? 8'd0 : (acc + product);
  always @(posedge clk)
    acc <= next;
endmodule
"""


@register
class Comparator8(DesignFamily):
    """8-bit magnitude comparator."""

    name = "cmp8"
    top = "cmp8"
    description = "8-bit comparator (lt/eq/gt)"

    def styles(self):
        return {"operators": self._operators, "subtract": self._subtract,
                "bitwise": self._bitwise}

    @staticmethod
    def _operators(rng):
        return """
module cmp8 (input [7:0] a, input [7:0] b,
             output lt, output eq, output gt);
  assign lt = a < b;
  assign eq = a == b;
  assign gt = a > b;
endmodule
"""

    @staticmethod
    def _subtract(rng):
        return """
module cmp8 (input [7:0] a, input [7:0] b,
             output lt, output eq, output gt);
  wire [8:0] diff;
  assign diff = {1'b0, a} - {1'b0, b};
  assign eq = (diff == 9'd0);
  assign lt = diff[8];
  assign gt = (~diff[8]) & (~eq);
endmodule
"""

    @staticmethod
    def _bitwise(rng):
        return """
module cmp8 (input [7:0] a, input [7:0] b,
             output lt, output eq, output gt);
  wire [7:0] same;
  assign same = ~(a ^ b);
  assign eq = &same;
  assign gt = (a[7] & ~b[7])
            | (same[7] & a[6] & ~b[6])
            | (same[7] & same[6] & a[5] & ~b[5])
            | (same[7] & same[6] & same[5] & a[4] & ~b[4])
            | (same[7] & same[6] & same[5] & same[4] & a[3] & ~b[3])
            | (same[7] & same[6] & same[5] & same[4] & same[3] & a[2] & ~b[2])
            | (same[7] & same[6] & same[5] & same[4] & same[3] & same[2] & a[1] & ~b[1])
            | (same[7] & same[6] & same[5] & same[4] & same[3] & same[2] & same[1] & a[0] & ~b[0]);
  assign lt = ~gt & ~eq;
endmodule
"""


@register
class Abs8(DesignFamily):
    """8-bit absolute difference |a - b|."""

    name = "absdiff8"
    top = "absdiff8"
    description = "8-bit absolute difference"

    def styles(self):
        return {"compare": self._compare, "negate": self._negate}

    @staticmethod
    def _compare(rng):
        return """
module absdiff8 (input [7:0] a, input [7:0] b, output [7:0] d);
  assign d = (a > b) ? (a - b) : (b - a);
endmodule
"""

    @staticmethod
    def _negate(rng):
        return """
module absdiff8 (input [7:0] a, input [7:0] b, output [7:0] d);
  wire [8:0] diff;
  wire [7:0] raw;
  assign diff = {1'b0, a} - {1'b0, b};
  assign raw = diff[7:0];
  assign d = diff[8] ? ((~raw) + 8'd1) : raw;
endmodule
"""


@register
class Saturator8(DesignFamily):
    """Saturating 8-bit adder (clamps at 255)."""

    name = "satadd8"
    top = "satadd8"
    description = "saturating 8-bit adder"

    def styles(self):
        return {"ternary": self._ternary, "always": self._always}

    @staticmethod
    def _ternary(rng):
        return """
module satadd8 (input [7:0] a, input [7:0] b, output [7:0] y);
  wire [8:0] total;
  assign total = a + b;
  assign y = total[8] ? 8'hFF : total[7:0];
endmodule
"""

    @staticmethod
    def _always(rng):
        return """
module satadd8 (input [7:0] a, input [7:0] b, output reg [7:0] y);
  wire [8:0] total;
  assign total = {1'b0, a} + {1'b0, b};
  always @(*) begin
    if (total > 9'd255)
      y = 8'hFF;
    else
      y = total[7:0];
  end
endmodule
"""
