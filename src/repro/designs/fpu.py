"""Floating-point design family: the paper's FPA (floating-point adder).

A half-precision-like format is used: 1 sign, 5 exponent, 10 mantissa bits.
The adder implements align / add-sub / normalize, the classic FPA pipeline,
entirely combinationally.
"""

from repro.designs.base import DesignFamily, register


@register
class FloatingPointAdder(DesignFamily):
    """16-bit floating-point adder (sign / 5-bit exp / 10-bit mantissa)."""

    name = "fpa"
    top = "fpa"
    description = "floating point adder"

    def styles(self):
        return {"monolithic": self._monolithic, "staged": self._staged}

    @staticmethod
    def _monolithic(rng):
        return """
module fpa (input [15:0] x, input [15:0] y, output reg [15:0] z);
  reg sign_x, sign_y, sign_z;
  reg [4:0] exp_x, exp_y, exp_z;
  reg [10:0] man_x, man_y;
  reg [11:0] man_sum;
  reg [4:0] diff;
  integer k;
  always @(*) begin
    sign_x = x[15];
    sign_y = y[15];
    exp_x = x[14:10];
    exp_y = y[14:10];
    man_x = {1'b1, x[9:0]};
    man_y = {1'b1, y[9:0]};
    if (exp_x < exp_y) begin
      diff = exp_y - exp_x;
      man_x = man_x >> diff;
      exp_x = exp_y;
    end else begin
      diff = exp_x - exp_y;
      man_y = man_y >> diff;
    end
    exp_z = exp_x;
    if (sign_x == sign_y) begin
      man_sum = man_x + man_y;
      sign_z = sign_x;
      if (man_sum[11]) begin
        man_sum = man_sum >> 1;
        exp_z = exp_z + 5'd1;
      end
    end else begin
      if (man_x >= man_y) begin
        man_sum = man_x - man_y;
        sign_z = sign_x;
      end else begin
        man_sum = man_y - man_x;
        sign_z = sign_y;
      end
      for (k = 0; k < 11; k = k + 1) begin
        if (!man_sum[10] && exp_z != 5'd0) begin
          man_sum = man_sum << 1;
          exp_z = exp_z - 5'd1;
        end
      end
    end
    if (man_sum == 12'd0)
      z = 16'd0;
    else
      z = {sign_z, exp_z, man_sum[9:0]};
  end
endmodule
"""

    @staticmethod
    def _staged(rng):
        return """
module fpa (input [15:0] x, input [15:0] y, output [15:0] z);
  wire swap;
  wire [15:0] big;
  wire [15:0] small;
  wire [4:0] diff;
  wire [10:0] man_big;
  wire [10:0] man_small;
  wire [10:0] man_aligned;
  wire same_sign;
  wire [11:0] sum_mag;
  wire [11:0] diff_mag;
  wire [11:0] magnitude;
  wire carry;
  reg [4:0] exp_out;
  reg [11:0] man_out;
  integer k;
  assign swap = y[14:0] > x[14:0];
  assign big = swap ? y : x;
  assign small = swap ? x : y;
  assign diff = big[14:10] - small[14:10];
  assign man_big = {1'b1, big[9:0]};
  assign man_small = {1'b1, small[9:0]};
  assign man_aligned = man_small >> diff;
  assign same_sign = big[15] == small[15];
  assign sum_mag = man_big + man_aligned;
  assign diff_mag = man_big - man_aligned;
  assign magnitude = same_sign ? sum_mag : diff_mag;
  assign carry = same_sign & magnitude[11];
  always @(*) begin
    exp_out = big[14:10];
    man_out = magnitude;
    if (carry) begin
      man_out = magnitude >> 1;
      exp_out = exp_out + 5'd1;
    end else begin
      for (k = 0; k < 11; k = k + 1) begin
        if (!man_out[10] && exp_out != 5'd0)
          begin
            man_out = man_out << 1;
            exp_out = exp_out - 5'd1;
          end
      end
    end
  end
  assign z = (magnitude == 12'd0) ? 16'd0
           : {big[15], exp_out, man_out[9:0]};
endmodule
"""
