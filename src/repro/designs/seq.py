"""Sequential design families: counters, LFSRs, shift registers, FIFOs."""

from repro.designs.base import DesignFamily, register


@register
class Counter8(DesignFamily):
    """8-bit up counter with enable and synchronous reset."""

    name = "counter8"
    top = "counter8"
    description = "8-bit up counter"

    def styles(self):
        return {"single": self._single, "next_wire": self._next_wire}

    @staticmethod
    def _single(rng):
        return """
module counter8 (input clk, input rst, input en, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst)
      q <= 8'd0;
    else if (en)
      q <= q + 8'd1;
  end
endmodule
"""

    @staticmethod
    def _next_wire(rng):
        return """
module counter8 (input clk, input rst, input en, output reg [7:0] q);
  wire [7:0] incremented;
  wire [7:0] nxt;
  assign incremented = q + 8'd1;
  assign nxt = rst ? 8'd0 : (en ? incremented : q);
  always @(posedge clk)
    q <= nxt;
endmodule
"""


@register
class UpDownCounter4(DesignFamily):
    """4-bit up/down counter (a different design from counter8)."""

    name = "updown4"
    top = "updown4"
    description = "4-bit up/down counter"

    def styles(self):
        return {"if_else": self._if_else, "ternary": self._ternary}

    @staticmethod
    def _if_else(rng):
        return """
module updown4 (input clk, input rst, input up, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst)
      q <= 4'd0;
    else if (up)
      q <= q + 4'd1;
    else
      q <= q - 4'd1;
  end
endmodule
"""

    @staticmethod
    def _ternary(rng):
        return """
module updown4 (input clk, input rst, input up, output reg [3:0] q);
  wire [3:0] delta;
  assign delta = up ? 4'd1 : 4'hF;
  always @(posedge clk)
    q <= rst ? 4'd0 : (q + delta);
endmodule
"""


@register
class Lfsr8(DesignFamily):
    """8-bit maximal LFSR (x^8 + x^6 + x^5 + x^4 + 1)."""

    name = "lfsr8"
    top = "lfsr8"
    description = "8-bit Fibonacci LFSR"

    def styles(self):
        return {"fibonacci": self._fibonacci, "concat": self._concat}

    @staticmethod
    def _fibonacci(rng):
        return """
module lfsr8 (input clk, input rst, output reg [7:0] state);
  wire feedback;
  assign feedback = state[7] ^ state[5] ^ state[4] ^ state[3];
  always @(posedge clk) begin
    if (rst)
      state <= 8'd1;
    else begin
      state <= {state[6:0], feedback};
    end
  end
endmodule
"""

    @staticmethod
    def _concat(rng):
        return """
module lfsr8 (input clk, input rst, output reg [7:0] state);
  wire fb;
  wire [7:0] nxt;
  assign fb = ^(state & 8'b10111000);
  assign nxt = {state[6:0], fb};
  always @(posedge clk)
    state <= rst ? 8'd1 : nxt;
endmodule
"""


@register
class ShiftReg8(DesignFamily):
    """8-bit serial-in parallel-out shift register with load."""

    name = "shiftreg8"
    top = "shiftreg8"
    description = "SIPO shift register"

    def styles(self):
        return {"concat": self._concat, "loadable": self._loadable}

    @staticmethod
    def _concat(rng):
        return """
module shiftreg8 (input clk, input rst, input sin, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst)
      q <= 8'd0;
    else
      q <= {q[6:0], sin};
  end
endmodule
"""

    @staticmethod
    def _loadable(rng):
        return """
module shiftreg8 (input clk, input rst, input sin, output reg [7:0] q);
  wire [7:0] shifted;
  assign shifted = (q << 1) | {7'b0, sin};
  always @(posedge clk) begin
    if (rst)
      q <= 8'd0;
    else
      q <= shifted;
  end
endmodule
"""


@register
class Pwm8(DesignFamily):
    """8-bit PWM generator."""

    name = "pwm8"
    top = "pwm8"
    description = "8-bit pulse width modulator"

    def styles(self):
        return {"compare": self._compare, "register_out": self._register_out}

    @staticmethod
    def _compare(rng):
        return """
module pwm8 (input clk, input rst, input [7:0] duty, output pulse);
  reg [7:0] count;
  always @(posedge clk) begin
    if (rst)
      count <= 8'd0;
    else
      count <= count + 8'd1;
  end
  assign pulse = count < duty;
endmodule
"""

    @staticmethod
    def _register_out(rng):
        return """
module pwm8 (input clk, input rst, input [7:0] duty, output reg pulse);
  reg [7:0] count;
  wire [7:0] nxt;
  assign nxt = count + 8'd1;
  always @(posedge clk) begin
    if (rst) begin
      count <= 8'd0;
      pulse <= 1'b0;
    end else begin
      count <= nxt;
      pulse <= nxt < duty;
    end
  end
endmodule
"""


@register
class ClkDiv(DesignFamily):
    """Clock divider with a programmable threshold."""

    name = "clkdiv"
    top = "clkdiv"
    description = "programmable clock divider"

    def styles(self):
        return {"wrap": self._wrap, "toggle": self._toggle}

    @staticmethod
    def _wrap(rng):
        return """
module clkdiv (input clk, input rst, input [3:0] limit, output reg tick);
  reg [3:0] count;
  always @(posedge clk) begin
    if (rst) begin
      count <= 4'd0;
      tick <= 1'b0;
    end else if (count == limit) begin
      count <= 4'd0;
      tick <= ~tick;
    end else begin
      count <= count + 4'd1;
    end
  end
endmodule
"""

    @staticmethod
    def _toggle(rng):
        return """
module clkdiv (input clk, input rst, input [3:0] limit, output reg tick);
  reg [3:0] count;
  wire wrap;
  assign wrap = count >= limit;
  always @(posedge clk) begin
    if (rst) begin
      count <= 4'd0;
      tick <= 1'b0;
    end else begin
      count <= wrap ? 4'd0 : (count + 4'd1);
      tick <= wrap ? (~tick) : tick;
    end
  end
endmodule
"""


@register
class Fifo4x8(DesignFamily):
    """4-deep, 8-bit synchronous FIFO built from explicit registers."""

    name = "fifo4x8"
    top = "fifo4x8"
    description = "4-entry synchronous FIFO"

    def styles(self):
        return {"mux_read": self._mux_read, "shift_style": self._shift_style}

    @staticmethod
    def _mux_read(rng):
        return """
module fifo4x8 (input clk, input rst, input push, input pop,
                input [7:0] din, output [7:0] dout,
                output empty, output full);
  reg [7:0] slot0;
  reg [7:0] slot1;
  reg [7:0] slot2;
  reg [7:0] slot3;
  reg [1:0] rptr;
  reg [1:0] wptr;
  reg [2:0] count;
  wire do_push;
  wire do_pop;
  assign empty = count == 3'd0;
  assign full = count == 3'd4;
  assign do_push = push & ~full;
  assign do_pop = pop & ~empty;
  assign dout = (rptr == 2'd0) ? slot0 :
                (rptr == 2'd1) ? slot1 :
                (rptr == 2'd2) ? slot2 : slot3;
  always @(posedge clk) begin
    if (rst) begin
      rptr <= 2'd0;
      wptr <= 2'd0;
      count <= 3'd0;
    end else begin
      if (do_push) begin
        if (wptr == 2'd0) slot0 <= din;
        if (wptr == 2'd1) slot1 <= din;
        if (wptr == 2'd2) slot2 <= din;
        if (wptr == 2'd3) slot3 <= din;
        wptr <= wptr + 2'd1;
      end
      if (do_pop)
        rptr <= rptr + 2'd1;
      count <= count + {2'b0, do_push} - {2'b0, do_pop};
    end
  end
endmodule
"""

    @staticmethod
    def _shift_style(rng):
        return """
module fifo4x8 (input clk, input rst, input push, input pop,
                input [7:0] din, output [7:0] dout,
                output empty, output full);
  reg [7:0] slot0;
  reg [7:0] slot1;
  reg [7:0] slot2;
  reg [7:0] slot3;
  reg [2:0] count;
  wire do_push;
  wire do_pop;
  assign empty = (count == 3'd0);
  assign full = (count == 3'd4);
  assign do_push = push && !full;
  assign do_pop = pop && !empty;
  assign dout = slot0;
  always @(posedge clk) begin
    if (rst) begin
      count <= 3'd0;
    end else begin
      if (do_pop) begin
        slot0 <= slot1;
        slot1 <= slot2;
        slot2 <= slot3;
      end
      if (do_push) begin
        if ((count == 3'd0) || (do_pop && count == 3'd1)) slot0 <= din;
        else if ((count == 3'd1) || (do_pop && count == 3'd2)) slot1 <= din;
        else if ((count == 3'd2) || (do_pop && count == 3'd3)) slot2 <= din;
        else slot3 <= din;
      end
      count <= count + {2'b0, do_push} - {2'b0, do_pop};
    end
  end
endmodule
"""


@register
class Debounce(DesignFamily):
    """Push-button debouncer with a 4-bit saturation counter."""

    name = "debounce"
    top = "debounce"
    description = "input debouncer"

    def styles(self):
        return {"saturate": self._saturate, "history": self._history}

    @staticmethod
    def _saturate(rng):
        return """
module debounce (input clk, input rst, input noisy, output reg clean);
  reg [3:0] strength;
  always @(posedge clk) begin
    if (rst) begin
      strength <= 4'd0;
      clean <= 1'b0;
    end else begin
      if (noisy && strength != 4'hF)
        strength <= strength + 4'd1;
      else if (!noisy && strength != 4'h0)
        strength <= strength - 4'd1;
      if (strength == 4'hF)
        clean <= 1'b1;
      else if (strength == 4'h0)
        clean <= 1'b0;
    end
  end
endmodule
"""

    @staticmethod
    def _history(rng):
        return """
module debounce (input clk, input rst, input noisy, output reg clean);
  reg [3:0] history;
  always @(posedge clk) begin
    if (rst) begin
      history <= 4'd0;
      clean <= 1'b0;
    end else begin
      history <= {history[2:0], noisy};
      if (history == 4'b1111)
        clean <= 1'b1;
      else if (history == 4'b0000)
        clean <= 1'b0;
    end
  end
endmodule
"""
