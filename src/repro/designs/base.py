"""Design-family registry and corpus generation.

The paper's dataset is private; this module reproduces its *structure*:
about fifty distinct circuit designs, each with several "hardware
instances" — different source codes implementing the same design.  A
:class:`DesignFamily` emits canonical Verilog in one of several genuinely
different implementation styles; instance diversity on top of the style
choice comes from semantics-preserving RTL rewrites (renaming, reordering,
operand swaps).
"""

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.obfuscate.rtl_variants import make_rtl_variant


@dataclass
class DesignVariant:
    """One hardware instance of a design family."""

    design: str      # family name (the "distinct circuit design")
    instance: str    # unique instance id
    verilog: str     # full source text
    top: str         # top module name
    style: str       # which implementation style was used


class DesignFamily:
    """Base class for design generators.

    Subclasses define ``name``, ``top``, and ``styles`` (a dict of
    style-name -> zero-argument or rng-taking callable returning Verilog).
    """

    #: Family name; also the DFG/"design" label in datasets.
    name = None
    #: Top module name in the emitted Verilog.
    top = None
    #: Short human description.
    description = ""

    def styles(self):
        """Mapping style-name -> callable(rng) -> verilog text."""
        raise NotImplementedError

    def style_names(self):
        return sorted(self.styles())

    def generate(self, seed=0, style=None, rewrite=True):
        """Emit one instance.

        Args:
            seed: controls the style pick and all stochastic rewrites.
            style: force a specific style (otherwise chosen from the seed).
            rewrite: apply the semantics-preserving RTL rewrites for
                instance diversity (the first instance of each family is
                usually emitted verbatim by passing ``rewrite=False``).
        """
        name_seed = zlib.crc32(self.name.encode()) & 0xFFFF
        rng = np.random.default_rng(name_seed * 100003 + seed)
        table = self.styles()
        if style is None:
            names = sorted(table)
            style = names[int(rng.integers(0, len(names)))]
        elif style not in table:
            raise DatasetError(
                f"family {self.name!r} has no style {style!r}")
        text = table[style](rng)
        if rewrite:
            text = make_rtl_variant(text, seed=int(rng.integers(0, 2**31)))
        return DesignVariant(design=self.name,
                             instance=f"{self.name}_{style}_s{seed}",
                             verilog=text, top=self.top, style=style)

    def variants(self, count, seed=0, balanced=True, rewrites_per_style=2):
        """Emit ``count`` distinct instances.

        With ``balanced`` each style is emitted ``rewrites_per_style``
        times (different semantics-preserving rewrites) before moving to
        the next style, mirroring how real IP corpora contain both
        near-identical copies and genuinely re-implemented versions of one
        design.  The very first instance is the canonical (unrewritten)
        source of the first style.
        """
        names = self.style_names()
        out = []
        for index in range(count):
            if balanced:
                style = names[(index // rewrites_per_style) % len(names)]
            else:
                style = None
            rewrite = index != 0
            out.append(self.generate(seed=seed + index, style=style,
                                     rewrite=rewrite))
        return out


_REGISTRY = {}


def register(cls):
    """Class decorator: add a family to the global registry."""
    if cls.name is None or cls.top is None:
        raise DatasetError(f"{cls.__name__} must define name and top")
    if cls.name in _REGISTRY:
        raise DatasetError(f"duplicate design family {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def family_names():
    """Sorted names of all registered design families."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_family(name):
    """Look up a family by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetError(f"unknown design family {name!r}") from None


def all_families():
    """All registered family instances, sorted by name."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _ensure_loaded():
    """Import the family modules so their @register decorators run."""
    from repro.designs import arith, crypto, fpu, fsm, logic, mips, seq  # noqa: F401


def generate_corpus(families=None, instances_per_design=4, seed=0):
    """Generate a corpus of RTL instances.

    Args:
        families: iterable of family names (default: all registered).
        instances_per_design: hardware instances per design.
        seed: base seed.

    Returns:
        list of :class:`DesignVariant`.
    """
    _ensure_loaded()
    if families is None:
        families = family_names()
    corpus = []
    for offset, name in enumerate(families):
        family = get_family(name)
        corpus.extend(family.variants(instances_per_design,
                                      seed=seed + 1000 * offset))
    return corpus
