"""Cryptographic / coding design families: AES round, CRC, Hamming SEC."""

from repro.designs.base import DesignFamily, register

#: 4-bit S-box used by the toy AES round (the PRESENT cipher S-box).
_SBOX4 = [0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
          0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2]


def _sbox_case(name, in_sig, out_sig):
    lines = [f"module {name} (input [3:0] {in_sig}, output reg [3:0] {out_sig});",
             "  always @(*) begin",
             f"    case ({in_sig})"]
    for i, v in enumerate(_SBOX4[:-1]):
        lines.append(f"      4'h{i:X}: {out_sig} = 4'h{v:X};")
    lines.append(f"      default: {out_sig} = 4'h{_SBOX4[15]:X};")
    lines.append("    endcase")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)


def _sbox_equations(name, in_sig, out_sig):
    """The same S-box as sum-of-products equations."""
    terms = {bit: [] for bit in range(4)}
    for value in range(16):
        out = _SBOX4[value]
        for bit in range(4):
            if (out >> bit) & 1:
                literals = []
                for in_bit in range(4):
                    literal = f"{in_sig}[{in_bit}]"
                    if not (value >> in_bit) & 1:
                        literal = "~" + literal
                    literals.append(literal)
                terms[bit].append("(" + " & ".join(literals) + ")")
    lines = [f"module {name} (input [3:0] {in_sig}, output [3:0] {out_sig});"]
    for bit in range(4):
        joined = "\n      | ".join(terms[bit])
        lines.append(f"  assign {out_sig}[{bit}] = {joined};")
    lines.append("endmodule")
    return "\n".join(lines)


@register
class AesRound(DesignFamily):
    """Toy AES round: SubNibbles -> rotate (ShiftRows) -> AddRoundKey.

    The paper's AES IP is a full core; this family keeps the same layered
    structure (S-box substitution, permutation, key mixing) at 16-bit scale.
    """

    name = "aes"
    top = "aes_round"
    description = "mini AES round (sbox/shift/key-mix)"

    def styles(self):
        return {"case_sbox": self._case_sbox, "eqn_sbox": self._eqn_sbox}

    @staticmethod
    def _round_body():
        return """
module aes_round (input [15:0] state, input [15:0] key,
                  output [15:0] state_next);
  wire [15:0] substituted;
  wire [15:0] rotated;
  sbox4 s0 (.nibble_in(state[3:0]), .nibble_out(substituted[3:0]));
  sbox4 s1 (.nibble_in(state[7:4]), .nibble_out(substituted[7:4]));
  sbox4 s2 (.nibble_in(state[11:8]), .nibble_out(substituted[11:8]));
  sbox4 s3 (.nibble_in(state[15:12]), .nibble_out(substituted[15:12]));
  assign rotated = {substituted[11:8], substituted[3:0],
                    substituted[15:12], substituted[7:4]};
  assign state_next = rotated ^ key;
endmodule
"""

    def _case_sbox(self, rng):
        return (self._round_body() + "\n"
                + _sbox_case("sbox4", "nibble_in", "nibble_out"))

    def _eqn_sbox(self, rng):
        return (self._round_body() + "\n"
                + _sbox_equations("sbox4", "nibble_in", "nibble_out"))


@register
class Crc8(DesignFamily):
    """CRC-8 (poly 0x07) over one input byte, combinational."""

    name = "crc8"
    top = "crc8"
    description = "CRC-8 generator"

    def styles(self):
        return {"loop": self._loop, "unrolled": self._unrolled}

    @staticmethod
    def _loop(rng):
        return """
module crc8 (input [7:0] data, input [7:0] crc_in, output reg [7:0] crc_out);
  reg [7:0] crc;
  integer i;
  always @(*) begin
    crc = crc_in ^ data;
    for (i = 0; i < 8; i = i + 1) begin
      if (crc[7])
        crc = (crc << 1) ^ 8'h07;
      else
        crc = crc << 1;
    end
    crc_out = crc;
  end
endmodule
"""

    @staticmethod
    def _unrolled(rng):
        lines = ["module crc8 (input [7:0] data, input [7:0] crc_in, "
                 "output [7:0] crc_out);",
                 "  wire [7:0] s0;",
                 "  assign s0 = crc_in ^ data;"]
        for step in range(8):
            src = f"s{step}"
            dst = f"s{step + 1}"
            lines.append(f"  wire [7:0] {dst};")
            lines.append(f"  assign {dst} = {src}[7] ? "
                         f"(({src} << 1) ^ 8'h07) : ({src} << 1);")
        lines.append("  assign crc_out = s8;")
        lines.append("endmodule")
        return "\n".join(lines)


@register
class Crc16(DesignFamily):
    """CRC-16-CCITT (poly 0x1021) over one byte, combinational."""

    name = "crc16"
    top = "crc16"
    description = "CRC-16-CCITT generator"

    def styles(self):
        return {"loop": self._loop, "staged": self._staged}

    @staticmethod
    def _loop(rng):
        return """
module crc16 (input [7:0] data, input [15:0] crc_in,
              output reg [15:0] crc_out);
  reg [15:0] crc;
  integer i;
  always @(*) begin
    crc = crc_in ^ {data, 8'b0};
    for (i = 0; i < 8; i = i + 1) begin
      if (crc[15])
        crc = (crc << 1) ^ 16'h1021;
      else
        crc = crc << 1;
    end
    crc_out = crc;
  end
endmodule
"""

    @staticmethod
    def _staged(rng):
        lines = ["module crc16 (input [7:0] data, input [15:0] crc_in, "
                 "output [15:0] crc_out);",
                 "  wire [15:0] s0;",
                 "  assign s0 = crc_in ^ {data, 8'b0};"]
        for step in range(8):
            src = f"s{step}"
            dst = f"s{step + 1}"
            lines.append(f"  wire [15:0] {dst};")
            lines.append(f"  assign {dst} = {src}[15] ? "
                         f"(({src} << 1) ^ 16'h1021) : ({src} << 1);")
        lines.append("  assign crc_out = s8;")
        lines.append("endmodule")
        return "\n".join(lines)


@register
class HammingEnc74(DesignFamily):
    """(7,4) Hamming encoder."""

    name = "hamenc74"
    top = "hamenc74"
    description = "(7,4) Hamming encoder"

    def styles(self):
        return {"explicit": self._explicit, "concat": self._concat}

    @staticmethod
    def _explicit(rng):
        return """
module hamenc74 (input [3:0] d, output [6:0] code);
  wire p0, p1, p2;
  assign p0 = d[0] ^ d[1] ^ d[3];
  assign p1 = d[0] ^ d[2] ^ d[3];
  assign p2 = d[1] ^ d[2] ^ d[3];
  assign code[0] = p0;
  assign code[1] = p1;
  assign code[2] = d[0];
  assign code[3] = p2;
  assign code[4] = d[1];
  assign code[5] = d[2];
  assign code[6] = d[3];
endmodule
"""

    @staticmethod
    def _concat(rng):
        return """
module hamenc74 (input [3:0] d, output [6:0] code);
  wire parity_a;
  wire parity_b;
  wire parity_c;
  assign parity_a = ^(d & 4'b1011);
  assign parity_b = ^(d & 4'b1101);
  assign parity_c = ^(d & 4'b1110);
  assign code = {d[3], d[2], d[1], parity_c, d[0], parity_b, parity_a};
endmodule
"""


@register
class HammingDec74(DesignFamily):
    """(7,4) Hamming decoder with single-error correction."""

    name = "hamdec74"
    top = "hamdec74"
    description = "(7,4) Hamming SEC decoder"

    def styles(self):
        return {"case_fix": self._case_fix, "mask_fix": self._mask_fix}

    @staticmethod
    def _case_fix(rng):
        return """
module hamdec74 (input [6:0] code, output [3:0] d, output err);
  wire [2:0] syndrome;
  reg [6:0] fixed;
  assign syndrome[0] = code[0] ^ code[2] ^ code[4] ^ code[6];
  assign syndrome[1] = code[1] ^ code[2] ^ code[5] ^ code[6];
  assign syndrome[2] = code[3] ^ code[4] ^ code[5] ^ code[6];
  assign err = syndrome != 3'd0;
  always @(*) begin
    fixed = code;
    case (syndrome)
      3'd1: fixed[0] = ~code[0];
      3'd2: fixed[1] = ~code[1];
      3'd3: fixed[2] = ~code[2];
      3'd4: fixed[3] = ~code[3];
      3'd5: fixed[4] = ~code[4];
      3'd6: fixed[5] = ~code[5];
      3'd7: fixed[6] = ~code[6];
      default: fixed = code;
    endcase
  end
  assign d = {fixed[6], fixed[5], fixed[4], fixed[2]};
endmodule
"""

    @staticmethod
    def _mask_fix(rng):
        return """
module hamdec74 (input [6:0] code, output [3:0] d, output err);
  wire [2:0] syndrome;
  wire [6:0] flip;
  wire [6:0] fixed;
  assign syndrome[0] = ^(code & 7'b1010101);
  assign syndrome[1] = ^(code & 7'b1100110);
  assign syndrome[2] = ^(code & 7'b1111000);
  assign err = |syndrome;
  assign flip = err ? (7'b1 << (syndrome - 3'd1)) : 7'b0;
  assign fixed = code ^ flip;
  assign d = {fixed[6], fixed[5], fixed[4], fixed[2]};
endmodule
"""
