"""Finite-state-machine design families: traffic light, detectors, UART."""

from repro.designs.base import DesignFamily, register


@register
class TrafficLight(DesignFamily):
    """Three-phase traffic light controller with a timer."""

    name = "traffic"
    top = "traffic"
    description = "traffic light FSM"

    def styles(self):
        return {"two_process": self._two_process, "one_process": self._one_process}

    @staticmethod
    def _two_process(rng):
        return """
module traffic (input clk, input rst, output [2:0] lights);
  reg [1:0] state;
  reg [1:0] nxt;
  reg [3:0] timer;
  always @(*) begin
    case (state)
      2'd0: nxt = (timer == 4'd9) ? 2'd1 : 2'd0;
      2'd1: nxt = (timer == 4'd2) ? 2'd2 : 2'd1;
      2'd2: nxt = (timer == 4'd6) ? 2'd0 : 2'd2;
      default: nxt = 2'd0;
    endcase
  end
  always @(posedge clk) begin
    if (rst) begin
      state <= 2'd0;
      timer <= 4'd0;
    end else if (state != nxt) begin
      state <= nxt;
      timer <= 4'd0;
    end else begin
      timer <= timer + 4'd1;
    end
  end
  assign lights = (state == 2'd0) ? 3'b100 :
                  (state == 2'd1) ? 3'b010 : 3'b001;
endmodule
"""

    @staticmethod
    def _one_process(rng):
        return """
module traffic (input clk, input rst, output reg [2:0] lights);
  reg [1:0] phase;
  reg [3:0] timer;
  always @(posedge clk) begin
    if (rst) begin
      phase <= 2'd0;
      timer <= 4'd0;
      lights <= 3'b100;
    end else begin
      timer <= timer + 4'd1;
      if (phase == 2'd0 && timer == 4'd9) begin
        phase <= 2'd1;
        timer <= 4'd0;
        lights <= 3'b010;
      end else if (phase == 2'd1 && timer == 4'd2) begin
        phase <= 2'd2;
        timer <= 4'd0;
        lights <= 3'b001;
      end else if (phase == 2'd2 && timer == 4'd6) begin
        phase <= 2'd0;
        timer <= 4'd0;
        lights <= 3'b100;
      end
    end
  end
endmodule
"""


@register
class SeqDetector(DesignFamily):
    """Overlapping "1011" sequence detector."""

    name = "seqdet"
    top = "seqdet"
    description = "1011 sequence detector"

    def styles(self):
        return {"mealy": self._mealy, "shift_match": self._shift_match}

    @staticmethod
    def _mealy(rng):
        return """
module seqdet (input clk, input rst, input bit_in, output reg hit);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) begin
      state <= 2'd0;
      hit <= 1'b0;
    end else begin
      hit <= 1'b0;
      case (state)
        2'd0: state <= bit_in ? 2'd1 : 2'd0;
        2'd1: state <= bit_in ? 2'd1 : 2'd2;
        2'd2: state <= bit_in ? 2'd3 : 2'd0;
        default: begin
          if (bit_in) begin
            hit <= 1'b1;
            state <= 2'd1;
          end else begin
            state <= 2'd2;
          end
        end
      endcase
    end
  end
endmodule
"""

    @staticmethod
    def _shift_match(rng):
        return """
module seqdet (input clk, input rst, input bit_in, output reg hit);
  reg [3:0] window;
  wire [3:0] nxt;
  assign nxt = {window[2:0], bit_in};
  always @(posedge clk) begin
    if (rst) begin
      window <= 4'd0;
      hit <= 1'b0;
    end else begin
      window <= nxt;
      hit <= (nxt == 4'b1011);
    end
  end
endmodule
"""


@register
class Vending(DesignFamily):
    """Vending machine: accepts 5/10 cent coins, vends at 20."""

    name = "vending"
    top = "vending"
    description = "vending machine FSM"

    def styles(self):
        return {"state_enum": self._state_enum, "accumulator": self._accumulator}

    @staticmethod
    def _state_enum(rng):
        return """
module vending (input clk, input rst, input nickel, input dime,
                output reg vend);
  reg [1:0] credit;
  always @(posedge clk) begin
    if (rst) begin
      credit <= 2'd0;
      vend <= 1'b0;
    end else begin
      vend <= 1'b0;
      case (credit)
        2'd0: begin
          if (dime) credit <= 2'd2;
          else if (nickel) credit <= 2'd1;
        end
        2'd1: begin
          if (dime) credit <= 2'd3;
          else if (nickel) credit <= 2'd2;
        end
        2'd2: begin
          if (dime) begin
            vend <= 1'b1;
            credit <= 2'd0;
          end else if (nickel) credit <= 2'd3;
        end
        default: begin
          if (nickel || dime) begin
            vend <= 1'b1;
            credit <= 2'd0;
          end
        end
      endcase
    end
  end
endmodule
"""

    @staticmethod
    def _accumulator(rng):
        return """
module vending (input clk, input rst, input nickel, input dime,
                output reg vend);
  reg [4:0] cents;
  wire [4:0] add;
  wire [4:0] total;
  assign add = dime ? 5'd10 : (nickel ? 5'd5 : 5'd0);
  assign total = cents + add;
  always @(posedge clk) begin
    if (rst) begin
      cents <= 5'd0;
      vend <= 1'b0;
    end else if (total >= 5'd20) begin
      cents <= 5'd0;
      vend <= 1'b1;
    end else begin
      cents <= total;
      vend <= 1'b0;
    end
  end
endmodule
"""


@register
class Rs232Tx(DesignFamily):
    """RS232 / UART transmitter (8N1) — the paper's RS232 design."""

    name = "rs232"
    top = "uart_tx"
    description = "UART transmitter (RS232)"

    def styles(self):
        return {"counter_fsm": self._counter_fsm, "shift_fsm": self._shift_fsm}

    @staticmethod
    def _counter_fsm(rng):
        return """
module uart_tx (input clk, input rst, input start, input [7:0] data,
                output reg txd, output busy);
  reg [1:0] state;
  reg [2:0] bitpos;
  reg [7:0] held;
  assign busy = state != 2'd0;
  always @(posedge clk) begin
    if (rst) begin
      state <= 2'd0;
      bitpos <= 3'd0;
      txd <= 1'b1;
      held <= 8'd0;
    end else begin
      case (state)
        2'd0: begin
          txd <= 1'b1;
          if (start) begin
            held <= data;
            state <= 2'd1;
          end
        end
        2'd1: begin
          txd <= 1'b0;
          bitpos <= 3'd0;
          state <= 2'd2;
        end
        2'd2: begin
          txd <= held[bitpos];
          if (bitpos == 3'd7)
            state <= 2'd3;
          else
            bitpos <= bitpos + 3'd1;
        end
        default: begin
          txd <= 1'b1;
          state <= 2'd0;
        end
      endcase
    end
  end
endmodule
"""

    @staticmethod
    def _shift_fsm(rng):
        return """
module uart_tx (input clk, input rst, input start, input [7:0] data,
                output txd, output busy);
  reg [9:0] shifter;
  reg [3:0] remaining;
  assign busy = remaining != 4'd0;
  assign txd = busy ? shifter[0] : 1'b1;
  always @(posedge clk) begin
    if (rst) begin
      shifter <= 10'h3FF;
      remaining <= 4'd0;
    end else if (!busy && start) begin
      shifter <= {1'b1, data, 1'b0};
      remaining <= 4'd10;
    end else if (busy) begin
      shifter <= {1'b1, shifter[9:1]};
      remaining <= remaining - 4'd1;
    end
  end
endmodule
"""


@register
class Rs232Rx(DesignFamily):
    """UART receiver (8N1), majority-free single-sample variant."""

    name = "uart_rx"
    top = "uart_rx"
    description = "UART receiver"

    def styles(self):
        return {"fsm": self._fsm, "counter": self._counter}

    @staticmethod
    def _fsm(rng):
        return """
module uart_rx (input clk, input rst, input rxd,
                output reg [7:0] data, output reg ready);
  reg [1:0] state;
  reg [2:0] bitpos;
  always @(posedge clk) begin
    if (rst) begin
      state <= 2'd0;
      bitpos <= 3'd0;
      data <= 8'd0;
      ready <= 1'b0;
    end else begin
      ready <= 1'b0;
      case (state)
        2'd0: if (!rxd) state <= 2'd1;
        2'd1: begin
          bitpos <= 3'd0;
          state <= 2'd2;
        end
        2'd2: begin
          data[bitpos] <= rxd;
          if (bitpos == 3'd7)
            state <= 2'd3;
          else
            bitpos <= bitpos + 3'd1;
        end
        default: begin
          if (rxd)
            ready <= 1'b1;
          state <= 2'd0;
        end
      endcase
    end
  end
endmodule
"""

    @staticmethod
    def _counter(rng):
        return """
module uart_rx (input clk, input rst, input rxd,
                output reg [7:0] data, output reg ready);
  reg receiving;
  reg [3:0] count;
  always @(posedge clk) begin
    if (rst) begin
      receiving <= 1'b0;
      count <= 4'd0;
      data <= 8'd0;
      ready <= 1'b0;
    end else if (!receiving) begin
      ready <= 1'b0;
      if (!rxd) begin
        receiving <= 1'b1;
        count <= 4'd0;
      end
    end else begin
      count <= count + 4'd1;
      if (count < 4'd8)
        data <= {rxd, data[7:1]};
      else begin
        receiving <= 1'b0;
        ready <= rxd;
      end
    end
  end
endmodule
"""
