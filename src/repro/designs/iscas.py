"""ISCAS'85-style benchmark netlists (paper §IV-E, Table III).

The original ISCAS'85 nets are not bundled here; these generators build
functional equivalents of the six benchmarks the paper uses, with the same
documented functions:

=========  ===================================  =========================
Benchmark  Function (per the ISCAS'85 catalog)  Our implementation
=========  ===================================  =========================
c432       27-channel interrupt controller      3x9 prioritised channels
c499       32-bit single-error-correcting       Hamming SEC over 32 bits
c880       8-bit ALU                            add/sub/logic/shift ALU
c1355      32-bit SEC (c499 with XOR->NAND)     c499 + XOR->NAND expansion
c1908      16-bit SEC/DED                       Hamming SEC + DED flag
c6288      16x16 multiplier                     array multiplier
=========  ===================================  =========================

Obfuscated instances (the TrustHub substitution) are produced by
:func:`repro.obfuscate.obfuscate`, which the tests verify to be
behaviour-preserving.
"""

from repro.errors import DatasetError
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist, NetlistBuilder


def _parity_tree(builder, bits):
    """XOR-reduce a list of nets."""
    result = bits[0]
    for bit in bits[1:]:
        result = builder.xor_(result, bit)
    return result


def _encode9(builder, requests):
    """Priority encode 9 request lines -> (4-bit index, any)."""
    any_req = requests[0]
    for request in requests[1:]:
        any_req = builder.or_(any_req, request)
    # grant[i] = req[i] & ~req[i+1..8]  (higher index wins)
    grants = []
    blocked = None
    for i in range(8, -1, -1):
        if blocked is None:
            grants.append((i, requests[i]))
            blocked = requests[i]
        else:
            grants.append((i, builder.and_(requests[i],
                                           builder.not_(blocked))))
            blocked = builder.or_(blocked, requests[i])
    index_bits = []
    for bit in range(4):
        sources = [g for i, g in grants if (i >> bit) & 1]
        if not sources:
            index_bits.append(CONST0)
        elif len(sources) == 1:
            index_bits.append(builder.buf_(sources[0]))
        else:
            acc = sources[0]
            for source in sources[1:]:
                acc = builder.or_(acc, source)
            index_bits.append(acc)
    return index_bits, any_req


def c432():
    """27-channel interrupt controller: 3 priority groups of 9 channels."""
    builder = NetlistBuilder("c432")
    group_a = builder.input_bus("reqa", 9)
    group_b = builder.input_bus("reqb", 9)
    group_c = builder.input_bus("reqc", 9)
    enables = builder.input_bus("en", 9)

    masked_a = [builder.and_(r, e) for r, e in zip(group_a, enables)]
    masked_b = [builder.and_(r, e) for r, e in zip(group_b, enables)]
    masked_c = [builder.and_(r, e) for r, e in zip(group_c, enables)]

    idx_a, any_a = _encode9(builder, masked_a)
    idx_b, any_b = _encode9(builder, masked_b)
    idx_c, any_c = _encode9(builder, masked_c)

    # Group priority: A over B over C.
    sel_b = builder.and_(any_b, builder.not_(any_a))
    sel_c = builder.and_(any_c, builder.nor_(any_a, any_b))
    chan = []
    for bit in range(4):
        picked_ab = builder.mux_(idx_a[bit], idx_b[bit], sel_b)
        chan.append(builder.mux_(picked_ab, idx_c[bit], sel_c))

    outputs = builder.output_bus("chan", 4)
    for net, bit in zip(outputs, chan):
        builder.buf_(bit, out=net)
    builder.outputs("grant_a", "grant_b", "grant_c")
    builder.buf_(any_a, out="grant_a")
    builder.buf_(sel_b, out="grant_b")
    builder.buf_(sel_c, out="grant_c")
    return builder.build()


def _sec_signature(position, bits):
    """Nonzero, distinct syndrome signature per data position."""
    return (position + 1) & ((1 << bits) - 1)


def _sec_circuit(name, data_width, check_bits, with_ded=False):
    """Hamming-style single-error corrector over ``data_width`` bits."""
    builder = NetlistBuilder(name)
    data = builder.input_bus("d", data_width)
    checks = builder.input_bus("chk", check_bits)
    # Computed parity per check bit: XOR of data positions whose signature
    # has that bit set.
    syndrome = []
    for check in range(check_bits):
        members = [data[i] for i in range(data_width)
                   if (_sec_signature(i, check_bits) >> check) & 1]
        parity = _parity_tree(builder, members) if members else CONST0
        syndrome.append(builder.xor_(parity, checks[check]))
    # Flip data bit i when syndrome equals its signature.
    corrected = builder.output_bus("q", data_width)
    for i in range(data_width):
        signature = _sec_signature(i, check_bits)
        literals = []
        for check in range(check_bits):
            bit = syndrome[check]
            if (signature >> check) & 1:
                literals.append(bit)
            else:
                literals.append(builder.not_(bit))
        match = literals[0]
        for literal in literals[1:]:
            match = builder.and_(match, literal)
        builder.xor_(data[i], match, out=corrected[i])
    builder.outputs("err")
    any_syndrome = syndrome[0]
    for bit in syndrome[1:]:
        any_syndrome = builder.or_(any_syndrome, bit)
    builder.buf_(any_syndrome, out="err")
    if with_ded:
        builder.outputs("ded")
        overall_in = builder.netlist.add_input("p_all")
        overall = _parity_tree(builder, data + [overall_in])
        # Double error: syndrome nonzero but overall parity matches.
        builder.and_(any_syndrome, builder.not_(overall), out="ded")
    return builder.build()


def c499():
    """32-bit single-error-correcting circuit."""
    return _sec_circuit("c499", data_width=32, check_bits=6)


def c1355():
    """c499 with every XOR/XNOR expanded into a 4-NAND network.

    This mirrors the real relationship between c1355 and c499.
    """
    source = c499()
    out = Netlist("c1355", list(source.inputs), list(source.outputs),
                  clocks=list(source.clocks))
    used = source.nets() | {CONST0}
    counter = [0]

    def fresh():
        counter[0] += 1
        name = f"nx{counter[0]}"
        while name in used:
            counter[0] += 1
            name = f"nx{counter[0]}"
        used.add(name)
        return name

    def emit(cell, output, inputs):
        out.gates.append(Gate(cell, f"n{len(out.gates)}", output,
                              list(inputs)))

    for gate in source.gates:
        if gate.cell in ("xor", "xnor") and len(gate.inputs) == 2 \
                and gate.inputs[0] != gate.inputs[1]:
            a, b = gate.inputs
            mid = fresh()
            left = fresh()
            right = fresh()
            emit("nand", mid, [a, b])
            emit("nand", left, [a, mid])
            emit("nand", right, [b, mid])
            if gate.cell == "xor":
                emit("nand", gate.output, [left, right])
            else:
                tmp = fresh()
                emit("nand", tmp, [left, right])
                emit("not", gate.output, [tmp])
        else:
            out.gates.append(Gate(gate.cell, gate.name, gate.output,
                                  list(gate.inputs)))
    out.validate()
    return out


def c880():
    """8-bit ALU: add, subtract, and, or, xor, pass, with zero flag."""
    builder = NetlistBuilder("c880")
    a = builder.input_bus("a", 8)
    b = builder.input_bus("b", 8)
    control = builder.input_bus("ctl", 3)

    not_b = [builder.not_(bit) for bit in b]
    sums, carry = builder.ripple_adder(a, b)
    diffs, borrow = builder.ripple_adder(a, not_b, carry_in=CONST1)
    ands = [builder.and_(x, y) for x, y in zip(a, b)]
    ors = [builder.or_(x, y) for x, y in zip(a, b)]
    xors = [builder.xor_(x, y) for x, y in zip(a, b)]

    result = builder.output_bus("y", 8)
    for i in range(8):
        pick_01 = builder.mux_(sums[i], diffs[i], control[0])
        pick_23 = builder.mux_(ands[i], ors[i], control[0])
        pick_45 = builder.mux_(xors[i], a[i], control[0])
        low = builder.mux_(pick_01, pick_23, control[1])
        high = builder.mux_(pick_45, b[i], control[1])
        builder.mux_(low, high, control[2], out=result[i])
    builder.outputs("carry", "zero")
    builder.mux_(carry, borrow, control[0], out="carry")
    any_bit = result[0]
    zero_terms = [builder.not_(bit) for bit in result]
    del any_bit
    zero = zero_terms[0]
    for term in zero_terms[1:]:
        zero = builder.and_(zero, term)
    builder.buf_(zero, out="zero")
    return builder.build()


def c1908():
    """16-bit single-error-correcting, double-error-detecting circuit."""
    return _sec_circuit("c1908", data_width=16, check_bits=5, with_ded=True)


def c6288(width=16):
    """16x16 array multiplier."""
    builder = NetlistBuilder("c6288")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    partials = []
    for j in range(width):
        row = [builder.and_(a[i], b[j]) for i in range(width)]
        partials.append([CONST0] * j + row)
    total = partials[0]
    for row in partials[1:]:
        width_now = max(len(total), len(row))
        padded_a = total + [CONST0] * (width_now - len(total))
        padded_b = row + [CONST0] * (width_now - len(row))
        sums, carry = builder.ripple_adder(padded_a, padded_b)
        total = sums + [carry]
    total = total[:2 * width]
    outputs = builder.output_bus("p", 2 * width)
    for net, bit in zip(outputs, total):
        builder.buf_(bit, out=net)
    return builder.build()


#: Benchmark registry: name -> (generator, function description,
#: number of obfuscated instances used in Table III).
ISCAS_BENCHMARKS = {
    "c432": (c432, "27-channel interrupt controller", 24),
    "c499": (c499, "32-bit single error correcting", 23),
    "c880": (c880, "8-bit ALU", 30),
    "c1355": (c1355, "32-bit single error correcting", 19),
    "c1908": (c1908, "16-bit single/double error detecting", 22),
    "c6288": (c6288, "16 x 16 multiplier", 25),
}


def iscas_netlist(name):
    """Build one ISCAS benchmark netlist by name."""
    try:
        generator = ISCAS_BENCHMARKS[name][0]
    except KeyError:
        raise DatasetError(f"unknown ISCAS benchmark {name!r}") from None
    return generator()


def iscas_names():
    """The six benchmark names in catalog order."""
    return list(ISCAS_BENCHMARKS)
