"""Rival methods: classical graph similarity and watermarking (§IV-F)."""

from repro.baselines.ged import ged_similarity, greedy_edit_distance
from repro.baselines.spectral import spectral_similarity
from repro.baselines.watermark import (
    RAI_ISVLSI19,
    WatermarkScheme,
    compare_with_gnn,
    probability_of_coincidence,
)
from repro.baselines.wl_kernel import wl_similarity

__all__ = [
    "ged_similarity", "greedy_edit_distance",
    "spectral_similarity",
    "wl_similarity",
    "WatermarkScheme", "RAI_ISVLSI19", "compare_with_gnn",
    "probability_of_coincidence",
]
