"""Watermarking rival model (paper §IV-F).

Watermarking detects piracy by embedding a signature; its quality metric is
the probability of coincidence P_c — the chance an independent design
carries the same watermark — at the cost of area overhead.  The paper cites
Rai et al. [10] with P_c = 1.11e-87 and 0.13 %–26.12 % overhead, and
compares its own false-negative rate (zero overhead) against that.
"""

from dataclasses import dataclass


def probability_of_coincidence(signature_bits):
    """P_c for a uniformly random binary signature of the given length."""
    if signature_bits < 1:
        raise ValueError("signature must have at least one bit")
    return 0.5 ** signature_bits


@dataclass
class WatermarkScheme:
    """A watermarking defense parameterized by signature size and overhead.

    Attributes:
        signature_bits: embedded signature length.
        area_overhead: fractional area cost of carrying the signature.
    """

    signature_bits: int
    area_overhead: float

    @property
    def p_coincidence(self):
        return probability_of_coincidence(self.signature_bits)

    def summary(self):
        return {
            "signature_bits": self.signature_bits,
            "p_coincidence": self.p_coincidence,
            "area_overhead": self.area_overhead,
        }


#: The state-of-the-art scheme the paper compares against ([10]): its
#: reported P_c corresponds to a ~289-bit signature.
RAI_ISVLSI19 = WatermarkScheme(signature_bits=289, area_overhead=0.2612)


def compare_with_gnn(false_negative_rate, scheme=RAI_ISVLSI19):
    """Tabulate the §IV-F comparison: FNR vs P_c and the overhead gap."""
    return {
        "watermark_p_coincidence": scheme.p_coincidence,
        "watermark_overhead": scheme.area_overhead,
        "gnn_false_negative_rate": false_negative_rate,
        "gnn_overhead": 0.0,
    }
