"""Greedy approximate graph edit distance.

Exact GED is NP-complete (the scalability wall §IV-F attributes to graph-
similarity methods); this greedy assignment approximation is the standard
practical compromise and is still orders of magnitude slower than a GNN
embedding comparison on large DFGs.
"""

import numpy as np


def _node_signature(graph, node_id):
    node = graph.nodes[node_id]
    return (node.label, len(graph.successors(node_id)),
            len(graph.predecessors(node_id)))


def greedy_edit_distance(graph_a, graph_b):
    """Approximate node-level edit distance (lower = more similar)."""
    sig_a = [_node_signature(graph_a, i) for i in range(len(graph_a))]
    sig_b = [_node_signature(graph_b, i) for i in range(len(graph_b))]
    unmatched_b = {}
    for index, signature in enumerate(sig_b):
        unmatched_b.setdefault(signature, []).append(index)
    substitutions = 0
    matched = 0
    for signature in sig_a:
        bucket = unmatched_b.get(signature)
        if bucket:
            bucket.pop()
            matched += 1
        else:
            substitutions += 1
    deletions = len(sig_a) - matched - substitutions
    insertions = len(sig_b) - matched
    # Every unmatched node on either side costs one edit.
    return substitutions + max(deletions, 0) + max(insertions, 0)


def ged_similarity(graph_a, graph_b):
    """Normalized similarity in [0, 1] from the greedy edit distance."""
    distance = greedy_edit_distance(graph_a, graph_b)
    denominator = max(len(graph_a), len(graph_b), 1)
    return float(max(0.0, 1.0 - distance / denominator))
