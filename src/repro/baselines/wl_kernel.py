"""Weisfeiler–Lehman subtree kernel similarity between DFGs.

A classical graph-similarity algorithm of the family the paper's §IV-F
compares against ([6]): polynomial but much slower than one GNN forward
pass, and structure- rather than behaviour-driven.
"""

import zlib
from collections import Counter

import numpy as np


def _wl_histograms(graph, iterations):
    """Label-refinement histograms after 0..iterations WL rounds."""
    labels = list(graph.labels())
    neighbor_lists = [sorted(set(graph.successors(i) + graph.predecessors(i)))
                      for i in range(len(graph))]
    histograms = [Counter(labels)]
    for _ in range(iterations):
        new_labels = []
        for node in range(len(graph)):
            signature = (labels[node],
                         tuple(sorted(labels[m] for m in neighbor_lists[node])))
            # crc32 instead of hash(): stable across processes, so WL
            # similarities are reproducible run to run.
            new_labels.append(zlib.crc32(repr(signature).encode()))
        labels = new_labels
        histograms.append(Counter(labels))
    return histograms


def wl_similarity(graph_a, graph_b, iterations=3):
    """Normalized WL-kernel similarity in [0, 1]."""
    hist_a = _wl_histograms(graph_a, iterations)
    hist_b = _wl_histograms(graph_b, iterations)
    dot = 0.0
    norm_a = 0.0
    norm_b = 0.0
    for round_a, round_b in zip(hist_a, hist_b):
        for label, count in round_a.items():
            dot += count * round_b.get(label, 0)
        norm_a += sum(c * c for c in round_a.values())
        norm_b += sum(c * c for c in round_b.values())
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return float(dot / np.sqrt(norm_a * norm_b))
