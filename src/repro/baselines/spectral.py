"""Spectral graph similarity: compare Laplacian eigenvalue profiles."""

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import eigsh


def _laplacian_spectrum(graph, k):
    adjacency = graph.adjacency(symmetric=True)
    n = adjacency.shape[0]
    degree = np.asarray(adjacency.sum(axis=1)).ravel()
    laplacian = sparse.diags(degree) - adjacency
    k_eff = min(k, n - 1)
    if k_eff < 1:
        return np.zeros(k)
    if n <= max(2 * k, 32):
        values = np.linalg.eigvalsh(laplacian.toarray())
        values = np.sort(values)[:k_eff]
    else:
        values = np.sort(eigsh(laplacian.tocsc(), k=k_eff, sigma=0,
                               which="LM", return_eigenvectors=False))
    out = np.zeros(k)
    out[:len(values)] = values[:k]
    return out


def spectral_similarity(graph_a, graph_b, k=16):
    """Similarity in [0, 1] from the distance of truncated spectra."""
    spec_a = _laplacian_spectrum(graph_a, k)
    spec_b = _laplacian_spectrum(graph_b, k)
    distance = np.linalg.norm(spec_a - spec_b)
    scale = max(np.linalg.norm(spec_a), np.linalg.norm(spec_b), 1e-12)
    return float(max(0.0, 1.0 - distance / scale))
