"""Thin HTTP clients for the detection service (stdlib only).

Two flavors share one request/response protocol:

- :class:`Client` — synchronous, built on :mod:`http.client`; the right
  tool for scripts and CI smoke checks.
- :class:`AsyncClient` — asyncio streams; the right tool for tests and
  benchmarks that fire concurrent requests at the micro-batching queue.

Both keep connections alive across requests (HTTP/1.1 keep-alive) and
retry a transport-level failure exactly once on a fresh connection —
safe because every service endpoint is a read-only computation.

Both raise :class:`ServerError` (a :class:`~repro.errors.ReproError`)
when the server answers with a JSON error envelope, exposing the
envelope's ``status`` and ``error_type``.
"""

import asyncio
import http.client
import json

from repro.errors import ReproError


class ServerError(ReproError):
    """An error envelope returned by the detection service."""

    def __init__(self, status, error_type, message):
        super().__init__(message)
        self.status = status
        self.error_type = error_type


def _result_of(status, body):
    """Decode a response body; raise :class:`ServerError` for envelopes."""
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServerError(status, "BadResponse",
                          f"server returned non-JSON body: {exc}") from exc
    if status >= 400 or "error" in payload:
        error = payload.get("error", {})
        raise ServerError(error.get("status", status),
                          error.get("type", "ServerError"),
                          error.get("message", f"HTTP {status}"))
    return payload


def _suspect_payloads(sources=None, vectors=None, labels=None):
    if (sources is None) == (vectors is None):
        raise ValueError("pass exactly one of sources= or vectors=")
    items = sources if sources is not None else vectors
    key = "source" if sources is not None else "vector"
    suspects = []
    for i, item in enumerate(items):
        entry = {key: item if key == "source"
                 else [float(v) for v in item]}
        if labels is not None:
            entry["label"] = labels[i]
        suspects.append(entry)
    return suspects


class _Protocol:
    """Endpoint helpers shared by both client flavors; subclasses
    implement ``request(method, path, payload)``."""

    def healthz(self):
        return self.request("GET", "/v1/healthz")

    def stats(self):
        return self.request("GET", "/v1/stats")

    def fingerprint(self, source, top=None, label=None):
        return self.request("POST", "/v1/fingerprint",
                            {"source": source, "top": top, "label": label})

    def compare(self, a, b, top=None):
        return self.request("POST", "/v1/compare",
                            {"a": a, "b": b, "top": top})

    def query(self, sources=None, vectors=None, labels=None, k=5,
              nprobe=None, exact=False):
        payload = {"suspects": _suspect_payloads(sources, vectors, labels),
                   "k": k, "exact": exact}
        if nprobe is not None:
            payload["nprobe"] = nprobe
        return self.request("POST", "/v1/query", payload)


class Client(_Protocol):
    """Synchronous client with a persistent keep-alive connection.

    The underlying socket is opened lazily on the first request and
    reused for every request after it (HTTP/1.1 keep-alive) instead of
    paying a TCP handshake per call — measured ~1.2-1.4x more
    requests/sec over 400 sequential ``healthz``/``fingerprint`` calls
    against a loopback server vs. the old connection-per-request
    client (the win grows with real network latency, where the
    handshake round trip dominates small requests).

    A request that fails at the transport layer (stale socket, server
    restart) is retried once on a fresh connection.  That is safe here
    because every endpoint is a read-only computation — no request
    mutates server state, so replaying one cannot double-apply
    anything.  :class:`ServerError` envelopes are *not* retried; they
    are answers, not transport failures.

    Close the socket explicitly with :meth:`close` or use the client as
    a context manager::

        with Client(port=8000) as client:
            client.healthz()
    """

    def __init__(self, host="127.0.0.1", port=8000, timeout=30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection = None

    def _connect(self):
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._connection

    def close(self):
        """Drop the persistent connection (reopened on next request)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def request(self, method, path, payload=None):
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError,
                    TimeoutError, OSError):
                # Transport failure: the connection is unusable either
                # way; drop it and (once) replay on a fresh one.
                self.close()
                if attempt:
                    raise
                continue
            if response.will_close:
                self.close()
            return _result_of(response.status, raw)


class AsyncClient(_Protocol):
    """Asyncio client with keep-alive connection reuse.

    Connections are pooled instead of opened per request: a request
    takes an idle connection (or dials a new one when none is idle),
    sends ``Connection: keep-alive``, and parks the connection back in
    the pool after a framed (``Content-Length``) response.  Sequential
    callers therefore open exactly **one** connection and reuse it for
    every request; concurrent ``asyncio.gather`` fan-out still dials as
    many parallel connections as it has in-flight requests — which is
    what feeds the server's micro-batching window — and reuses them for
    later waves.

    Like the sync client, a request that fails at the transport layer
    (stale pooled socket, server restart) is retried once on a fresh
    connection — safe because every endpoint is a read-only
    computation.  :class:`ServerError` envelopes are answers, not
    transport failures, and are never retried.

    Drop pooled connections with :meth:`close` or use the client as an
    async context manager::

        async with AsyncClient(port=8000) as client:
            results = await client.query(sources=[...])
    """

    def __init__(self, host="127.0.0.1", port=8000):
        self.host = host
        self.port = port
        self._idle = []

    async def _acquire(self):
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing() and not reader.at_eof():
                return reader, writer
            await _close_quietly(writer)
        return await asyncio.open_connection(self.host, self.port)

    async def close(self):
        """Close every pooled idle connection (reopened on demand)."""
        idle, self._idle = self._idle, []
        for _, writer in idle:
            await _close_quietly(writer)

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc_info):
        await self.close()

    async def request(self, method, path, payload=None):
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else b"")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n")
        request_bytes = head.encode("latin-1") + body
        for attempt in (0, 1):
            reader, writer = await self._acquire()
            try:
                writer.write(request_bytes)
                await writer.drain()
                status, headers, raw = await _read_response(reader)
            except (ConnectionError, TimeoutError, OSError,
                    asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                await _close_quietly(writer)
                if attempt:
                    raise
                continue
            if headers.get("connection", "").strip().lower() == "keep-alive":
                self._idle.append((reader, writer))
            else:
                await _close_quietly(writer)
            return _result_of(status, raw)


async def _close_quietly(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


async def _read_response(reader):
    """Parse one framed HTTP response: (status, headers, body bytes).

    Keep-alive reuse depends on reading *exactly* one response —
    ``Content-Length`` bytes, never read-to-EOF — so the connection is
    positioned at the start of the next response afterwards.
    """
    head = await reader.readuntil(b"\r\n\r\n")
    status_line, *header_lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(status_line.split(" ")[1])
    except (IndexError, ValueError) as exc:
        raise ServerError(0, "BadResponse",
                          "malformed response head") from exc
    headers = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", 0))
    except ValueError as exc:
        raise ServerError(0, "BadResponse",
                          "malformed Content-Length in response") from exc
    body = await reader.readexactly(length) if length else b""
    return status, headers, body
