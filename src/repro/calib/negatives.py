"""Hard-negative mining for the trainer's pair loss.

The score distributions that make a global delta cut hopeless come from
*legitimately similar* designs — two independent arithmetic blocks land
nearly as close in embedding space as a design and its obfuscation.
Mining attacks the distribution at the source: embed the training
corpus under the current model, find each record's nearest
**non-matching** neighbors (highest cosine among records of a different
design), and feed those pairs back into the contrastive loss as extra
negatives so a fine-tuning phase pushes exactly the confusable pairs
apart.

Off by default everywhere: with ``per_record=0`` (or the eval config's
``hard_negatives=0``) no pair is mined and training is bit-identical to
the unmined run.
"""

import numpy as np

from repro.errors import CalibrationError


def mine_hard_negatives(records, model, per_record=1):
    """Nearest non-matching pairs under the model's current embeddings.

    Args:
        records: :class:`~repro.core.dataset.GraphRecord` list (the
            pair dataset's ``records``; indices in the returned pairs
            point into this list).
        model: a :class:`~repro.core.gnn4ip.GNN4IP` whose encoder
            embeds the records.
        per_record: nearest different-design neighbors mined per
            record (0 mines nothing).

    Returns:
        Deduplicated ``(i, j, -1)`` pair tuples (``i < j``), sorted by
        descending cosine then index — the confusable legitimate pairs,
        hardest first, in the trainer's pair format.
    """
    per_record = int(per_record)
    if per_record <= 0:
        return []
    if len(records) < 2:
        raise CalibrationError(
            "hard-negative mining needs at least two records")
    vectors = []
    for record in records:
        embedding = np.asarray(model.encoder.embed(record.graph),
                               dtype=np.float64)
        norm = np.linalg.norm(embedding)
        vectors.append(embedding / norm if norm else embedding)
    matrix = np.stack(vectors)
    designs = np.array([record.design for record in records])
    scores = matrix @ matrix.T
    mined = {}
    for i in range(len(records)):
        foreign = np.nonzero(designs != designs[i])[0]
        if not len(foreign):
            continue
        order = foreign[np.argsort(-scores[i, foreign], kind="stable")]
        for j in order[:per_record].tolist():
            key = (min(i, j), max(i, j))
            mined[key] = max(mined.get(key, -np.inf),
                             float(scores[i, j]))
    ranked = sorted(mined.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(i, j, -1) for (i, j), _ in ranked]
