"""Calibration-quality metrics: ECE, reliability bins, threshold sweep.

Pure-numpy helpers shared by the evaluation report, the calibration
benchmark, and the ``gnn4ip calibrate`` summary.  Everything here is a
deterministic function of ``(probabilities, labels)``.
"""

import numpy as np


def _as_arrays(probabilities, labels):
    probs = np.asarray(probabilities, dtype=np.float64).ravel()
    labs = np.asarray(labels, dtype=np.float64).ravel()
    if probs.shape != labs.shape:
        raise ValueError(f"{len(probs)} probabilities vs {len(labs)} labels")
    return probs, labs


def reliability_bins(probabilities, labels, bins=10):
    """Equal-width reliability table over ``[0, 1]``.

    Returns one dict per non-empty bin: ``low``/``high`` edges,
    ``count``, mean predicted ``confidence``, and empirical
    ``accuracy`` (positive fraction).  The gap between the last two is
    what ECE mass-averages.
    """
    probs, labs = _as_arrays(probabilities, labels)
    if len(probs) == 0:
        return []
    ids = np.clip((probs * bins).astype(int), 0, bins - 1)
    table = []
    for b in range(bins):
        mask = ids == b
        if not mask.any():
            continue
        table.append({
            "low": b / bins,
            "high": (b + 1) / bins,
            "count": int(mask.sum()),
            "confidence": float(probs[mask].mean()),
            "accuracy": float(labs[mask].mean()),
        })
    return table


def expected_calibration_error(probabilities, labels, bins=10):
    """Expected calibration error: bin-mass-weighted |confidence -
    accuracy| over ``bins`` equal-width probability bins."""
    probs, _ = _as_arrays(probabilities, labels)
    if len(probs) == 0:
        return None
    return float(sum(
        row["count"] / len(probs) * abs(row["confidence"] - row["accuracy"])
        for row in reliability_bins(probabilities, labels, bins)))


def threshold_sweep(probabilities, labels, points=21):
    """FPR/FNR/precision/recall/F1 at a fixed probability-threshold grid.

    The grid is ``points`` evenly spaced thresholds over ``[0, 1]``
    (deterministic, so the sweep is golden-file stable).  A flag fires
    when ``probability >= threshold``.
    """
    probs, labs = _as_arrays(probabilities, labels)
    positives = int(labs.sum())
    negatives = len(labs) - positives
    sweep = []
    for t in np.linspace(0.0, 1.0, points):
        flagged = probs >= t
        tp = int((flagged & (labs == 1)).sum())
        fp = int((flagged & (labs == 0)).sum())
        fn = positives - tp
        sweep.append({
            "threshold": float(t),
            "fpr": (fp / negatives if negatives else None),
            "fnr": (fn / positives if positives else None),
            "precision": (tp / (tp + fp) if tp + fp else None),
            "recall": (tp / positives if positives else None),
            "f1": 2 * tp / max(2 * tp + fp + fn, 1),
        })
    return sweep


def balanced_threshold(probabilities, labels):
    """The operating point minimizing ``max(FPR, FNR)`` on fit data.

    Scans the sorted unique predicted probabilities (a flag fires at
    ``probability >= threshold``); ties keep the lowest threshold.
    Falls back to ``0.5`` when a class is empty.
    """
    probs, labs = _as_arrays(probabilities, labels)
    positives = int(labs.sum())
    negatives = len(labs) - positives
    if not positives or not negatives:
        return 0.5
    best_t, best_gap = 0.5, np.inf
    for t in np.unique(probs):
        fpr = float(((probs >= t) & (labs == 0)).sum()) / negatives
        fnr = float(((probs < t) & (labs == 1)).sum()) / positives
        gap = max(fpr, fnr)
        if gap < best_gap:
            best_gap, best_t = gap, float(t)
    return best_t
