"""Score calibration: from raw cosine similarity to piracy probability.

Two tiers, fit on held-out genuine/impostor evidence and persisted as
one versioned ``calibration.json`` artifact next to the index:

- **Pair tier** (:class:`ScoreCalibrator`) — a 1-D calibrator
  (Platt-style logistic or isotonic, selectable) over raw cosine
  scores.  Calibrates :class:`~repro.api.types.Comparison` results and
  serves as the fallback for ranked matches when no match tier was
  fit.

- **Match tier** (:class:`EvidenceCalibrator`) — the ranked-query
  calibrator.  Raw top-1 cosine alone is uncalibratable on saturated
  embedding spaces (unrelated designs routinely score >= 0.95), so
  each match contributes a 9-feature evidence vector
  (:data:`EVIDENCE_FEATURES`) assembled from the *whole* ranked list:
  its own score/coverage/structural containment plus cross-list margin
  and saturation statistics.  Stage 1 is a class-weighted logistic
  over match rows; a suspect's logit is the max over its matches;
  stage 2 is an unweighted 1-D Platt map from that logit to a
  probability.  The per-match probability is the same monotone chain
  applied to the match's own logit, so the suspect-level decision is
  exactly the top match's — identical across in-process and
  scatter-gather serving, which build matches through the same engine.

Confidence bands come from cluster bootstrap: suspects (or pairs) are
resampled with replacement per class, both stages are refit per
replica, and the reported band is the percentile interval of the
replica probabilities at the queried score.

Every artifact records the model hash, index format version, and
extraction level it was fit against; :meth:`Calibration.load` refuses
loudly (:class:`~repro.errors.CalibrationError`) on any mismatch —
silently applying a stale calibration would be worse than none.
"""

import json
from pathlib import Path

import numpy as np

from repro.errors import CalibrationError

#: Artifact schema version; bumped on any incompatible layout change.
SCHEMA_VERSION = 1

#: File name of the artifact, stored in the index root.
ARTIFACT_NAME = "calibration.json"

#: Fewer fit samples than this is refused loudly: a calibrator fit on a
#: handful of pairs is noise wearing a probability's clothes.
MIN_PAIRS = 8

#: Match-tier evidence features, in column order.  ``margin`` is the
#: match's score minus the best score of any *other* design in the
#: ranked list; ``frac_above_delta``/``frac_above_hi`` are the fraction
#: of listed matches scoring above delta / :data:`HI_SCORE` (how
#: saturated the whole list is).
EVIDENCE_FEATURES = (
    "score", "coverage", "struct", "margin", "best",
    "struct_max", "struct_top2", "frac_above_delta", "frac_above_hi",
)

#: The high-score saturation cut used by ``frac_above_hi``.
HI_SCORE = 0.9


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


def match_evidence(matches, delta):
    """Evidence matrix for one ranked match list.

    Args:
        matches: ranked :class:`~repro.api.types.Match`-like rows (need
            ``score``, ``design``, and optionally ``coverage`` /
            ``struct``; ``None`` evidence contributes 0.0).
        delta: the decision boundary the scores were ranked under.

    Returns:
        ``(len(matches), len(EVIDENCE_FEATURES))`` float array, row
        ``i`` aligned with ``matches[i]``.
    """
    if not matches:
        return np.zeros((0, len(EVIDENCE_FEATURES)))
    scores = np.array([float(m.score) for m in matches])
    coverage = np.array([float(getattr(m, "coverage", None) or 0.0)
                         for m in matches])
    struct = np.array([float(getattr(m, "struct", None) or 0.0)
                       for m in matches])
    best = float(scores.max())
    ordered = np.sort(struct)
    struct_max = float(ordered[-1])
    struct_top2 = float(ordered[-2] if len(ordered) > 1 else ordered[-1])
    frac_delta = float((scores > delta).sum()) / len(scores)
    frac_hi = float((scores > HI_SCORE).sum()) / len(scores)
    best_by_design = {}
    for m in matches:
        best_by_design[m.design] = max(best_by_design.get(m.design, -2.0),
                                       float(m.score))
    rows = []
    for m, own_struct, own_cov in zip(matches, struct, coverage):
        margin = float(m.score) - max(
            (v for d, v in best_by_design.items() if d != m.design),
            default=-2.0)
        rows.append([float(m.score), float(own_cov), float(own_struct),
                     margin, best, struct_max, struct_top2,
                     frac_delta, frac_hi])
    return np.asarray(rows, dtype=np.float64)


# -- core fitters -------------------------------------------------------------
class PlattCalibrator:
    """Weighted multi-feature logistic regression (Platt-style).

    Features are standardized (zero-variance columns get unit scale, so
    constant inputs degrade to an intercept-only fit of the base rate
    instead of dividing by zero), then plain gradient descent minimizes
    the weighted cross-entropy with L2 on the non-intercept weights.
    Deterministic: zero init, fixed step count.
    """

    def __init__(self, mu, sd, beta):
        self.mu = np.asarray(mu, dtype=np.float64)
        self.sd = np.asarray(sd, dtype=np.float64)
        self.beta = np.asarray(beta, dtype=np.float64)

    @classmethod
    def fit(cls, X, y, weights=None, l2=1e-3, iters=800, lr=0.5):
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        y = np.asarray(y, dtype=np.float64).ravel()
        w = (np.ones(len(y)) if weights is None
             else np.asarray(weights, dtype=np.float64).ravel())
        mu, sd = X.mean(axis=0), X.std(axis=0)
        sd = np.where(sd == 0, 1.0, sd)
        Xb = np.hstack([(X - mu) / sd, np.ones((len(X), 1))])
        beta = np.zeros(Xb.shape[1])
        ridge_mask = np.r_[np.ones(Xb.shape[1] - 1), 0.0]
        for _ in range(iters):
            p = _sigmoid(Xb @ beta)
            beta -= lr * (Xb.T @ (w * (p - y)) / w.sum()
                          + l2 * ridge_mask * beta)
        return cls(mu, sd, beta)

    def logit(self, X):
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        Xb = np.hstack([(X - self.mu) / self.sd, np.ones((len(X), 1))])
        return Xb @ self.beta

    def predict(self, X):
        return _sigmoid(self.logit(X))

    def to_dict(self):
        return {"kind": "platt", "mu": self.mu.tolist(),
                "sd": self.sd.tolist(), "beta": self.beta.tolist()}

    @classmethod
    def from_dict(cls, data):
        return cls(data["mu"], data["sd"], data["beta"])


class IsotonicCalibrator:
    """1-D isotonic regression via pool-adjacent-violators.

    Fits the least-squares monotone non-decreasing step function from
    score to positive rate; prediction linearly interpolates between
    the fitted block centers and clamps at the ends, so the calibrated
    probability is monotone in the raw score by construction.
    """

    def __init__(self, x, y):
        self.x = np.asarray(x, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.float64)

    @classmethod
    def fit(cls, scores, labels, weights=None):
        scores = np.asarray(scores, dtype=np.float64).ravel()
        labels = np.asarray(labels, dtype=np.float64).ravel()
        w = (np.ones(len(labels)) if weights is None
             else np.asarray(weights, dtype=np.float64).ravel())
        order = np.argsort(scores, kind="stable")
        scores, labels, w = scores[order], labels[order], w[order]
        # Collapse tied scores first: one block per distinct score.
        xs, ys, ws = [], [], []
        i = 0
        while i < len(scores):
            j = i
            while j < len(scores) and scores[j] == scores[i]:
                j += 1
            wsum = w[i:j].sum()
            xs.append(scores[i])
            ys.append(float((labels[i:j] * w[i:j]).sum() / wsum))
            ws.append(float(wsum))
            i = j
        # Pool adjacent violators: merge while a block mean decreases.
        bx, by, bw = [], [], []
        for x, y, wt in zip(xs, ys, ws):
            bx.append([x, x])
            by.append(y)
            bw.append(wt)
            while len(by) > 1 and by[-2] > by[-1]:
                y2, w2 = by.pop(), bw.pop()
                x2 = bx.pop()
                by[-1] = (by[-1] * bw[-1] + y2 * w2) / (bw[-1] + w2)
                bw[-1] += w2
                bx[-1][1] = x2[1]
            # (block means are now non-decreasing)
        centers = np.array([(lo + hi) / 2 for lo, hi in bx])
        return cls(centers, np.array(by))

    def predict(self, scores):
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if len(self.x) == 1:
            return np.full(len(scores), float(self.y[0]))
        return np.interp(scores, self.x, self.y)

    def to_dict(self):
        return {"kind": "isotonic", "x": self.x.tolist(),
                "y": self.y.tolist()}

    @classmethod
    def from_dict(cls, data):
        return cls(data["x"], data["y"])


def _calibrator_from_dict(data):
    if data is None:
        return None
    kind = data.get("kind")
    if kind == "platt":
        return PlattCalibrator.from_dict(data)
    if kind == "isotonic":
        return IsotonicCalibrator.from_dict(data)
    raise CalibrationError(f"unknown calibrator kind {kind!r}")


def _check_fit_data(labels, what):
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if len(labels) < MIN_PAIRS:
        raise CalibrationError(
            f"refusing to calibrate on {len(labels)} {what} "
            f"(need at least {MIN_PAIRS}); a calibrator fit on this "
            f"little data would be noise")
    if labels.min() == labels.max():
        raise CalibrationError(
            f"refusing to calibrate: all {len(labels)} {what} carry the "
            f"same label; both genuine and impostor samples are required")


def _stratified_resample(rng, labels):
    """Bootstrap indices resampled with replacement *per class*, so a
    replica never degenerates to a single class."""
    labels = np.asarray(labels)
    indices = []
    for value in (0, 1):
        members = np.nonzero(labels == value)[0]
        if len(members):
            indices.append(rng.choice(members, size=len(members),
                                      replace=True))
    return np.sort(np.concatenate(indices))


def _percentile_band(replica_probs):
    """(low, high) 90% percentile band per column of ``(B, n)`` probs."""
    low = np.percentile(replica_probs, 5.0, axis=0)
    high = np.percentile(replica_probs, 95.0, axis=0)
    return low, high


# -- pair tier ----------------------------------------------------------------
class ScoreCalibrator:
    """1-D calibrator over raw cosine scores (the pairwise tier).

    Fit on genuine/impostor score pairs; ``method`` selects Platt-style
    logistic or isotonic.  Carries its own balanced operating
    ``threshold`` and ``bootstrap`` replica parameter sets for the
    confidence band.
    """

    def __init__(self, method, inner, threshold, replicas=()):
        self.method = method
        self.inner = inner
        self.threshold = float(threshold)
        self.replicas = list(replicas)

    @classmethod
    def fit(cls, scores, labels, method="platt", bootstrap=32, seed=0):
        from repro.calib.report import balanced_threshold

        if method not in ("platt", "isotonic"):
            raise CalibrationError(
                f"unknown calibration method {method!r}; "
                f"known: platt, isotonic")
        scores = np.asarray(scores, dtype=np.float64).ravel()
        labels = np.asarray(labels, dtype=np.float64).ravel()
        _check_fit_data(labels, "score pairs")

        def fit_one(s, y):
            if method == "platt":
                return PlattCalibrator.fit(s[:, None], y, l2=1e-4)
            return IsotonicCalibrator.fit(s, y)

        inner = fit_one(scores, labels)
        probs = inner.predict(scores)
        threshold = balanced_threshold(probs, labels)
        rng = np.random.default_rng(seed)
        replicas = []
        for _ in range(int(bootstrap)):
            pick = _stratified_resample(rng, labels)
            replicas.append(fit_one(scores[pick], labels[pick]))
        return cls(method, inner, threshold, replicas)

    def probability(self, scores):
        return self.inner.predict(np.asarray(scores, dtype=np.float64)
                                  .ravel())

    def interval(self, scores):
        """90% bootstrap band ``(low, high)`` arrays for ``scores``;
        collapses onto the point estimate without replicas."""
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if not self.replicas:
            point = self.probability(scores)
            return point, point
        stack = np.stack([r.predict(scores) for r in self.replicas])
        return _percentile_band(stack)

    def to_dict(self):
        return {"method": self.method, "inner": self.inner.to_dict(),
                "threshold": self.threshold,
                "replicas": [r.to_dict() for r in self.replicas]}

    @classmethod
    def from_dict(cls, data):
        return cls(data["method"],
                   _calibrator_from_dict(data["inner"]),
                   data["threshold"],
                   [_calibrator_from_dict(r) for r in data["replicas"]])


# -- match tier ---------------------------------------------------------------
class EvidenceCalibrator:
    """Two-stage calibrator over ranked-match evidence.

    Stage 1: class-weighted logistic over per-match
    :data:`EVIDENCE_FEATURES` rows (positives down-weighted by
    ``wpos``, because one pirated suspect contributes one positive row
    against k-1 negatives and the match-level base rate must not drown
    the impostor geometry).  Stage 2: unweighted 1-D Platt from the
    suspect's max stage-1 logit to a probability — calibrating the
    *logit* rather than a max of sigmoids is what keeps ECE honest.

    ``threshold`` is the balanced operating point (min max(FPR, FNR))
    on the fit suspects; replicas are stratified suspect-level
    bootstrap refits powering :meth:`interval`.
    """

    def __init__(self, stage1, stage2, threshold, delta, replicas=()):
        self.stage1 = stage1
        self.stage2 = stage2
        self.threshold = float(threshold)
        self.delta = float(delta)
        self.replicas = list(replicas)

    @classmethod
    def fit(cls, evidence, match_labels, pirated, delta, wpos=0.1,
            l2=1e-3, bootstrap=32, seed=0):
        """Fit from per-suspect evidence.

        Args:
            evidence: one ``(n_matches, 9)`` array per suspect
                (:func:`match_evidence`).
            match_labels: per-suspect arrays of 0/1 match labels (1 =
                this match is the pirated design).
            pirated: per-suspect ground-truth labels.
            delta: decision boundary the evidence was computed under.
        """
        from repro.calib.report import balanced_threshold

        pirated = np.asarray(pirated, dtype=np.float64).ravel()
        if len(evidence) != len(pirated):
            raise CalibrationError(
                f"{len(evidence)} evidence blocks vs {len(pirated)} "
                f"suspect labels")
        keep = [i for i, ev in enumerate(evidence) if len(ev)]
        evidence = [np.asarray(evidence[i], dtype=np.float64)
                    for i in keep]
        match_labels = [np.asarray(match_labels[i],
                                   dtype=np.float64).ravel()
                        for i in keep]
        pirated = pirated[keep]
        _check_fit_data(pirated, "suspects")

        def fit_stages(idx):
            X = np.vstack([evidence[i] for i in idx])
            y = np.concatenate([match_labels[i] for i in idx])
            w = np.where(y == 1, wpos, 1.0)
            stage1 = PlattCalibrator.fit(X, y, w, l2=l2)
            z = np.array([stage1.logit(evidence[i]).max() for i in idx])
            stage2 = PlattCalibrator.fit(z[:, None], pirated[idx],
                                         l2=1e-4)
            return stage1, stage2

        everyone = np.arange(len(pirated))
        stage1, stage2 = fit_stages(everyone)
        fitted = cls(stage1, stage2, 0.5, delta)
        probs = np.array([fitted.probability(ev) for ev in evidence])
        fitted.threshold = balanced_threshold(probs, pirated)
        rng = np.random.default_rng(seed)
        for _ in range(int(bootstrap)):
            pick = _stratified_resample(rng, pirated)
            fitted.replicas.append(fit_stages(pick))
        return fitted

    def suspect_logit(self, evidence):
        """Max stage-1 logit over the suspect's evidence rows."""
        return float(self.stage1.logit(evidence).max())

    def probability(self, evidence):
        """Calibrated piracy probability for one suspect's evidence."""
        return float(self.stage2.predict(
            [[self.suspect_logit(evidence)]])[0])

    def match_probabilities(self, evidence):
        """Per-match probabilities (the suspect's is their max, since
        the stage-2 map is monotone)."""
        z = self.stage1.logit(evidence)
        return self.stage2.predict(z[:, None])

    def match_intervals(self, evidence):
        """Per-match 90% bootstrap bands ``(low, high)``; collapses
        onto the point estimate without replicas."""
        if not self.replicas:
            point = self.match_probabilities(evidence)
            return point, point
        stack = np.stack([
            s2.predict(s1.logit(evidence)[:, None])
            for s1, s2 in self.replicas])
        return _percentile_band(stack)

    def to_dict(self):
        return {"stage1": self.stage1.to_dict(),
                "stage2": self.stage2.to_dict(),
                "threshold": self.threshold, "delta": self.delta,
                "replicas": [[s1.to_dict(), s2.to_dict()]
                             for s1, s2 in self.replicas]}

    @classmethod
    def from_dict(cls, data):
        return cls(PlattCalibrator.from_dict(data["stage1"]),
                   PlattCalibrator.from_dict(data["stage2"]),
                   data["threshold"], data["delta"],
                   [(PlattCalibrator.from_dict(s1),
                     PlattCalibrator.from_dict(s2))
                    for s1, s2 in data["replicas"]])


# -- the persisted artifact ---------------------------------------------------
class Calibration:
    """The versioned ``calibration.json`` artifact.

    Binds a :class:`ScoreCalibrator` (pair tier) and/or an
    :class:`EvidenceCalibrator` (match tier) to the exact model and
    index they were fit against.  :meth:`load` refuses loudly on any
    schema/model-hash/index-format/level mismatch.
    """

    def __init__(self, model_hash, index_format, level, delta,
                 pair=None, match=None, info=None):
        if pair is None and match is None:
            raise CalibrationError(
                "a calibration artifact needs at least one fitted tier")
        self.model_hash = model_hash
        self.index_format = int(index_format)
        self.level = level
        self.delta = float(delta)
        self.pair = pair
        self.match = match
        self.info = dict(info or {})

    # -- persistence ----------------------------------------------------------
    def to_dict(self):
        return {
            "schema": SCHEMA_VERSION,
            "model_hash": self.model_hash,
            "index_format": self.index_format,
            "level": self.level,
            "delta": self.delta,
            "pair": self.pair.to_dict() if self.pair else None,
            "match": self.match.to_dict() if self.match else None,
            "info": self.info,
        }

    def save(self, path):
        path = Path(path)
        if path.is_dir():
            path = path / ARTIFACT_NAME
        path.write_text(json.dumps(self.to_dict(), sort_keys=True,
                                   indent=1) + "\n")
        return path

    @classmethod
    def load(cls, path, model_hash=None, index_format=None, level=None):
        """Load and validate an artifact.

        Any expectation passed as non-``None`` is enforced; a mismatch
        raises :class:`~repro.errors.CalibrationError` — a calibration
        fit against a different model, index schema, or level must
        never be silently applied.
        """
        path = Path(path)
        if path.is_dir():
            path = path / ARTIFACT_NAME
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise CalibrationError(
                f"cannot read calibration artifact {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CalibrationError(
                f"corrupt calibration artifact {path}: {exc}") from exc
        if data.get("schema") != SCHEMA_VERSION:
            raise CalibrationError(
                f"calibration artifact {path} has schema "
                f"{data.get('schema')!r}, this build reads "
                f"{SCHEMA_VERSION}; refit with 'gnn4ip calibrate'")
        checks = (("model_hash", model_hash),
                  ("index_format", index_format),
                  ("level", level))
        for key, expected in checks:
            if expected is not None and data.get(key) != expected:
                raise CalibrationError(
                    f"calibration artifact {path} was fit against "
                    f"{key}={data.get(key)!r} but this session runs "
                    f"{key}={expected!r}; refusing to apply a stale "
                    f"calibration — refit with 'gnn4ip calibrate'")
        try:
            return cls.from_dict(data)
        except CalibrationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(
                f"corrupt calibration artifact {path}: {exc}") from exc

    @classmethod
    def from_dict(cls, data):
        return cls(
            model_hash=data["model_hash"],
            index_format=data["index_format"],
            level=data["level"],
            delta=data["delta"],
            pair=(ScoreCalibrator.from_dict(data["pair"])
                  if data.get("pair") else None),
            match=(EvidenceCalibrator.from_dict(data["match"])
                   if data.get("match") else None),
            info=data.get("info"))

    # -- annotation -----------------------------------------------------------
    def annotate_matches(self, matches):
        """Attach probability/band/calibrated verdict to ranked matches.

        A pure function of the match list and the artifact — the same
        matches get the same probabilities whether they were ranked
        in-process or merged from partitioned workers.
        """
        if not matches:
            return matches
        if self.match is not None:
            evidence = match_evidence(matches, self.match.delta)
            probs = self.match.match_probabilities(evidence)
            low, high = self.match.match_intervals(evidence)
            threshold = self.match.threshold
        elif self.pair is not None:
            scores = [m.score for m in matches]
            probs = self.pair.probability(scores)
            low, high = self.pair.interval(scores)
            threshold = self.pair.threshold
        else:  # unreachable: the constructor requires a tier
            return matches
        for m, p, lo, hi in zip(matches, probs, low, high):
            m.probability = float(p)
            m.confidence_low = float(min(lo, p))
            m.confidence_high = float(max(hi, p))
            m.calibrated_piracy = bool(p >= threshold)
        return matches

    def annotate_comparison(self, comparison):
        """Attach probability/band/calibrated verdict to a pairwise
        :class:`~repro.api.types.Comparison` (pair tier only — a single
        cosine carries no ranked-list evidence)."""
        if self.pair is None:
            return comparison
        prob = float(self.pair.probability([comparison.score])[0])
        low, high = self.pair.interval([comparison.score])
        comparison.probability = prob
        comparison.confidence_low = float(min(low[0], prob))
        comparison.confidence_high = float(max(high[0], prob))
        comparison.calibrated_piracy = bool(prob >= self.pair.threshold)
        return comparison

    def describe(self):
        """Human-oriented summary dict (counts, tiers, operating points)."""
        out = {"schema": SCHEMA_VERSION, "model_hash": self.model_hash,
               "index_format": self.index_format, "level": self.level,
               "delta": self.delta, "tiers": []}
        if self.pair is not None:
            out["tiers"].append("pair")
            out["pair_method"] = self.pair.method
            out["pair_threshold"] = self.pair.threshold
        if self.match is not None:
            out["tiers"].append("match")
            out["match_threshold"] = self.match.threshold
        out.update(self.info)
        return out
