"""Calibrated decision subsystem.

Raw cosine similarity is not a probability: one global ``delta`` cut
cannot serve RTL and netlist corpora, whole-design and chunk-fused
rankings, at once (the motivating numbers live in
``benchmarks/out/bench_eval.json``).  This package turns ranked match
evidence into calibrated piracy probabilities with bootstrap confidence
bands and a balanced operating point:

- :mod:`repro.calib.calibration` — the calibrators (Platt-style
  logistic and isotonic), the two-stage match-evidence calibrator, and
  the versioned ``calibration.json`` artifact persisted next to an
  index (fingerprinted against model hash + index schema, refused
  loudly on mismatch).
- :mod:`repro.calib.negatives` — hard-negative mining: nearest
  non-matching pairs in embedding space, fed into the trainer's pair
  loss behind an opt-in flag.
- :mod:`repro.calib.report` — ECE, reliability bins, and the
  threshold-sweep curve used by the evaluation report.
"""

from repro.calib.calibration import (
    ARTIFACT_NAME,
    EVIDENCE_FEATURES,
    MIN_PAIRS,
    Calibration,
    EvidenceCalibrator,
    IsotonicCalibrator,
    PlattCalibrator,
    ScoreCalibrator,
    match_evidence,
)
from repro.calib.negatives import mine_hard_negatives
from repro.calib.report import (
    balanced_threshold,
    expected_calibration_error,
    reliability_bins,
    threshold_sweep,
)

__all__ = [
    "ARTIFACT_NAME",
    "EVIDENCE_FEATURES",
    "MIN_PAIRS",
    "Calibration",
    "EvidenceCalibrator",
    "IsotonicCalibrator",
    "PlattCalibrator",
    "ScoreCalibrator",
    "match_evidence",
    "mine_hard_negatives",
    "balanced_threshold",
    "expected_calibration_error",
    "reliability_bins",
    "threshold_sweep",
]
