"""Batched embedding service and model fingerprinting.

The index stores embeddings, not graphs, so every stored vector is only
meaningful for the exact model that produced it.  :func:`model_fingerprint`
hashes the encoder architecture, all weights, and the decision boundary;
the fingerprint is persisted with the index and checked before any stored
embedding is reused.

:class:`EmbeddingService` is the query-side batching layer: it embeds many
graphs per forward pass through :func:`repro.nn.batch.batched_embed`
(block-diagonal packing), which matches per-graph ``encoder.embed`` to
BLAS rounding at a fraction of the per-graph overhead.
"""

import hashlib
import json

import numpy as np

from repro.nn.batch import batched_embed


def model_fingerprint(model):
    """SHA-256 hex digest of a :class:`~repro.core.gnn4ip.GNN4IP` model.

    Covers the encoder config and every parameter tensor (name, shape,
    and raw bytes) — any retrain, finetune, or architecture change yields
    a new fingerprint.  Delta is deliberately excluded: embeddings do not
    depend on the decision boundary, so retuning delta (or overriding it
    with ``compare --delta``) keeps stored embeddings reusable.
    """
    digest = hashlib.sha256()
    config = getattr(model.encoder, "config", {})
    digest.update(json.dumps(config, sort_keys=True).encode("utf-8"))
    for name, value in sorted(model.encoder.state_dict().items()):
        array = np.ascontiguousarray(value, dtype=np.float64)
        digest.update(f"{name}:{array.shape}".encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


class EmbeddingService:
    """Embed graphs in batches with a fixed model.

    Args:
        model: a :class:`~repro.core.gnn4ip.GNN4IP`.
        batch_size: graphs per packed forward pass (bounds peak memory).
    """

    def __init__(self, model, batch_size=64):
        self.model = model
        self.batch_size = batch_size
        self._fingerprint = None

    @property
    def fingerprint(self):
        """Model fingerprint, computed once and cached."""
        if self._fingerprint is None:
            self._fingerprint = model_fingerprint(self.model)
        return self._fingerprint

    def embed_graphs(self, graphs):
        """``(n, hidden)`` embeddings for a sequence of DFGs, in order."""
        return batched_embed(self.model.encoder, graphs,
                             batch_size=self.batch_size)

    def embed_one(self, graph):
        """Embedding vector for a single DFG."""
        return self.embed_graphs([graph])[0]
