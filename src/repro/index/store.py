"""Persistent hardware-fingerprint index (on-disk format v3).

On-disk layout under the index root::

    meta.json         entries (one per input file, failures included),
                      model hash, pipeline options, shard specs, IVF
                      config, last-build report — always written last,
                      atomically: its presence marks a complete index
    shards/*.f32      unit-normalized float32 embedding rows as raw
                      memory-mapped shard files (append-only; see
                      :mod:`repro.index.shards`)
    ivf-NNNNN.npz     optional coarse quantizer for sublinear queries
                      (:mod:`repro.index.ann`)
    model.npz         the exact model that produced the embeddings
    cache/            content-addressed DFG cache (survives rebuilds;
                      absent when the index was built with
                      ``use_cache=False``)

Opening an index is ``stat`` + ``mmap`` — no decompression, no
re-normalization (v2 paid both on every load).  Queries run through the
batched :class:`~repro.index.engine.QueryEngine`; the embedding service
and frontend are cached on the index object so a lookup service embeds
each suspect once and never re-fingerprints the model per call.
``add_to_index`` grows the corpus in place: new files append one shard
plus meta entries without re-embedding or rewriting what is already
stored.
"""

import json
import time
import zipfile
from dataclasses import dataclass  # noqa: F401 - re-export for back-compat
from pathlib import Path

import numpy as np

from repro.core.persist import load_model, save_model
from repro.errors import IndexStoreError, ModelError
from repro.index.ann import (
    IVF_NAME,
    MIN_ROWS as IVF_MIN_ROWS,
    IVFIndex,
    ivf_filename,
)
from repro.index.cache import DFGCache
from repro.index.engine import QueryEngine, QueryHit  # noqa: F401
from repro.index.extractor import CorpusExtractor
from repro.index.service import EmbeddingService
from repro.index.shards import (
    ShardStore,
    next_shard_ordinal,
    unit_rows_f32,
    write_shard,
)
from repro.ir.frontends import RTLFrontend, get_frontend

META_NAME = "meta.json"
MODEL_NAME = "model.npz"
CACHE_DIR = "cache"
#: v2's single compressed ``embeddings.npz`` store; only read by
#: :func:`migrate_v2`.
LEGACY_EMBEDDINGS_NAME = "embeddings.npz"
#: v3: embeddings live in raw memory-mapped float32 shards (meta carries
#: the shard specs) with an optional IVF quantizer.  v2 indexes are
#: refused with a migrate/rebuild message — ``migrate_v2`` converts them
#: in place without re-embedding.
FORMAT_VERSION = 3


def _write_meta(root, meta):
    """Atomic ``meta.json`` write — always the last file to land."""
    tmp = root / (META_NAME + ".tmp")
    tmp.write_text(json.dumps(meta, indent=1, sort_keys=True))
    tmp.replace(root / META_NAME)


def _read_meta(root):
    meta_path = Path(root) / META_NAME
    if not meta_path.is_file():
        raise IndexStoreError(
            f"no fingerprint index at {root} (missing {META_NAME}; "
            f"run 'gnn4ip index build' first)")
    try:
        return json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexStoreError(f"corrupt index metadata: {exc}") from exc


class FingerprintIndex:
    """A loaded fingerprint index (see module docstring for the layout)."""

    def __init__(self, root, meta, shards, ivf=None):
        self.root = Path(root)
        self.meta = meta
        self.shards = shards
        self.ivf = ivf
        self.entries = meta["entries"]
        self._ok_entries = [e for e in self.entries if e["status"] == "ok"]
        self._row_by_key = {}
        for row, entry in enumerate(self._ok_entries):
            self._row_by_key.setdefault(entry["key"], row)
        self._matrix = None
        self._engine = None
        self._frontend = None
        self._service = None

    # -- loading -------------------------------------------------------------
    @classmethod
    def load(cls, root):
        """Open an existing index; raises IndexStoreError when unusable.

        Opening maps the shards read-only and validates their sizes
        against the metadata (catching partial/truncated writes) but
        reads no embedding data.
        """
        root = Path(root)
        meta = _read_meta(root)
        version = meta.get("version")
        if version == 2:
            raise IndexStoreError(
                f"index at {root} uses the retired v2 format (compressed "
                f"float64 embeddings.npz, decompressed and re-normalized "
                f"on every open); run 'gnn4ip index migrate {root}' to "
                f"convert it in place without re-embedding, or rebuild "
                f"with 'gnn4ip index build'")
        if version != FORMAT_VERSION:
            raise IndexStoreError(
                f"index version {version!r} is not supported "
                f"(expected {FORMAT_VERSION}); rebuild the index")
        store_spec = meta.get("store") or {}
        shards = ShardStore(root, store_spec.get("hidden", 0),
                            store_spec.get("shards", []))
        ok_rows = sum(1 for e in meta["entries"] if e["status"] == "ok")
        if shards.rows != ok_rows:
            raise IndexStoreError(
                f"embedding store has {shards.rows} rows but the "
                f"metadata lists {ok_rows} embedded entries "
                f"(partial write? rebuild the index)")
        shards.open()  # size validation; no data is read
        # The quantizer is an optional accelerator, never a correctness
        # dependency: a missing, corrupt, or row-count-stale ivf.npz
        # (e.g. a crash between the quantizer write and the meta write
        # during `index add`) degrades to exact serving instead of
        # refusing an otherwise-intact index.  The next add/build refits
        # and heals it.
        ivf = None
        if meta.get("ivf"):
            try:
                ivf = IVFIndex.load(_ivf_path(root, meta))
            except IndexStoreError:
                ivf = None
            if ivf is not None and ivf.rows != ok_rows:
                ivf = None
        return cls(root, meta, shards, ivf=ivf)

    def model(self, **kwargs):
        """The model persisted with the index."""
        return load_model(self.root / MODEL_NAME, **kwargs)

    def frontend(self):
        """A frontend configured like the one the index was built with.

        Cached on the index: queries must extract suspects at the same
        level and with the same options the corpus was extracted with,
        and a lookup service reuses one frontend across calls.

        Raises:
            IndexStoreError: when the current feature schema no longer
                matches the one the index was built under (e.g. the
                vocabulary changed in a later version) — stored embeddings
                would be silently incomparable to fresh ones.
        """
        if self._frontend is not None:
            return self._frontend
        frontend = get_frontend(self.level,
                                do_trim=self.meta["options"].get("do_trim",
                                                                 True))
        stored = self.meta["options"].get("schema")
        if stored is not None and stored != frontend.schema_fingerprint():
            raise IndexStoreError(
                f"the feature schema has changed since this index was "
                f"built ({stored} -> {frontend.schema_fingerprint()}); "
                f"rebuild the index")
        self._frontend = frontend
        return frontend

    def pipeline(self):
        """Deprecated alias for :meth:`frontend` (same extract interface)."""
        return self.frontend()

    @property
    def level(self):
        """Extraction level the index was built at (``rtl``/``netlist``)."""
        return self.meta["options"].get("level", "rtl")

    @property
    def top(self):
        """Top-module option the index was built with (usually None)."""
        return self.meta["options"]["top"]

    @property
    def use_cache(self):
        """Whether this index keeps a DFG cache (``--no-cache`` builds
        must not grow one behind the operator's back)."""
        return self.meta["options"].get("use_cache", True)

    # -- queries -------------------------------------------------------------
    def __len__(self):
        return len(self._ok_entries)

    @property
    def model_hash(self):
        return self.meta["model_hash"]

    @property
    def matrix(self):
        """The stored (unit float32) matrix, materialized on first use.

        The serving path never needs this — the engine scores straight
        off the memmaps; it exists for rebuild reuse and inspection.
        """
        if self._matrix is None:
            self._matrix = self.shards.matrix()
        return self._matrix

    @property
    def engine(self):
        """The batched :class:`QueryEngine` over the mapped shards."""
        if self._engine is None:
            self._engine = QueryEngine(self.shards.blocks(),
                                       self._ok_entries, ivf=self.ivf)
        return self._engine

    def lookup_key(self, key):
        """Stored (unit float32) embedding for a content key, or None."""
        row = self._row_by_key.get(key)
        return None if row is None else self.shards.row(row)

    def entry_for_key(self, key):
        """The ok-entry dict whose embedding ``lookup_key`` would return,
        or None when the content key is not indexed."""
        row = self._row_by_key.get(key)
        return None if row is None else self._ok_entries[row]

    def query_vector(self, vector, k=5, delta=0.0, nprobe=None,
                     exact=False):
        """Top-k entries by cosine similarity to ``vector``.

        Delegates to :meth:`query_many` with a batch of one, so single
        and batched queries share one code path (and, in exact mode, are
        bit-identical).
        """
        return self.query_many([vector], k=k, delta=delta, nprobe=nprobe,
                               exact=exact)[0]

    def query_many(self, vectors, k=5, delta=0.0, nprobe=None,
                   exact=False):
        """Top-k hit lists for a whole batch of query vectors."""
        return self.engine.query_many(vectors, k=k, delta=delta,
                                      nprobe=nprobe, exact=exact)

    def service_for(self, model, batch_size=64):
        """A fingerprint-checked :class:`EmbeddingService` for ``model``.

        Cached on the index (keyed by model identity): repeated
        ``query_graph`` calls stop re-hashing every model weight per
        call, which used to dominate small-query latency.

        Raises:
            IndexStoreError: when ``model`` is not the model the index
                was built with (its embeddings would not be comparable).
        """
        if self._service is None or self._service.model is not model:
            service = EmbeddingService(model, batch_size=batch_size)
            if service.fingerprint != self.model_hash:
                raise IndexStoreError(
                    "model fingerprint does not match the index "
                    "(rebuild the index or query with its own model)")
            self._service = service
        return self._service

    def query_graph(self, graph, model, k=5, nprobe=None, exact=False):
        """Embed a suspect graph and rank it against the index."""
        return self.query_graphs([graph], model, k=k, nprobe=nprobe,
                                 exact=exact)[0]

    def query_graphs(self, graphs, model, k=5, nprobe=None, exact=False):
        """Embed many suspects in one batched pass and rank each.

        Raises:
            IndexStoreError: when ``model`` is not the model the index was
                built with (its embeddings would not be comparable).
        """
        service = self.service_for(model)
        vectors = service.embed_graphs(graphs)
        return self.query_many(vectors, k=k, delta=model.delta,
                               nprobe=nprobe, exact=exact)

    def stats(self):
        """Summary dict for reports and the ``index stats`` command."""
        designs = {}
        failures = 0
        for entry in self.entries:
            if entry["status"] == "ok":
                designs[entry["design"]] = designs.get(entry["design"], 0) + 1
            else:
                failures += 1
        # Probe the cache only when its directory exists: stats on a
        # --no-cache index must not conjure an empty cache/ directory.
        cache_entries = cache_bytes = 0
        if (self.root / CACHE_DIR).is_dir():
            cache = DFGCache(self.root / CACHE_DIR)
            cache_entries = cache.entry_count()
            cache_bytes = cache.disk_bytes()
        return {
            "level": self.level,
            "entries": len(self.entries),
            "embedded": len(self),
            "failures": failures,
            "designs": len(designs),
            "hidden": self.shards.hidden if len(self) else 0,
            "shards": len(self.shards.specs),
            "ivf_clusters": self.ivf.n_clusters if self.ivf else 0,
            "model_hash": self.model_hash,
            "cache_entries": cache_entries,
            "cache_bytes": cache_bytes,
            "build": self.meta.get("build", {}),
        }


def _unique_names(results, taken=()):
    """File stems, suffixed where needed so index names stay unique.

    ``taken`` seeds the reserved set with names already in the index, so
    incremental adds cannot collide with existing entries.
    """
    taken = set(taken)
    names = []
    for result in results:
        candidate, suffix = result.name, 1
        while candidate in taken:
            suffix += 1
            candidate = f"{result.name}#{suffix}"
        taken.add(candidate)
        names.append(candidate)
    return names


def _result_entries(results, names):
    entries = []
    for result, name in zip(results, names):
        entry = {"name": name, "path": result.path, "key": result.key,
                 "status": "ok" if result.ok else "error"}
        if result.ok:
            entry["design"] = result.graph.name
            entry["nodes"] = len(result.graph)
            entry["edges"] = result.graph.num_edges
            entry["cached"] = result.cached
        else:
            entry["error"] = result.error
        entries.append(entry)
    return entries


def _next_ivf_name(root):
    """Generation-named quantizer file nothing on disk uses yet.

    Like shards, the quantizer is never overwritten in place: a rebuild
    or add writes a fresh ``ivf-NNNNN.npz`` and the old one is cleaned
    only after the new ``meta.json`` lands, so a crash in between leaves
    the previous meta paired with exactly the quantizer it described.
    """
    taken = -1
    for path in Path(root).glob("ivf-*.npz"):
        stem = path.name[len("ivf-"):-len(".npz")]
        if stem.isdigit():
            taken = max(taken, int(stem))
    return ivf_filename(taken + 1)


def _ivf_path(root, meta):
    return Path(root) / meta["ivf"].get("file", IVF_NAME)


def _maybe_fit_ivf(root, unit_matrix, meta):
    """Fit + persist the coarse quantizer when the corpus is big enough."""
    if len(unit_matrix) >= IVF_MIN_ROWS:
        ivf = IVFIndex.fit(unit_matrix)
        name = _next_ivf_name(root)
        ivf.save(root / name)
        meta["ivf"] = {"clusters": ivf.n_clusters, "file": name}
    else:
        meta["ivf"] = None


def _clean_stale_files(root, meta):
    """Drop files the just-written meta orphaned (the legacy v2 store,
    unreferenced shards, superseded quantizers)."""
    (root / LEGACY_EMBEDDINGS_NAME).unlink(missing_ok=True)
    live = {spec["file"] for spec in meta["store"]["shards"]}
    shard_dir = root / "shards"
    if shard_dir.is_dir():
        for path in shard_dir.glob("shard-*.f32"):
            if path.name not in live:
                path.unlink(missing_ok=True)
    live_ivf = (meta["ivf"] or {}).get("file") if meta.get("ivf") else None
    for path in Path(root).glob("ivf*.npz"):
        if path.name != live_ivf:
            path.unlink(missing_ok=True)


def build_index(root, paths, model, pipeline=None, jobs=None,
                use_cache=True, top=None, batch_size=64, level=None,
                frontend=None):
    """Build (or rebuild) a fingerprint index over Verilog files.

    Extraction fans out over worker processes and reuses the index's graph
    cache; embedding runs batched.  Files the frontend rejects become
    failure entries instead of aborting the build.

    Args:
        level: extraction level (``rtl`` / ``netlist``); defaults to the
            level of the model's featurizer, so a netlist-trained model
            indexes at the netlist level without extra flags.
        frontend: explicit :mod:`repro.ir.frontends` frontend (overrides
            ``level`` and ``pipeline``).

    Returns:
        (index, report) — the loaded :class:`FingerprintIndex` and a dict
        describing the build (counts, cache stats, timings).

    Raises:
        ModelError: when the model's featurizer level does not match the
            requested extraction level (its embeddings would be garbage).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    paths = [str(p) for p in paths]
    if not paths:
        raise IndexStoreError("no input files to index")

    model_level = getattr(model.encoder, "featurizer", None)
    model_level = model_level.level if model_level is not None else "rtl"
    if frontend is None:
        if pipeline is not None:
            if level not in (None, "rtl"):
                raise ValueError(
                    f"pipeline= selects the RTL frontend and conflicts "
                    f"with level={level!r}; pass frontend= instead")
            frontend = RTLFrontend(pipeline=pipeline)
        else:
            frontend = get_frontend(level if level is not None
                                    else model_level)
    if frontend.level != model_level:
        raise ModelError(
            f"cannot build a {frontend.level}-level index with a "
            f"{model_level}-level model (train with --level "
            f"{frontend.level} or change --level)")

    start = time.perf_counter()
    cache = DFGCache(root / CACHE_DIR) if use_cache else None
    extractor = CorpusExtractor(cache=cache, jobs=jobs, frontend=frontend)
    results = extractor.extract_paths(paths, top=top)
    extract_seconds = time.perf_counter() - start

    ok = [r for r in results if r.ok]
    service = EmbeddingService(model, batch_size=batch_size)

    # Rebuild fast path: embeddings from a previous build of this index
    # are reused for unchanged content keys, provided the model is the
    # same one (fingerprint match).  --no-cache recomputes everything.
    previous = {}
    if use_cache:
        try:
            old = FingerprintIndex.load(root)
            if old.model_hash == service.fingerprint:
                previous = {entry["key"]: old.matrix[row]
                            for row, entry in enumerate(old._ok_entries)}
            # .matrix is a materialized copy; drop the old index now so
            # its shard memmaps are closed before cleanup unlinks the
            # files (deleting a mapped file fails on some platforms).
            del old
        except IndexStoreError:
            pass

    embed_start = time.perf_counter()
    fresh = [r for r in ok if r.key not in previous]
    fresh_unit = unit_rows_f32(
        service.embed_graphs([r.graph for r in fresh])
        if fresh else np.empty((0, model.encoder.hidden)))
    fresh_rows = {r.key: fresh_unit[i] for i, r in enumerate(fresh)}
    unit_matrix = (np.stack([previous[r.key] if r.key in previous
                             else fresh_rows[r.key] for r in ok])
                   if ok else np.empty((0, model.encoder.hidden),
                                       dtype=np.float32))
    embed_seconds = time.perf_counter() - embed_start

    report = {
        "files": len(results),
        "embedded": len(ok),
        "embedded_fresh": len(fresh),
        "embeddings_reused": len(ok) - len(fresh),
        "failures": len(results) - len(ok),
        "cache": cache.stats.as_dict() if cache else None,
        "extract_seconds": extract_seconds,
        "embed_seconds": embed_seconds,
        "jobs": extractor.last_jobs,
    }
    specs = ([write_shard(root, next_shard_ordinal(root), unit_matrix)]
             if len(unit_matrix) else [])
    meta = {
        "version": FORMAT_VERSION,
        "model_hash": service.fingerprint,
        "options": {
            "top": top,
            "level": frontend.level,
            "do_trim": getattr(frontend, "do_trim", True),
            "schema": frontend.schema_fingerprint(),
            "use_cache": use_cache,
        },
        "store": {
            "dtype": "float32",
            "hidden": int(model.encoder.hidden),
            "shards": specs,
        },
        "entries": _result_entries(results, _unique_names(results)),
        "build": report,
    }
    _maybe_fit_ivf(root, unit_matrix, meta)
    save_model(model, root / MODEL_NAME)
    # meta.json is written before any stale file is removed (and after
    # everything it references exists): its presence marks a complete
    # index, and load() cross-checks it against the shard files.
    _write_meta(root, meta)
    _clean_stale_files(root, meta)
    return FingerprintIndex.load(root), report


def add_to_index(root, paths, jobs=None, batch_size=64):
    """Incrementally add files to an existing index.

    Appends exactly one new shard plus meta entries: existing shards,
    the model, and the quantizer's centroids are left untouched, and
    files whose content key is already indexed reuse the stored vector
    instead of re-embedding (the incremental-construction idea — grow
    the index in place instead of rebuilding).

    Returns:
        (index, report) — the reloaded index and a build-style dict with
        ``"mode": "add"``.
    """
    root = Path(root)
    index = FingerprintIndex.load(root)
    paths = [str(p) for p in paths]
    if not paths:
        raise IndexStoreError("no input files to add")
    model = index.model()
    frontend = index.frontend()

    start = time.perf_counter()
    cache = DFGCache(root / CACHE_DIR) if index.use_cache else None
    extractor = CorpusExtractor(cache=cache, jobs=jobs, frontend=frontend)
    results = extractor.extract_paths(paths, top=index.top)
    extract_seconds = time.perf_counter() - start

    ok = [r for r in results if r.ok]
    embed_start = time.perf_counter()
    fresh = [r for r in ok if index.lookup_key(r.key) is None]
    if fresh:
        service = index.service_for(model, batch_size=batch_size)
        fresh_unit = unit_rows_f32(
            service.embed_graphs([r.graph for r in fresh]))
    else:
        fresh_unit = np.empty((0, index.shards.hidden), dtype=np.float32)
    fresh_rows = {r.key: fresh_unit[i] for i, r in enumerate(fresh)}
    new_unit = (np.stack([fresh_rows[r.key] if r.key in fresh_rows
                          else index.lookup_key(r.key) for r in ok])
                if ok else fresh_unit)
    embed_seconds = time.perf_counter() - embed_start

    meta = index.meta
    if len(new_unit):
        ordinal = next_shard_ordinal(root, meta["store"]["shards"])
        meta["store"]["shards"].append(write_shard(root, ordinal,
                                                   new_unit))
        total = index.shards.rows + len(new_unit)
        if index.ivf is not None:
            # Grow the quantizer in place: new rows join their nearest
            # existing centroid; no re-clustering, no reassignment.
            index.ivf.add(new_unit)
            name = _next_ivf_name(root)
            index.ivf.save(root / name)
            meta["ivf"]["file"] = name
        elif total >= IVF_MIN_ROWS:
            # Covers both the first crossing of the size threshold and a
            # quantizer load() dropped as stale — refit from everything.
            ivf = IVFIndex.fit(
                np.concatenate([index.matrix, new_unit], axis=0))
            name = _next_ivf_name(root)
            ivf.save(root / name)
            meta["ivf"] = {"clusters": ivf.n_clusters, "file": name}

    existing_names = [e["name"] for e in meta["entries"]]
    names = _unique_names(results, taken=existing_names)
    meta["entries"].extend(_result_entries(results, names))
    report = {
        "mode": "add",
        "files": len(results),
        "embedded": len(ok),
        "embedded_fresh": len(fresh),
        "embeddings_reused": len(ok) - len(fresh),
        "failures": len(results) - len(ok),
        "cache": cache.stats.as_dict() if cache else None,
        "extract_seconds": extract_seconds,
        "embed_seconds": embed_seconds,
        "jobs": extractor.last_jobs,
    }
    meta["build"] = report
    _write_meta(root, meta)
    _clean_stale_files(root, meta)
    return FingerprintIndex.load(root), report


def migrate_v2(root):
    """Convert a v2 index to v3 in place, without re-embedding.

    Reads the compressed float64 ``embeddings.npz``, unit-normalizes it
    once, writes the rows as a float32 shard (plus an IVF quantizer when
    the corpus is large enough), rewrites ``meta.json`` as v3, and
    removes the legacy store.

    Returns:
        The migrated, loaded :class:`FingerprintIndex`.
    """
    root = Path(root)
    meta = _read_meta(root)
    if meta.get("version") == FORMAT_VERSION:
        return FingerprintIndex.load(root)
    if meta.get("version") != 2:
        raise IndexStoreError(
            f"cannot migrate index version {meta.get('version')!r} "
            f"(only v2); rebuild the index")
    try:
        with np.load(root / LEGACY_EMBEDDINGS_NAME,
                     allow_pickle=False) as data:
            matrix = data["matrix"]
            keys = [str(k) for k in data["keys"]]
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise IndexStoreError(f"corrupt embedding store: {exc}") from exc
    ok_keys = [e["key"] for e in meta["entries"] if e["status"] == "ok"]
    if keys != ok_keys or matrix.shape[0] != len(ok_keys):
        raise IndexStoreError(
            "embedding store does not match index metadata "
            "(partial write? rebuild the index)")
    unit_matrix = unit_rows_f32(matrix)
    hidden = int(matrix.shape[1]) if matrix.ndim == 2 else 0
    meta["version"] = FORMAT_VERSION
    meta["options"].setdefault("use_cache", True)
    meta["store"] = {
        "dtype": "float32",
        "hidden": hidden,
        "shards": ([write_shard(root, next_shard_ordinal(root),
                                unit_matrix)]
                   if len(unit_matrix) else []),
    }
    _maybe_fit_ivf(root, unit_matrix, meta)
    # v3 meta lands atomically first; only then is the legacy store
    # removed, so a crash mid-migration never strands a half-converted
    # index (either version's meta always matches its files).
    _write_meta(root, meta)
    _clean_stale_files(root, meta)
    return FingerprintIndex.load(root)
