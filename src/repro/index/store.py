"""Persistent hardware-fingerprint index.

On-disk layout under the index root::

    meta.json        entries (one per input file, failures included),
                     model hash, pipeline options, last-build report
    embeddings.npz   float64 embedding matrix, one row per OK entry,
                     plus the content keys for cross-checking
    model.npz        the exact model that produced the embeddings
    cache/           content-addressed DFG cache (survives rebuilds)

Queries never re-embed the corpus: the suspect design is embedded once and
scored against the whole matrix with one vectorized cosine pass, exactly
the deployment workflow of :class:`repro.core.matcher.IPMatcher` but
persistent, incremental (via the DFG cache), and model-checked (stored
embeddings are refused for a model with a different fingerprint).
"""

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.persist import load_model, save_model
from repro.errors import IndexStoreError, ModelError
from repro.index.cache import DFGCache
from repro.index.extractor import CorpusExtractor
from repro.index.service import EmbeddingService
from repro.ir.frontends import RTLFrontend, get_frontend

META_NAME = "meta.json"
EMBEDDINGS_NAME = "embeddings.npz"
MODEL_NAME = "model.npz"
CACHE_DIR = "cache"
#: v2: options carry level + schema fingerprint, and model fingerprints
#: hash the featurizer config key — v1 indexes would load but fail their
#: own model-hash check, so they are refused with a clear rebuild message.
FORMAT_VERSION = 2


@dataclass
class QueryHit:
    """One ranked index entry for a query design."""

    name: str
    path: str
    design: str
    score: float
    is_piracy: bool


def _normalize_rows(matrix, eps=1e-12):
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, eps)


class FingerprintIndex:
    """A loaded fingerprint index (see module docstring for the layout)."""

    def __init__(self, root, meta, matrix):
        self.root = Path(root)
        self.meta = meta
        self.matrix = matrix              # (n_ok, hidden) raw embeddings
        self._unit = _normalize_rows(matrix) if len(matrix) else matrix
        self.entries = meta["entries"]
        self._ok_entries = [e for e in self.entries if e["status"] == "ok"]
        self._row_by_key = {}
        for row, entry in enumerate(self._ok_entries):
            self._row_by_key.setdefault(entry["key"], row)

    # -- loading -------------------------------------------------------------
    @classmethod
    def load(cls, root):
        """Open an existing index; raises IndexStoreError when unusable."""
        root = Path(root)
        meta_path = root / META_NAME
        if not meta_path.is_file():
            raise IndexStoreError(
                f"no fingerprint index at {root} (missing {META_NAME}; "
                f"run 'gnn4ip index build' first)")
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise IndexStoreError(f"corrupt index metadata: {exc}") from exc
        if meta.get("version") != FORMAT_VERSION:
            raise IndexStoreError(
                f"index version {meta.get('version')!r} is not supported "
                f"(expected {FORMAT_VERSION})")
        try:
            with np.load(root / EMBEDDINGS_NAME, allow_pickle=False) as data:
                matrix = data["matrix"]
                keys = [str(k) for k in data["keys"]]
        except (OSError, KeyError, ValueError) as exc:
            raise IndexStoreError(f"corrupt embedding store: {exc}") from exc
        ok_keys = [e["key"] for e in meta["entries"] if e["status"] == "ok"]
        if keys != ok_keys or matrix.shape[0] != len(ok_keys):
            raise IndexStoreError(
                "embedding store does not match index metadata "
                "(partial write? rebuild the index)")
        return cls(root, meta, matrix)

    def model(self, **kwargs):
        """The model persisted with the index."""
        return load_model(self.root / MODEL_NAME, **kwargs)

    def frontend(self):
        """A frontend configured like the one the index was built with.

        Queries must extract suspects at the same level and with the same
        options the corpus was extracted with, or scores would compare
        incomparable graphs.

        Raises:
            IndexStoreError: when the current feature schema no longer
                matches the one the index was built under (e.g. the
                vocabulary changed in a later version) — stored embeddings
                would be silently incomparable to fresh ones.
        """
        frontend = get_frontend(self.level,
                                do_trim=self.meta["options"].get("do_trim",
                                                                 True))
        stored = self.meta["options"].get("schema")
        if stored is not None and stored != frontend.schema_fingerprint():
            raise IndexStoreError(
                f"the feature schema has changed since this index was "
                f"built ({stored} -> {frontend.schema_fingerprint()}); "
                f"rebuild the index")
        return frontend

    def pipeline(self):
        """Deprecated alias for :meth:`frontend` (same extract interface)."""
        return self.frontend()

    @property
    def level(self):
        """Extraction level the index was built at (``rtl``/``netlist``)."""
        return self.meta["options"].get("level", "rtl")

    @property
    def top(self):
        """Top-module option the index was built with (usually None)."""
        return self.meta["options"]["top"]

    # -- queries -------------------------------------------------------------
    def __len__(self):
        return len(self._ok_entries)

    @property
    def model_hash(self):
        return self.meta["model_hash"]

    def lookup_key(self, key):
        """Stored embedding for a content key, or None."""
        row = self._row_by_key.get(key)
        return None if row is None else self.matrix[row]

    def query_vector(self, vector, k=5, delta=0.0):
        """Top-k entries by cosine similarity to ``vector``."""
        if not len(self):
            raise IndexStoreError("the fingerprint index is empty")
        vector = np.asarray(vector, dtype=np.float64)
        unit = vector / max(np.linalg.norm(vector), 1e-12)
        scores = self._unit @ unit
        order = np.argsort(-scores, kind="stable")[:max(k, 0)]
        hits = []
        for row in order:
            entry = self._ok_entries[row]
            hits.append(QueryHit(name=entry["name"], path=entry["path"],
                                 design=entry["design"],
                                 score=float(scores[row]),
                                 is_piracy=bool(scores[row] > delta)))
        return hits

    def query_graph(self, graph, model, k=5):
        """Embed a suspect DFG and rank it against the index.

        Raises:
            IndexStoreError: when ``model`` is not the model the index was
                built with (its embeddings would not be comparable).
        """
        service = EmbeddingService(model)
        if service.fingerprint != self.model_hash:
            raise IndexStoreError(
                "model fingerprint does not match the index "
                "(rebuild the index or query with its own model)")
        vector = service.embed_one(graph)
        return self.query_vector(vector, k=k, delta=model.delta)

    def stats(self):
        """Summary dict for reports and the ``index stats`` command."""
        designs = {}
        failures = 0
        for entry in self.entries:
            if entry["status"] == "ok":
                designs[entry["design"]] = designs.get(entry["design"], 0) + 1
            else:
                failures += 1
        cache = DFGCache(self.root / CACHE_DIR)
        return {
            "level": self.level,
            "entries": len(self.entries),
            "embedded": len(self),
            "failures": failures,
            "designs": len(designs),
            "hidden": int(self.matrix.shape[1]) if len(self) else 0,
            "model_hash": self.model_hash,
            "cache_entries": cache.entry_count(),
            "cache_bytes": cache.disk_bytes(),
            "build": self.meta.get("build", {}),
        }


def _unique_names(results):
    """File stems, suffixed where needed so index names stay unique."""
    seen = {}
    names = []
    for result in results:
        count = seen.get(result.name, 0)
        seen[result.name] = count + 1
        names.append(result.name if count == 0
                     else f"{result.name}#{count + 1}")
    return names


def build_index(root, paths, model, pipeline=None, jobs=None,
                use_cache=True, top=None, batch_size=64, level=None,
                frontend=None):
    """Build (or rebuild) a fingerprint index over Verilog files.

    Extraction fans out over worker processes and reuses the index's graph
    cache; embedding runs batched.  Files the frontend rejects become
    failure entries instead of aborting the build.

    Args:
        level: extraction level (``rtl`` / ``netlist``); defaults to the
            level of the model's featurizer, so a netlist-trained model
            indexes at the netlist level without extra flags.
        frontend: explicit :mod:`repro.ir.frontends` frontend (overrides
            ``level`` and ``pipeline``).

    Returns:
        (index, report) — the loaded :class:`FingerprintIndex` and a dict
        describing the build (counts, cache stats, timings).

    Raises:
        ModelError: when the model's featurizer level does not match the
            requested extraction level (its embeddings would be garbage).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    paths = [str(p) for p in paths]
    if not paths:
        raise IndexStoreError("no input files to index")

    model_level = getattr(model.encoder, "featurizer", None)
    model_level = model_level.level if model_level is not None else "rtl"
    if frontend is None:
        if pipeline is not None:
            if level not in (None, "rtl"):
                raise ValueError(
                    f"pipeline= selects the RTL frontend and conflicts "
                    f"with level={level!r}; pass frontend= instead")
            frontend = RTLFrontend(pipeline=pipeline)
        else:
            frontend = get_frontend(level if level is not None
                                    else model_level)
    if frontend.level != model_level:
        raise ModelError(
            f"cannot build a {frontend.level}-level index with a "
            f"{model_level}-level model (train with --level "
            f"{frontend.level} or change --level)")

    start = time.perf_counter()
    cache = DFGCache(root / CACHE_DIR) if use_cache else None
    extractor = CorpusExtractor(cache=cache, jobs=jobs, frontend=frontend)
    results = extractor.extract_paths(paths, top=top)
    extract_seconds = time.perf_counter() - start

    ok = [r for r in results if r.ok]
    service = EmbeddingService(model, batch_size=batch_size)

    # Rebuild fast path: embeddings from a previous build of this index
    # are reused for unchanged content keys, provided the model is the
    # same one (fingerprint match).  --no-cache recomputes everything.
    previous = {}
    if use_cache:
        try:
            old = FingerprintIndex.load(root)
            if old.model_hash == service.fingerprint:
                previous = {entry["key"]: old.matrix[row]
                            for row, entry in enumerate(old._ok_entries)}
        except IndexStoreError:
            pass

    embed_start = time.perf_counter()
    fresh = [r for r in ok if r.key not in previous]
    fresh_matrix = (service.embed_graphs([r.graph for r in fresh])
                    if fresh else np.empty((0, model.encoder.hidden)))
    fresh_rows = {r.key: fresh_matrix[i] for i, r in enumerate(fresh)}
    matrix = (np.stack([previous[r.key] if r.key in previous
                        else fresh_rows[r.key] for r in ok])
              if ok else np.empty((0, model.encoder.hidden)))
    embed_seconds = time.perf_counter() - embed_start

    entries = []
    names = _unique_names(results)
    for result, name in zip(results, names):
        entry = {"name": name, "path": result.path, "key": result.key,
                 "status": "ok" if result.ok else "error"}
        if result.ok:
            entry["design"] = result.graph.name
            entry["nodes"] = len(result.graph)
            entry["edges"] = result.graph.num_edges
            entry["cached"] = result.cached
        else:
            entry["error"] = result.error
        entries.append(entry)

    report = {
        "files": len(results),
        "embedded": len(ok),
        "embedded_fresh": len(fresh),
        "embeddings_reused": len(ok) - len(fresh),
        "failures": len(results) - len(ok),
        "cache": cache.stats.as_dict() if cache else None,
        "extract_seconds": extract_seconds,
        "embed_seconds": embed_seconds,
        "jobs": extractor.last_jobs,
    }
    meta = {
        "version": FORMAT_VERSION,
        "model_hash": service.fingerprint,
        "options": {
            "top": top,
            "level": frontend.level,
            "do_trim": getattr(frontend, "do_trim", True),
            "schema": frontend.schema_fingerprint(),
        },
        "entries": entries,
        "build": report,
    }

    np.savez(root / EMBEDDINGS_NAME, matrix=matrix,
             keys=np.array([r.key for r in ok], dtype="U64"))
    save_model(model, root / MODEL_NAME)
    # meta.json is written last: its presence marks a complete index, and
    # load() cross-checks it against the embedding store.
    tmp = root / (META_NAME + ".tmp")
    tmp.write_text(json.dumps(meta, indent=1, sort_keys=True))
    tmp.replace(root / META_NAME)
    return FingerprintIndex(root, meta, matrix), report
